"""Tests for the repro.lint rule engine, config and reporters."""

import json

import pytest

from repro.lint import (
    EXIT_CLEAN,
    EXIT_ERRORS,
    EXIT_WARNINGS,
    Finding,
    LintConfig,
    LintError,
    LintReport,
    Severity,
    all_rules,
    as_json_document,
    combined_exit_code,
    get_rule,
    lint_march,
    lint_netlist,
    render_json,
    render_text,
    rule,
    rules_for_pack,
    run_pack,
)
from repro.lint.demo import demo_broken_netlist
from repro.march.library import MARCH_CM, MATS

# A private pack exercising the engine without touching shipped packs.
# Guarded so repeated imports (pytest reruns in one process) don't
# re-register.
if not rules_for_pack("_enginetest"):
    @rule("TST001", "_enginetest", "always fires",
          severity=Severity.WARNING, rationale="engine test")
    def _always(ctx):
        yield Finding("fired", location="here")

    @rule("TST002", "_enginetest", "fires on truthy context",
          severity=Severity.ERROR, rationale="engine test")
    def _on_truthy(ctx):
        if ctx:
            yield Finding("context was truthy")

    @rule("TST003", "_enginetest", "info noise",
          severity=Severity.INFO, rationale="engine test")
    def _info(ctx):
        yield Finding("informational")


class TestRegistry:
    def test_rules_have_unique_stable_ids(self):
        ids = [r.rule_id for r in all_rules()]
        assert len(ids) == len(set(ids))

    def test_shipped_packs_present(self):
        assert rules_for_pack("netlist")
        assert rules_for_pack("march")
        assert rules_for_pack("plan")

    def test_get_rule(self):
        assert get_rule("NET001").pack == "netlist"
        with pytest.raises(KeyError, match="unknown rule"):
            get_rule("NOPE999")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate rule id"):
            rule("TST001", "_enginetest", "dup")(lambda ctx: [])

    def test_unknown_pack_rejected(self):
        with pytest.raises(KeyError, match="unknown rule pack"):
            run_pack("no-such-pack", None)


class TestConfig:
    def test_suppression(self):
        report = run_pack("_enginetest", True,
                          LintConfig().disable("TST001", "TST002"))
        assert [i.rule_id for i in report.issues] == ["TST003"]
        assert report.rules_run == 1

    def test_suppressing_unknown_rule_is_an_error(self):
        with pytest.raises(KeyError):
            LintConfig().disable("TYPO001")

    def test_severity_override(self):
        config = LintConfig().override("TST001", Severity.ERROR)
        report = run_pack("_enginetest", False, config)
        assert any(i.rule_id == "TST001" and i.severity is Severity.ERROR
                   for i in report.issues)
        assert report.exit_code() == EXIT_ERRORS

    def test_min_severity_drops_info(self):
        config = LintConfig(min_severity=Severity.WARNING)
        report = run_pack("_enginetest", False, config)
        assert all(i.severity is not Severity.INFO for i in report.issues)


class TestExitCodes:
    def test_clean_is_zero(self):
        assert lint_march(MARCH_CM).exit_code() == EXIT_CLEAN

    def test_warnings_only_strict_gate(self):
        report = lint_march(MATS)
        assert report.errors == []
        assert report.warnings
        assert report.exit_code() == EXIT_CLEAN
        assert report.exit_code(strict=True) == EXIT_WARNINGS

    def test_errors_dominate(self):
        report = lint_netlist(demo_broken_netlist())
        assert report.exit_code() == EXIT_ERRORS
        assert report.exit_code(strict=True) == EXIT_ERRORS

    def test_combined_exit_code(self):
        reports = [lint_march(MARCH_CM), lint_march(MATS)]
        assert combined_exit_code(reports) == EXIT_CLEAN
        assert combined_exit_code(reports, strict=True) == EXIT_WARNINGS
        reports.append(lint_netlist(demo_broken_netlist()))
        assert combined_exit_code(reports, strict=False) == EXIT_ERRORS
        assert combined_exit_code([]) == EXIT_CLEAN


class TestReporters:
    def test_text_mentions_rule_ids_and_summary(self):
        text = render_text([lint_netlist(demo_broken_netlist())])
        assert "NET001" in text and "NET003" in text
        assert "error(s)" in text

    def test_text_hides_clean_targets_unless_verbose(self):
        clean = lint_march(MARCH_CM, target="march:March C-")
        assert "March C-" not in render_text([clean])
        assert "march:March C-: ok" in render_text([clean], verbose=True)

    def test_json_schema(self):
        doc = json.loads(render_json([lint_netlist(demo_broken_netlist())]))
        assert doc["version"] == 1
        assert doc["tool"] == "repro.lint"
        summary = doc["summary"]
        assert set(summary) == {"targets", "rules_run", "errors",
                                "warnings", "info", "exit_code"}
        assert summary["errors"] == 2 and summary["exit_code"] == EXIT_ERRORS
        for issue in doc["issues"]:
            assert set(issue) == {"rule", "severity", "message", "pack",
                                  "location", "target"}
        assert {i["rule"] for i in doc["issues"]} >= {"NET001", "NET003"}

    def test_json_document_counts_match_reports(self):
        reports = [lint_march(MATS), lint_march(MARCH_CM)]
        doc = as_json_document(reports)
        assert doc["summary"]["targets"] == 2
        assert doc["summary"]["warnings"] == len(lint_march(MATS).warnings)


class TestLintError:
    def test_carries_report_and_details(self):
        report = LintReport("t", "netlist", lint_netlist(
            demo_broken_netlist()).issues, 6)
        err = LintError(report)
        assert err.report is report
        assert "NET001" in str(err)
