"""Tests for the ``code`` pack: determinism & I/O-discipline analysis.

One fixture snippet per rule -- positive (fires), negative (stays
quiet) and suppression (``# repro: lint-disable=ID``) -- plus the
self-lint gate asserting the shipped tree is clean under its own
analyzer.
"""

import json

import pytest

from repro.lint import EXIT_CLEAN, LintConfig, Severity, combined_exit_code
from repro.lint.code import lint_code_paths, lint_code_source
from repro.lint.code.context import CodeLintContext, parse_suppressions


def issues(source: str, path: str = "src/repro/pack/mod.py",
           config: LintConfig | None = None):
    """Lint a snippet; return its issues list."""
    return lint_code_source(source, path, config).issues


def rule_ids(source: str, path: str = "src/repro/pack/mod.py",
             config: LintConfig | None = None):
    """Lint a snippet; return the list of firing rule IDs."""
    return [i.rule_id for i in issues(source, path, config)]


class TestContext:
    def test_module_name_and_roles(self):
        ctx = CodeLintContext.from_source(
            "x = 1\n", "src/repro/runner/atomic.py")
        assert ctx.module == "repro.runner.atomic"
        assert ctx.is_atomic_module and not ctx.is_test

        ctx = CodeLintContext.from_source("x = 1\n", "tests/obs/test_x.py")
        assert ctx.module == "tests.obs.test_x"
        assert ctx.is_test

        ctx = CodeLintContext.from_source(
            "x = 1\n", "src/repro/perf/frontier_bench.py")
        assert ctx.is_bench

        ctx = CodeLintContext.from_source(
            "x = 1\n", "src/repro/runner/evaluate.py")
        assert ctx.is_worker_module

    def test_import_resolution(self):
        import ast

        ctx = CodeLintContext.from_source(
            "import numpy as np\n"
            "from random import randint\n"
            "import os.path\n")
        call = ast.parse("np.random.rand()").body[0].value
        assert ctx.resolve(call.func) == "numpy.random.rand"
        assert ctx.from_imports["randint"] == "random.randint"
        assert ctx.module_aliases["os"] == "os"
        # a chain rooted in a local object is unresolvable
        method = ast.parse("self.rng.random()").body[0].value
        assert ctx.resolve(method.func) is None

    def test_suppressions_only_in_real_comments(self):
        table = parse_suppressions(
            '"""docstring saying # repro: lint-disable=DET001"""\n'
            "x = 1  # repro: lint-disable=DET001,IO002\n")
        assert table == {2: frozenset({"DET001", "IO002"})}

    def test_standalone_comment_binds_to_next_code_line(self):
        table = parse_suppressions(
            "# repro: lint-disable=OBS002 -- justification\n"
            "# (a second comment line keeps the binding)\n"
            "foo()\n")
        assert table == {3: frozenset({"OBS002"})}


class TestDeterminismRules:
    def test_det001_module_random_fires(self):
        assert "DET001" in rule_ids(
            "import random\nvalue = random.random()\n")

    def test_det001_unseeded_and_system_random_fire(self):
        assert "DET001" in rule_ids("import random\nr = random.Random()\n")
        assert "DET001" in rule_ids(
            "import random\nr = random.SystemRandom()\n")

    def test_det001_seeded_instance_clean(self):
        assert rule_ids("import random\nr = random.Random(1105)\n") == []

    def test_det001_from_import_fires(self):
        assert "DET001" in rule_ids(
            "from random import shuffle\nshuffle([1, 2])\n")

    def test_det002_numpy_global_fires_seeded_generator_clean(self):
        assert "DET002" in rule_ids(
            "import numpy as np\nx = np.random.rand(4)\n")
        assert "DET002" in rule_ids(
            "import numpy as np\nrng = np.random.default_rng()\n")
        assert rule_ids(
            "import numpy as np\nrng = np.random.default_rng(7)\n") == []
        assert rule_ids(
            "import numpy as np\n"
            "ss = np.random.SeedSequence(entropy=3)\n") == []

    def test_det003_wall_clock_fires(self):
        assert "DET003" in rule_ids("import time\nt = time.time()\n")
        assert "DET003" in rule_ids(
            "from datetime import datetime\nnow = datetime.now()\n")

    def test_det003_monotonic_only_in_bench_modules(self):
        src = "import time\nt = time.perf_counter()\n"
        assert "DET003" in rule_ids(src)
        assert rule_ids(src, "src/repro/perf/frontier_bench.py") == []
        assert rule_ids(src, "benchmarks/perf/bench_campaign.py") == []

    def test_det003_skips_tests(self):
        assert rule_ids("import time\nt = time.time()\n",
                        "tests/perf/test_timing.py") == []

    def test_det004_set_iteration_fires(self):
        assert "DET004" in rule_ids("for x in set([3, 1]):\n    print(x)\n")
        assert "DET004" in rule_ids("out = [x for x in {1, 2}]\n")
        assert "DET004" in rule_ids(
            "import os\nfor k in os.environ:\n    print(k)\n")

    def test_det004_sorted_iteration_clean(self):
        assert rule_ids("for x in sorted(set([3, 1])):\n    print(x)\n") == []
        assert rule_ids(
            "out = sorted(x for x in {1, 2} | {3})\n") == []

    def test_det005_bare_dumps_to_sink_fires(self):
        assert "DET005" in rule_ids(
            "import json\nfrom pathlib import Path\n"
            "Path('x.json').write_text(json.dumps({'a': 1}))\n")
        assert "DET005" in rule_ids(
            "import json\nfrom repro.runner.atomic import atomic_write_text\n"
            "atomic_write_text('x.json', json.dumps({'a': 1}))\n")

    def test_det005_sorted_dumps_clean(self):
        assert "DET005" not in rule_ids(
            "import json\nfrom repro.runner.atomic import atomic_write_text\n"
            "atomic_write_text('x', json.dumps({'a': 1}, sort_keys=True))\n")

    def test_det005_unpersisted_dumps_clean(self):
        assert "DET005" not in rule_ids(
            "import json\ntext = json.dumps({'a': 1})\n")


class TestIoRules:
    def test_io001_write_mode_fires_read_mode_clean(self):
        assert "IO001" in rule_ids(
            "with open('out.json', 'w') as fh:\n    fh.write('x')\n")
        assert "IO001" in rule_ids("fh = open('out.bin', mode='wb')\n")
        assert "IO001" not in rule_ids(
            "with open('in.json') as fh:\n    fh.read()\n")
        assert "IO001" not in rule_ids(
            "with open('in.json', 'r') as fh:\n    fh.read()\n")

    def test_io001_exempt_in_atomic_module_and_tests(self):
        src = "fh = open('out', 'w')\n"
        assert rule_ids(src, "src/repro/runner/atomic.py") == []
        assert rule_ids(src, "tests/runner/test_atomic.py") == []

    def test_io002_path_write_fires(self):
        assert "IO002" in rule_ids(
            "from pathlib import Path\nPath('x').write_text('data')\n")
        assert "IO002" in rule_ids(
            "from pathlib import Path\nPath('x').write_bytes(b'data')\n")

    def test_io003_rename_fires_outside_atomic(self):
        assert "IO003" in rule_ids("import os\nos.replace('a', 'b')\n")
        assert "IO003" in rule_ids(
            "import shutil\nshutil.move('a', 'b')\n")
        assert rule_ids("import os\nos.replace('a', 'b')\n",
                        "src/repro/runner/atomic.py") == []

    def test_io004_write_rename_without_fsync_fires(self):
        src = (
            "import os\n"
            "def commit(path, text):\n"
            "    with open(path + '.tmp', 'w') as fh:\n"
            "        fh.write(text)\n"
            "    os.replace(path + '.tmp', path)\n")
        assert "IO004" in rule_ids(src, "src/repro/runner/atomic.py")

    def test_io004_fsync_in_scope_clean(self):
        src = (
            "import os\n"
            "def commit(path, text):\n"
            "    with open(path + '.tmp', 'w') as fh:\n"
            "        fh.write(text)\n"
            "        os.fsync(fh.fileno())\n"
            "    os.replace(path + '.tmp', path)\n")
        assert "IO004" not in rule_ids(src, "src/repro/runner/atomic.py")


class TestObsRules:
    def test_obs001_unknown_event_fires(self):
        assert "OBS001" in rule_ids("bus.emit('unit.finished', unit='u')\n")

    def test_obs001_catalogued_event_clean(self):
        assert rule_ids("bus.emit('cache.hit', unit='u')\n") == []

    def test_obs001_non_literal_name_skipped(self):
        assert rule_ids("bus.emit(name, **data)\n") == []

    def test_obs002_missing_key_fires(self):
        out = issues("bus.emit('unit.retry', unit='u')\n")
        assert [i.rule_id for i in out] == ["OBS002"]
        assert "'error'" in out[0].message

    def test_obs002_splat_payload_skipped(self):
        assert rule_ids("bus.emit('unit.retry', **payload)\n") == []

    def test_obs002_extra_keys_allowed(self):
        assert rule_ids(
            "bus.emit('cache.hit', unit='u', extra=1)\n") == []

    def test_obs002_checked_in_tests_too(self):
        assert rule_ids("bus.emit('run.start')\n",
                        "tests/obs/test_fixture.py") == ["OBS002"]

    def test_obs003_worker_module_emit_fires(self):
        src = "bus.emit('cache.hit', unit='u')\n"
        assert "OBS003" in rule_ids(src, "src/repro/runner/evaluate.py")
        assert "OBS003" in rule_ids(src, "src/repro/perf/executor.py")
        assert "OBS003" not in rule_ids(src, "src/repro/runner/campaign.py")


class TestSuppressions:
    def test_same_line_suppression_drops_finding(self):
        assert rule_ids(
            "import random\n"
            "v = random.random()  "
            "# repro: lint-disable=DET001 -- fixture noise\n") == []

    def test_preceding_comment_suppression_drops_finding(self):
        assert rule_ids(
            "import random\n"
            "# repro: lint-disable=DET001 -- fixture noise\n"
            "v = random.random()\n") == []

    def test_suppression_is_per_rule(self):
        ids = rule_ids(
            "import random, time\n"
            "v = random.random()  # repro: lint-disable=DET003\n")
        # wrong ID: DET001 still fires, and the DET003 disable is stale
        assert ids == ["DET001", "CODE002"]

    def test_code001_unknown_or_foreign_id(self):
        assert rule_ids("x = 1  # repro: lint-disable=NOPE999\n") == [
            "CODE001"]
        assert rule_ids("x = 1  # repro: lint-disable=MARCH001\n") == [
            "CODE001"]

    def test_code002_respects_select_filter(self):
        # Under --select DET001 the DET003 rule never ran, so its
        # suppression cannot be proven stale.
        config = LintConfig().select("DET001", "CODE002")
        assert rule_ids(
            "x = 1  # repro: lint-disable=DET003\n", config=config) == []

    def test_code003_syntax_error(self):
        report = lint_code_source("def broken(:\n", "src/repro/bad.py")
        assert [i.rule_id for i in report.issues] == ["CODE003"]
        assert report.issues[0].severity is Severity.ERROR


class TestConfigFiltering:
    SRC = "import random\nv = random.random()\nf = open('x', 'w')\n"

    def test_select_restricts_rules(self):
        config = LintConfig().select("IO001")
        assert rule_ids(self.SRC, config=config) == ["IO001"]

    def test_disable_subtracts(self):
        config = LintConfig().disable("IO001")
        assert rule_ids(self.SRC, config=config) == ["DET001"]

    def test_ignore_wins_over_select(self):
        config = LintConfig().select("IO001").disable("IO001")
        assert rule_ids(self.SRC, config=config) == []


class TestSelfLint:
    def test_shipped_tree_is_clean(self):
        reports = lint_code_paths(["src/repro"])
        dirty = [r for r in reports if not r.clean]
        assert combined_exit_code(reports) == EXIT_CLEAN, [
            str(i) for r in dirty for i in r.issues]
        assert len(reports) > 100  # the walk really covered the tree

    def test_tests_and_benchmarks_are_clean(self):
        reports = lint_code_paths(["tests", "benchmarks", "scripts"])
        assert combined_exit_code(reports) == EXIT_CLEAN, [
            str(i) for r in reports for i in r.issues]


class TestCliIntegration:
    def test_lint_code_clean_tree_exits_zero(self):
        from repro.cli import main

        assert main(["lint", "code", "src/repro"]) == 0

    def test_lint_code_dirty_fixture_flagged_in_json(self, tmp_path, capsys):
        from repro.cli import main

        fixture = tmp_path / "dirty.py"
        fixture.write_text(
            "import random\n"
            "v = random.random()\n"
            "bus.emit('no.such.event')\n")
        rc = main(["lint", "--format", "json", "code", str(fixture)])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 2
        assert doc["summary"]["exit_code"] == 2
        rules = {i["rule"] for i in doc["issues"]}
        assert rules == {"DET001", "OBS001"}
        locations = {i["location"] for i in doc["issues"]}
        assert f"{fixture}:2" in locations

    def test_lint_code_select_and_ignore_filters(self, tmp_path, capsys):
        from repro.cli import main

        fixture = tmp_path / "dirty.py"
        fixture.write_text("import random\nv = random.random()\n"
                           "f = open('x', 'w')\n")
        rc = main(["lint", "--format", "json", "--select", "IO",
                   "code", str(fixture)])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 2
        assert {i["rule"] for i in doc["issues"]} == {"IO001"}
        assert main(["lint", "--ignore", "DET,IO",
                     "code", str(fixture)]) == 0
        capsys.readouterr()

    def test_select_applies_to_all_packs(self, capsys):
        from repro.cli import main

        # demo-broken normally exits 2; selecting only a warning-level
        # netlist rule leaves no errors.
        rc = main(["lint", "--select", "NET002", "netlist:demo-broken"])
        capsys.readouterr()
        assert rc == 0

    def test_unknown_selector_exits_two(self, capsys):
        from repro.cli import main

        assert main(["lint", "--select", "NOPE", "march:MATS"]) == 2
        assert "unknown rule or rule prefix" in capsys.readouterr().err

    def test_missing_code_path_exits_two(self, capsys):
        from repro.cli import main

        assert main(["lint", "code", "/no/such/file.py"]) == 2
