"""Tests for the MARCH0xx rule pack and the legacy validation wrapper."""

from repro.lint import Severity, lint_march
from repro.march.library import (
    MARCH_CM,
    MARCH_G_DEL,
    MARCH_SS,
    MATS,
    STANDARD_TESTS,
)
from repro.march.pause import PauseElement
from repro.march.test import MarchTest
from repro.march.validation import validate


def make(notation):
    return MarchTest.parse("t", notation)


def codes(test):
    return [i.rule_id for i in lint_march(test).issues]


def empty_test():
    """A zero-element MarchTest, bypassing the constructor guard."""
    t = object.__new__(MarchTest)
    object.__setattr__(t, "name", "empty")
    object.__setattr__(t, "elements", ())
    object.__setattr__(t, "description", "")
    return t


class TestCleanInputs:
    def test_march_cm_is_clean(self):
        assert lint_march(MARCH_CM).clean

    def test_library_is_error_free(self):
        for name, test in STANDARD_TESTS.items():
            report = lint_march(test)
            assert report.errors == [], f"{name}: {report.errors}"

    def test_march_g_del_pause_placement_accepted(self):
        assert "MARCH012" not in codes(MARCH_G_DEL)

    def test_march_ss_repeated_reads_within_element_accepted(self):
        # Back-to-back reads inside one element are deliberate (RDF).
        assert "MARCH010" not in codes(MARCH_SS)
        assert "MARCH011" not in codes(MARCH_SS)


class TestMigratedRules:
    def test_march001_pause_only(self):
        t = MarchTest("pauses", (PauseElement(10),))
        assert "MARCH001" in codes(t)

    def test_march001_empty_test_is_an_error(self):
        report = lint_march(empty_test())
        assert any(i.rule_id == "MARCH001"
                   and i.severity is Severity.ERROR
                   for i in report.issues)

    def test_march002_uninitialised_read(self):
        assert "MARCH002" in codes(make("^(r0,w1)"))

    def test_march003_element_inconsistent(self):
        assert "MARCH003" in codes(make("*(w0); ^(r0,w1,r0)"))

    def test_march004_entry_state_mismatch(self):
        assert "MARCH004" in codes(make("*(w0); ^(r1,w0)"))

    def test_march005_no_reads(self):
        assert "MARCH005" in codes(make("*(w0); ^(w1)"))

    def test_march006_never_reads_zero(self):
        t = make("*(w1); ^(r1)")
        assert "MARCH006" in codes(t)
        assert "MARCH007" not in codes(t)

    def test_march007_never_reads_one(self):
        assert "MARCH007" in codes(make("*(w0); ^(r0)"))

    def test_march008_weak_transitions(self):
        assert "MARCH008" in codes(MATS)

    def test_march009_single_direction(self):
        assert "MARCH009" in codes(make("*(w0); ^(r0,w1); ^(r1)"))

    def test_detection_warnings_suppressed_without_reads(self):
        # Legacy behaviour: a read-free test reports only the fatal
        # MARCH005, not the read-polarity/transition/direction noise.
        ids = codes(make("*(w0); ^(w1)"))
        assert "MARCH005" in ids
        for rid in ("MARCH006", "MARCH007", "MARCH008", "MARCH009"):
            assert rid not in ids


class TestNewRules:
    def test_march010_redundant_element(self):
        report = lint_march(make("*(w0); ^(r0); ^(r0)"))
        redundant = [i for i in report.issues if i.rule_id == "MARCH010"]
        assert len(redundant) == 1
        assert redundant[0].severity is Severity.INFO
        assert redundant[0].index == 2

    def test_march010_not_fired_when_write_intervenes(self):
        assert "MARCH010" not in codes(make("*(w0); ^(r0,w0); ^(r0,w0)"))

    def test_march011_unreachable_read(self):
        report = lint_march(make("*(w0); ^(r0,r1,w1)"))
        assert any(i.rule_id == "MARCH011"
                   and i.severity is Severity.ERROR
                   for i in report.issues)

    def test_march011_consistent_repeated_reads_ok(self):
        assert "MARCH011" not in codes(make("*(w0); ^(r0,r0,w1)"))

    def test_march012_pause_before_any_write(self):
        t = MarchTest.parse("t", "Del(10); *(w0); ^(r0)")
        assert "MARCH012" in codes(t)

    def test_march012_trailing_pause_never_observed(self):
        t = MarchTest.parse("t", "*(w0); ^(r0,w1); Del(10)")
        report = lint_march(t)
        assert any(i.rule_id == "MARCH012" and "never" in i.message
                   for i in report.issues)

    def test_march012_adjacent_pauses(self):
        t = MarchTest.parse("t", "*(w0); Del(10); Del(10); ^(r0)")
        report = lint_march(t)
        assert any(i.rule_id == "MARCH012" and "adjacent" in i.message
                   for i in report.issues)


class TestLegacyWrapperCompatibility:
    def test_library_codes_unchanged(self):
        # The historical validator's exact output for the seed library.
        expected = {
            "MATS": ["weak-transitions", "single-direction"],
            "March C-": [],
            "11N": [],
        }
        for name, codes_ in expected.items():
            got = [i.code for i in validate(STANDARD_TESTS[name])]
            assert got == codes_, name

    def test_interleaved_consistency_order(self):
        # Legacy order walks elements, inconsistency before entry
        # mismatch within each element.
        t = make("*(w0); ^(r1,w1,r0); v(r0,w0,r1)")
        got = [i.code for i in validate(t)]
        assert got == ["element-inconsistent", "entry-state-mismatch",
                       "element-inconsistent", "entry-state-mismatch"]

    def test_empty_test_reports_errors_not_empty_list(self):
        issues = validate(empty_test())
        assert issues, "zero-element test must not validate cleanly"
        assert all(i.severity.value == "error" for i in issues)
        assert "no-operations" in [i.code for i in issues]

    def test_new_rules_do_not_leak_into_legacy_api(self):
        # MARCH010 fires on this test, but the legacy API predates it.
        t = make("*(w0); ^(r0,w1); v(r1); v(r1)")
        assert "MARCH010" in codes(t)
        legacy_codes = {i.code for i in validate(t)}
        assert legacy_codes <= {
            "no-operations", "uninitialised-read", "element-inconsistent",
            "entry-state-mismatch", "no-reads", "no-read0", "no-read1",
            "weak-transitions", "single-direction",
        }
