"""Tests for the PLAN0xx test-plan/stress-suite rule pack."""

from repro.circuit.technology import CMOS018
from repro.core.testplan import TestPlan
from repro.lint import Severity, lint_plan
from repro.stress import (
    StressCondition,
    production_conditions,
    standard_conditions,
)


def codes(report):
    return [i.rule_id for i in report.issues]


class TestCleanInputs:
    def test_production_suite_clean(self):
        report = lint_plan(production_conditions(CMOS018), CMOS018)
        assert report.clean, report.issues

    def test_without_tech_voltage_rules_skip(self):
        report = lint_plan(standard_conditions(CMOS018))
        assert "PLAN004" not in codes(report)
        assert "PLAN005" not in codes(report)


class TestRules:
    def test_plan001_duplicate_conditions(self):
        conds = dict(production_conditions(CMOS018))
        conds["Vnom-again"] = StressCondition("Vnom-again",
                                              CMOS018.vdd_nominal, 100e-9)
        report = lint_plan(conds, CMOS018)
        dups = [i for i in report.issues if i.rule_id == "PLAN001"]
        assert len(dups) == 1
        assert dups[0].location == "Vnom-again"
        assert "Vnom" in dups[0].message

    def test_plan002_no_atspeed_leg(self):
        report = lint_plan(standard_conditions(CMOS018), CMOS018)
        assert "PLAN002" in codes(report)

    def test_plan002_satisfied_by_fast_corner(self):
        assert "PLAN002" not in codes(
            lint_plan(production_conditions(CMOS018), CMOS018))

    def test_plan003_unreachable_target(self):
        plans = [TestPlan(("VLV",), 1e-3, 0.90, 500.0),
                 TestPlan(("VLV", "Vmax"), 2e-3, 0.95, 250.0)]
        report = lint_plan(production_conditions(CMOS018), CMOS018,
                           plans=plans, target_dpm=100.0)
        unreachable = [i for i in report.issues if i.rule_id == "PLAN003"]
        assert len(unreachable) == 1
        assert unreachable[0].severity is Severity.ERROR
        assert "VLV+Vmax" in unreachable[0].message

    def test_plan003_reachable_target_clean(self):
        plans = [TestPlan(("VLV",), 1e-3, 0.99, 50.0)]
        report = lint_plan(production_conditions(CMOS018), CMOS018,
                           plans=plans, target_dpm=100.0)
        assert "PLAN003" not in codes(report)

    def test_plan003_skipped_without_target(self):
        plans = [TestPlan(("VLV",), 1e-3, 0.90, 500.0)]
        report = lint_plan(production_conditions(CMOS018), CMOS018,
                           plans=plans)
        assert "PLAN003" not in codes(report)

    def test_plan004_missing_vlv_leg(self):
        report = lint_plan(standard_conditions(CMOS018), CMOS018)
        assert "PLAN004" in codes(report)

    def test_plan005_overvoltage_condition(self):
        conds = {"burn": StressCondition("burn", 3.0, 100e-9)}
        report = lint_plan(conds, CMOS018)
        over = [i for i in report.issues if i.rule_id == "PLAN005"]
        assert over and over[0].severity is Severity.ERROR

    def test_plan005_subthreshold_condition(self):
        conds = {"dead": StressCondition("dead", 0.2, 100e-9)}
        report = lint_plan(conds, CMOS018)
        assert any(i.rule_id == "PLAN005" and "threshold" in i.message
                   for i in report.issues)

    def test_plan006_empty_suite(self):
        report = lint_plan({}, CMOS018)
        assert codes(report) == ["PLAN006"]
        assert report.exit_code() == 2
