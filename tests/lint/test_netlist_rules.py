"""Tests for the NET0xx netlist ERC rule pack."""

import pytest

from repro.circuit.devices import (
    Capacitor,
    Mosfet,
    MosType,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Netlist
from repro.circuit.technology import CMOS013, CMOS018
from repro.defects.injection import (
    inject_bridge_into_cell,
    inject_open_into_decoder,
)
from repro.defects.models import (
    BridgeSite,
    Defect,
    DefectKind,
    OpenSite,
)
from repro.lint import (
    LintError,
    Severity,
    assert_netlist_clean,
    lint_netlist,
)
from repro.lint.demo import demo_broken_netlist
from repro.memory.cell import SixTCell
from repro.memory.decoder import build_decoder_netlist


def codes(report):
    return [i.rule_id for i in report.issues]


def base_netlist():
    """A tiny clean netlist: source -> resistor divider to ground."""
    nl = Netlist("base")
    nl.add(VoltageSource("Vdd", "vdd", "0", 1.8))
    nl.add(Resistor("R1", "vdd", "mid", 1e3))
    nl.add(Resistor("R2", "mid", "0", 1e3))
    return nl


class TestCleanInputs:
    def test_divider_clean(self):
        assert lint_netlist(base_netlist(), CMOS018).clean

    def test_cell_netlist_clean(self):
        nl = SixTCell(CMOS018).standalone_netlist(1.8, 1)
        assert lint_netlist(nl, CMOS018).clean

    def test_decoder_netlist_clean(self):
        nl = build_decoder_netlist(CMOS018, 1.8)
        assert lint_netlist(nl, CMOS018).clean

    def test_injected_bridge_clean(self):
        d = Defect(DefectKind.BRIDGE, BridgeSite.CELL_NODE_RAIL, 5e3,
                   polarity=-1)
        nl = inject_bridge_into_cell(SixTCell(CMOS018), 1.8, 1, d)
        assert lint_netlist(nl, CMOS018).clean

    def test_injected_open_clean(self):
        d = Defect(DefectKind.OPEN, OpenSite.DECODER_INPUT, 1e6, polarity=1)
        nl = inject_open_into_decoder(CMOS018, 1.8, d)
        assert lint_netlist(nl, CMOS018).clean


class TestNet001Floating:
    def test_gate_only_node_is_floating(self):
        nl = base_netlist()
        nl.add(Mosfet("M1", MosType.NMOS, "mid", "nowhere", "0", 1.0,
                      CMOS018))
        report = lint_netlist(nl, CMOS018)
        floating = [i for i in report.issues if i.rule_id == "NET001"]
        assert [i.location for i in floating] == ["nowhere"]
        assert floating[0].severity is Severity.ERROR

    def test_capacitor_does_not_conduct(self):
        nl = base_netlist()
        nl.add(Capacitor("C1", "island", "0", 1e-15))
        assert "NET001" in codes(lint_netlist(nl, CMOS018))

    def test_channel_conducts(self):
        nl = base_netlist()
        # Drain-source path ties "island" to the driven divider tap.
        nl.add(Mosfet("M1", MosType.NMOS, "island", "mid", "mid", 1.0,
                      CMOS018))
        assert "NET001" not in codes(lint_netlist(nl, CMOS018))


class TestNet002Dangling:
    def test_single_terminal_node_warns(self):
        nl = base_netlist()
        nl.add(Resistor("Rstub", "mid", "stub", 1e3))
        report = lint_netlist(nl, CMOS018)
        dangling = [i for i in report.issues if i.rule_id == "NET002"]
        assert [i.location for i in dangling] == ["stub"]
        assert dangling[0].severity is Severity.WARNING


class TestNet003BridgeEndpoints:
    def test_bridge_to_missing_net(self):
        nl = base_netlist().with_bridge("mid", "ghost", 2e3)
        assert "NET003" in codes(lint_netlist(nl, CMOS018))

    def test_bridge_between_real_nets_ok(self):
        nl = base_netlist().with_bridge("vdd", "mid", 2e3)
        assert "NET003" not in codes(lint_netlist(nl, CMOS018))

    def test_non_bridge_resistors_not_flagged(self):
        nl = base_netlist()
        nl.add(Resistor("Rload", "mid", "tap", 1e3))  # dangling, not bridge
        assert "NET003" not in codes(lint_netlist(nl, CMOS018))


class TestNet004OpenSplice:
    def test_dangling_splice_node(self):
        nl = base_netlist()
        nl.add(Resistor("Ropen", "_open0_M1_gate", "mid", 1e6))
        assert "NET004" in codes(lint_netlist(nl, CMOS018))

    def test_splice_without_resistor(self):
        nl = base_netlist()
        nl.add(Mosfet("M1", MosType.NMOS, "mid", "_open0_M1_gate", "0",
                      1.0, CMOS018))
        nl.add(Mosfet("M2", MosType.NMOS, "mid", "_open0_M1_gate", "0",
                      1.0, CMOS018))
        report = lint_netlist(nl, CMOS018)
        assert any(i.rule_id == "NET004" and "splice resistor" in i.message
                   for i in report.issues)

    def test_with_open_produces_clean_splice(self):
        nl = base_netlist()
        nl.add(Mosfet("M1", MosType.NMOS, "mid", "vdd", "0", 1.0, CMOS018))
        faulty = nl.with_open("M1", "gate", 1e6)
        assert "NET004" not in codes(lint_netlist(faulty, CMOS018))


class TestNet005RailShort:
    def test_hard_short_to_ground(self):
        nl = base_netlist()
        nl.add(Resistor("Rshort", "vdd", "0", 1.0))
        report = lint_netlist(nl, CMOS018)
        assert any(i.rule_id == "NET005" and i.severity is Severity.ERROR
                   for i in report.issues)

    def test_resistive_bridge_is_not_a_short(self):
        nl = base_netlist()
        nl.add(Resistor("Rweak", "vdd", "0", 240e3))
        assert "NET005" not in codes(lint_netlist(nl, CMOS018))

    def test_degenerate_source(self):
        nl = base_netlist()
        nl.add(VoltageSource("Vbad", "mid", "mid", 1.0))
        assert "NET005" in codes(lint_netlist(nl, CMOS018))


class TestNet006ParameterSanity:
    def test_absurd_width(self):
        nl = base_netlist()
        nl.add(Mosfet("M1", MosType.NMOS, "mid", "vdd", "0", 1e4, CMOS018))
        assert "NET006" in codes(lint_netlist(nl, CMOS018))

    def test_mixed_technology(self):
        nl = base_netlist()
        nl.add(Mosfet("M1", MosType.NMOS, "mid", "vdd", "0", 1.0, CMOS013))
        report = lint_netlist(nl, CMOS018)
        assert any(i.rule_id == "NET006" and "technology" in i.message
                   for i in report.issues)
        # Without a reference technology the check cannot apply.
        assert "NET006" not in codes(lint_netlist(nl))

    def test_effectively_open_resistor(self):
        nl = base_netlist()
        nl.add(Resistor("Rhuge", "vdd", "mid", 1e15))
        assert "NET006" in codes(lint_netlist(nl, CMOS018))

    def test_off_chip_capacitance(self):
        nl = base_netlist()
        nl.add(Capacitor("Cbig", "mid", "0", 1e-6))
        assert "NET006" in codes(lint_netlist(nl, CMOS018))

    def test_overdriven_source(self):
        nl = base_netlist()
        nl.add(VoltageSource("Vhot", "mid", "0", 5.0))
        assert "NET006" in codes(lint_netlist(nl, CMOS018))


class TestInjectionGate:
    def test_assert_clean_raises_on_errors(self):
        with pytest.raises(LintError, match="NET001"):
            assert_netlist_clean(demo_broken_netlist(), CMOS018)

    def test_assert_clean_tolerates_warnings(self):
        nl = base_netlist()
        nl.add(Resistor("Rstub", "mid", "stub", 1e3))  # NET002 warning
        report = assert_netlist_clean(nl, CMOS018)
        assert report.warnings and not report.errors

    def test_injection_erc_rejects_broken_base(self):
        """A corrupted base netlist is caught at injection time."""
        cell = SixTCell(CMOS018)
        d = Defect(DefectKind.BRIDGE, BridgeSite.CELL_NODE_RAIL, 5e3,
                   polarity=-1)
        base = cell.standalone_netlist(1.8, 1)
        base.add(Mosfet("Mstray", MosType.NMOS, cell.node("t"),
                        "floating_gate", "0", 1.0, CMOS018))

        class BrokenCell(SixTCell):
            def standalone_netlist(self, *a, **k):
                return base.copy()

        broken = BrokenCell(CMOS018)
        with pytest.raises(LintError):
            inject_bridge_into_cell(broken, 1.8, 1, d)
        # Opt-out for hot loops skips the gate.
        nl = inject_bridge_into_cell(broken, 1.8, 1, d, erc=False)
        assert "Rbridge" in nl

    def test_netlist_lint_method(self):
        report = demo_broken_netlist().lint(CMOS018)
        assert report.exit_code() == 2
