"""Tests for repro.march.element."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.march.element import AddressOrder, MarchElement
from repro.march.ops import R0, R1, W0, W1, Op, OpKind

ops_strategy = st.lists(
    st.builds(Op, st.sampled_from(list(OpKind)), st.sampled_from([0, 1])),
    min_size=1, max_size=6,
).map(tuple)

element_strategy = st.builds(
    MarchElement, st.sampled_from(list(AddressOrder)), ops_strategy)


class TestAddressOrder:
    def test_reversed_involution(self):
        for order in AddressOrder:
            assert order.reversed().reversed() == order

    def test_any_reverses_to_itself(self):
        assert AddressOrder.ANY.reversed() is AddressOrder.ANY

    @pytest.mark.parametrize("sym,expected", [
        ("⇑", AddressOrder.UP), ("^", AddressOrder.UP),
        ("up", AddressOrder.UP), ("⇓", AddressOrder.DOWN),
        ("v", AddressOrder.DOWN), ("*", AddressOrder.ANY),
        ("any", AddressOrder.ANY),
    ])
    def test_parse(self, sym, expected):
        assert AddressOrder.parse(sym) == expected

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            AddressOrder.parse("sideways")


class TestMarchElement:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MarchElement(AddressOrder.UP, ())

    def test_len_is_op_count(self):
        el = MarchElement(AddressOrder.UP, (R0, W1, R1))
        assert len(el) == 3

    def test_reads_writes_partition(self):
        el = MarchElement(AddressOrder.UP, (R0, W1, R1))
        assert el.reads == (R0, R1)
        assert el.writes == (W1,)

    def test_final_write_value(self):
        assert MarchElement(AddressOrder.UP, (R0, W1)).final_write_value() == 1
        assert MarchElement(AddressOrder.UP, (R0,)).final_write_value() is None
        assert MarchElement(AddressOrder.UP,
                            (W1, W0)).final_write_value() == 0

    def test_entry_state(self):
        assert MarchElement(AddressOrder.UP, (R0, W1)).entry_state() == 0
        assert MarchElement(AddressOrder.UP, (W1, R1)).entry_state() is None

    def test_consistency(self):
        good = MarchElement(AddressOrder.UP, (R0, W1, R1, W0, R0))
        bad = MarchElement(AddressOrder.UP, (W1, R0))
        assert good.is_consistent()
        assert not bad.is_consistent()

    def test_reads_before_first_write_not_checked(self):
        el = MarchElement(AddressOrder.UP, (R1, W0))
        assert el.is_consistent()


class TestTransforms:
    @given(element_strategy)
    def test_inverted_data_involution(self, el):
        assert el.inverted_data().inverted_data() == el

    @given(element_strategy)
    def test_inverted_preserves_structure(self, el):
        inv = el.inverted_data()
        assert len(inv) == len(el)
        assert inv.order == el.order
        assert all(a.kind == b.kind for a, b in zip(inv.ops, el.ops))

    @given(element_strategy)
    def test_reversed_order_involution(self, el):
        assert el.reversed_order().reversed_order() == el


class TestNotationRoundtrip:
    @given(element_strategy)
    def test_parse_roundtrip(self, el):
        assert MarchElement.parse(el.notation) == el

    def test_parse_ascii(self):
        el = MarchElement.parse("^(r0, w1)")
        assert el.order == AddressOrder.UP
        assert el.ops == (R0, W1)

    @pytest.mark.parametrize("text", ["(r0)", "^r0", "^()", "?(r0)"])
    def test_parse_invalid(self, text):
        with pytest.raises(ValueError):
            MarchElement.parse(text)
