"""Tests for repro.march.test (MarchTest container)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.march.element import AddressOrder, MarchElement
from repro.march.library import MARCH_CM, MATS_PLUS_PLUS, STANDARD_TESTS, TEST_11N
from repro.march.ops import R0, R1, W0, W1
from repro.march.test import MarchTest


class TestComplexity:
    def test_11n_is_11n(self):
        assert TEST_11N.complexity == 11

    def test_march_cm_is_10n(self):
        assert MARCH_CM.complexity == 10

    def test_matspp_is_6n(self):
        assert MATS_PLUS_PLUS.complexity == 6

    def test_operation_count(self):
        assert TEST_11N.operation_count(1024) == 11 * 1024

    def test_read_write_split(self):
        assert (TEST_11N.read_count() + TEST_11N.write_count()
                == TEST_11N.complexity)


class TestConsistency:
    @pytest.mark.parametrize("name", sorted(STANDARD_TESTS))
    def test_all_library_tests_consistent(self, name):
        assert STANDARD_TESTS[name].is_consistent(), name

    def test_inconsistent_entry_state_detected(self):
        bad = MarchTest("bad", (
            MarchElement(AddressOrder.ANY, (W0,)),
            MarchElement(AddressOrder.UP, (R1,)),   # expects 1, cells hold 0
        ))
        assert not bad.is_consistent()

    def test_uninitialised_read_detected(self):
        bad = MarchTest("bad", (MarchElement(AddressOrder.UP, (R0,)),))
        assert not bad.is_consistent()


class TestTransitions:
    def test_11n_transition_count(self):
        # w0(init); w1; w0; w1; w0 -> 4 transitions after the init write.
        assert TEST_11N.transition_count() == 4

    def test_mats_transitions(self):
        from repro.march.library import MATS
        assert MATS.transition_count() == 1


class TestSerialisation:
    def test_parse_notation(self):
        t = MarchTest.parse("mini", "*(w0); ^(r0,w1); v(r1,w0)")
        assert t.complexity == 5
        assert len(t) == 3
        assert t.is_consistent()

    @pytest.mark.parametrize("name", sorted(STANDARD_TESTS))
    def test_notation_roundtrip_all_library(self, name):
        t = STANDARD_TESTS[name]
        reparsed = MarchTest.parse(t.name, t.notation)
        assert reparsed.elements == t.elements

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MarchTest("empty", ())


class TestInvertedData:
    def test_inverted_data_consistent(self):
        inv = MARCH_CM.with_inverted_data()
        assert inv.is_consistent()
        assert inv.complexity == MARCH_CM.complexity

    def test_inverted_flips_all_values(self):
        inv = TEST_11N.with_inverted_data()
        for el, el_inv in zip(TEST_11N.elements, inv.elements):
            for op, op_inv in zip(el.ops, el_inv.ops):
                assert op_inv.value == 1 - op.value
                assert op_inv.kind == op.kind


class TestElevenNReconstruction:
    def test_contains_papers_bitmap_elements(self):
        """Sections 4.1/4.2 name elements {R0W1}, {R1W0R0}, {R0W1R1}."""
        notations = ["".join(op.notation for op in el.ops)
                     for el in TEST_11N.elements]
        assert "r0w1" in notations
        assert "r1w0r0" in notations
        assert "r0w1r1" in notations

    def test_marches_both_directions(self):
        orders = {el.order for el in TEST_11N.elements}
        assert AddressOrder.UP in orders
        assert AddressOrder.DOWN in orders
