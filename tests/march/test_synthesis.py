"""Tests for repro.march.synthesis."""

import pytest

from repro.faults.coverage import class_coverage
from repro.faults.models import StuckAtFault, TransitionFault
from repro.march.element import AddressOrder
from repro.march.synthesis import (
    MarchSynthesizer,
    candidate_elements,
    classical_universe,
)
from repro.march.validation import is_valid


class TestCandidatePool:
    def test_unknown_state_requires_leading_write(self):
        for el in candidate_elements(None):
            assert el.ops[0].is_write

    def test_known_state_allows_matching_reads(self):
        pool = candidate_elements(0)
        assert any(el.ops[0].is_read and el.ops[0].value == 0
                   for el in pool)
        assert not any(el.ops[0].is_read and el.ops[0].value == 1
                       for el in pool)

    def test_all_internally_consistent(self):
        for state in (None, 0, 1):
            for el in candidate_elements(state):
                assert el.is_consistent(), el.notation

    def test_no_pure_nop_elements(self):
        # e.g. from state 0, the element (w0) changes nothing and reads
        # nothing: useless, must be excluded.
        for el in candidate_elements(0, max_ops=1):
            assert not (len(el) == 1 and el.ops[0].is_write
                        and el.ops[0].value == 0)

    def test_both_orders_present(self):
        orders = {el.order for el in candidate_elements(None)}
        assert orders == {AddressOrder.UP, AddressOrder.DOWN}


class TestSynthesis:
    def test_full_saf_tf_coverage(self):
        synth = MarchSynthesizer(n_cells=6)
        result = synth.synthesise(classical_universe(6, ("SAF", "TF")),
                                  "S1")
        assert result.coverage == 1.0
        assert result.test.is_consistent()
        assert is_valid(result.test)

    def test_synthesised_beats_bound(self):
        """SAF+TF coverage must not need more than MATS++'s 6N."""
        synth = MarchSynthesizer(n_cells=6)
        result = synth.synthesise(classical_universe(6, ("SAF", "TF")))
        assert result.test.complexity <= 6

    def test_four_class_synthesis_matches_simulator(self):
        synth = MarchSynthesizer(n_cells=6)
        universe = classical_universe(6, ("SAF", "TF", "AF", "CFin"))
        result = synth.synthesise(universe, "S4")
        assert result.coverage == 1.0
        # Independent cross-check through the coverage analyser.
        for fc in ("SAF", "TF", "AF", "CFin"):
            assert class_coverage(result.test, fc, 6).coverage == 1.0, fc

    def test_history_accounts_for_detections(self):
        synth = MarchSynthesizer(n_cells=6)
        universe = classical_universe(6, ("SAF",))
        result = synth.synthesise(universe)
        assert sum(n for _, n in result.history) == result.detected

    def test_element_cap_respected(self):
        synth = MarchSynthesizer(n_cells=6, max_elements=2)
        universe = classical_universe(6, ("SAF", "TF", "CFin"))
        result = synth.synthesise(universe)
        assert len(result.test) <= 2

    def test_empty_universe_rejected(self):
        with pytest.raises(ValueError):
            MarchSynthesizer(n_cells=6).synthesise([])

    def test_validation(self):
        with pytest.raises(ValueError):
            MarchSynthesizer(n_cells=1)


class TestMinimise:
    def test_redundant_element_dropped(self):
        from repro.march.test import MarchTest

        synth = MarchSynthesizer(n_cells=6)
        universe = [lambda: StuckAtFault(2, 0), lambda: StuckAtFault(2, 1)]
        padded = MarchTest.parse(
            "padded", "*(w0); ^(r0,w1); ^(r1,w0); ^(r0,w1); *(r1)")
        minimised = synth.minimise(padded, universe)
        assert minimised.complexity < padded.complexity
        assert minimised.is_consistent()
        assert synth._coverage_count(minimised.elements, universe) == 2

    def test_tight_test_untouched(self):
        from repro.march.library import MATS

        synth = MarchSynthesizer(n_cells=6)
        universe = classical_universe(6, ("SAF",))
        minimised = synth.minimise(MATS, universe)
        assert minimised.complexity == MATS.complexity


class TestTargetingDynamicFaults:
    def test_synthesis_against_dynamic_universe(self):
        """The paper's future work: algorithms for soft defects.  The
        synthesiser targets w-r dynamic faults and produces a test with
        read-after-write pairs."""
        from repro.faults.dynamic import make_dynamic_rdf

        factories = []
        for cell in range(6):
            for state in (0, 1):
                factories.append(
                    lambda cell=cell, state=state: make_dynamic_rdf(
                        cell, state))
        synth = MarchSynthesizer(n_cells=6)
        result = synth.synthesise(factories, "Synth-dyn")
        assert result.coverage == 1.0
        # The winning test must contain a write immediately followed by
        # a read somewhere (the sensitising pair).
        has_wr_pair = any(
            a.is_write and b.is_read
            for el in result.test.elements
            for a, b in zip(el.ops, el.ops[1:])
        )
        assert has_wr_pair
