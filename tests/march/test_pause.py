"""Tests for pause (delay) elements and retention testing."""

import pytest

from repro.faults.models import DataRetentionFault
from repro.faults.simulator import FunctionalFaultSimulator
from repro.march.library import MARCH_G, MARCH_G_DEL
from repro.march.pause import PauseElement
from repro.march.sequencer import MarchSequencer
from repro.march.test import MarchTest
from repro.march.validation import is_valid, validate


class TestPauseElement:
    def test_validation(self):
        with pytest.raises(ValueError):
            PauseElement(0)
        with pytest.raises(ValueError):
            PauseElement(-5)

    def test_protocol_is_state_neutral(self):
        p = PauseElement(100)
        assert len(p) == 0
        assert p.entry_state() is None
        assert p.final_write_value() is None
        assert p.is_consistent()
        assert p.reads == () and p.writes == ()

    def test_notation_roundtrip(self):
        p = PauseElement(2000)
        assert p.notation == "Del(2000)"
        assert PauseElement.parse(p.notation) == p

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            PauseElement.parse("Wait(5)")


class TestMarchTestWithPauses:
    def test_parse_mixed_notation(self):
        t = MarchTest.parse("p", "*(w0); ^(r0,w1); Del(100); *(r1)")
        assert isinstance(t.elements[2], PauseElement)
        assert t.complexity == 4          # pauses add no per-cell ops
        assert t.is_consistent()
        assert is_valid(t)

    def test_pause_preserves_state_chain(self):
        # A pause between w1 and r1 must not break consistency.
        t = MarchTest.parse("p", "*(w1); Del(10); *(r1)")
        assert t.is_consistent()
        # ...and a contradiction across a pause is still caught.
        bad = MarchTest.parse("p", "*(w1); Del(10); *(r0)")
        assert not bad.is_consistent()

    def test_only_pauses_invalid(self):
        t = MarchTest("p", (PauseElement(5),))
        codes = {i.code for i in validate(t)}
        assert "no-operations" in codes or "no-reads" in codes

    def test_inverted_data_keeps_pauses(self):
        inv = MARCH_G_DEL.with_inverted_data()
        assert sum(isinstance(el, PauseElement) for el in inv.elements) == 2


class TestSequencerWithPauses:
    def test_cycle_count_includes_pauses(self):
        t = MarchTest.parse("p", "*(w0); Del(100); *(r0)")
        seq = MarchSequencer(8)
        assert seq.cycle_count(t) == 2 * 8 + 100

    def test_pause_creates_cycle_gap(self):
        t = MarchTest.parse("p", "*(w0); Del(100); *(r0)")
        stream = list(MarchSequencer(4).run(t))
        # Last write at cycle 3; first read must start at 4 + 100.
        write_cycles = [c.cycle for c in stream if c.op.is_write]
        read_cycles = [c.cycle for c in stream if c.op.is_read]
        assert max(write_cycles) == 3
        assert min(read_cycles) == 104


class TestRetentionDetection:
    def test_march_g_needs_its_delays(self):
        """The classical DRF result: March G without delay elements
        misses retention faults; with them it detects both decay
        polarities."""
        sim = FunctionalFaultSimulator(8)
        for decay in (0, 1):
            drf = DataRetentionFault(cell=3, decay_value=decay,
                                     retention_cycles=500)
            assert not sim.detects(MARCH_G, drf), decay
            assert sim.detects(MARCH_G_DEL, drf), decay

    def test_pause_shorter_than_retention_still_misses(self):
        sim = FunctionalFaultSimulator(8)
        quick = MarchTest.parse(
            "quick", "*(w0); ^(r0,w1); Del(50); *(r1)")
        drf = DataRetentionFault(cell=3, decay_value=0,
                                 retention_cycles=5000)
        assert not sim.detects(quick, drf)

    def test_pullup_open_retention_story(self):
        """End to end: a VLV-manifested pull-up open renders as a
        retention fault; only the delay test sees it."""
        from repro.circuit.technology import CMOS018
        from repro.defects.behavior import DefectBehaviorModel
        from repro.defects.injection import to_functional_fault
        from repro.defects.models import OpenSite, open_defect
        from repro.stress import production_conditions

        behavior = DefectBehaviorModel(CMOS018)
        conds = production_conditions(CMOS018)
        defect = open_defect(OpenSite.CELL_PULLUP, 3e6, cell=2)
        m = behavior.manifestation(defect, conds["VLV"])
        assert m is not None
        fault = to_functional_fault(m, n_cells=8)
        sim = FunctionalFaultSimulator(8)
        assert sim.detects(MARCH_G_DEL, fault)
