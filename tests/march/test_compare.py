"""Tests for repro.march.compare (efficiency analysis)."""

import pytest

from repro.march.compare import (
    efficiency_frontier,
    render_scores,
    score_tests,
)
from repro.march.library import (
    MARCH_CM,
    MARCH_SS,
    MATS,
    MATS_PLUS_PLUS,
    TEST_11N,
)


@pytest.fixture(scope="module")
def scores():
    return score_tests([MATS, MATS_PLUS_PLUS, MARCH_CM, TEST_11N, MARCH_SS],
                       n_cells=6)


class TestScoring:
    def test_score_bounds(self, scores):
        for s in scores:
            assert 0.0 <= s.score <= 1.0
            assert s.efficiency <= s.score

    def test_stronger_test_scores_higher(self, scores):
        by_name = {s.test_name: s for s in scores}
        assert by_name["March C-"].score > by_name["MATS"].score
        assert by_name["11N"].score > by_name["March C-"].score  # dRDF

    def test_weights_shift_scores(self):
        unweighted = score_tests([MARCH_CM, TEST_11N], ("SAF", "dRDF"),
                                 n_cells=6)
        dyn_heavy = score_tests([MARCH_CM, TEST_11N], ("SAF", "dRDF"),
                                n_cells=6, weights={"dRDF": 10.0})
        gap_u = (unweighted[1].score - unweighted[0].score)
        gap_w = (dyn_heavy[1].score - dyn_heavy[0].score)
        assert gap_w > gap_u  # 11N's dynamic edge counts for more

    def test_validation(self):
        with pytest.raises(ValueError):
            score_tests([], n_cells=6)
        with pytest.raises(ValueError):
            score_tests([MATS], classes=(), n_cells=6)


class TestFrontier:
    def test_frontier_sorted_and_monotone(self, scores):
        frontier = efficiency_frontier(scores)
        ks = [s.complexity for s in frontier]
        cov = [s.score for s in frontier]
        assert ks == sorted(ks)
        assert cov == sorted(cov)

    def test_dominated_tests_excluded(self, scores):
        """March SS (22N) scores no higher than 11N (11N ops) on this
        mix: it must not be on the frontier."""
        frontier = {s.test_name for s in efficiency_frontier(scores)}
        assert "March SS" not in frontier

    def test_papers_test_on_frontier(self, scores):
        """The quantitative vindication of the paper's choice: the 11N
        production test is efficiency-undominated."""
        frontier = {s.test_name for s in efficiency_frontier(scores)}
        assert "11N" in frontier


class TestRendering:
    def test_table_contains_tests_and_classes(self, scores):
        text = render_scores(scores)
        assert "11N" in text and "SAF" in text and "eff" in text
