"""Tests for repro.march.library (published complexity numbers)."""

import pytest

from repro.march import library
from repro.march.validation import is_valid

#: Published kN complexities of the classical tests.
EXPECTED_COMPLEXITY = {
    "MATS": 4,
    "MATS+": 5,
    "MATS++": 6,
    "March X": 6,
    "March Y": 8,
    "March C-": 10,
    "March C+": 14,
    "March A": 15,
    "March B": 17,
    "March U": 13,
    "March LR": 14,
    "March SR": 14,
    "March SS": 22,
    "PMOVI": 13,
    "11N": 11,
    "March G": 23,
    "March G+Del": 23,
    "March RAW": 26,
}


class TestLibraryComplexities:
    @pytest.mark.parametrize("name,expected",
                             sorted(EXPECTED_COMPLEXITY.items()))
    def test_published_complexity(self, name, expected):
        assert library.STANDARD_TESTS[name].complexity == expected

    def test_registry_complete(self):
        assert set(library.STANDARD_TESTS) == set(EXPECTED_COMPLEXITY)


class TestLibraryValidity:
    @pytest.mark.parametrize("name", sorted(EXPECTED_COMPLEXITY))
    def test_all_tests_valid(self, name):
        assert is_valid(library.STANDARD_TESTS[name]), name


class TestGetTest:
    def test_lookup(self):
        assert library.get_test("March C-") is library.MARCH_CM

    def test_unknown_raises_with_choices(self):
        with pytest.raises(KeyError, match="available"):
            library.get_test("March Z")


class TestMoviSchedule:
    def test_one_run_per_address_bit(self):
        assert library.movi_schedule(13) == list(range(13))

    def test_invalid(self):
        with pytest.raises(ValueError):
            library.movi_schedule(0)
