"""Tests for repro.march.sequencer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.march.element import AddressOrder
from repro.march.library import MARCH_CM, MATS_PLUS_PLUS, TEST_11N
from repro.march.sequencer import (
    DataBackground,
    MarchSequencer,
    background_bit,
    bit_rotation_map,
    movi_runs,
)


class TestCycleStream:
    def test_cycle_count(self):
        seq = MarchSequencer(16)
        stream = list(seq.run(TEST_11N))
        assert len(stream) == seq.cycle_count(TEST_11N) == 11 * 16

    def test_cycles_consecutive_from_zero(self):
        stream = list(MarchSequencer(8).run(MATS_PLUS_PLUS))
        assert [c.cycle for c in stream] == list(range(len(stream)))

    def test_up_element_ascends(self):
        seq = MarchSequencer(4)
        stream = [c for c in seq.run(MATS_PLUS_PLUS) if c.element_index == 1]
        addresses = [c.address for c in stream]
        # Element 1 is ⇑(r0,w1): two ops per address, ascending.
        assert addresses == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_down_element_descends(self):
        seq = MarchSequencer(4)
        stream = [c for c in seq.run(MATS_PLUS_PLUS) if c.element_index == 2]
        assert stream[0].address == 3
        assert stream[-1].address == 0

    def test_every_address_visited_per_element(self):
        seq = MarchSequencer(8)
        for ei in range(len(TEST_11N.elements)):
            addresses = {c.address for c in seq.run(TEST_11N)
                         if c.element_index == ei}
            assert addresses == set(range(8))

    def test_op_indices_within_element(self):
        stream = list(MarchSequencer(2).run(TEST_11N))
        for c in stream:
            assert 0 <= c.op_index < len(TEST_11N.elements[c.element_index])

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            MarchSequencer(0)
        with pytest.raises(ValueError):
            MarchSequencer(8, columns=0)


class TestDataBackground:
    def test_solid_is_zero(self):
        assert all(background_bit(DataBackground.SOLID, a, 4) == 0
                   for a in range(16))

    def test_checkerboard(self):
        assert background_bit(DataBackground.CHECKERBOARD, 0, 4) == 0
        assert background_bit(DataBackground.CHECKERBOARD, 1, 4) == 1
        assert background_bit(DataBackground.CHECKERBOARD, 4, 4) == 1
        assert background_bit(DataBackground.CHECKERBOARD, 5, 4) == 0

    def test_row_stripes(self):
        assert background_bit(DataBackground.ROW_STRIPES, 3, 4) == 0
        assert background_bit(DataBackground.ROW_STRIPES, 4, 4) == 1

    def test_column_stripes(self):
        assert background_bit(DataBackground.COLUMN_STRIPES, 0, 4) == 0
        assert background_bit(DataBackground.COLUMN_STRIPES, 1, 4) == 1

    def test_values_resolve_against_background(self):
        seq = MarchSequencer(4, columns=2)
        stream = list(seq.run(MATS_PLUS_PLUS, DataBackground.CHECKERBOARD))
        for c in stream:
            bg = background_bit(DataBackground.CHECKERBOARD, c.address, 2)
            assert c.value == c.op.value ^ bg


class TestBitRotation:
    @given(st.integers(min_value=1, max_value=10),
           st.integers(min_value=0, max_value=9))
    @settings(max_examples=40)
    def test_rotation_is_bijection(self, bits, fast_bit):
        if fast_bit >= bits:
            fast_bit = fast_bit % bits
        mapper = bit_rotation_map(bits, fast_bit)
        n = 1 << bits
        image = {mapper(i) for i in range(n)}
        assert image == set(range(n))

    def test_fast_bit_toggles_every_step(self):
        mapper = bit_rotation_map(4, 2)
        seq = [mapper(i) for i in range(16)]
        # Counter bit 0 lands on address bit 2: address bit 2 toggles on
        # every counter increment -- the MOVI sensitisation.
        for i in range(15):
            assert ((seq[i] ^ seq[i + 1]) >> 2) & 1 == 1

    def test_fast_bit_zero_is_identity(self):
        mapper = bit_rotation_map(5, 0)
        assert [mapper(i) for i in range(32)] == list(range(32))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            bit_rotation_map(4, 4)
        with pytest.raises(ValueError):
            bit_rotation_map(0, 0)


class TestMoviRuns:
    def test_run_per_bit(self):
        runs = list(movi_runs(MARCH_CM, address_bits=3))
        assert [fb for fb, _ in runs] == [0, 1, 2]

    def test_each_run_covers_all_addresses(self):
        for _, stream in movi_runs(MATS_PLUS_PLUS, address_bits=3):
            cycles = list(stream)
            assert {c.address for c in cycles} == set(range(8))
            assert len(cycles) == 6 * 8
