"""Tests for repro.march.validation."""

import pytest

from repro.march.element import AddressOrder, MarchElement
from repro.march.library import MARCH_CM, MATS
from repro.march.ops import R0, R1, W0, W1
from repro.march.test import MarchTest
from repro.march.validation import Severity, assert_valid, is_valid, validate


def make(notation):
    return MarchTest.parse("t", notation)


class TestErrors:
    def test_clean_test_no_errors(self):
        assert validate(MARCH_CM) == [
            i for i in validate(MARCH_CM) if i.severity is Severity.WARNING
        ]
        assert is_valid(MARCH_CM)

    def test_uninitialised_read(self):
        issues = validate(make("^(r0,w1)"))
        assert any(i.code == "uninitialised-read" for i in issues)
        assert not is_valid(make("^(r0,w1)"))

    def test_entry_state_mismatch(self):
        t = make("*(w0); ^(r1,w0)")
        codes = [i.code for i in validate(t)]
        assert "entry-state-mismatch" in codes

    def test_element_inconsistent(self):
        t = make("*(w0); ^(r0,w1,r0)")
        codes = [i.code for i in validate(t)]
        assert "element-inconsistent" in codes

    def test_no_reads(self):
        t = make("*(w0); ^(w1)")
        codes = [i.code for i in validate(t)]
        assert "no-reads" in codes
        assert not is_valid(t)

    def test_assert_valid_raises_with_details(self):
        with pytest.raises(ValueError, match="uninitialised-read"):
            assert_valid(make("^(r0)"))

    def test_assert_valid_passes_clean(self):
        assert_valid(MARCH_CM)


class TestWarnings:
    def test_single_polarity_reads(self):
        t = make("*(w0); ^(r0)")
        codes = [i.code for i in validate(t)]
        assert "no-read1" in codes
        # Warnings do not invalidate.
        assert is_valid(t)

    def test_single_direction(self):
        t = make("*(w0); ^(r0,w1); ^(r1)")
        codes = [i.code for i in validate(t)]
        assert "single-direction" in codes

    def test_weak_transitions(self):
        codes = [i.code for i in validate(MATS)]
        assert "weak-transitions" in codes

    def test_march_cm_warning_free(self):
        assert validate(MARCH_CM) == []


class TestEmptyTest:
    def test_zero_element_test_reports_error(self):
        """A test with no elements must error, never validate cleanly.

        The MarchTest constructor forbids empty element lists, but
        hand-built or deserialised objects can bypass it; the validator
        must not silently pass them.
        """
        t = object.__new__(MarchTest)
        object.__setattr__(t, "name", "empty")
        object.__setattr__(t, "elements", ())
        object.__setattr__(t, "description", "")
        issues = validate(t)
        assert issues
        assert any(i.severity is Severity.ERROR for i in issues)
        assert not is_valid(t)
        with pytest.raises(ValueError):
            assert_valid(t)


class TestIssueRendering:
    def test_str_contains_code_and_severity(self):
        issue = validate(make("^(r0)"))[0]
        text = str(issue)
        assert "error" in text
        assert issue.code in text
