"""Tests for repro.march.ops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.march.ops import R0, R1, W0, W1, Op, OpKind


class TestOpBasics:
    def test_singletons(self):
        assert R0.is_read and not R0.is_write
        assert W1.is_write and not W1.is_read
        assert R1.value == 1
        assert W0.value == 0

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError):
            Op(OpKind.READ, 2)

    def test_inverted(self):
        assert R0.inverted() == R1
        assert W1.inverted() == W0
        assert R0.inverted().inverted() == R0

    def test_notation(self):
        assert R0.notation == "r0"
        assert W1.notation == "w1"
        assert str(R1) == "r1"

    def test_equality_and_hash(self):
        assert Op(OpKind.READ, 0) == R0
        assert len({R0, R1, W0, W1}) == 4


class TestParse:
    @pytest.mark.parametrize("text,expected", [
        ("r0", R0), ("r1", R1), ("w0", W0), ("w1", W1),
        ("R0", R0), (" W1 ", W1),
    ])
    def test_parse_valid(self, text, expected):
        assert Op.parse(text) == expected

    @pytest.mark.parametrize("text", ["", "x0", "r2", "rw", "r01", "read0"])
    def test_parse_invalid(self, text):
        with pytest.raises(ValueError):
            Op.parse(text)

    @given(st.sampled_from(["r", "w"]), st.sampled_from([0, 1]))
    def test_parse_roundtrip(self, kind, value):
        op = Op(OpKind(kind), value)
        assert Op.parse(op.notation) == op
