"""Tests for repro.obs.events / repro.obs.bus: catalog, journal I/O."""

import pytest

from repro.obs import (
    EVENT_CATALOG,
    EventBus,
    JOURNAL_VERSION,
    JournalError,
    ObsEvent,
    read_journal,
    read_journal_text,
    validate_event,
)


class TestCatalog:
    def test_every_event_validates_with_required_keys(self):
        for name, required in EVENT_CATALOG.items():
            validate_event(name, {k: 0 for k in required})

    def test_unknown_name_rejected(self):
        with pytest.raises(JournalError, match="unknown event name"):
            validate_event("no.such.event", {})

    def test_missing_required_key_rejected(self):
        with pytest.raises(JournalError, match="'plan_units'"):
            validate_event("run.start", {})

    def test_extra_keys_allowed(self):
        """The catalog pins a floor, not a ceiling."""
        validate_event("unit.done", {
            "unit": "u", "source": "executed", "detected": 1,
            "total": 2, "errors": 0, "condition": "VLV"})


class TestObsEvent:
    def test_line_round_trip(self):
        event = ObsEvent(3, "cache.hit", {"unit": "bridge:1e3:VLV"})
        assert ObsEvent.from_line(event.to_line()) == event

    def test_line_is_canonical_json(self):
        line = ObsEvent(1, "run.start", {"plan_units": 4}).to_line()
        assert line == '{"data":{"plan_units":4},"event":"run.start","seq":1}'

    @pytest.mark.parametrize("line,match", [
        ("not json", "invalid JSON"),
        ("[1,2]", "not an object"),
        ('{"event":"run.start","data":{"plan_units":1}}', "'seq'"),
        ('{"seq":0,"event":"run.start","data":{"plan_units":1}}',
         "positive int"),
        ('{"seq":1,"event":"run.start","data":[]}', "must be an object"),
        ('{"seq":1,"event":"nope","data":{}}', "unknown event name"),
    ])
    def test_bad_lines_rejected(self, line, match):
        with pytest.raises(JournalError, match=match):
            ObsEvent.from_line(line)


class TestEventBus:
    def test_emit_assigns_increasing_seq(self):
        bus = EventBus()
        first = bus.emit("run.start", plan_units=2)
        second = bus.emit("cache.hit", unit="u")
        assert (first.seq, second.seq) == (1, 2)
        assert len(bus) == 2

    def test_emit_validates(self):
        bus = EventBus()
        with pytest.raises(JournalError):
            # repro: lint-disable=OBS002 -- the missing key IS the test:
            # emit must reject a payload below the catalog floor.
            bus.emit("run.start")  # missing plan_units
        assert len(bus) == 0

    def test_emit_rejects_unserialisable_payload_at_call_site(self):
        bus = EventBus()
        with pytest.raises(TypeError):
            bus.emit("cache.hit", unit=object())
        assert len(bus) == 0

    def test_set_meta_first_writer_wins(self):
        bus = EventBus(meta={"tool": "shmoo"})
        bus.set_meta({"tool": "campaign"})
        assert bus.meta == {"tool": "shmoo"}
        empty = EventBus()
        empty.set_meta({"tool": "campaign"})
        assert empty.meta == {"tool": "campaign"}

    def test_render_read_round_trip(self):
        bus = EventBus(meta={"seed": 11})
        bus.emit("run.start", plan_units=1)
        bus.emit("run.done", executed_units=1, resumed_units=0,
                 cached_units=0, quarantined_sites=0)
        meta, events = read_journal_text(bus.render())
        assert meta == {"seed": 11}
        assert events == bus.events

    def test_flush_writes_readable_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        bus = EventBus(path, meta={"seed": 11})
        bus.emit("run.start", plan_units=1)
        bus.flush()
        meta, events = read_journal(path)
        assert meta == {"seed": 11}
        assert [e.name for e in events] == ["run.start"]

    def test_in_memory_flush_is_noop(self):
        EventBus().flush()  # must not raise


class TestReadJournal:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no run journal"):
            read_journal(tmp_path / "absent.jsonl")

    @pytest.mark.parametrize("text,match", [
        ("", "empty"),
        ("not json\n", "invalid JSON header"),
        ('{"schema":"wrong","version":1,"meta":{}}\n', "schema mismatch"),
        ('{"schema":"repro.run-journal","version":%d,"meta":{}}\n'
         % (JOURNAL_VERSION + 1), "unsupported journal version"),
        ('{"schema":"repro.run-journal","version":1,"meta":[]}\n',
         "'meta' is not an object"),
    ])
    def test_bad_headers_rejected(self, text, match):
        with pytest.raises(JournalError, match=match):
            read_journal_text(text)

    def test_non_increasing_seq_rejected(self):
        header = '{"schema":"repro.run-journal","version":1,"meta":{}}'
        line = ObsEvent(1, "cache.hit", {"unit": "u"}).to_line()
        with pytest.raises(JournalError, match="line 3.*not greater"):
            read_journal_text("\n".join([header, line, line]))

    def test_bad_event_line_names_line_number(self):
        header = '{"schema":"repro.run-journal","version":1,"meta":{}}'
        with pytest.raises(JournalError, match="line 2"):
            read_journal_text(header + "\ngarbage\n")
