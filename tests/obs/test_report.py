"""Tests for repro.obs.report: folding events into run summaries."""

import json

from repro.obs import (
    EventBus,
    build_report,
    render_json,
    render_text,
)


def synthetic_bus():
    """A hand-built event stream exercising every report section."""
    bus = EventBus(meta={"seed": 11})
    bus.emit("run.start", plan_units=3)
    bus.emit("cache.discard_corrupt", path="/c.json",
             error="CacheCorruptError: bad checksum")
    bus.emit("checkpoint.resume", completed_units=1,
             recovered_from_temp=True)
    bus.emit("unit.resumed", unit="bridge:1e3:VLV")
    bus.emit("unit.done", unit="bridge:1e3:VLV", source="checkpoint",
             detected=5, total=10, errors=0, condition="VLV")
    bus.emit("cache.hit", unit="bridge:1e3:Vmax")
    bus.emit("unit.done", unit="bridge:1e3:Vmax", source="cache",
             detected=6, total=10, errors=0, condition="Vmax")
    bus.emit("unit.start", unit="bridge:2e3:VLV", kind="bridge",
             resistance=2e3, condition="VLV")
    bus.emit("cache.miss", unit="bridge:2e3:VLV")
    bus.emit("unit.retry", unit="bridge:2e3:VLV",
             error="site 3: RuntimeError: boom")
    bus.emit("unit.retry", unit="bridge:2e3:VLV",
             error="site 3: RuntimeError: boom again")
    bus.emit("unit.quarantine", unit="bridge:2e3:VLV", site_index=3,
             attempts=2, error="RuntimeError: boom again")
    bus.emit("unit.done", unit="bridge:2e3:VLV", source="executed",
             detected=4, total=10, errors=1, condition="VLV")
    bus.emit("frontier.group", kind="bridge", condition="VLV",
             sites=10, cached=False)
    bus.emit("frontier.demote", kind="bridge", condition="VLV",
             site_index=7, reason="lying-model", stage="crosscheck")
    bus.emit("checkpoint.save", completed_units=3)
    bus.emit("database.discard_corrupt_tmp", path="/db.json.tmp",
             error="invalid/truncated JSON")
    bus.emit("run.done", executed_units=1, resumed_units=1,
             cached_units=1, quarantined_sites=1)
    return bus


class TestBuildReport:
    def test_totals_and_sections(self):
        bus = synthetic_bus()
        report = build_report(bus.meta, bus.events)
        assert report["schema"] == "repro.run-report"
        assert report["version"] == 1
        assert report["meta"] == {"seed": 11}
        assert report["totals"] == {
            "events": 18, "plan_units": 3, "executed_units": 1,
            "resumed_units": 1, "cached_units": 1, "quarantined_sites": 1}
        assert report["sources"] == {
            "cache": 1, "checkpoint": 1, "executed": 1}
        assert report["conditions"]["VLV"] == {
            "units": 2, "detected": 9, "total": 20, "errors": 1}
        assert report["cache"]["hits"] == 1
        assert report["cache"]["misses"] == 1
        assert report["cache"]["hit_rate"] == 0.5
        assert report["cache"]["discarded_corrupt"][0]["path"] == "/c.json"
        assert report["retries"]["attempts"] == 2
        assert report["retries"]["by_unit"] == {"bridge:2e3:VLV": 2}
        assert report["quarantines"][0]["site_index"] == 3
        assert report["frontier"]["demotions"][0]["reason"] == "lying-model"
        assert report["checkpoints"] == {"saves": 1, "resumes": 1}
        assert report["database"]["discarded_corrupt_tmp"][0][
            "path"] == "/db.json.tmp"
        assert report["shmoo"] is None

    def test_empty_journal_reports_cleanly(self):
        report = build_report({}, [])
        assert report["totals"] == {"events": 0}
        assert report["cache"]["hit_rate"] is None
        assert report["conditions"] == {}

    def test_pool_section_clean_run(self):
        report = build_report({}, [])
        assert report["pool"] == {
            "worker_losses": 0, "deadline_losses": 0, "rebuilds": 0,
            "redispatched_units": 0, "degraded_units": 0,
            "degraded": False, "poison_units": []}

    def test_pool_section_folds_supervision_events(self):
        bus = EventBus()
        bus.emit("pool.worker_lost", unit="bridge:1e3:VLV", units=4,
                 cause="worker-lost")
        bus.emit("pool.redispatch", unit="bridge:1e3:VLV", units=4,
                 attempt=1)
        bus.emit("pool.rebuild", rebuilds=1, budget=8)
        bus.emit("pool.worker_lost", unit="bridge:2e3:VLV", units=1,
                 cause="chunk-deadline")
        bus.emit("pool.redispatch", unit="bridge:2e3:VLV", units=1,
                 attempt=2)
        bus.emit("pool.poison_unit", unit="bridge:2e3:VLV", attempts=4,
                 error="InjectedCrash: boom")
        bus.emit("pool.degrade_serial", units=3, rebuilds=1)
        report = build_report({}, bus.events)
        assert report["pool"]["worker_losses"] == 2
        assert report["pool"]["deadline_losses"] == 1
        assert report["pool"]["rebuilds"] == 1
        assert report["pool"]["redispatched_units"] == 5
        assert report["pool"]["degraded"] is True
        assert report["pool"]["degraded_units"] == 3
        assert report["pool"]["poison_units"][0]["unit"] == (
            "bridge:2e3:VLV")

    def test_shmoo_section(self):
        bus = EventBus()
        bus.emit("shmoo.start", strategy="boundary", voltages=4, periods=6)
        bus.emit("shmoo.row", row=0, vdd=0.8, first_pass=3)
        bus.emit("shmoo.row", row=1, vdd=0.9, first_pass=None)
        bus.emit("shmoo.fallback")
        bus.emit("shmoo.done", tester_invocations=17)
        report = build_report({}, bus.events)
        assert report["shmoo"] == {
            "strategy": "boundary", "voltages": 4, "periods": 6,
            "rows": 2, "fallbacks": 1, "tester_invocations": 17}

    def test_service_section_absent_without_service_events(self):
        assert build_report({}, [])["service"] is None

    def test_service_section_folds_traffic(self):
        bus = EventBus()
        bus.emit("service.request", method="POST", path="/v1/estimate",
                 status=200, queries=3, cached=False)
        bus.emit("service.cache_hit", key="a" * 64)
        bus.emit("service.request", method="POST", path="/v1/estimate",
                 status=200, queries=3, cached=True)
        bus.emit("service.request", method="POST", path="/v1/estimate",
                 status=400, queries=0, cached=False)
        bus.emit("service.reload", outcome="rejected", etag="e" * 64,
                 error="corrupt")
        bus.emit("service.request", method="POST", path="/v1/reload",
                 status=409, queries=0, cached=False)
        report = build_report({}, bus.events)
        assert report["service"] == {
            "requests": 4, "queries": 6, "cached": 1,
            "by_status": {"200": 2, "400": 1, "409": 1},
            "cache_hits": 1,
            "reloads": [{"outcome": "rejected", "etag": "e" * 64,
                         "error": "corrupt"}]}

    def test_service_section_renders_in_text(self):
        bus = EventBus()
        bus.emit("service.request", method="POST", path="/v1/estimate",
                 status=200, queries=1, cached=False)
        bus.emit("service.reload", outcome="unchanged", etag="e" * 64)
        text = render_text(build_report({}, bus.events))
        assert "Service: requests=1" in text
        assert "unchanged: etag=eeeeeeeeeeee" in text


class TestRendering:
    def test_text_always_prints_forensics_sections(self):
        """check.sh greps these headers; they must render when clean."""
        text = render_text(build_report({}, []))
        assert "Quarantines:\n  (none)" in text
        assert "Frontier demotions:\n  (none)" in text
        assert "Corrupt cache discards:\n  (none)" in text
        assert "Poison units:\n  (none)" in text
        assert "Pool supervision: worker_losses=0" in text
        assert "DEGRADED-SERIAL" not in text

    def test_text_renders_pool_supervision(self):
        bus = EventBus()
        bus.emit("pool.worker_lost", unit="u", units=1,
                 cause="chunk-deadline")
        bus.emit("pool.poison_unit", unit="u", attempts=4,
                 error="InjectedCrash: boom")
        bus.emit("pool.degrade_serial", units=2, rebuilds=0)
        text = render_text(build_report({}, bus.events))
        assert "worker_losses=1 (deadline=1)" in text
        assert "DEGRADED-SERIAL units=2" in text
        assert "InjectedCrash: boom" in text

    def test_text_renders_populated_tables(self):
        bus = synthetic_bus()
        text = render_text(build_report(bus.meta, bus.events))
        assert "lying-model" in text
        assert "crosscheck" in text
        assert "bridge:2e3:VLV" in text
        assert "hit_rate=50.0%" in text
        assert "/db.json.tmp" in text
        assert "(none)" not in text.split("Quarantines:")[1].split(
            "\n\n")[0]

    def test_json_is_canonical_and_parseable(self):
        bus = synthetic_bus()
        report = build_report(bus.meta, bus.events)
        doc = json.loads(render_json(report))
        assert doc == json.loads(render_json(report))
        assert doc["schema"] == "repro.run-report"

    def test_report_is_pure_function_of_journal(self):
        bus = synthetic_bus()
        a = render_json(build_report(bus.meta, bus.events))
        b = render_json(build_report(bus.meta, bus.events))
        assert a == b
