"""Integration tests: the run journal through the campaign runner.

The acceptance claims of the observability layer, end to end:

* journal off (the default) means **zero** event-bus invocations, not
  "few" -- asserted with a monkeypatched emit and a counting wrapper;
* a journal is a pure function of what the campaign computed: a
  4-worker run writes bytes identical to a serial run;
* nothing is swallowed -- every quarantine, retry, corrupt-cache
  discard and frontier demotion appears as an event, and
  ``build_report`` reproduces the runner's own statistics from the
  journal alone.
"""

import dataclasses
import json

import pytest

from repro.circuit.technology import CMOS018
from repro.defects.behavior import (
    DefectBehaviorModel,
    ResistanceFrontier,
)
from repro.defects.models import DefectKind
from repro.ifa.flow import IfaCampaign
from repro.march.library import TEST_11N
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import Sram
from repro.obs import EventBus, build_report, read_journal
from repro.perf.counting import CountingEventBus
from repro.perf.frontier import FrontierPolicy
from repro.runner.campaign import CampaignRunner, SweepSpec
from repro.runner.chaos import (
    ChaosBehaviorModel,
    FaultInjector,
    InjectedCrash,
)
from repro.runner.retry import RetryPolicy
from repro.stress import production_conditions
from repro.tester.ate import VirtualTester
from repro.tester.shmoo import ShmooRunner

GEOM = MemoryGeometry(16, 2, 4)
N_SITES = 40
SEED = 11


def make_campaign(injector=None):
    campaign = IfaCampaign(GEOM, CMOS018, n_sites=N_SITES, seed=SEED)
    if injector is not None:
        campaign.behavior = ChaosBehaviorModel(campaign.behavior, injector)
    return campaign


def two_conditions():
    conds = production_conditions(CMOS018)
    return (conds["VLV"], conds["Vmax"])


def bridge_spec():
    return SweepSpec.of(DefectKind.BRIDGE, (1e3, 10e3), two_conditions())


def records_bytes(records):
    return json.dumps([dataclasses.asdict(r) for r in records],
                      sort_keys=True).encode()


def names(events):
    return [e.name for e in events]


class TestJournalOnDisk:
    def test_journal_written_and_schema_valid(self, tmp_path):
        path = tmp_path / "run.jsonl"
        result = CampaignRunner(make_campaign(), journal=path).run(
            [bridge_spec()])
        meta, events = read_journal(path)  # validates every line
        assert names(events)[0] == "run.start"
        assert names(events)[-1] == "run.done"
        done = events[-1].data
        assert done["executed_units"] == result.executed_units == 4
        starts = [e for e in events if e.name == "unit.start"]
        dones = [e for e in events if e.name == "unit.done"]
        assert len(starts) == len(dones) == 4
        assert all(d.data["source"] == "executed" for d in dones)
        # Determinism contract: no execution knobs in the header.
        assert "workers" not in meta

    def test_metrics_snapshot_on_result(self, tmp_path):
        result = CampaignRunner(
            make_campaign(), journal=tmp_path / "run.jsonl").run(
            [bridge_spec()])
        assert result.metrics is not None
        assert result.metrics["counters"]["units.executed"] == 4
        assert "timers" not in result.metrics  # deterministic snapshot

    def test_no_journal_means_no_metrics(self):
        result = CampaignRunner(make_campaign()).run([bridge_spec()])
        assert result.metrics is None


class TestZeroOverheadOff:
    def test_journal_off_zero_bus_invocations(self, monkeypatch):
        """Off by default is *zero* emit calls, monkeypatch-counted."""
        calls = []
        original = EventBus.emit

        def counting_emit(self, name, **data):
            calls.append(name)
            return original(self, name, **data)

        monkeypatch.setattr(EventBus, "emit", counting_emit)
        monkeypatch.setattr(
            EventBus, "__init__",
            lambda self, *a, **k: calls.append("__init__"))
        result = CampaignRunner(make_campaign()).run([bridge_spec()])
        assert calls == []
        assert result.executed_units == 4

    def test_counting_bus_sees_every_event(self, tmp_path):
        """A CountingEventBus passed as the journal counts each emit."""
        bus = CountingEventBus(EventBus(tmp_path / "run.jsonl"))
        CampaignRunner(make_campaign(), journal=bus).run([bridge_spec()])
        assert bus.calls == len(bus.inner.events) > 0

    def test_journal_off_records_byte_identical(self, tmp_path):
        plain = CampaignRunner(make_campaign()).run([bridge_spec()])
        journalled = CampaignRunner(
            make_campaign(), journal=tmp_path / "run.jsonl").run(
            [bridge_spec()])
        assert records_bytes(plain.records) == records_bytes(
            journalled.records)


class TestWorkerDeterminism:
    def test_4_worker_journal_byte_identical_to_serial(self, tmp_path):
        serial_path = tmp_path / "serial.jsonl"
        pooled_path = tmp_path / "pooled.jsonl"
        CampaignRunner(make_campaign(), journal=serial_path).run(
            [bridge_spec()])
        CampaignRunner(make_campaign(), workers=4,
                       journal=pooled_path).run([bridge_spec()])
        assert serial_path.read_bytes() == pooled_path.read_bytes()


class TestResume:
    def test_resume_emits_checkpoint_and_resumed_units(self, tmp_path):
        ck = tmp_path / "ck.json"
        inj = FaultInjector(crash_positions={"behavior.evaluate": {90}})
        with pytest.raises(InjectedCrash):
            CampaignRunner(make_campaign(inj),
                           checkpoint_path=ck).run([bridge_spec()])
        path = tmp_path / "resume.jsonl"
        result = CampaignRunner(make_campaign(), checkpoint_path=ck,
                                journal=path).run([bridge_spec()])
        _, events = read_journal(path)
        (resume,) = [e for e in events if e.name == "checkpoint.resume"]
        assert resume.data["completed_units"] == result.resumed_units == 2
        assert resume.data["recovered_from_temp"] is False
        resumed = [e for e in events if e.name == "unit.resumed"]
        assert len(resumed) == 2
        restored = [e for e in events if e.name == "unit.done"
                    and e.data["source"] == "checkpoint"]
        assert len(restored) == 2
        saves = [e for e in events if e.name == "checkpoint.save"]
        assert saves and saves[-1].data["completed_units"] == 4


class TestChaosCompleteness:
    def test_every_quarantine_is_journalled(self, tmp_path):
        """Chaos run: each ledger entry has its event chain."""
        inj = FaultInjector(positions={"behavior.evaluate": {0, 41, 42}})
        path = tmp_path / "chaos.jsonl"
        result = CampaignRunner(
            make_campaign(inj), journal=path,
            retry=RetryPolicy(max_attempts=1, base_delay=0.0),
        ).run([bridge_spec()])
        assert result.quarantine, "chaos should have quarantined sites"
        _, events = read_journal(path)
        quarantined = [e for e in events if e.name == "unit.quarantine"]
        assert len(quarantined) == len(result.quarantine)
        for entry, event in zip(result.quarantine, quarantined):
            assert event.data["unit"] == entry["unit_id"]
            assert event.data["site_index"] == entry["site_index"]
            assert event.data["error"] == entry["error"]
        # ... and each quarantining unit still completed, with errors.
        dones = {e.data["unit"]: e.data for e in events
                 if e.name == "unit.done"}
        for entry in result.quarantine:
            assert dones[entry["unit_id"]]["errors"] > 0

    def test_retry_events_match_runner_stats(self, tmp_path):
        """Transient faults (retry succeeds): journalled, not dropped."""
        inj = FaultInjector(positions={"behavior.evaluate": {0, 50}})
        path = tmp_path / "retry.jsonl"
        result = CampaignRunner(
            make_campaign(inj), journal=path,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0),
        ).run([bridge_spec()])
        assert result.retry_stats.retries == 2
        assert not result.quarantine
        meta, events = read_journal(path)
        report = build_report(meta, events)
        assert report["retries"]["attempts"] == 2
        assert report["quarantines"] == []


class TestCacheEvents:
    def test_hits_misses_and_report_hit_rate(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        spec = bridge_spec()
        cold_journal = tmp_path / "cold.jsonl"
        CampaignRunner(make_campaign(), cache=cache_path,
                       journal=cold_journal).run([spec])
        _, cold_events = read_journal(cold_journal)
        assert len([e for e in cold_events
                    if e.name == "cache.miss"]) == 4
        warm_journal = tmp_path / "warm.jsonl"
        CampaignRunner(make_campaign(), cache=cache_path,
                       journal=warm_journal).run([spec])
        meta, warm_events = read_journal(warm_journal)
        hits = [e for e in warm_events if e.name == "cache.hit"]
        assert len(hits) == 4
        report = build_report(meta, warm_events)
        assert report["cache"]["hit_rate"] == 1.0
        assert report["sources"] == {"cache": 4}

    def test_corrupt_cache_discard_event(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("garbage")
        path = tmp_path / "run.jsonl"
        CampaignRunner(make_campaign(), cache=cache_path,
                       journal=path).run([bridge_spec()])
        _, events = read_journal(path)
        (discard,) = [e for e in events
                      if e.name == "cache.discard_corrupt"]
        assert discard.data["path"] == str(cache_path)
        assert "JSON" in discard.data["error"]


class LyingFrontierModel:
    """Declares every site detected at every R (a lie, crosschecked)."""

    def __init__(self, inner):
        self._inner = inner

    def fails_condition(self, defect, condition):
        return self._inner.fails_condition(defect, condition)

    def resistance_frontier(self, defect, condition):
        return ResistanceFrontier("detected_below", lambda r: True)


class TestFrontierEvents:
    def test_groups_and_lying_model_demotions(self, tmp_path):
        campaign = make_campaign()
        campaign.behavior = LyingFrontierModel(campaign.behavior)
        path = tmp_path / "frontier.jsonl"
        result = CampaignRunner(
            campaign, strategy="frontier", journal=path,
            frontier_policy=FrontierPolicy(crosscheck_fraction=1.0),
        ).run([bridge_spec()])
        assert result.frontier_stats["demoted_sites"] > 0
        meta, events = read_journal(path)
        groups = [e for e in events if e.name == "frontier.group"]
        assert groups and all(g.data["sites"] > 0 for g in groups)
        demotions = [e for e in events if e.name == "frontier.demote"]
        assert demotions
        assert {d.data["reason"] for d in demotions} == {"lying-model"}
        assert all(d.data["stage"] == "crosscheck" for d in demotions)
        report = build_report(meta, events)
        assert len(report["frontier"]["demotions"]) == len(demotions)


class TestShmooJournal:
    def test_rows_and_done(self):
        tester = VirtualTester(DefectBehaviorModel(CMOS018))
        runner = ShmooRunner(tester, TEST_11N)
        sram = Sram(MemoryGeometry(8, 2, 4), CMOS018)
        voltages = [0.8, 1.2, 1.8]
        periods = [5e-9, 20e-9, 60e-9, 120e-9]
        bus = EventBus()
        plot = runner.run(sram, [], voltages, periods, bus=bus)
        assert names(bus.events)[0] == "shmoo.start"
        assert bus.events[0].data == {
            "strategy": "exact", "voltages": 3, "periods": 4}
        rows = [e for e in bus.events if e.name == "shmoo.row"]
        assert [r.data["row"] for r in rows] == [0, 1, 2]
        for i, event in enumerate(rows):
            expected = plot.passed[i]
            first = event.data["first_pass"]
            if expected.any():
                assert first == int(expected.argmax())
            else:
                assert first is None
        assert bus.events[-1].name == "shmoo.done"
        assert (bus.events[-1].data["tester_invocations"]
                == runner.last_stats.tester_invocations)
