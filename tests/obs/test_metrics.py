"""Tests for repro.obs.metrics: counters, gauges, timers, merge."""

from repro.obs import MetricsRegistry


class FakeClock:
    """Deterministic monotonic clock advancing by explicit ticks."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCounters:
    def test_inc_creates_and_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("units.executed")
        reg.inc("units.executed", 4)
        assert reg.counters == {"units.executed": 5}

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("cache.hit_rate", 0.25)
        reg.set_gauge("cache.hit_rate", 0.5)
        assert reg.gauges == {"cache.hit_rate": 0.5}


class TestTimers:
    def test_timer_accumulates_monotonic_elapsed(self):
        clock = FakeClock()
        reg = MetricsRegistry(clock=clock)
        with reg.timer("evaluate"):
            clock.now += 2.0
        with reg.timer("evaluate"):
            clock.now += 1.5
        assert reg.timers == {"evaluate": {"count": 2, "total_s": 3.5}}

    def test_timer_records_even_on_exception(self):
        clock = FakeClock()
        reg = MetricsRegistry(clock=clock)
        try:
            with reg.timer("evaluate"):
                clock.now += 1.0
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert reg.timers["evaluate"]["count"] == 1


class TestMergeAndSnapshot:
    def test_merge_adds_counters_and_timers(self):
        clock = FakeClock()
        a, b = MetricsRegistry(clock=clock), MetricsRegistry(clock=clock)
        a.inc("n", 1)
        b.inc("n", 2)
        b.inc("only_b")
        a.set_gauge("g", 1.0)
        b.set_gauge("g", 2.0)
        with a.timer("t"):
            clock.now += 1.0
        with b.timer("t"):
            clock.now += 2.0
        a.merge(b)
        assert a.counters == {"n": 3, "only_b": 1}
        assert a.gauges == {"g": 2.0}  # merged-in registry wins
        assert a.timers == {"t": {"count": 2, "total_s": 3.0}}

    def test_snapshot_excludes_timers_by_default(self):
        """Timers are wall-clock-ish: never in deterministic artefacts."""
        clock = FakeClock()
        reg = MetricsRegistry(clock=clock)
        reg.inc("b")
        reg.inc("a")
        with reg.timer("t"):
            clock.now += 1.0
        snap = reg.snapshot()
        assert snap == {"counters": {"a": 1, "b": 1}, "gauges": {}}
        assert list(snap["counters"]) == ["a", "b"]  # sorted
        full = reg.snapshot(include_timers=True)
        assert full["timers"] == {"t": {"count": 1, "total_s": 1.0}}
