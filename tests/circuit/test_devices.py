"""Tests for repro.circuit.devices (compact models)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.devices import (
    Capacitor,
    Mosfet,
    MosType,
    Resistor,
    VoltageSource,
)
from repro.circuit.technology import CMOS018


def nmos(width=1.0):
    return Mosfet("m", MosType.NMOS, "d", "g", "s", width, CMOS018)


def pmos(width=1.0):
    return Mosfet("m", MosType.PMOS, "d", "g", "s", width, CMOS018)


class TestMosfetSaturation:
    def test_off_below_threshold(self):
        assert nmos().saturation_current(0.2) == 0.0

    def test_on_above_threshold(self):
        assert nmos().saturation_current(1.8) > 0.0

    def test_width_scaling(self):
        i1 = nmos(1.0).saturation_current(1.8)
        i2 = nmos(2.0).saturation_current(1.8)
        assert i2 == pytest.approx(2.0 * i1)

    def test_alpha_power_law(self):
        tech = CMOS018
        i = nmos().saturation_current(1.8)
        expected = tech.k_n * (1.8 - tech.vth_n) ** tech.alpha
        assert i == pytest.approx(expected)

    @given(st.floats(min_value=0.5, max_value=2.1),
           st.floats(min_value=0.01, max_value=0.3))
    def test_monotone_in_vgs(self, vgs, dv):
        assert (nmos().saturation_current(vgs + dv)
                >= nmos().saturation_current(vgs))


class TestMosfetIv:
    def test_current_zero_at_vds_zero(self):
        i = nmos().ids(1.8, 0.0)
        assert abs(i) < 1e-9

    def test_triode_saturation_continuity(self):
        m = nmos()
        vov = 1.8 - CMOS018.vth_n
        i_below = m.ids(1.8, vov - 1e-6)
        i_above = m.ids(1.8, vov + 1e-6)
        assert i_below == pytest.approx(i_above, rel=1e-3)

    @given(st.floats(min_value=0.0, max_value=2.0),
           st.floats(min_value=0.0, max_value=2.0))
    @settings(max_examples=60)
    def test_nmos_current_non_negative(self, vgs, vds):
        assert nmos().ids(vgs, vds) >= -1e-12

    @given(st.floats(min_value=0.2, max_value=2.0),
           st.floats(min_value=0.05, max_value=2.0))
    @settings(max_examples=60)
    def test_pmos_mirrors_nmos(self, vgs, vds):
        """PMOS conducting current is the mirror image of NMOS."""
        i_n = nmos().ids(vgs, vds)
        i_p = pmos().ids(-vgs, -vds)
        # Same magnitude scaled by k_p/k_n, opposite sign.
        scale = CMOS018.k_p / CMOS018.k_n
        assert i_p == pytest.approx(-i_n * scale, rel=1e-6, abs=1e-12)

    def test_conductances_match_finite_difference(self):
        m = nmos()
        vgs, vds, eps = 1.5, 0.7, 1e-7
        _, gm, gds = m.ids_and_conductances(vgs, vds)
        gm_fd = (m.ids(vgs + eps, vds) - m.ids(vgs, vds)) / eps
        gds_fd = (m.ids(vgs, vds + eps) - m.ids(vgs, vds)) / eps
        assert gm == pytest.approx(gm_fd, rel=1e-3)
        assert gds == pytest.approx(gds_fd, rel=1e-3)


class TestOnResistance:
    def test_decreases_with_vdd(self):
        """The electrical heart of VLV testing: weaker drive at low Vdd."""
        r_vlv = nmos().on_resistance(1.0)
        r_nom = nmos().on_resistance(1.8)
        assert r_vlv > r_nom

    def test_infinite_when_off(self):
        assert math.isinf(nmos().on_resistance(0.3))

    def test_pmos_on_resistance_positive(self):
        r = pmos().on_resistance(1.8)
        assert 0 < r < math.inf


class TestValidation:
    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            Mosfet("m", MosType.NMOS, "d", "g", "s", 0.0, CMOS018)

    def test_non_positive_resistance_rejected(self):
        with pytest.raises(ValueError):
            Resistor("r", "a", "b", 0.0)
        with pytest.raises(ValueError):
            Resistor("r", "a", "b", -5.0)

    def test_resistor_conductance(self):
        assert Resistor("r", "a", "b", 200.0).conductance == pytest.approx(
            0.005)

    def test_capacitor_validation(self):
        with pytest.raises(ValueError):
            Capacitor("c", "a", "b", 0.0)


class TestVoltageSource:
    def test_dc_value(self):
        v = VoltageSource("v", "p", "0", 1.8)
        assert v.voltage_at(0.0) == 1.8
        assert v.voltage_at(1e-6) == 1.8

    def test_waveform_overrides_value(self):
        v = VoltageSource("v", "p", "0", 1.8, waveform=lambda t: 2.0 * t)
        assert v.voltage_at(0.5) == pytest.approx(1.0)
