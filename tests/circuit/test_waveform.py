"""Tests for repro.circuit.waveform."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit.waveform import Waveform, clock, piecewise_linear, pulse


def ramp_wave():
    t = np.linspace(0.0, 1e-9, 11)
    return Waveform("n", t, np.linspace(0.0, 1.0, 11))


class TestWaveformBasics:
    def test_validation_length_mismatch(self):
        with pytest.raises(ValueError):
            Waveform("n", np.array([0.0, 1.0]), np.array([0.0]))

    def test_validation_time_ordering(self):
        with pytest.raises(ValueError):
            Waveform("n", np.array([1.0, 0.0]), np.array([0.0, 1.0]))

    def test_at_interpolates(self):
        assert ramp_wave().at(0.5e-9) == pytest.approx(0.5)

    def test_at_clamps_outside_range(self):
        assert ramp_wave().at(-1.0) == pytest.approx(0.0)
        assert ramp_wave().at(1.0) == pytest.approx(1.0)

    def test_logic_at(self):
        w = ramp_wave()
        assert w.logic_at(0.0, vdd=1.0) == 0
        assert w.logic_at(1e-9, vdd=1.0) == 1

    def test_min_max_settle(self):
        w = ramp_wave()
        assert w.min() == 0.0
        assert w.max() == 1.0
        assert w.settle_value() == pytest.approx(1.0, abs=0.01)


class TestCrossing:
    def test_rising_crossing(self):
        t = ramp_wave().crossing_time(0.5, rising=True)
        assert t == pytest.approx(0.5e-9, rel=1e-6)

    def test_falling_crossing_none_on_rising_ramp(self):
        assert ramp_wave().crossing_time(0.5, rising=False) is None

    def test_after_parameter(self):
        t = np.linspace(0, 4.0, 401)
        v = np.sin(t * np.pi)  # crosses 0.5 rising twice
        w = Waveform("n", t, v)
        first = w.crossing_time(0.5, rising=True)
        second = w.crossing_time(0.5, rising=True, after=1.5)
        assert first < 0.5
        assert 2.0 < second < 2.5

    def test_delay_to(self):
        a = ramp_wave()
        t = np.linspace(0.0, 1e-9, 11)
        b = Waveform("m", t + 0.2e-9, np.linspace(0.0, 1.0, 11))
        d = a.delay_to(b, 0.5)
        assert d == pytest.approx(0.2e-9, rel=1e-6)


class TestStimuli:
    def test_pulse_shape(self):
        f = pulse(0.0, 1.8, t_start=1e-9, t_width=2e-9, t_edge=0.1e-9)
        assert f(0.0) == 0.0
        assert f(2e-9) == 1.8
        assert f(5e-9) == 0.0

    def test_pulse_edges_are_ramps(self):
        f = pulse(0.0, 1.0, t_start=0.0, t_width=1e-9, t_edge=0.2e-9)
        assert 0.0 < f(0.1e-9) < 1.0

    def test_pulse_validation(self):
        with pytest.raises(ValueError):
            pulse(0.0, 1.0, 0.0, t_width=0.0)

    def test_clock_periodicity(self):
        f = clock(0.0, 1.0, period=10e-9, duty=0.5, t_edge=1e-12)
        assert f(3e-9) == f(13e-9) == f(23e-9)

    def test_clock_duty_cycle(self):
        f = clock(0.0, 1.0, period=10e-9, duty=0.3, t_edge=1e-12)
        assert f(2e-9) == 1.0
        assert f(5e-9) == 0.0

    def test_clock_validation(self):
        with pytest.raises(ValueError):
            clock(0.0, 1.0, period=1e-9, duty=1.5)

    def test_pwl(self):
        f = piecewise_linear([(0.0, 0.0), (1e-9, 1.0), (2e-9, 0.5)])
        assert f(0.5e-9) == pytest.approx(0.5)
        assert f(1.5e-9) == pytest.approx(0.75)

    def test_pwl_validation(self):
        with pytest.raises(ValueError):
            piecewise_linear([(0.0, 0.0)])
        with pytest.raises(ValueError):
            piecewise_linear([(1.0, 0.0), (0.0, 1.0)])


class TestWaveformProperties:
    @given(st.floats(min_value=-1.0, max_value=2.0))
    def test_interp_within_value_bounds(self, t_query):
        w = ramp_wave()
        v = w.at(t_query * 1e-9)
        assert w.min() - 1e-12 <= v <= w.max() + 1e-12

    @given(st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=2,
                    max_size=20))
    def test_logic_at_binary(self, values):
        t = np.linspace(0.0, 1.0, len(values))
        w = Waveform("n", t, np.asarray(values))
        assert w.logic_at(0.5, vdd=2.0) in (0, 1)
