"""Tests for repro.circuit.technology."""

import dataclasses

import pytest

from repro.circuit.technology import CMOS013, CMOS018, LayerInfo, Technology


class TestTechnologyValidation:
    def test_default_is_valid(self):
        tech = Technology()
        assert tech.vdd_nominal == pytest.approx(1.8)

    def test_corner_ordering_enforced(self):
        with pytest.raises(ValueError, match="supply corners"):
            Technology(vdd_min=1.9)

    def test_vlv_above_vt_enforced(self):
        with pytest.raises(ValueError, match="VLV"):
            Technology(vdd_vlv=0.4, vth_n=0.45)

    def test_negative_vth_rejected(self):
        with pytest.raises(ValueError):
            Technology(vth_n=-0.1)

    def test_alpha_range_enforced(self):
        with pytest.raises(ValueError, match="alpha"):
            Technology(alpha=2.5)
        with pytest.raises(ValueError, match="alpha"):
            Technology(alpha=0.8)

    def test_transconductance_positive(self):
        with pytest.raises(ValueError):
            Technology(k_n=0.0)


class TestSupplyCorners:
    def test_four_corners_present(self):
        corners = CMOS018.supply_corners
        assert set(corners) == {"VLV", "Vmin", "Vnom", "Vmax"}

    def test_corner_values_match_paper(self):
        corners = CMOS018.supply_corners
        assert corners["VLV"] == pytest.approx(1.0)
        assert corners["Vmin"] == pytest.approx(1.65)
        assert corners["Vnom"] == pytest.approx(1.8)
        assert corners["Vmax"] == pytest.approx(1.95)

    def test_vlv_in_recommended_window(self):
        # The paper: 1.0 V is within 2..2.5 x VT for VT = 0.45.
        assert CMOS018.vlv_in_recommended_window()

    def test_vmin_vmax_are_pm_10_percent(self):
        assert CMOS018.vdd_min == pytest.approx(0.917 * CMOS018.vdd_nominal,
                                                rel=0.01)
        assert CMOS018.vdd_max == pytest.approx(1.083 * CMOS018.vdd_nominal,
                                                rel=0.01)


class TestLayers:
    def test_default_layer_stack(self):
        assert {"poly", "metal1", "metal2", "via", "contact"} <= set(
            CMOS018.layers)

    def test_layer_info_fields(self):
        m1 = CMOS018.layers["metal1"]
        assert isinstance(m1, LayerInfo)
        assert m1.sheet_resistance > 0
        assert m1.min_spacing > 0


class TestScaled:
    def test_scaled_overrides(self):
        hot = CMOS018.scaled(temperature=125.0)
        assert hot.temperature == 125.0
        assert hot.vdd_nominal == CMOS018.vdd_nominal

    def test_scaled_validates(self):
        with pytest.raises(ValueError):
            CMOS018.scaled(vdd_vlv=2.0)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            CMOS018.vdd_nominal = 2.0


class TestCmos013:
    def test_is_valid_corner(self):
        assert CMOS013.vdd_nominal == pytest.approx(1.2)
        assert CMOS013.feature_size < CMOS018.feature_size

    def test_faster_devices(self):
        # Smaller node -> higher transconductance per unit width.
        assert CMOS013.k_n > CMOS018.k_n
