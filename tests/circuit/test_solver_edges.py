"""Edge-case tests for the MNA solver: failure modes and conditioning."""

import numpy as np
import pytest

from repro.circuit.devices import (
    Capacitor,
    CurrentSource,
    Mosfet,
    MosType,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Netlist
from repro.circuit.solver import ConvergenceError, dc_operating_point, transient
from repro.circuit.technology import CMOS018


class TestDegenerateCircuits:
    def test_floating_node_held_by_gmin(self):
        """A node with only a capacitor to ground has no DC path; GMIN
        keeps the matrix solvable and parks it at zero."""
        nl = Netlist()
        nl.add(VoltageSource("V", "a", "0", 1.0))
        nl.add(Resistor("R", "a", "b", 1e3))
        nl.add(Capacitor("C", "c", "0", 1e-12))   # floating node c
        op = dc_operating_point(nl)
        assert op["c"] == pytest.approx(0.0, abs=1e-6)

    def test_current_source_into_floating_cap(self):
        """A current source with no DC return path lands on the GMIN
        conductance: the solution is finite (I/gmin), not an exception --
        mirroring SPICE behaviour."""
        nl = Netlist()
        nl.add(CurrentSource("I", "0", "x", 1e-9))
        nl.add(Capacitor("C", "x", "0", 1e-12))
        op = dc_operating_point(nl)
        assert np.isfinite(op["x"])

    def test_two_supplies_fighting_through_resistors(self):
        nl = Netlist()
        nl.add(VoltageSource("V1", "a", "0", 1.0))
        nl.add(VoltageSource("V2", "b", "0", 2.0))
        nl.add(Resistor("R1", "a", "m", 1e3))
        nl.add(Resistor("R2", "b", "m", 1e3))
        op = dc_operating_point(nl)
        assert op["m"] == pytest.approx(1.5, rel=1e-6)

    def test_mosfet_diode_connected(self):
        """Diode-connected NMOS pulled high settles near VT above
        source."""
        nl = Netlist()
        nl.add(VoltageSource("V", "top", "0", 1.8))
        nl.add(Resistor("R", "top", "d", 1e5))
        nl.add(Mosfet("M", MosType.NMOS, "d", "d", "0", 1.0, CMOS018))
        op = dc_operating_point(nl)
        assert CMOS018.vth_n - 0.1 < op["d"] < 1.2


class TestTransientEdges:
    def test_zero_length_rejected(self):
        nl = Netlist()
        nl.add(Resistor("R", "a", "0", 1e3))
        with pytest.raises(ValueError):
            transient(nl, t_stop=-1.0, dt=1e-12)

    def test_record_subset(self):
        nl = Netlist()
        nl.add(VoltageSource("V", "a", "0", 1.0))
        nl.add(Resistor("R", "a", "b", 1e3))
        nl.add(Capacitor("C", "b", "0", 1e-12))
        waves = transient(nl, t_stop=1e-9, dt=1e-11, record=["b"])
        assert set(waves) == {"b"}

    def test_substepping_survives_sharp_edges(self):
        """A near-instant source edge through a tiny RC must not crash
        the integrator (the recursive halving path)."""
        from repro.circuit.waveform import pulse

        nl = Netlist()
        nl.add(VoltageSource("V", "a", "0", 0.0,
                             waveform=pulse(0.0, 1.8, 1e-10, 5e-10,
                                            t_edge=1e-13)))
        nl.add(Resistor("R", "a", "b", 10.0))
        nl.add(Capacitor("C", "b", "0", 1e-15))
        waves = transient(nl, t_stop=1e-9, dt=5e-11, record=["b"])
        assert waves["b"].max() > 1.5


class TestConditioning:
    def test_wide_resistance_range(self):
        """Nine decades of resistance in one divider still solve
        accurately."""
        nl = Netlist()
        nl.add(VoltageSource("V", "in", "0", 1.0))
        nl.add(Resistor("R1", "in", "m", 1.0))
        nl.add(Resistor("R2", "m", "0", 1e9))
        op = dc_operating_point(nl)
        assert op["m"] == pytest.approx(1.0, rel=1e-3)

    def test_many_parallel_devices(self):
        nl = Netlist()
        nl.add(VoltageSource("Vdd", "vdd", "0", 1.8))
        nl.add(VoltageSource("Vin", "in", "0", 1.8))
        for i in range(20):
            nl.add(Mosfet(f"M{i}", MosType.NMOS, "out", "in", "0",
                          1.0, CMOS018))
        nl.add(Resistor("RL", "vdd", "out", 1e4))
        op = dc_operating_point(nl)
        assert op["out"] < 0.05


class TestRelaxedToleranceDegradation:
    """Campaign-facing degradation: retry the DC ladder at a relaxed
    tolerance before surfacing ConvergenceError."""

    def test_strict_failure_falls_back_to_relaxed(self, monkeypatch):
        from repro.circuit import solver

        calls = []
        real = solver._dc_solve

        def picky(netlist, initial, tol):
            calls.append(tol)
            if tol < 1e-6:
                raise ConvergenceError("needs looser tolerance")
            return real(netlist, initial, tol)

        monkeypatch.setattr(solver, "_dc_solve", picky)
        nl = Netlist()
        nl.add(VoltageSource("V", "a", "0", 1.0))
        nl.add(Resistor("R", "a", "0", 1e3))
        op = dc_operating_point(nl)
        assert op["a"] == pytest.approx(1.0, abs=1e-4)
        assert calls == [1e-7, 1e-5]

    def test_relaxed_none_is_strict(self, monkeypatch):
        from repro.circuit import solver

        def always_fails(netlist, initial, tol):
            raise ConvergenceError("no")

        monkeypatch.setattr(solver, "_dc_solve", always_fails)
        nl = Netlist()
        nl.add(VoltageSource("V", "a", "0", 1.0))
        nl.add(Resistor("R", "a", "0", 1e3))
        with pytest.raises(ConvergenceError):
            dc_operating_point(nl, relaxed_tol=None)

    def test_relaxed_solution_matches_strict_on_easy_circuit(self):
        nl = Netlist()
        nl.add(VoltageSource("V", "a", "0", 1.8))
        nl.add(Resistor("R1", "a", "b", 1e3))
        nl.add(Resistor("R2", "b", "0", 1e3))
        strict = dc_operating_point(nl, relaxed_tol=None)
        relaxed = dc_operating_point(nl, tol=1e-5)
        assert relaxed["b"] == pytest.approx(strict["b"], abs=1e-3)
