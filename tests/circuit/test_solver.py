"""Tests for repro.circuit.solver (DC + transient MNA engine)."""

import math

import numpy as np
import pytest

from repro.circuit.devices import (
    Capacitor,
    CurrentSource,
    Mosfet,
    MosType,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Netlist
from repro.circuit.solver import (
    dc_operating_point,
    gate_delay,
    transient,
)
from repro.circuit.technology import CMOS018
from repro.circuit.waveform import pulse


class TestDcLinear:
    def test_voltage_divider(self):
        nl = Netlist()
        nl.add(VoltageSource("V", "in", "0", 2.0))
        nl.add(Resistor("R1", "in", "mid", 1e3))
        nl.add(Resistor("R2", "mid", "0", 3e3))
        op = dc_operating_point(nl)
        assert op["mid"] == pytest.approx(1.5, rel=1e-6)

    def test_current_source_into_resistor(self):
        nl = Netlist()
        nl.add(CurrentSource("I", "0", "n", 1e-3))  # 1 mA into n
        nl.add(Resistor("R", "n", "0", 2e3))
        op = dc_operating_point(nl)
        assert op["n"] == pytest.approx(2.0, rel=1e-5)

    def test_ground_always_zero(self):
        nl = Netlist()
        nl.add(VoltageSource("V", "a", "0", 5.0))
        nl.add(Resistor("R", "a", "0", 1e3))
        assert dc_operating_point(nl)["0"] == 0.0

    def test_series_voltage_sources(self):
        nl = Netlist()
        nl.add(VoltageSource("V1", "a", "0", 1.0))
        nl.add(VoltageSource("V2", "b", "a", 0.5))
        nl.add(Resistor("R", "b", "0", 1e3))
        op = dc_operating_point(nl)
        assert op["b"] == pytest.approx(1.5, rel=1e-6)


class TestDcNonlinear:
    def _inverter(self, vin, vdd=1.8):
        nl = Netlist()
        nl.add(VoltageSource("Vdd", "vdd", "0", vdd))
        nl.add(VoltageSource("Vin", "in", "0", vin))
        nl.add(Mosfet("Mp", MosType.PMOS, "out", "in", "vdd", 2.0, CMOS018))
        nl.add(Mosfet("Mn", MosType.NMOS, "out", "in", "0", 1.0, CMOS018))
        return dc_operating_point(nl)["out"]

    def test_inverter_rails(self):
        assert self._inverter(0.0) == pytest.approx(1.8, abs=0.01)
        assert self._inverter(1.8) == pytest.approx(0.0, abs=0.01)

    def test_inverter_vtc_monotone_decreasing(self):
        outs = [self._inverter(v) for v in np.linspace(0.0, 1.8, 10)]
        assert all(a >= b - 1e-6 for a, b in zip(outs, outs[1:]))

    def test_bridge_divider_against_nmos(self):
        """A bridge fighting a driven transistor settles mid-rail."""
        nl = Netlist()
        nl.add(VoltageSource("Vdd", "vdd", "0", 1.8))
        nl.add(VoltageSource("Vin", "in", "0", 1.8))
        nl.add(Mosfet("Mn", MosType.NMOS, "out", "in", "0", 1.0, CMOS018))
        faulty = nl.with_bridge("out", "vdd", 10e3)
        op = dc_operating_point(faulty)
        assert 0.05 < op["out"] < 1.0

    def test_bistable_cell_respects_seed(self):
        """Cross-coupled inverters settle into the seeded state."""
        def cell(seed_state):
            nl = Netlist()
            nl.add(VoltageSource("Vdd", "vdd", "0", 1.8))
            for (name, out, inp) in (("A", "q", "qb"), ("B", "qb", "q")):
                nl.add(Mosfet(f"Mp{name}", MosType.PMOS, out, inp, "vdd",
                              1.0, CMOS018))
                nl.add(Mosfet(f"Mn{name}", MosType.NMOS, out, inp, "0",
                              2.0, CMOS018))
            seed = {"q": 1.8 * seed_state, "qb": 1.8 * (1 - seed_state)}
            return dc_operating_point(nl, initial=seed)

        op1 = cell(1)
        assert op1["q"] > 1.5 and op1["qb"] < 0.3
        op0 = cell(0)
        assert op0["q"] < 0.3 and op0["qb"] > 1.5


class TestTransient:
    def test_rc_step_response(self):
        """RC charging matches the analytic exponential."""
        r, c = 1e3, 1e-12  # tau = 1 ns
        nl = Netlist()
        nl.add(VoltageSource("V", "in", "0", 0.0,
                             waveform=pulse(0.0, 1.0, 0.0, 1e-6,
                                            t_edge=1e-12)))
        nl.add(Resistor("R", "in", "out", r))
        nl.add(Capacitor("C", "out", "0", c))
        waves = transient(nl, t_stop=5e-9, dt=1e-11, record=["out"])
        out = waves["out"]
        v_at_tau = out.at(1e-9)
        assert v_at_tau == pytest.approx(1.0 - math.exp(-1.0), rel=0.05)
        assert out.at(5e-9) == pytest.approx(1.0, abs=0.02)

    def test_inverter_switches(self):
        nl = Netlist()
        nl.add(VoltageSource("Vdd", "vdd", "0", 1.8))
        nl.add(VoltageSource("Vin", "in", "0", 0.0,
                             waveform=pulse(0.0, 1.8, 1e-9, 2e-9)))
        nl.add(Mosfet("Mp", MosType.PMOS, "out", "in", "vdd", 2.0, CMOS018))
        nl.add(Mosfet("Mn", MosType.NMOS, "out", "in", "0", 1.0, CMOS018))
        nl.add(Capacitor("C", "out", "0", 5e-15))
        waves = transient(nl, t_stop=6e-9, dt=2e-11, record=["out"])
        fall = waves["out"].crossing_time(0.9, rising=False)
        rise = waves["out"].crossing_time(0.9, rising=True, after=2e-9)
        assert fall is not None and 1e-9 < fall < 2e-9
        assert rise is not None and rise > 3e-9

    def test_uic_skips_dc(self):
        """uic starts from the literal initial condition."""
        nl = Netlist()
        nl.add(Resistor("R", "a", "0", 1e3))
        nl.add(Capacitor("C", "a", "0", 1e-12))
        waves = transient(nl, t_stop=3e-9, dt=1e-11, initial={"a": 1.0},
                          uic=True, record=["a"])
        # Discharges toward 0 with tau = 1 ns.
        assert waves["a"].voltage[0] == pytest.approx(1.0)
        assert waves["a"].at(1e-9) == pytest.approx(math.exp(-1.0), rel=0.05)

    def test_invalid_args_rejected(self):
        nl = Netlist()
        nl.add(Resistor("R", "a", "0", 1e3))
        with pytest.raises(ValueError):
            transient(nl, t_stop=0.0, dt=1e-12)
        with pytest.raises(ValueError):
            transient(nl, t_stop=1e-9, dt=-1e-12)


class TestGateDelay:
    def test_delay_increases_at_low_vdd(self):
        assert gate_delay(CMOS018, vdd=1.0) > gate_delay(CMOS018, vdd=1.8)

    def test_delay_scales_with_fanout(self):
        d1 = gate_delay(CMOS018, fanout=1.0)
        d4 = gate_delay(CMOS018, fanout=4.0)
        assert d4 == pytest.approx(4.0 * d1)

    def test_infinite_below_threshold(self):
        assert math.isinf(gate_delay(CMOS018, vdd=0.4))
