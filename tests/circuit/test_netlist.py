"""Tests for repro.circuit.netlist."""

import pytest

from repro.circuit.devices import Mosfet, MosType, Resistor, VoltageSource
from repro.circuit.netlist import GROUND, Netlist
from repro.circuit.technology import CMOS018


def simple_netlist():
    nl = Netlist("t")
    nl.add(VoltageSource("V1", "a", GROUND, 1.0))
    nl.add(Resistor("R1", "a", "b", 1e3))
    nl.add(Resistor("R2", "b", GROUND, 1e3))
    return nl


class TestConstruction:
    def test_add_and_lookup(self):
        nl = simple_netlist()
        assert len(nl) == 3
        assert "R1" in nl
        assert nl["R1"].resistance == 1e3

    def test_duplicate_name_rejected(self):
        nl = simple_netlist()
        with pytest.raises(ValueError, match="duplicate"):
            nl.add(Resistor("R1", "x", "y", 1.0))

    def test_remove(self):
        nl = simple_netlist()
        nl.remove("R2")
        assert "R2" not in nl
        with pytest.raises(KeyError):
            nl.remove("R2")

    def test_nodes_exclude_ground(self):
        nl = simple_netlist()
        assert set(nl.nodes) == {"a", "b"}

    def test_devices_of_type(self):
        nl = simple_netlist()
        assert len(list(nl.devices_of_type(Resistor))) == 2
        assert len(list(nl.devices_of_type(VoltageSource))) == 1

    def test_connectivity(self):
        adj = simple_netlist().connectivity()
        assert set(adj["b"]) == {"R1", "R2"}


class TestBridgeInjection:
    def test_bridge_adds_resistor(self):
        nl = simple_netlist()
        faulty = nl.with_bridge("a", "b", 500.0)
        assert "Rbridge" in faulty
        assert faulty["Rbridge"].resistance == 500.0

    def test_original_untouched(self):
        """One-defect-at-a-time: the fault-free netlist is never mutated."""
        nl = simple_netlist()
        nl.with_bridge("a", "b", 500.0)
        assert "Rbridge" not in nl
        assert len(nl) == 3

    def test_same_node_rejected(self):
        with pytest.raises(ValueError):
            simple_netlist().with_bridge("a", "a", 100.0)

    def test_title_records_defect(self):
        faulty = simple_netlist().with_bridge("a", "b", 500.0)
        assert "bridge" in faulty.title


class TestOpenInjection:
    def test_open_splices_resistor(self):
        nl = simple_netlist()
        faulty = nl.with_open("R2", "node_a", 1e6)
        assert "Ropen" in faulty
        # The device's terminal was rewired to an internal node.
        assert faulty["R2"].node_a != nl["R2"].node_a
        # The open resistor connects the internal node to the original net.
        ropen = faulty["Ropen"]
        assert {ropen.node_a, ropen.node_b} >= {nl["R2"].node_a} or \
            nl["R2"].node_a in (ropen.node_a, ropen.node_b)

    def test_open_preserves_connectivity_through_resistance(self):
        from repro.circuit.solver import dc_operating_point

        nl = simple_netlist()
        faulty = nl.with_open("R2", "node_a", 1e3)
        op = dc_operating_point(faulty)
        # Divider now 1k / (1k + 1k) extra: b = 1.0 * 2k/3k
        assert op["b"] == pytest.approx(2.0 / 3.0, rel=1e-3)

    def test_unknown_terminal_rejected(self):
        with pytest.raises(ValueError, match="no terminal"):
            simple_netlist().with_open("R2", "gate", 1e3)

    def test_mosfet_terminal_open(self):
        nl = Netlist()
        nl.add(Mosfet("M1", MosType.NMOS, "d", "g", "s", 1.0, CMOS018))
        faulty = nl.with_open("M1", "gate", 1e6)
        assert faulty["M1"].gate.startswith("_open")

    def test_original_untouched_by_open(self):
        nl = simple_netlist()
        before = nl["R2"].node_a
        nl.with_open("R2", "node_a", 1e6)
        assert nl["R2"].node_a == before


class TestCopy:
    def test_copy_is_shallow_but_independent(self):
        nl = simple_netlist()
        clone = nl.copy()
        clone.remove("R1")
        assert "R1" in nl
