"""Tests for repro.stress (the condition vocabulary)."""

import pytest

from repro.circuit.technology import CMOS013, CMOS018
from repro.stress import (
    ATSPEED_PERIOD,
    SLOW_PERIOD,
    StressCondition,
    production_conditions,
    standard_conditions,
)


class TestStressCondition:
    def test_frequency(self):
        c = StressCondition("x", 1.8, 100e-9)
        assert c.frequency == pytest.approx(10e6)

    def test_validation(self):
        with pytest.raises(ValueError):
            StressCondition("x", 0.0, 1e-9)
        with pytest.raises(ValueError):
            StressCondition("x", 1.8, 0.0)

    def test_str_formats_units(self):
        text = str(StressCondition("VLV", 1.0, 100e-9))
        assert "1.00 V" in text and "100 ns" in text and "10 MHz" in text

    def test_default_temperature(self):
        assert StressCondition("x", 1.8, 1e-8).temperature == 25.0

    def test_frozen(self):
        c = StressCondition("x", 1.8, 1e-8)
        with pytest.raises(Exception):
            c.vdd = 2.0


class TestProductionSuite:
    def test_five_conditions(self):
        suite = production_conditions(CMOS018)
        assert set(suite) == {"VLV", "Vmin", "Vnom", "Vmax", "at-speed"}

    def test_paper_values(self):
        suite = production_conditions(CMOS018)
        assert suite["VLV"].vdd == pytest.approx(1.0)
        assert suite["VLV"].period == pytest.approx(SLOW_PERIOD)
        assert suite["at-speed"].period == pytest.approx(ATSPEED_PERIOD)
        assert suite["Vmax"].vdd == pytest.approx(1.95)

    def test_at_speed_runs_at_nominal_supply(self):
        """The Venn-disjointness reading documented in the module."""
        suite = production_conditions(CMOS018)
        assert suite["at-speed"].vdd == pytest.approx(
            CMOS018.vdd_nominal)

    def test_scales_with_technology(self):
        suite = production_conditions(CMOS013)
        assert suite["VLV"].vdd == pytest.approx(0.8)
        assert suite["Vnom"].vdd == pytest.approx(1.2)

    def test_custom_periods(self):
        suite = production_conditions(CMOS018, slow_period=200e-9,
                                      atspeed_period=10e-9)
        assert suite["Vnom"].period == pytest.approx(200e-9)
        assert suite["at-speed"].period == pytest.approx(10e-9)


class TestStandardSuite:
    def test_subset_of_production(self):
        std = standard_conditions(CMOS018)
        assert set(std) == {"Vmin", "Vnom", "Vmax"}
        prod = production_conditions(CMOS018)
        for name, cond in std.items():
            assert cond == prod[name]

    def test_paper_constants(self):
        assert SLOW_PERIOD == pytest.approx(100e-9)   # 10 MHz
        assert ATSPEED_PERIOD == pytest.approx(15e-9)  # tester limit
