"""Tests for repro.tester.iddq and repro.tester.movi."""

import pytest

from repro.circuit.technology import CMOS013, CMOS018
from repro.defects.models import BridgeSite, OpenSite, bridge, open_defect
from repro.march.library import MARCH_CM, TEST_11N
from repro.memory.geometry import VEQTOR4_INSTANCE, MemoryGeometry
from repro.tester.iddq import IddqSettings, IddqTester
from repro.tester.movi import MoviExecutor


@pytest.fixture(scope="module")
def iddq():
    return IddqTester(CMOS018, VEQTOR4_INSTANCE)


class TestIddqPhysics:
    def test_hard_bridge_detected(self, iddq):
        assert iddq.detects(bridge(BridgeSite.CELL_NODE_RAIL, 100.0))

    def test_opens_invisible(self, iddq):
        """The classic Iddq blind spot: opens draw no extra current."""
        assert not iddq.detects(open_defect(OpenSite.DECODER_INPUT, 1e5))
        assert iddq.defect_current(
            open_defect(OpenSite.BITLINE_SEGMENT, 1e3)) == 0.0

    def test_equivalent_node_bridges_invisible(self, iddq):
        assert not iddq.detects(bridge(BridgeSite.EQUIVALENT_NODE, 10.0))

    def test_defect_current_inverse_in_r(self, iddq):
        i1 = iddq.defect_current(bridge(BridgeSite.CELL_NODE_RAIL, 1e3))
        i2 = iddq.defect_current(bridge(BridgeSite.CELL_NODE_RAIL, 2e3))
        assert i1 == pytest.approx(2.0 * i2)

    def test_background_scales_with_size_and_temp(self, iddq):
        small = IddqTester(CMOS018, MemoryGeometry(64, 4, 8))
        assert iddq.background_current() > small.background_current()
        assert (iddq.background_current(85.0)
                > 10.0 * iddq.background_current(25.0))

    def test_threshold_shrinks_when_hot(self, iddq):
        """Hot chips leak more -> Iddq resolution collapses."""
        assert (iddq.detection_threshold(85.0)
                < iddq.detection_threshold(25.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            IddqSettings(threshold_factor=1.0)
        with pytest.raises(ValueError):
            IddqSettings(bias_fraction=0.0)


class TestIddqVsVlv:
    """[Kruseman 02]: Iddq loses reach as background leakage grows."""

    def test_iddq_catches_midrange_bridges_at_018um(self, iddq):
        d = bridge(BridgeSite.CELL_NODE_RAIL, 50e3)
        assert iddq.detects(d)

    def test_scaling_kills_iddq(self):
        """At the leakier 0.13 um corner the same bridge escapes Iddq
        (background swamps it) while VLV still catches it."""
        leaky = IddqSettings(leakage_per_cell_25c=2e-9)
        iddq_013 = IddqTester(CMOS013, VEQTOR4_INSTANCE, leaky)
        d = bridge(BridgeSite.CELL_NODE_RAIL, 50e3)
        assert not iddq_013.detects(d)

        from repro.defects.behavior import DefectBehaviorModel
        from repro.stress import production_conditions
        behavior = DefectBehaviorModel(CMOS018)
        conds = production_conditions(CMOS018)
        assert behavior.fails_condition(d, conds["VLV"])

    def test_coverage_over_population(self, iddq):
        defects = [bridge(BridgeSite.CELL_NODE_RAIL, r)
                   for r in (10, 100, 1e3, 1e4, 1e5, 1e6, 1e7)]
        cov = iddq.coverage(defects)
        assert 0.0 < cov < 1.0
        assert iddq.coverage([]) == 1.0


class TestMoviExecutor:
    def test_fault_free_passes_all_rotations(self):
        ex = MoviExecutor(4)
        result = ex.run(MARCH_CM)
        assert not result.detected
        assert len(result.runs) == 4

    def test_total_operations_accounting(self):
        ex = MoviExecutor(4)
        result = ex.run(TEST_11N)
        # Full procedure: address_bits x complexity x N.
        assert result.total_operations == 4 * 11 * 16

    def test_stop_at_first_detection(self):
        from repro.faults.address_delay import AddressTransitionDelayFault

        ex = MoviExecutor(4)
        fault = AddressTransitionDelayFault(bit=0, rising=True,
                                            address_bits=4)
        result = ex.run(TEST_11N, fault, stop_at_first_detection=True)
        assert result.detected
        assert len(result.runs) <= 4

    def test_detects_classical_faults_too(self):
        from repro.faults.models import StuckAtFault

        ex = MoviExecutor(4)
        result = ex.run(MARCH_CM, StuckAtFault(5, 1))
        assert result.detected
        # A stuck-at is order-insensitive: every rotation sees it.
        assert result.detecting_bits == [0, 1, 2, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            MoviExecutor(0)
