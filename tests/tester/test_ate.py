"""Tests for repro.tester.ate (the virtual ATE)."""

import pytest

from repro.circuit.technology import CMOS018
from repro.defects.behavior import DefectBehaviorModel
from repro.defects.models import BridgeSite, OpenSite, bridge, open_defect
from repro.march.library import TEST_11N
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import Sram
from repro.stress import StressCondition, production_conditions
from repro.tester.ate import VirtualTester


@pytest.fixture(scope="module")
def setup():
    geom = MemoryGeometry(8, 2, 4)
    sram = Sram(geom, CMOS018)
    tester = VirtualTester(DefectBehaviorModel(CMOS018))
    conds = production_conditions(CMOS018)
    return sram, tester, conds


class TestQuickMode:
    def test_clean_device_passes_everywhere(self, setup):
        sram, tester, conds = setup
        for cond in conds.values():
            assert tester.test_device(sram, [], TEST_11N, cond).passed

    def test_gross_timing_fail(self, setup):
        sram, tester, _ = setup
        cond = StressCondition("too-fast", 1.0, 5e-9)
        result = tester.test_device(sram, [], TEST_11N, cond)
        assert not result.passed
        assert result.gross_timing_fail

    def test_manifesting_defect_fails(self, setup):
        sram, tester, conds = setup
        d = bridge(BridgeSite.CELL_NODE_RAIL, 20.0)
        result = tester.test_device(sram, [d], TEST_11N, conds["Vnom"])
        assert not result.passed
        assert result.manifestations

    def test_silent_defect_passes(self, setup):
        sram, tester, conds = setup
        d = bridge(BridgeSite.CELL_NODE_RAIL, 150e3)   # VLV-only band
        assert tester.test_device(sram, [d], TEST_11N, conds["Vnom"]).passed

    def test_condition_signature(self, setup):
        sram, tester, conds = setup
        d = bridge(BridgeSite.CELL_NODE_RAIL, 150e3)
        sig = tester.condition_signature(sram, [d], TEST_11N, conds)
        assert sig["VLV"] is True
        assert sig["Vnom"] is False


class TestFullMode:
    def test_quick_and_full_agree(self, setup):
        sram, tester, conds = setup
        cases = [
            ([], True),
            ([bridge(BridgeSite.CELL_NODE_RAIL, 20.0, cell=5)], False),
            ([bridge(BridgeSite.CELL_NODE_RAIL, 150e3, cell=5)], True),
        ]
        for defects, expect_pass in cases:
            quick = tester.test_device(sram, defects, TEST_11N,
                                       conds["Vnom"], quick=True)
            full = tester.test_device(sram, defects, TEST_11N,
                                      conds["Vnom"], quick=False)
            assert quick.passed == full.passed == expect_pass

    def test_fail_log_points_to_defect_cell(self, setup):
        sram, tester, conds = setup
        cell = sram.geometry.cell_index(3, 2)
        d = bridge(BridgeSite.CELL_NODE_RAIL, 150e3, cell=cell, polarity=1)
        result = tester.test_device(sram, [d], TEST_11N, conds["VLV"],
                                    quick=False)
        assert not result.passed
        addresses = {(f.address, f.bit) for f in result.fails}
        assert addresses == {(3, 2)}

    def test_stuck1_fails_reading_zero(self, setup):
        """Chip-1 signature: all fails while reading '0'."""
        sram, tester, conds = setup
        cell = sram.geometry.cell_index(3, 2)
        d = bridge(BridgeSite.CELL_NODE_RAIL, 150e3, cell=cell, polarity=1)
        result = tester.test_device(sram, [d], TEST_11N, conds["VLV"],
                                    quick=False)
        assert all(f.expected == 0 for f in result.fails)

    def test_decoder_open_fails_at_vmax_full(self, setup):
        sram, tester, conds = setup
        d = open_defect(OpenSite.DECODER_INPUT, 5e5, cell=9)
        result = tester.test_device(sram, [d], TEST_11N, conds["Vmax"],
                                    quick=False)
        assert not result.passed
        assert tester.test_device(sram, [d], TEST_11N, conds["Vnom"],
                                  quick=False).passed

    def test_faults_detached_after_run(self, setup):
        sram, tester, conds = setup
        d = bridge(BridgeSite.CELL_NODE_RAIL, 20.0, cell=0)
        tester.test_device(sram, [d], TEST_11N, conds["Vnom"], quick=False)
        assert not sram.faults
