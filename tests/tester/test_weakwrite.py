"""Tests for repro.tester.weakwrite (WWTM screen)."""

import pytest

from repro.circuit.technology import CMOS018
from repro.defects.models import BridgeSite, OpenSite, bridge, open_defect
from repro.tester.weakwrite import WeakWriteSettings, WeakWriteTester


@pytest.fixture(scope="module")
def wwtm():
    return WeakWriteTester(CMOS018)


class TestDetection:
    def test_weak_pullup_flagged(self, wwtm):
        assert wwtm.detects(open_defect(OpenSite.CELL_PULLUP, 5e6))

    def test_healthy_pullup_untouched(self, wwtm):
        assert not wwtm.detects(open_defect(OpenSite.CELL_PULLUP, 1e5))

    def test_snm_bridge_flagged(self, wwtm):
        assert wwtm.detects(bridge(BridgeSite.CELL_NODE_NODE, 100e3))

    def test_rail_bridge_prebias_flagged(self, wwtm):
        assert wwtm.detects(bridge(BridgeSite.CELL_NODE_RAIL, 50e3))
        assert not wwtm.detects(bridge(BridgeSite.CELL_NODE_RAIL, 500e3))

    def test_blind_to_periphery_classes(self, wwtm):
        """The mode exercises the cell, not the decoder or timing."""
        assert not wwtm.detects(open_defect(OpenSite.DECODER_INPUT, 5e5))
        assert not wwtm.detects(open_defect(OpenSite.BITLINE_SEGMENT, 3e6))
        assert not wwtm.detects(open_defect(OpenSite.PERIPHERY_PATH, 6e6))
        assert not wwtm.detects(bridge(BridgeSite.DECODER_LOGIC, 1e3))

    def test_strength_scales_thresholds(self, wwtm):
        weak_site = open_defect(OpenSite.CELL_PULLUP, 2.5e6, strength=0.5)
        strong_site = open_defect(OpenSite.CELL_PULLUP, 2.5e6, strength=2.0)
        assert wwtm.detects(weak_site)
        assert not wwtm.detects(strong_site)


class TestCoverage:
    def test_empty_population(self, wwtm):
        assert wwtm.coverage([]) == 1.0

    def test_stability_subset_filter(self, wwtm):
        defects = [
            open_defect(OpenSite.CELL_PULLUP, 5e6),
            open_defect(OpenSite.DECODER_INPUT, 5e5),
            bridge(BridgeSite.CELL_NODE_NODE, 100e3),
            bridge(BridgeSite.BITLINE_BITLINE, 1e3),
        ]
        subset = wwtm.stability_subset(defects)
        assert len(subset) == 2

    def test_complements_stress_testing(self, wwtm):
        """WWTM catches a VLV-band pull-up open at nominal conditions --
        but misses the decoder open only Vmax finds."""
        from repro.defects.behavior import DefectBehaviorModel
        from repro.stress import production_conditions

        behavior = DefectBehaviorModel(CMOS018)
        conds = production_conditions(CMOS018)

        pullup = open_defect(OpenSite.CELL_PULLUP, 3e6)
        assert wwtm.detects(pullup)
        assert not behavior.fails_condition(pullup, conds["Vnom"])

        decoder = open_defect(OpenSite.DECODER_INPUT, 5e5)
        assert not wwtm.detects(decoder)
        assert behavior.fails_condition(decoder, conds["Vmax"])


class TestValidation:
    def test_settings_bounds(self):
        with pytest.raises(ValueError):
            WeakWriteSettings(drive_margin=1.0)
        with pytest.raises(ValueError):
            WeakWriteSettings(pullup_r_threshold=0.0)
