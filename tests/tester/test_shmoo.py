"""Tests for repro.tester.shmoo."""

import numpy as np
import pytest

from repro.circuit.technology import CMOS018
from repro.defects.behavior import DefectBehaviorModel
from repro.defects.models import BridgeSite, OpenSite, bridge, open_defect
from repro.march.library import TEST_11N
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import Sram
from repro.tester.ate import VirtualTester
from repro.tester.shmoo import (
    ShmooPlot,
    ShmooRunner,
    default_period_axis,
    default_voltage_axis,
)


@pytest.fixture(scope="module")
def runner():
    tester = VirtualTester(DefectBehaviorModel(CMOS018))
    return ShmooRunner(tester, TEST_11N)


@pytest.fixture(scope="module")
def sram():
    return Sram(MemoryGeometry(8, 2, 4), CMOS018)


@pytest.fixture(scope="module")
def fault_free_plot(runner, sram):
    return runner.run(sram, [], default_voltage_axis(),
                      default_period_axis(), "fault-free")


class TestShmooPlotContainer:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ShmooPlot(np.array([1.0, 2.0]), np.array([1e-9]),
                      np.zeros((1, 1), dtype=bool))

    def test_queries(self, fault_free_plot):
        assert fault_free_plot.passes_at(1.8, 100e-9)
        assert not fault_free_plot.passes_at(0.8, 5e-9)

    def test_min_passing_voltage(self, fault_free_plot):
        v = fault_free_plot.min_passing_voltage(100e-9)
        assert v is not None and v <= 1.0

    def test_min_passing_period_monotone_in_vdd(self, fault_free_plot):
        p_low = fault_free_plot.min_passing_period(1.0)
        p_high = fault_free_plot.min_passing_period(1.95)
        assert p_low > p_high

    def test_render_contains_marks(self, fault_free_plot):
        text = fault_free_plot.render()
        assert "+" in text and "." in text
        assert "fault-free" in text
        assert "ns" in text

    def test_render_markers(self, fault_free_plot):
        v = float(fault_free_plot.voltages[0])
        p = float(fault_free_plot.periods[0])
        text = fault_free_plot.render(markers={(v, p): "X"})
        assert "X" in text


class TestFigureThreeAnchors:
    """Figure 3: the fault-free device's shmoo."""

    def test_passes_vlv_at_100ns(self, fault_free_plot):
        assert fault_free_plot.passes_at(1.0, 100e-9)

    def test_fails_lower_left(self, fault_free_plot):
        assert not fault_free_plot.passes_at(0.8, 5e-9)

    def test_boundary_not_vertical(self, fault_free_plot):
        """The fault-free boundary curves with voltage (unlike Chip-3)."""
        assert not fault_free_plot.boundary_is_vertical()


class TestDefectShmoos:
    def test_chip1_fails_only_low_voltage(self, runner, sram):
        d = bridge(BridgeSite.CELL_NODE_RAIL, 240e3, polarity=1)
        plot = runner.run(sram, [d], default_voltage_axis(),
                          default_period_axis())
        assert not plot.passes_at(1.0, 100e-9)   # VLV fail
        assert plot.passes_at(1.8, 100e-9)       # standard pass
        assert plot.passes_at(1.95, 100e-9)

    def test_chip2_fails_only_high_voltage(self, runner, sram):
        d = open_defect(OpenSite.DECODER_INPUT, 5e5)
        plot = runner.run(sram, [d], default_voltage_axis(),
                          default_period_axis())
        assert not plot.passes_at(2.0, 100e-9)
        assert not plot.passes_at(2.2, 100e-9)
        assert plot.passes_at(1.8, 100e-9)
        assert plot.passes_at(1.0, 100e-9)
        # Frequency independent: fails at Vmax even at the slowest period.
        assert not plot.passes_at(2.0, float(plot.periods[-1]))

    def test_chip3_vertical_boundary(self, runner, sram):
        d = open_defect(OpenSite.BITLINE_SEGMENT, 3e6)
        volts = np.linspace(1.5, 2.1, 7)
        periods = np.linspace(10e-9, 30e-9, 21)
        plot = runner.run(sram, [d], volts, periods)
        assert plot.boundary_is_vertical()
        # Fails at 16 ns, passes at 17 ns irrespective of Vdd (paper).
        boundary = plot.min_passing_period(1.8)
        assert 15e-9 < boundary < 18e-9

    def test_chip4_boundary_moves_with_voltage(self, runner, sram):
        d = open_defect(OpenSite.PERIPHERY_PATH, 3e6)
        volts = np.linspace(1.4, 2.1, 8)
        periods = np.linspace(6e-9, 40e-9, 18)
        plot = runner.run(sram, [d], volts, periods)
        assert not plot.boundary_is_vertical()
        p_low = plot.min_passing_period(1.4)
        p_high = plot.min_passing_period(2.1)
        assert p_low > p_high

    def test_fail_region_fraction(self, runner, sram):
        d = bridge(BridgeSite.CELL_NODE_RAIL, 20.0)
        plot = runner.run(sram, [d], default_voltage_axis(),
                          default_period_axis())
        assert plot.fail_region_fraction() == 1.0


class TestAxes:
    def test_default_axes_cover_paper_ranges(self):
        v = default_voltage_axis()
        p = default_period_axis()
        assert v[0] <= 1.0 and v[-1] >= 1.95
        assert p[0] <= 15e-9 and p[-1] >= 100e-9

    def test_runner_sorts_axes(self, runner, sram):
        plot = runner.run(sram, [], [2.0, 1.0, 1.5], [50e-9, 10e-9])
        assert list(plot.voltages) == [1.0, 1.5, 2.0]
        assert list(plot.periods) == [10e-9, 50e-9]
