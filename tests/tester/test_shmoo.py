"""Tests for repro.tester.shmoo."""

import numpy as np
import pytest

from repro.circuit.technology import CMOS018
from repro.defects.behavior import DefectBehaviorModel
from repro.defects.models import BridgeSite, OpenSite, bridge, open_defect
from repro.march.library import TEST_11N
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import Sram
from repro.tester.ate import VirtualTester
from repro.perf.counting import CountingTester
from repro.tester.shmoo import (
    ShmooPlot,
    ShmooRunner,
    default_period_axis,
    default_voltage_axis,
)


@pytest.fixture(scope="module")
def runner():
    tester = VirtualTester(DefectBehaviorModel(CMOS018))
    return ShmooRunner(tester, TEST_11N)


@pytest.fixture(scope="module")
def sram():
    return Sram(MemoryGeometry(8, 2, 4), CMOS018)


@pytest.fixture(scope="module")
def fault_free_plot(runner, sram):
    return runner.run(sram, [], default_voltage_axis(),
                      default_period_axis(), "fault-free")


class TestShmooPlotContainer:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ShmooPlot(np.array([1.0, 2.0]), np.array([1e-9]),
                      np.zeros((1, 1), dtype=bool))

    def test_queries(self, fault_free_plot):
        assert fault_free_plot.passes_at(1.8, 100e-9)
        assert not fault_free_plot.passes_at(0.8, 5e-9)

    def test_min_passing_voltage(self, fault_free_plot):
        v = fault_free_plot.min_passing_voltage(100e-9)
        assert v is not None and v <= 1.0

    def test_min_passing_period_monotone_in_vdd(self, fault_free_plot):
        p_low = fault_free_plot.min_passing_period(1.0)
        p_high = fault_free_plot.min_passing_period(1.95)
        assert p_low > p_high

    def test_render_contains_marks(self, fault_free_plot):
        text = fault_free_plot.render()
        assert "+" in text and "." in text
        assert "fault-free" in text
        assert "ns" in text

    def test_render_markers(self, fault_free_plot):
        v = float(fault_free_plot.voltages[0])
        p = float(fault_free_plot.periods[0])
        text = fault_free_plot.render(markers={(v, p): "X"})
        assert "X" in text


class TestFigureThreeAnchors:
    """Figure 3: the fault-free device's shmoo."""

    def test_passes_vlv_at_100ns(self, fault_free_plot):
        assert fault_free_plot.passes_at(1.0, 100e-9)

    def test_fails_lower_left(self, fault_free_plot):
        assert not fault_free_plot.passes_at(0.8, 5e-9)

    def test_boundary_not_vertical(self, fault_free_plot):
        """The fault-free boundary curves with voltage (unlike Chip-3)."""
        assert not fault_free_plot.boundary_is_vertical()


class TestDefectShmoos:
    def test_chip1_fails_only_low_voltage(self, runner, sram):
        d = bridge(BridgeSite.CELL_NODE_RAIL, 240e3, polarity=1)
        plot = runner.run(sram, [d], default_voltage_axis(),
                          default_period_axis())
        assert not plot.passes_at(1.0, 100e-9)   # VLV fail
        assert plot.passes_at(1.8, 100e-9)       # standard pass
        assert plot.passes_at(1.95, 100e-9)

    def test_chip2_fails_only_high_voltage(self, runner, sram):
        d = open_defect(OpenSite.DECODER_INPUT, 5e5)
        plot = runner.run(sram, [d], default_voltage_axis(),
                          default_period_axis())
        assert not plot.passes_at(2.0, 100e-9)
        assert not plot.passes_at(2.2, 100e-9)
        assert plot.passes_at(1.8, 100e-9)
        assert plot.passes_at(1.0, 100e-9)
        # Frequency independent: fails at Vmax even at the slowest period.
        assert not plot.passes_at(2.0, float(plot.periods[-1]))

    def test_chip3_vertical_boundary(self, runner, sram):
        d = open_defect(OpenSite.BITLINE_SEGMENT, 3e6)
        volts = np.linspace(1.5, 2.1, 7)
        periods = np.linspace(10e-9, 30e-9, 21)
        plot = runner.run(sram, [d], volts, periods)
        assert plot.boundary_is_vertical()
        # Fails at 16 ns, passes at 17 ns irrespective of Vdd (paper).
        boundary = plot.min_passing_period(1.8)
        assert 15e-9 < boundary < 18e-9

    def test_chip4_boundary_moves_with_voltage(self, runner, sram):
        d = open_defect(OpenSite.PERIPHERY_PATH, 3e6)
        volts = np.linspace(1.4, 2.1, 8)
        periods = np.linspace(6e-9, 40e-9, 18)
        plot = runner.run(sram, [d], volts, periods)
        assert not plot.boundary_is_vertical()
        p_low = plot.min_passing_period(1.4)
        p_high = plot.min_passing_period(2.1)
        assert p_low > p_high

    def test_fail_region_fraction(self, runner, sram):
        d = bridge(BridgeSite.CELL_NODE_RAIL, 20.0)
        plot = runner.run(sram, [d], default_voltage_axis(),
                          default_period_axis())
        assert plot.fail_region_fraction() == 1.0


class TestRenderMarkerSnapping:
    def test_off_grid_marker_lands_on_nearest_cell(self, fault_free_plot):
        """A reference value between grid lines snaps like passes_at."""
        v0, v1 = (float(fault_free_plot.voltages[0]),
                  float(fault_free_plot.voltages[1]))
        p0 = float(fault_free_plot.periods[0])
        off_grid_v = v0 + 0.25 * (v1 - v0)  # nearest to v0
        text = fault_free_plot.render(markers={(off_grid_v, p0): "X"})
        bottom_row = [line for line in text.splitlines()
                      if line.startswith(f"{v0:5.2f}V")][0]
        assert bottom_row.split("|", 1)[1][0] == "X"

    def test_same_cell_markers_overwrite_in_order(self, fault_free_plot):
        v = float(fault_free_plot.voltages[0])
        p = float(fault_free_plot.periods[0])
        text = fault_free_plot.render(markers={(v, p): "A",
                                               (v, p * 1.0001): "B"})
        assert "B" in text and "A" not in text


class TestGridEdgeCases:
    def test_all_fail_grid(self, runner, sram):
        """A dead-short device: every query degrades gracefully."""
        d = bridge(BridgeSite.CELL_NODE_RAIL, 20.0)
        plot = runner.run(sram, [d], default_voltage_axis(),
                          default_period_axis())
        assert plot.fail_region_fraction() == 1.0
        assert not plot.boundary_is_vertical()
        assert plot.min_passing_voltage(100e-9) is None
        assert plot.min_passing_period(1.8) is None
        assert "+" not in plot.render().split("\n")[0]

    @pytest.mark.parametrize("voltages,periods", [
        ([1.8], default_period_axis()),          # single row
        (default_voltage_axis(), [100e-9]),      # single column
        ([1.8], [100e-9]),                       # single cell
    ])
    def test_degenerate_grids_match_exact(self, runner, sram,
                                          voltages, periods):
        d = bridge(BridgeSite.CELL_NODE_RAIL, 240e3, polarity=1)
        exact = runner.run(sram, [d], voltages, periods)
        traced = runner.run(sram, [d], voltages, periods,
                            strategy="boundary")
        assert np.array_equal(exact.passed, traced.passed)
        assert not runner.last_stats.fallback


CHIP_DEFECTS = {
    "fig3-faultfree": [],
    "fig4-chip1": [bridge(BridgeSite.CELL_NODE_RAIL, 240e3, polarity=1)],
    "fig7-chip2": [open_defect(OpenSite.DECODER_INPUT, 5e5)],
    "fig9-chip3": [open_defect(OpenSite.BITLINE_SEGMENT, 3e6)],
    "fig10-chip4": [open_defect(OpenSite.PERIPHERY_PATH, 3e6)],
}


class TestBoundaryStrategy:
    """boundary-traced fill == exact fill, several-fold cheaper."""

    def test_invalid_strategy_rejected(self, runner, sram):
        with pytest.raises(ValueError, match="strategy"):
            runner.run(sram, [], [1.8], [100e-9], strategy="fast")

    @pytest.mark.parametrize("figure", sorted(CHIP_DEFECTS))
    def test_paper_figures_identical_with_3x_fewer_calls(
            self, sram, figure):
        defects = CHIP_DEFECTS[figure]
        tester = CountingTester(VirtualTester(DefectBehaviorModel(CMOS018)))
        runner = ShmooRunner(tester, TEST_11N)
        volts, periods = default_voltage_axis(), default_period_axis()
        exact = runner.run(sram, defects, volts, periods)
        exact_calls = tester.calls
        assert exact_calls == runner.last_stats.grid_cells
        tester.reset()
        traced = runner.run(sram, defects, volts, periods,
                            strategy="boundary")
        assert np.array_equal(exact.passed, traced.passed)
        stats = runner.last_stats
        assert stats.strategy == "boundary"
        assert stats.tester_invocations == tester.calls
        assert not stats.fallback
        assert stats.crosscheck_invocations > 0
        # The ISSUE acceptance floor, as a call-count inequality.
        assert exact_calls >= 3 * tester.calls

    @pytest.mark.parametrize("defect", [
        bridge(BridgeSite.CELL_NODE_RAIL, 1e3),
        bridge(BridgeSite.BITLINE_BITLINE, 90e3, polarity=-1),
        open_defect(OpenSite.CELL_ACCESS, 1e5),
        open_defect(OpenSite.PERIPHERY_PATH, 1e7),
    ])
    def test_property_boundary_equals_full_fill(self, runner, sram,
                                                defect):
        """Every stock (row-monotone) defect traces to the exact grid."""
        volts = np.linspace(0.9, 2.1, 7)
        periods = np.logspace(np.log10(6e-9), np.log10(110e-9), 11)
        exact = runner.run(sram, [defect], volts, periods)
        traced = runner.run(sram, [defect], volts, periods,
                            strategy="boundary")
        assert np.array_equal(exact.passed, traced.passed)
        assert not runner.last_stats.fallback

    def test_adversarial_device_falls_back_to_exact(self, sram):
        """A non-row-monotone device trips the guard, not the result."""
        class _Result:
            def __init__(self, passed):
                self.passed = passed

        class CheckerboardTester:
            """Pass/fail alternates along the period axis."""

            def test_device(self, sram, defects, test, condition,
                            quick=False):
                return _Result(int(condition.period * 1e9) % 2 == 0)

        runner = ShmooRunner(CheckerboardTester(), TEST_11N,
                             crosscheck_fraction=1.0)
        volts = np.linspace(1.0, 2.0, 4)
        periods = np.linspace(10e-9, 21e-9, 12)
        exact = runner.run(sram, [], volts, periods)
        traced = runner.run(sram, [], volts, periods, strategy="boundary")
        assert runner.last_stats.fallback
        assert np.array_equal(exact.passed, traced.passed)


class TestAxes:
    def test_default_axes_cover_paper_ranges(self):
        v = default_voltage_axis()
        p = default_period_axis()
        assert v[0] <= 1.0 and v[-1] >= 1.95
        assert p[0] <= 15e-9 and p[-1] >= 100e-9

    def test_runner_sorts_axes(self, runner, sram):
        plot = runner.run(sram, [], [2.0, 1.0, 1.5], [50e-9, 10e-9])
        assert list(plot.voltages) == [1.0, 1.5, 2.0]
        assert list(plot.periods) == [10e-9, 50e-9]
