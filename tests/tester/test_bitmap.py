"""Tests for repro.tester.bitmap (diagnosis)."""

import pytest

from repro.circuit.technology import CMOS018
from repro.defects.behavior import DefectBehaviorModel
from repro.defects.models import BridgeSite, OpenSite, bridge, open_defect
from repro.march.library import TEST_11N
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import Sram
from repro.stress import production_conditions
from repro.tester.ate import AteFailRecord, VirtualTester
from repro.tester.bitmap import BitmapAnalyzer, DefectClassHint


@pytest.fixture(scope="module")
def geom():
    return MemoryGeometry(8, 2, 4)


@pytest.fixture(scope="module")
def analyzer(geom):
    return BitmapAnalyzer(geom, TEST_11N)


def run_and_diagnose(geom, analyzer, defects, condition_name):
    sram = Sram(geom, CMOS018)
    tester = VirtualTester(DefectBehaviorModel(CMOS018))
    conds = production_conditions(CMOS018)
    result = tester.test_device(sram, defects, TEST_11N,
                                conds[condition_name], quick=False)
    return analyzer.diagnose(result.fails)


class TestCleanAndBasicClasses:
    def test_clean(self, analyzer):
        d = analyzer.diagnose([])
        assert d.hint is DefectClassHint.CLEAN

    def test_single_cell_stuck(self, geom, analyzer):
        cell = geom.cell_index(3, 1)
        defect = bridge(BridgeSite.CELL_NODE_RAIL, 150e3, cell=cell,
                        polarity=1)
        diag = run_and_diagnose(geom, analyzer, [defect], "VLV")
        assert diag.hint is DefectClassHint.SINGLE_CELL_STUCK
        assert diag.failing_cells == {(3, 1)}

    def test_address_pair_from_decoder_open(self, geom, analyzer):
        defect = open_defect(OpenSite.DECODER_INPUT, 5e5, cell=9)
        diag = run_and_diagnose(geom, analyzer, [defect], "Vmax")
        assert diag.hint is DefectClassHint.ADDRESS_PAIR
        assert len(diag.failing_cells) == 2


class TestChip1Narrative:
    """The paper's Section 4.1 diagnosis chain, reproduced exactly."""

    @pytest.fixture(scope="class")
    def diag(self, geom, analyzer):
        cell = geom.cell_index(3, 1)
        defect = bridge(BridgeSite.CELL_NODE_RAIL, 150e3, cell=cell,
                        polarity=1)
        return run_and_diagnose(geom, analyzer, [defect], "VLV")

    def test_three_failing_march_elements(self, diag):
        notations = {s.notation for s in diag.element_signatures}
        assert notations == {"{R0W1}", "{R1W0R0}", "{R0W1R1}"}

    def test_all_fails_reading_zero(self, diag):
        assert diag.read_value_bias == 0

    def test_summary_concludes_stuck_at_1(self, diag):
        assert "stuck-at-1" in diag.summary
        assert "single-bit" in diag.summary


class TestStructuralClasses:
    def _fails_at(self, cells):
        return [AteFailRecord(i, 1, 0, addr, bit, 0, 1)
                for i, (addr, bit) in enumerate(cells)]

    def test_row_failure(self, geom, analyzer):
        # All cells of physical row 2: word addresses 4,5 with all bits.
        cells = [(geom.join_address(0, 2, c), b)
                 for c in range(geom.columns)
                 for b in range(geom.bits_per_word)]
        diag = analyzer.diagnose(self._fails_at(cells))
        assert diag.hint is DefectClassHint.ROW_FAILURE
        assert diag.failing_rows == {2}

    def test_column_failure(self, geom, analyzer):
        # Same bitline across all rows: column 1, bit 2.
        cells = [(geom.join_address(0, r, 1), 2) for r in range(geom.rows)]
        diag = analyzer.diagnose(self._fails_at(cells))
        assert diag.hint is DefectClassHint.COLUMN_FAILURE
        assert len(diag.failing_bitlines) == 1

    def test_scattered(self, geom, analyzer):
        cells = [(0, 0), (3, 1), (5, 3), (7, 2)]
        diag = analyzer.diagnose(self._fails_at(cells))
        assert diag.hint is DefectClassHint.SCATTERED

    def test_mixed_read_values_no_bias(self, analyzer):
        fails = [
            AteFailRecord(0, 1, 0, 0, 0, 0, 1),
            AteFailRecord(1, 1, 0, 0, 0, 1, 0),
        ]
        diag = analyzer.diagnose(fails)
        assert diag.read_value_bias is None
