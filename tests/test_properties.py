"""Cross-module property-based tests (hypothesis).

The module-level suites already carry local property tests; this file
holds the invariants that span subsystem boundaries -- the contracts the
whole reproduction stands on.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.technology import CMOS018
from repro.core.williams_brown import defect_level, poisson_yield
from repro.defects.behavior import DefectBehaviorModel
from repro.defects.models import BridgeSite, OpenSite, bridge, open_defect
from repro.march.library import STANDARD_TESTS, TEST_11N
from repro.march.sequencer import DataBackground, MarchSequencer
from repro.stress import StressCondition


@pytest.fixture(scope="module")
def behavior():
    return DefectBehaviorModel(CMOS018)


class TestStressDominance:
    """Detection must be monotone in stress for each mechanism."""

    @given(st.floats(min_value=30.0, max_value=5e5),
           st.floats(min_value=0.9, max_value=2.1),
           st.floats(min_value=0.01, max_value=0.5))
    @settings(max_examples=60)
    def test_rail_bridge_lower_vdd_dominates(self, r, vdd, dv):
        """If a rail bridge manifests at some supply, it manifests at
        every lower (testable) supply too."""
        model = DefectBehaviorModel(CMOS018)
        d = bridge(BridgeSite.CELL_NODE_RAIL, r)
        period = 100e-9
        hi = StressCondition("hi", vdd + dv, period)
        lo = StressCondition("lo", vdd, period)
        if model.fails_condition(d, hi):
            assert model.fails_condition(d, lo)

    @given(st.floats(min_value=1e5, max_value=3e7),
           st.floats(min_value=6e-9, max_value=100e-9),
           st.floats(min_value=1e-9, max_value=50e-9))
    @settings(max_examples=60)
    def test_delay_open_shorter_period_dominates(self, r, period, dp):
        """If a bit-line open fails at some period, it fails at every
        shorter period (same supply)."""
        model = DefectBehaviorModel(CMOS018)
        d = open_defect(OpenSite.BITLINE_SEGMENT, r)
        slow = StressCondition("slow", 1.8, period + dp)
        fast = StressCondition("fast", 1.8, period)
        if model.fails_condition(d, slow):
            assert model.fails_condition(d, fast)

    @given(st.floats(min_value=1e4, max_value=3e7),
           st.floats(min_value=1.0, max_value=2.1),
           st.floats(min_value=0.01, max_value=0.5))
    @settings(max_examples=60)
    def test_decoder_open_higher_vdd_dominates(self, r, vdd, dv):
        model = DefectBehaviorModel(CMOS018)
        d = open_defect(OpenSite.DECODER_INPUT, r)
        period = 100e-9
        lo = StressCondition("lo", vdd, period)
        hi = StressCondition("hi", vdd + dv, period)
        if model.fails_condition(d, lo):
            assert model.fails_condition(d, hi)

    @given(st.floats(min_value=10.0, max_value=1e6))
    @settings(max_examples=40)
    def test_severity_at_least_one_when_manifest(self, r):
        model = DefectBehaviorModel(CMOS018)
        d = bridge(BridgeSite.CELL_NODE_RAIL, r)
        m = model.manifestation(d, StressCondition("c", 1.0, 100e-9))
        if m is not None:
            assert m.severity >= 1.0


class TestSequencerInvariants:
    @pytest.mark.parametrize("name", sorted(STANDARD_TESTS))
    def test_cycle_stream_length_all_tests(self, name):
        test = STANDARD_TESTS[name]
        seq = MarchSequencer(8)
        stream = list(seq.run(test))
        assert len(stream) == test.complexity * 8

    @given(st.integers(min_value=1, max_value=64),
           st.sampled_from(sorted(STANDARD_TESTS)))
    @settings(max_examples=30)
    def test_every_read_preceded_by_defining_write(self, n, name):
        """In a consistent test the sequencer never emits a read of a
        cell whose current value differs from the expectation -- the
        fault-free invariant that detection rests on."""
        test = STANDARD_TESTS[name]
        state = {}
        for cop in MarchSequencer(n).run(test):
            if cop.op.is_write:
                state[cop.address] = cop.value
            else:
                assert state.get(cop.address) == cop.value, (name, cop)

    @given(st.sampled_from(list(DataBackground)),
           st.integers(min_value=2, max_value=32))
    @settings(max_examples=30)
    def test_background_consistency_under_any_pattern(self, bg, n):
        state = {}
        for cop in MarchSequencer(n, columns=4).run(TEST_11N, bg):
            if cop.op.is_write:
                state[cop.address] = cop.value
            else:
                assert state.get(cop.address) == cop.value


class TestQualityModelInvariants:
    @given(st.floats(min_value=0.01, max_value=0.999),
           st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    def test_better_coverage_never_worse_dpm(self, y, dc1, dc2):
        lo, hi = sorted((dc1, dc2))
        assert defect_level(y, hi) <= defect_level(y, lo) + 1e-12

    @given(st.floats(min_value=0.0, max_value=1e9),
           st.floats(min_value=0.0, max_value=1e9),
           st.floats(min_value=0.01, max_value=5.0))
    @settings(max_examples=50)
    def test_yield_multiplicative_in_area(self, a1, a2, d0):
        combined = poisson_yield(a1 + a2, d0)
        product = poisson_yield(a1, d0) * poisson_yield(a2, d0)
        assert combined == pytest.approx(product, rel=1e-9)


class TestEndToEndDeterminism:
    def test_campaign_deterministic(self):
        from repro.ifa.flow import IfaCampaign
        from repro.memory.geometry import MemoryGeometry
        from repro.stress import production_conditions

        conds = [production_conditions(CMOS018)["VLV"]]
        runs = []
        for _ in range(2):
            camp = IfaCampaign(MemoryGeometry(16, 2, 4), CMOS018,
                               n_sites=300, seed=11)
            runs.append(camp.run_bridges([1e3, 90e3], conds))
        assert [(r.resistance, r.detected) for r in runs[0]] == \
            [(r.resistance, r.detected) for r in runs[1]]

    def test_full_vs_quick_never_disagree_on_population_sample(self):
        """The two-tier consistency contract, sampled."""
        import dataclasses

        from repro.experiment import PopulationGenerator, PopulationSpec
        from repro.march.library import TEST_11N
        from repro.memory.geometry import MemoryGeometry
        from repro.memory.sram import Sram
        from repro.stress import production_conditions
        from repro.tester.ate import VirtualTester

        chips = PopulationGenerator(
            PopulationSpec(n_devices=400, seed=5)).generate()
        geom = MemoryGeometry(8, 2, 4)
        sram = Sram(geom, CMOS018)
        tester = VirtualTester(DefectBehaviorModel(CMOS018))
        conds = production_conditions(CMOS018)
        checked = 0
        for chip in chips:
            if not chip.is_defective or checked >= 12:
                continue
            checked += 1
            defects = [dataclasses.replace(d, cell=d.cell % geom.bits)
                       for d in chip.all_defects]
            for cond in (conds["VLV"], conds["Vnom"], conds["at-speed"]):
                quick = tester.test_device(sram, defects, TEST_11N, cond,
                                           quick=True)
                full = tester.test_device(sram, defects, TEST_11N, cond,
                                          quick=False)
                assert quick.passed == full.passed, (chip.chip_id,
                                                     cond.name)
