"""Shared perf-test fixtures: invocation-counting campaign and tester.

The counting wrappers (:mod:`repro.perf.counting`) turn speedup claims
into deterministic call-count inequalities -- a fast-path test asserts
``exact_calls >= K * fast_calls`` instead of trusting wall-clock.
"""

import pytest

from repro.circuit.technology import CMOS018
from repro.defects.behavior import DefectBehaviorModel
from repro.ifa.flow import IfaCampaign
from repro.memory.geometry import MemoryGeometry
from repro.perf.counting import CountingBehaviorModel, CountingTester
from repro.tester.ate import VirtualTester

GEOM = MemoryGeometry(16, 2, 4)


@pytest.fixture
def counting_campaign():
    """Factory for campaigns whose behaviour model counts its calls.

    Usage::

        campaign = counting_campaign()              # stock model
        campaign = counting_campaign(wrap=Lying)    # counted wrapper

    ``wrap`` (if given) is applied to the stock behaviour model first;
    the :class:`CountingBehaviorModel` always sits outermost so every
    ``fails_condition`` call is counted regardless of the wrapper.
    """
    def make(n_sites=40, seed=11, wrap=None):
        campaign = IfaCampaign(GEOM, CMOS018, n_sites=n_sites, seed=seed)
        inner = (campaign.behavior if wrap is None
                 else wrap(campaign.behavior))
        campaign.behavior = CountingBehaviorModel(inner)
        return campaign
    return make


@pytest.fixture
def counting_tester():
    """A virtual tester whose ``test_device`` calls are counted."""
    return CountingTester(VirtualTester(DefectBehaviorModel(CMOS018)))
