"""Tests for the frontier benchmark harness and its committed artefact."""

import json
from pathlib import Path

import pytest

from repro.perf.frontier_bench import (
    FRONTIER_BENCH_SCHEMA,
    MIN_BATCH_WALLCLOCK,
    FrontierBenchConfig,
    run_frontier_benchmark,
    validate_frontier_bench,
)


@pytest.fixture(scope="module")
def frontier_doc():
    """One quick frontier benchmark run shared by the shape tests."""
    return run_frontier_benchmark(FrontierBenchConfig.quick())


class TestFrontierBenchDocument:
    def test_schema_valid(self, frontier_doc):
        assert validate_frontier_bench(frontier_doc) == []

    def test_headline_fields(self, frontier_doc):
        assert frontier_doc["schema"] == FRONTIER_BENCH_SCHEMA
        assert frontier_doc["invocation_reduction_campaign"] >= 5.0
        assert frontier_doc["invocation_reduction_shmoo"] >= 3.0
        assert frontier_doc["campaign"]["records_match"] is True
        assert frontier_doc["shmoo"]["grids_match"] is True

    def test_frontier_stats_embedded(self, frontier_doc):
        stats = frontier_doc["campaign"]["frontier"]["stats"]
        assert stats["batch_sites"] == stats["sites"]
        assert stats["crosscheck_mismatches"] == 0

    def test_batch_stats_embedded(self, frontier_doc):
        campaign = frontier_doc["campaign"]
        stats = campaign["batch"]["stats"]
        assert stats["batch_sites"] == stats["sites"]
        assert stats["demoted_sites"] == 0
        assert stats["crosscheck_mismatches"] == 0
        assert campaign["speedup_batch"] >= MIN_BATCH_WALLCLOCK

    def test_round_trips_through_json(self, frontier_doc):
        doc = json.loads(json.dumps(frontier_doc))
        assert validate_frontier_bench(doc) == []


class TestValidateFrontierBench:
    def test_rejects_non_object(self):
        assert validate_frontier_bench(None) == [
            "document is not a JSON object"]

    def test_reports_each_defect(self):
        problems = validate_frontier_bench({"schema": "wrong"})
        assert any("schema" in p for p in problems)
        assert any("campaign" in p for p in problems)
        assert any("shmoo" in p for p in problems)

    def test_enforces_reduction_floors(self, frontier_doc):
        doc = json.loads(json.dumps(frontier_doc))
        doc["invocation_reduction_campaign"] = 4.9
        doc["invocation_reduction_shmoo"] = 2.9
        problems = validate_frontier_bench(doc)
        assert any("5.0x floor" in p for p in problems)
        assert any("3.0x floor" in p for p in problems)

    def test_enforces_batch_wallclock_floor(self, frontier_doc):
        doc = json.loads(json.dumps(frontier_doc))
        doc["wallclock_speedup_batch"] = MIN_BATCH_WALLCLOCK - 0.1
        problems = validate_frontier_bench(doc)
        assert any("wallclock_speedup_batch" in p for p in problems)

    def test_flags_failed_equivalence_check(self, frontier_doc):
        doc = json.loads(json.dumps(frontier_doc))
        doc["campaign"]["records_match"] = False
        doc["shmoo"]["grids_match"] = False
        problems = validate_frontier_bench(doc)
        assert any("records_match" in p for p in problems)
        assert any("grids_match" in p for p in problems)

    def test_committed_artifact_is_valid(self):
        path = Path(__file__).resolve().parents[2] / "BENCH_frontier.json"
        doc = json.loads(path.read_text())
        assert validate_frontier_bench(doc) == []
        assert doc["invocation_reduction_campaign"] >= 5.0
        assert doc["invocation_reduction_shmoo"] >= 3.0
        # The committed artefact is generated at the default (not
        # quick) configuration, where the ISSUE's 10x target holds.
        assert doc["wallclock_speedup_batch"] >= 10.0
        assert doc["campaign"]["records_match"] is True
