"""Tests for repro.perf.supervisor: heal worker death without losing work.

The acceptance claims of the supervised pool, end to end:

* an injected worker death (exit or hang) is healed by a pool rebuild
  and the campaign's records stay **byte-identical** to an undisturbed
  serial run, with the recovery visible as ``pool.*`` journal events;
* a genuine poison unit is quarantined into its coverage record's
  error ledger instead of aborting the campaign;
* an exhausted rebuild budget degrades to serial in-parent evaluation
  rather than aborting;
* a failed worker initializer surfaces as :class:`WorkerInitError`
  naming the cause (fatal: no rebuild);
* fork-copied chaos counters merge back so ``FaultInjector.stats()``
  agrees between serial and pooled runs;
* a campaign interrupted *while healing* worker deaths resumes to the
  undisturbed serial result.
"""

import dataclasses
import json

import pytest

from repro.circuit.technology import CMOS018
from repro.defects.models import DefectKind
from repro.ifa.flow import IfaCampaign
from repro.memory.geometry import MemoryGeometry
from repro.obs import read_journal
from repro.perf.executor import ParallelUnitExecutor, WorkerInitError
from repro.perf.supervisor import SupervisedUnitExecutor
from repro.runner.campaign import CampaignRunner, SweepSpec
from repro.runner.chaos import (
    WORKER_EXIT_SITE,
    WORKER_HANG_SITE,
    ChaosBehaviorModel,
    FaultInjector,
    InjectedCrash,
)
from repro.runner.retry import RetryPolicy
from repro.runner.units import plan_units
from repro.stress import production_conditions

GEOM = MemoryGeometry(16, 2, 4)
N_SITES = 40
SEED = 11


def make_campaign(injector=None):
    campaign = IfaCampaign(GEOM, CMOS018, n_sites=N_SITES, seed=SEED)
    if injector is not None:
        campaign.behavior = ChaosBehaviorModel(campaign.behavior, injector)
    return campaign


def conditions(n=2):
    conds = production_conditions(CMOS018)
    return tuple(conds.values())[:n]


def bridge_spec():
    return SweepSpec.of(DefectKind.BRIDGE, (1e3, 10e3), conditions())


def wide_spec():
    return SweepSpec.of(DefectKind.BRIDGE, (20.0, 1e3, 10e3, 90e3),
                        conditions(3))


def spec_unit_ids(spec):
    return [u.unit_id for u in
            plan_units(spec.kind, spec.resistances, spec.conditions)]


def records_bytes(records):
    return json.dumps([dataclasses.asdict(r) for r in records],
                      sort_keys=True).encode()


def exit_injector(unit_ids, times=1):
    return FaultInjector(worker_faults={
        WORKER_EXIT_SITE: {uid: times for uid in unit_ids}})


class TestWorkerDeathHeals:
    def test_exit_heals_byte_identical(self, tmp_path):
        """An injected worker death rebuilds the pool; records match."""
        spec = wide_spec()
        baseline = CampaignRunner(make_campaign()).run([spec])
        victim = spec_unit_ids(spec)[1]

        journal = tmp_path / "run.jsonl"
        result = CampaignRunner(
            make_campaign(exit_injector([victim])),
            workers=2, journal=journal).run([spec])

        assert records_bytes(result.records) == records_bytes(
            baseline.records)
        stats = result.supervisor_stats
        assert stats["worker_losses"] >= 1
        assert stats["rebuilds"] >= 1
        assert stats["poison_units"] == 0
        _, events = read_journal(journal)
        names = {e.name for e in events}
        assert {"pool.worker_lost", "pool.redispatch",
                "pool.rebuild"} <= names

    def test_undisturbed_run_emits_no_pool_events(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        result = CampaignRunner(make_campaign(), workers=2,
                                journal=journal).run([bridge_spec()])
        assert result.supervisor_stats == {
            "worker_losses": 0, "deadline_losses": 0, "rebuilds": 0,
            "redispatched_units": 0, "poison_units": 0,
            "degraded_units": 0}
        _, events = read_journal(journal)
        assert not [e for e in events if e.name.startswith("pool.")]

    def test_hang_detected_by_chunk_deadline(self):
        """A hung worker trips the parent-side deadline, then heals."""
        spec = bridge_spec()
        baseline = CampaignRunner(make_campaign()).run([spec])
        victim = spec_unit_ids(spec)[1]
        inj = FaultInjector(
            worker_faults={WORKER_HANG_SITE: {victim: 1}},
            hang_seconds=30.0)

        result = CampaignRunner(
            make_campaign(inj), workers=2, chunksize=1,
            unit_deadline=5.0, chunk_deadline_factor=0.2).run([spec])

        assert records_bytes(result.records) == records_bytes(
            baseline.records)
        assert result.supervisor_stats["deadline_losses"] >= 1
        assert result.supervisor_stats["rebuilds"] >= 1


class TestPoisonUnit:
    def test_poison_unit_quarantined_not_fatal(self, tmp_path):
        """A unit that always kills its worker lands in the ledger."""
        spec = bridge_spec()
        baseline = CampaignRunner(make_campaign()).run([spec])
        unit_ids = spec_unit_ids(spec)
        poison = unit_ids[1]

        journal = tmp_path / "run.jsonl"
        result = CampaignRunner(
            make_campaign(exit_injector([poison], times=1000)),
            workers=2, chunksize=1, journal=journal).run([spec])

        assert result.supervisor_stats["poison_units"] == 1
        assert len(result.records) == len(baseline.records)
        bad = result.records[unit_ids.index(poison)]
        assert bad.detected == 0
        assert bad.errors == bad.total > 0
        # Every other unit's record is the undisturbed one.
        for i, (got, want) in enumerate(
                zip(result.records, baseline.records)):
            if i != unit_ids.index(poison):
                assert got == want
        entries = [q for q in result.quarantine
                   if q["unit_id"] == poison]
        assert len(entries) == 1
        assert entries[0]["site_index"] == -1
        assert entries[0]["defect"] == "<entire unit>"
        _, events = read_journal(journal)
        assert [e for e in events if e.name == "pool.poison_unit"]


class TestDegradeSerial:
    def test_budget_exhausted_degrades_not_aborts(self, tmp_path):
        spec = wide_spec()
        baseline = CampaignRunner(make_campaign()).run([spec])
        victim = spec_unit_ids(spec)[1]

        journal = tmp_path / "run.jsonl"
        result = CampaignRunner(
            make_campaign(exit_injector([victim])),
            workers=2, chunksize=1, max_pool_rebuilds=0,
            journal=journal).run([spec])

        assert records_bytes(result.records) == records_bytes(
            baseline.records)
        assert result.supervisor_stats["rebuilds"] == 0
        assert result.supervisor_stats["degraded_units"] > 0
        _, events = read_journal(journal)
        assert [e for e in events if e.name == "pool.degrade_serial"]

    def test_rebuild_budget_validation(self):
        with pytest.raises(ValueError, match="max_pool_rebuilds"):
            SupervisedUnitExecutor(make_campaign(), max_pool_rebuilds=-1)
        with pytest.raises(ValueError, match="chunk_deadline_factor"):
            SupervisedUnitExecutor(make_campaign(),
                                   chunk_deadline_factor=0.0)


class _UnpicklableInWorker:
    """Pickles fine in the parent; explodes when a worker unpickles it."""

    def __init__(self):
        # Non-empty state, so unpickling really calls __setstate__.
        self.armed = True

    def __setstate__(self, state):
        raise RuntimeError("exploding payload (test)")


class TestWorkerInitError:
    def make_broken_campaign(self):
        campaign = make_campaign()
        campaign.bomb = _UnpicklableInWorker()
        return campaign

    def test_bare_executor_names_cause(self):
        executor = ParallelUnitExecutor(self.make_broken_campaign(),
                                        workers=2)
        units = plan_units(DefectKind.BRIDGE, (1e3,), conditions(1))
        with pytest.raises(WorkerInitError,
                           match="exploding payload"):
            list(executor.run(units))

    def test_supervisor_does_not_rebuild_on_init_failure(self):
        runner = CampaignRunner(self.make_broken_campaign(), workers=2)
        with pytest.raises(WorkerInitError, match="exploding payload"):
            runner.run([bridge_spec()])
        assert runner._supervisor.stats.rebuilds == 0


class TestInjectorStatsMerge:
    def test_pooled_stats_match_serial(self):
        """Fork-copied chaos counters merge back via UnitOutcome."""
        spec = bridge_spec()
        retry = RetryPolicy(max_attempts=6, base_delay=0.0, jitter=0.0)

        serial_inj = FaultInjector(
            seed=9, rates={"behavior.evaluate": 0.03},
            scope_by_unit=True)
        serial = CampaignRunner(make_campaign(serial_inj),
                                retry=retry).run([spec])

        pooled_inj = FaultInjector(
            seed=9, rates={"behavior.evaluate": 0.03},
            scope_by_unit=True)
        pooled = CampaignRunner(make_campaign(pooled_inj), retry=retry,
                                workers=4).run([spec])

        assert records_bytes(pooled.records) == records_bytes(
            serial.records)
        assert serial_inj.stats()["behavior.evaluate"]["injected"] > 0
        assert pooled_inj.stats() == serial_inj.stats()


class TestResumeAfterWorkerDeath:
    def test_interrupted_healing_run_resumes_byte_identical(
            self, tmp_path):
        """Worker death + parent crash + resume == undisturbed serial."""
        ck = tmp_path / "ck.json"
        spec = wide_spec()
        baseline = CampaignRunner(make_campaign()).run([spec])
        victim = spec_unit_ids(spec)[1]

        inj = FaultInjector(
            worker_faults={WORKER_EXIT_SITE: {victim: 1}},
            crash_positions={"io.replace": {6}})
        with pytest.raises(InjectedCrash):
            CampaignRunner(make_campaign(inj), checkpoint_path=ck,
                           workers=2, fault_hook=inj.check).run([spec])

        resumed = CampaignRunner(make_campaign(), checkpoint_path=ck,
                                 workers=2).run([spec])
        assert resumed.resumed_units > 0
        assert records_bytes(resumed.records) == records_bytes(
            baseline.records)
