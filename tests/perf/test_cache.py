"""Tests for repro.perf.cache: keys, hit/miss, corruption, integration."""

import dataclasses
import json

import pytest

from repro.circuit.technology import CMOS018
from repro.defects.behavior import DefectBehaviorModel
from repro.defects.models import DefectKind
from repro.ifa.flow import IfaCampaign
from repro.memory.geometry import MemoryGeometry
from repro.perf.cache import EvaluationCache, unit_cache_key
from repro.perf.fingerprint import (
    behavior_fingerprint,
    population_fingerprint,
)
from repro.runner.atomic import temp_path_for
from repro.runner.campaign import CampaignRunner, SweepSpec
from repro.runner.chaos import ChaosBehaviorModel, FaultInjector
from repro.runner.retry import RetryPolicy
from repro.stress import production_conditions

GEOM = MemoryGeometry(16, 2, 4)


def make_campaign(seed=11):
    return IfaCampaign(GEOM, CMOS018, n_sites=40, seed=seed)


def two_conditions():
    conds = production_conditions(CMOS018)
    return (conds["VLV"], conds["Vmax"])


def bridge_spec():
    return SweepSpec.of(DefectKind.BRIDGE, (1e3, 10e3), two_conditions())


def records_bytes(records):
    return json.dumps([dataclasses.asdict(r) for r in records],
                      sort_keys=True).encode()


def make_key(campaign, resistance=1e3, condition=None):
    condition = condition or two_conditions()[0]
    return unit_cache_key(
        behavior_fingerprint(campaign.behavior),
        population_fingerprint(campaign, DefectKind.BRIDGE),
        resistance, condition)


class TestCacheKey:
    def test_deterministic(self):
        assert make_key(make_campaign()) == make_key(make_campaign())

    def test_sensitive_to_each_input(self):
        base = make_key(make_campaign())
        assert make_key(make_campaign(seed=12)) != base
        assert make_key(make_campaign(), resistance=2e3) != base
        assert (make_key(make_campaign(),
                         condition=two_conditions()[1]) != base)

    def test_wrapped_model_gets_distinct_keys(self):
        """A chaos-wrapped model must never share rows with the bare one."""
        wrapped = make_campaign()
        wrapped.behavior = ChaosBehaviorModel(wrapped.behavior,
                                              FaultInjector(seed=3))
        assert make_key(wrapped) != make_key(make_campaign())


class TestCacheBasics:
    def test_miss_then_hit(self):
        cache = EvaluationCache()
        assert cache.get("k") is None
        cache.put("k", {"detected": 5})
        assert cache.get("k") == {"detected": 5}
        assert cache.stats() == {
            "entries": 1, "hits": 1, "misses": 1, "hit_rate": 0.5,
            "discarded_corrupt": False, "corrupt_detail": [],
        }

    def test_get_returns_a_copy(self):
        cache = EvaluationCache()
        cache.put("k", {"detected": 5})
        cache.get("k")["detected"] = 99
        assert cache.get("k") == {"detected": 5}

    def test_dirty_tracking(self):
        cache = EvaluationCache()
        assert not cache.dirty
        cache.put("k", {})
        assert cache.dirty


class TestCachePersistence:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = EvaluationCache()
        cache.put("k1", {"detected": 5})
        cache.save(path)
        assert not cache.dirty
        loaded = EvaluationCache.load(path)
        assert loaded.entries == {"k1": {"detected": 5}}
        assert not loaded.discarded_corrupt

    def test_missing_file_loads_empty(self, tmp_path):
        cache = EvaluationCache.load(tmp_path / "absent.json")
        assert len(cache) == 0
        assert not cache.discarded_corrupt

    @pytest.mark.parametrize("garbage", [
        "not json", '{"schema": "wrong"}',
        '{"schema": "repro.evaluation-cache", "version": 1, '
        '"checksum": "0" , "body": {"entries": {}}}',
    ])
    def test_corrupt_file_discards_not_raises(self, tmp_path, garbage):
        """A cache is disposable: corruption degrades to empty, loudly."""
        path = tmp_path / "cache.json"
        path.write_text(garbage)
        cache = EvaluationCache.load(path)
        assert len(cache) == 0
        assert cache.discarded_corrupt
        assert cache.stats()["discarded_corrupt"] is True

    def test_recovers_from_temp_sibling(self, tmp_path):
        """Crash between fsync and rename: the .tmp sibling is valid."""
        path = tmp_path / "cache.json"
        cache = EvaluationCache()
        cache.put("k", {"detected": 1})
        cache.save(path)
        path.rename(temp_path_for(path))
        loaded = EvaluationCache.load(path)
        assert loaded.entries == {"k": {"detected": 1}}
        assert loaded.recovered_from_temp
        assert not loaded.discarded_corrupt
        assert loaded.corrupt_detail == []

    def test_corrupt_detail_names_file_and_exception(self, tmp_path):
        """The discard forensics say *which* file died of *what*."""
        path = tmp_path / "cache.json"
        path.write_text("not json")
        cache = EvaluationCache.load(path)
        assert cache.discarded_corrupt
        (entry,) = cache.corrupt_detail
        assert entry["path"] == str(path)
        assert entry["error"]  # "<ExcType>: <message>"
        assert ":" in entry["error"]
        assert cache.stats()["corrupt_detail"] == [entry]

    def test_corrupt_main_with_valid_temp_still_reports_discard(
            self, tmp_path):
        """Temp recovery must not hide that the main file was corrupt."""
        path = tmp_path / "cache.json"
        cache = EvaluationCache()
        cache.put("k", {"detected": 1})
        cache.save(path)
        path.rename(temp_path_for(path))
        path.write_text("garbage")
        loaded = EvaluationCache.load(path)
        assert loaded.entries == {"k": {"detected": 1}}
        assert loaded.recovered_from_temp
        assert loaded.discarded_corrupt
        (entry,) = loaded.corrupt_detail
        assert entry["path"] == str(path)


class TestRunnerIntegration:
    def test_warm_cache_serves_every_unit(self, tmp_path):
        path = tmp_path / "cache.json"
        spec = bridge_spec()
        cold = CampaignRunner(make_campaign(), cache=path).run([spec])
        assert cold.cached_units == 0
        assert cold.cache_stats["hits"] == 0
        assert path.exists()

        warm = CampaignRunner(make_campaign(), cache=path).run([spec])
        assert warm.executed_units == 0
        assert warm.cached_units == len(warm.records)
        assert warm.cache_stats["hit_rate"] == 1.0
        assert records_bytes(warm.records) == records_bytes(cold.records)

    def test_changed_seed_misses(self, tmp_path):
        path = tmp_path / "cache.json"
        spec = bridge_spec()
        CampaignRunner(make_campaign(), cache=path).run([spec])
        other = CampaignRunner(make_campaign(seed=12),
                               cache=path).run([spec])
        assert other.cached_units == 0
        assert other.executed_units == len(other.records)

    def test_corrupt_cache_never_stops_a_campaign(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("garbage")
        result = CampaignRunner(make_campaign(),
                                cache=path).run([bridge_spec()])
        assert result.cache_stats["discarded_corrupt"] is True
        assert result.executed_units == len(result.records)
        # ... and the campaign rewrote a valid cache behind itself.
        assert len(EvaluationCache.load(path)) == len(result.records)

    def test_degraded_units_are_not_cached(self, tmp_path):
        """errors > 0 units must re-evaluate on the next fresh campaign."""
        path = tmp_path / "cache.json"
        campaign = make_campaign()
        injector = FaultInjector(
            positions={"behavior.evaluate": {0, 1, 2}})
        campaign.behavior = ChaosBehaviorModel(campaign.behavior, injector)
        result = CampaignRunner(
            campaign, cache=path,
            retry=RetryPolicy(max_attempts=1, base_delay=0.0),
        ).run([bridge_spec()])
        degraded = [r for r in result.records if r.errors > 0]
        assert degraded, "chaos should have quarantined the first site"
        cache = EvaluationCache.load(path)
        assert len(cache) == len(result.records) - len(degraded)

    def test_cache_instance_can_be_shared_in_memory(self):
        cache = EvaluationCache()
        spec = bridge_spec()
        CampaignRunner(make_campaign(), cache=cache).run([spec])
        again = CampaignRunner(make_campaign(), cache=cache).run([spec])
        assert again.cached_units == len(again.records)
