"""Tests for repro.perf.frontier: exact-path equivalence, guarded.

The contract under test: ``strategy="frontier"`` emits records
byte-identical to ``strategy="exact"`` while issuing several-fold fewer
behaviour-model invocations -- and every fallback route (no
declaration, non-monotone closed form, lying closed form) degrades to
the exact path rather than to wrong records.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.circuit.technology import CMOS018
from repro.defects.behavior import DefectBehaviorModel, ResistanceFrontier
from repro.defects.models import DefectKind
from repro.ifa.flow import TABLE1_RESISTANCES
from repro.perf.cache import EvaluationCache, frontier_cache_key
from repro.perf.frontier import FrontierPolicy
from repro.runner.campaign import CampaignRunner, SweepSpec
from repro.stress import production_conditions


def all_conditions():
    return tuple(production_conditions(CMOS018).values())


def table1_spec():
    return SweepSpec.of(DefectKind.BRIDGE, TABLE1_RESISTANCES,
                        all_conditions())


def opens_spec():
    resistances = tuple(float(r) for r in np.logspace(4, 7.5, 8))
    return SweepSpec.of(DefectKind.OPEN, resistances, all_conditions())


def records_bytes(records):
    """Canonical byte serialisation for exact-identity comparison."""
    return json.dumps([dataclasses.asdict(r) for r in records],
                      sort_keys=True).encode()


class OpaqueModel:
    """Delegates ``fails_condition`` only -- declares no frontier."""

    def __init__(self, inner):
        self._inner = inner

    def fails_condition(self, defect, condition):
        return self._inner.fails_condition(defect, condition)


class MonotonicityOnlyModel(OpaqueModel):
    """Declares the monotone orientation but no closed-form frontier."""

    def resistance_monotonicity(self, defect, condition):
        return self._inner.resistance_monotonicity(defect, condition)


class LyingFrontierModel(OpaqueModel):
    """Claims every site is detected at every resistance (a lie)."""

    def resistance_frontier(self, defect, condition):
        return ResistanceFrontier("detected_below", lambda r: True)


class NonMonotoneFrontierModel(OpaqueModel):
    """Closed form that contradicts its own declared orientation."""

    def resistance_frontier(self, defect, condition):
        return ResistanceFrontier("detected_above", lambda r: r < 5e3)


class TestAnalyticFrontiers:
    """The closed forms agree with the exact model, cell by cell."""

    @pytest.mark.parametrize("kind", [DefectKind.BRIDGE, DefectKind.OPEN])
    def test_matches_exact_model_everywhere(self, counting_campaign, kind):
        campaign = counting_campaign(n_sites=30)
        model = DefectBehaviorModel(CMOS018)
        population = (campaign.bridge_population()
                      if kind is DefectKind.BRIDGE
                      else campaign.open_population())
        grid = [float(r) for r in np.logspace(1, 7.5, 12)]
        for cond in all_conditions():
            for site in population:
                frontier = model.resistance_frontier(site, cond)
                assert frontier is not None
                assert frontier.orientation == (
                    model.resistance_monotonicity(site, cond))
                for r in grid:
                    exact = model.fails_condition(
                        site.with_resistance(r), cond)
                    assert frontier.detects(r) == exact, (
                        f"{site} at {r:g} under {cond.name}")


class TestEquivalence:
    def test_table1_byte_identical_with_5x_fewer_calls(
            self, counting_campaign):
        exact_campaign = counting_campaign()
        exact = CampaignRunner(exact_campaign).run([table1_spec()])
        frontier_campaign = counting_campaign()
        frontier = CampaignRunner(
            frontier_campaign, strategy="frontier").run([table1_spec()])
        assert records_bytes(exact.records) == records_bytes(
            frontier.records)
        # The ISSUE acceptance floor, as a call-count inequality.
        assert exact_campaign.behavior.calls >= (
            5 * frontier_campaign.behavior.calls)
        stats = frontier.frontier_stats
        assert stats is not None
        # The vectorised hook now derives every site in one call; the
        # per-site analytic inversion is its fallback.
        assert stats["batch_sites"] == stats["sites"]
        assert stats["crosscheck_mismatches"] == 0
        assert exact.frontier_stats is None

    def test_opens_sweep_byte_identical(self, counting_campaign):
        exact_campaign = counting_campaign()
        exact = CampaignRunner(exact_campaign).run([opens_spec()])
        frontier_campaign = counting_campaign()
        frontier = CampaignRunner(
            frontier_campaign, strategy="frontier").run([opens_spec()])
        assert records_bytes(exact.records) == records_bytes(
            frontier.records)
        assert exact_campaign.behavior.calls >= (
            5 * frontier_campaign.behavior.calls)


class TestFallbacks:
    def test_undeclared_model_runs_exact(self, counting_campaign):
        exact_campaign = counting_campaign()
        exact = CampaignRunner(exact_campaign).run([table1_spec()])
        opaque_campaign = counting_campaign(wrap=OpaqueModel)
        frontier = CampaignRunner(
            opaque_campaign, strategy="frontier").run([table1_spec()])
        assert records_bytes(exact.records) == records_bytes(
            frontier.records)
        stats = frontier.frontier_stats
        assert stats["exact_sites"] == stats["sites"]
        assert stats["analytic_sites"] == 0
        # No declarations -> no fast path: the call counts match.
        assert opaque_campaign.behavior.calls == (
            exact_campaign.behavior.calls)

    def test_monotonicity_only_bisects(self, counting_campaign):
        exact_campaign = counting_campaign()
        exact = CampaignRunner(exact_campaign).run([opens_spec()])
        mono_campaign = counting_campaign(wrap=MonotonicityOnlyModel)
        frontier = CampaignRunner(
            mono_campaign, strategy="frontier").run([opens_spec()])
        assert records_bytes(exact.records) == records_bytes(
            frontier.records)
        stats = frontier.frontier_stats
        assert stats["bisection_sites"] == stats["sites"]
        # O(log |R|) beats O(|R|) on an 8-point grid.
        assert mono_campaign.behavior.calls < (
            exact_campaign.behavior.calls)

    def test_lying_frontier_is_caught_by_crosscheck(
            self, counting_campaign):
        exact_campaign = counting_campaign()
        exact = CampaignRunner(exact_campaign).run([table1_spec()])
        lying_campaign = counting_campaign(wrap=LyingFrontierModel)
        frontier = CampaignRunner(
            lying_campaign, strategy="frontier",
            frontier_policy=FrontierPolicy(crosscheck_fraction=1.0),
        ).run([table1_spec()])
        assert records_bytes(exact.records) == records_bytes(
            frontier.records)
        stats = frontier.frontier_stats
        assert stats["crosscheck_mismatches"] > 0
        assert stats["demoted_sites"] > 0
        # The demotion ledger says why each site fell off the fast path.
        assert stats["demotions"]
        for entry in stats["demotions"]:
            assert entry["reason"] == "lying-model"
            assert entry["stage"] == "crosscheck"
            assert "derived row says" in entry["error"]

    def test_nonmonotone_frontier_rejected_by_shape_check(
            self, counting_campaign):
        exact_campaign = counting_campaign()
        exact = CampaignRunner(exact_campaign).run([table1_spec()])
        bad_campaign = counting_campaign(wrap=NonMonotoneFrontierModel)
        frontier = CampaignRunner(
            bad_campaign, strategy="frontier").run([table1_spec()])
        assert records_bytes(exact.records) == records_bytes(
            frontier.records)
        stats = frontier.frontier_stats
        assert stats["nonmonotone_rejects"] == stats["sites"]
        assert stats["analytic_sites"] == 0
        assert {d["reason"] for d in stats["demotions"]} == {
            "non-monotone"}
        assert {d["stage"] for d in stats["demotions"]} == {
            "shape-check"}


class TestRunnerIntegration:
    def test_unknown_strategy_rejected(self, counting_campaign):
        with pytest.raises(ValueError, match="strategy"):
            CampaignRunner(counting_campaign(), strategy="turbo")

    def test_frontier_is_serial_only(self, counting_campaign):
        with pytest.raises(ValueError, match="serial"):
            CampaignRunner(counting_campaign(), strategy="frontier",
                           workers=2)

    def test_group_tables_are_cached(self, counting_campaign):
        from repro.perf.frontier import TABLE_SCHEMA

        campaign = counting_campaign()
        cache = EvaluationCache()
        first = CampaignRunner(campaign, strategy="frontier",
                               cache=cache).run([table1_spec()])
        assert first.frontier_stats["cached_groups"] == 0
        assert any(isinstance(v, dict) and v.get("schema") == TABLE_SCHEMA
                   for v in cache.entries.values())
        # Keep only the table entries, so the second run must evaluate
        # its units -- from cached tables rather than re-derivation.
        table_cache = EvaluationCache()
        table_cache.entries = {
            k: v for k, v in cache.entries.items()
            if isinstance(v, dict) and v.get("schema") == TABLE_SCHEMA}
        calls_before_second = campaign.behavior.calls
        second = CampaignRunner(campaign, strategy="frontier",
                                cache=table_cache).run([table1_spec()])
        assert records_bytes(first.records) == records_bytes(
            second.records)
        stats = second.frontier_stats
        assert stats["cached_groups"] == len(all_conditions())
        assert stats["groups"] == 0
        # Cached tables skip even the cross-check: zero new model calls.
        assert campaign.behavior.calls == calls_before_second


class TestFrontierPolicy:
    @pytest.mark.parametrize("fraction", [-0.1, 1.5])
    def test_fraction_validated(self, fraction):
        with pytest.raises(ValueError):
            FrontierPolicy(crosscheck_fraction=fraction)


class TestFrontierCacheKey:
    def test_key_covers_grid_and_condition(self):
        conds = all_conditions()
        base = frontier_cache_key({"m": 1}, {"p": 1}, [1e3, 1e4], conds[0])
        assert base == frontier_cache_key({"m": 1}, {"p": 1},
                                          [1e3, 1e4], conds[0])
        assert base != frontier_cache_key({"m": 1}, {"p": 1},
                                          [1e3, 2e4], conds[0])
        assert base != frontier_cache_key({"m": 1}, {"p": 1},
                                          [1e3, 1e4], conds[1])
        assert base != frontier_cache_key({"m": 2}, {"p": 1},
                                          [1e3, 1e4], conds[0])
