"""Tests for the streaming-experiment benchmark and its artefact."""

import json
from pathlib import Path

import pytest

from repro.perf.experiment_bench import (
    EXPERIMENT_BENCH_SCHEMA,
    MIN_DEVICES_PER_SEC,
    MIN_LEGACY_SPEEDUP,
    ExperimentBenchConfig,
    run_experiment_benchmark,
    validate_experiment_bench,
)

#: Smaller even than ``.quick()``: the invariance/identity halves are
#: exact at any N and the throughput/speedup floors are structural, so
#: the suite stays seconds-scale.
TINY = ExperimentBenchConfig(devices=16_384,
                             shard_devices=8192,
                             alt_shard_devices=4096,
                             memory_devices=(8192, 32_768),
                             legacy_devices=4096,
                             invariance_devices=8192)


@pytest.fixture(scope="module")
def experiment_doc():
    """One tiny experiment benchmark run shared by the shape tests."""
    return run_experiment_benchmark(TINY)


class TestExperimentBenchDocument:
    def test_schema_valid(self, experiment_doc):
        assert validate_experiment_bench(experiment_doc) == []

    def test_headline_fields(self, experiment_doc):
        doc = experiment_doc
        assert doc["schema"] == EXPERIMENT_BENCH_SCHEMA
        assert doc["devices_per_sec"] >= MIN_DEVICES_PER_SEC
        assert doc["speedup_vs_legacy"] >= MIN_LEGACY_SPEEDUP
        assert doc["memory_independent"] is True
        assert doc["legacy_identical"] is True
        assert doc["shard_invariant"] is True
        assert doc["worker_invariant"] is True

    def test_streaming_section_covers_the_population(self, experiment_doc):
        streaming = experiment_doc["streaming"]
        assert streaming["devices"] == TINY.devices
        assert streaming["shards"] == TINY.devices // TINY.shard_devices
        assert streaming["defective"] > 0

    def test_memory_section_records_both_peaks(self, experiment_doc):
        memory = experiment_doc["memory"]
        assert memory["small_devices"] < memory["large_devices"]
        assert memory["small_peak_bytes"] > 0
        assert memory["peak_ratio"] <= 1.25

    def test_round_trips_through_json(self, experiment_doc):
        doc = json.loads(json.dumps(experiment_doc))
        assert validate_experiment_bench(doc) == []


class TestValidateExperimentBench:
    def test_rejects_non_object(self):
        assert validate_experiment_bench(None) == [
            "document is not a JSON object"]

    def test_reports_each_defect(self):
        problems = validate_experiment_bench({"schema": "wrong"})
        assert any("schema" in p for p in problems)
        assert any("streaming" in p for p in problems)
        assert any("shard_invariant" in p for p in problems)

    def test_enforces_throughput_floor(self, experiment_doc):
        doc = json.loads(json.dumps(experiment_doc))
        doc["devices_per_sec"] = MIN_DEVICES_PER_SEC / 2
        problems = validate_experiment_bench(doc)
        assert any("devices_per_sec" in p for p in problems)

    def test_enforces_speedup_floor(self, experiment_doc):
        doc = json.loads(json.dumps(experiment_doc))
        doc["speedup_vs_legacy"] = MIN_LEGACY_SPEEDUP - 0.1
        problems = validate_experiment_bench(doc)
        assert any("speedup_vs_legacy" in p for p in problems)

    def test_flags_failed_invariance(self, experiment_doc):
        doc = json.loads(json.dumps(experiment_doc))
        doc["worker_invariant"] = False
        problems = validate_experiment_bench(doc)
        assert problems == ["worker_invariant is not true"]

    def test_committed_artifact_is_valid(self):
        path = Path(__file__).resolve().parents[2] / (
            "BENCH_experiment.json")
        doc = json.loads(path.read_text())
        assert validate_experiment_bench(doc) == []
        assert doc["streaming"]["devices"] >= 1_000_000


class TestConfig:
    def test_quick_keeps_block_alignment(self):
        config = ExperimentBenchConfig.quick()
        assert config.devices % config.shard_devices == 0

    def test_rejects_inverted_memory_probe(self):
        with pytest.raises(ValueError, match="memory_devices"):
            ExperimentBenchConfig(memory_devices=(65_536, 4096))
