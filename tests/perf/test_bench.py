"""Tests for the benchmark harness: document shape and validation."""

import json

import pytest

from repro.perf.bench import (
    BENCH_SCHEMA,
    BenchConfig,
    SiteLatencyBehaviorModel,
    run_benchmark,
    validate_bench,
)


@pytest.fixture(scope="module")
def bench_doc():
    """One quick benchmark run shared by the shape tests."""
    return run_benchmark(BenchConfig.quick())


class TestSiteLatencyModel:
    def test_delegates_to_inner(self):
        class Fake:
            def fails_condition(self, defect, condition):
                return True

        model = SiteLatencyBehaviorModel(Fake(), latency=0.0)
        assert model.fails_condition(None, None) is True

    def test_is_fingerprintable(self):
        from repro.circuit.technology import CMOS018
        from repro.defects.behavior import DefectBehaviorModel
        from repro.perf.fingerprint import behavior_fingerprint
        from repro.runner.atomic import canonical_json

        inner = DefectBehaviorModel(CMOS018)
        a = behavior_fingerprint(SiteLatencyBehaviorModel(inner, 0.001))
        b = behavior_fingerprint(inner)
        assert canonical_json(a) != canonical_json(b)


class TestBenchDocument:
    def test_schema_valid(self, bench_doc):
        assert validate_bench(bench_doc) == []

    def test_headline_fields(self, bench_doc):
        assert bench_doc["schema"] == BENCH_SCHEMA
        assert bench_doc["cache_hit_rate"] == 1.0
        assert bench_doc["speedup_parallel"] > 0
        assert bench_doc["workloads"]["cpu"][
            "parallel_matches_serial"] is True

    def test_round_trips_through_json(self, bench_doc):
        assert validate_bench(json.loads(json.dumps(bench_doc))) == []


class TestWorkerClamp:
    """The cpu-bound workload never oversubscribes the host's cores."""

    def test_cpu_workers_clamped_to_visible_cpus(self, bench_doc):
        import os

        requested = bench_doc["config"]["workers"]
        cpu_parallel = bench_doc["workloads"]["cpu"]["parallel"]
        assert cpu_parallel["workers_requested"] == requested
        assert cpu_parallel["workers"] == min(requested,
                                              os.cpu_count() or 1)
        assert bench_doc["workloads"]["cpu"]["workers_clamped"] == (
            cpu_parallel["workers"] < requested)

    def test_sim_workload_keeps_requested_workers(self, bench_doc):
        """Latency-bound oversubscription is the sim workload's point."""
        sim_parallel = bench_doc["workloads"]["sim"]["parallel"]
        assert sim_parallel["workers"] == bench_doc["config"]["workers"]

    def test_validator_requires_clamp_fields(self, bench_doc):
        doc = json.loads(json.dumps(bench_doc))
        del doc["workloads"]["cpu"]["workers_clamped"]
        del doc["workloads"]["sim"]["parallel"]["workers_requested"]
        problems = validate_bench(doc)
        assert any("workers_clamped" in p for p in problems)
        assert any("workers_requested" in p for p in problems)


class TestValidateBench:
    def test_rejects_non_object(self):
        assert validate_bench([]) == ["document is not a JSON object"]

    def test_reports_each_defect(self):
        problems = validate_bench({"schema": "wrong"})
        assert any("schema" in p for p in problems)
        assert any("workloads" in p for p in problems)
        assert any("cache_hit_rate" in p for p in problems)

    def test_flags_failed_determinism_check(self, bench_doc):
        doc = json.loads(json.dumps(bench_doc))
        doc["workloads"]["sim"]["parallel_matches_serial"] = False
        assert any("parallel_matches_serial" in p
                   for p in validate_bench(doc))

    def test_committed_artifact_is_valid(self):
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "BENCH_campaign.json"
        doc = json.loads(path.read_text())
        assert validate_bench(doc) == []
        assert doc["cache_hit_rate"] >= 0.9
        assert doc["speedup_parallel"] >= 2.0
