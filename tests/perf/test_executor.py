"""Tests for repro.perf.executor: chunking, byte-identity, chaos, resume."""

import dataclasses
import json

import pytest

from repro.circuit.technology import CMOS018
from repro.defects.models import DefectKind
from repro.ifa.flow import IfaCampaign
from repro.memory.geometry import MemoryGeometry
from repro.perf.executor import (
    DEFAULT_CHUNKS_PER_WORKER,
    ParallelUnitExecutor,
    chunk_units,
)
from repro.runner.campaign import CampaignRunner, SweepSpec
from repro.runner.chaos import (
    ChaosBehaviorModel,
    FaultInjector,
    InjectedCrash,
)
from repro.runner.retry import RetryPolicy
from repro.runner.units import plan_units
from repro.stress import production_conditions

GEOM = MemoryGeometry(16, 2, 4)
N_SITES = 40
SEED = 11


def make_campaign(injector=None):
    campaign = IfaCampaign(GEOM, CMOS018, n_sites=N_SITES, seed=SEED)
    if injector is not None:
        campaign.behavior = ChaosBehaviorModel(campaign.behavior, injector)
    return campaign


def conditions(n=2):
    conds = production_conditions(CMOS018)
    return tuple(conds.values())[:n]


def bridge_spec():
    return SweepSpec.of(DefectKind.BRIDGE, (1e3, 10e3), conditions())


def wide_spec():
    return SweepSpec.of(DefectKind.BRIDGE, (20.0, 1e3, 10e3, 90e3),
                        conditions(3))


def records_bytes(records):
    return json.dumps([dataclasses.asdict(r) for r in records],
                      sort_keys=True).encode()


class TestChunking:
    def units(self, n):
        return plan_units(DefectKind.BRIDGE,
                          [float(i + 1) for i in range(n)], conditions(1))

    def test_chunks_cover_in_order(self):
        units = self.units(10)
        chunks = chunk_units(units, workers=3, chunksize=4)
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert [u.unit_id for c in chunks for u in c] == [
            u.unit_id for u in units]

    def test_auto_chunksize_targets_chunks_per_worker(self):
        units = self.units(32)
        chunks = chunk_units(units, workers=4)
        assert len(chunks) == 4 * DEFAULT_CHUNKS_PER_WORKER

    def test_small_input_one_unit_chunks(self):
        assert [len(c) for c in chunk_units(self.units(3), workers=4)] == [
            1, 1, 1]

    def test_empty_input(self):
        assert chunk_units([], workers=2) == []

    @pytest.mark.parametrize("kwargs", [
        dict(workers=0), dict(workers=2, chunksize=0),
    ])
    def test_invalid_arguments(self, kwargs):
        with pytest.raises(ValueError):
            chunk_units(self.units(2), **kwargs)


class TestParallelMatchesSerial:
    def test_byte_identical_records(self):
        """The headline guarantee: workers change nothing but wall time."""
        spec = wide_spec()
        serial = CampaignRunner(make_campaign()).run([spec])
        parallel = CampaignRunner(make_campaign(), workers=4).run([spec])
        assert records_bytes(parallel.records) == records_bytes(
            serial.records)
        assert parallel.executed_units == serial.executed_units
        assert parallel.retry_stats.calls == serial.retry_stats.calls

    def test_explicit_chunksize(self):
        spec = bridge_spec()
        serial = CampaignRunner(make_campaign()).run([spec])
        parallel = CampaignRunner(make_campaign(), workers=2,
                                  chunksize=3).run([spec])
        assert records_bytes(parallel.records) == records_bytes(
            serial.records)

    def test_executor_yields_plan_order(self):
        units = plan_units(DefectKind.BRIDGE, (1e3, 10e3), conditions())
        executor = ParallelUnitExecutor(make_campaign(), workers=2,
                                        chunksize=1)
        outcomes = list(executor.run(units))
        assert [o.unit_id for o in outcomes] == [u.unit_id for u in units]
        assert [o.index for o in outcomes] == [u.index for u in units]

    def test_empty_units(self):
        executor = ParallelUnitExecutor(make_campaign(), workers=2)
        assert list(executor.run([])) == []

    def test_workers_validation(self):
        with pytest.raises(ValueError, match="workers"):
            CampaignRunner(make_campaign(), workers=0)
        with pytest.raises(ValueError, match="workers"):
            ParallelUnitExecutor(make_campaign(), workers=0)


class TestResumeWithWorkers:
    def test_serial_checkpoint_resumes_parallel(self, tmp_path):
        """workers is an execution knob, not campaign identity."""
        ck = tmp_path / "ck.json"
        spec = wide_spec()
        baseline = CampaignRunner(make_campaign()).run([spec])

        inj = FaultInjector(crash_positions={"behavior.evaluate": {150}})
        with pytest.raises(InjectedCrash):
            CampaignRunner(make_campaign(inj),
                           checkpoint_path=ck).run([spec])

        resumed = CampaignRunner(make_campaign(), checkpoint_path=ck,
                                 workers=4).run([spec])
        assert resumed.resumed_units > 0
        assert resumed.executed_units > 0
        assert records_bytes(resumed.records) == records_bytes(
            baseline.records)

    def test_parallel_crash_resumes_serial(self, tmp_path):
        """A worker crash leaves a valid checkpointed prefix behind."""
        ck = tmp_path / "ck.json"
        spec = wide_spec()
        baseline = CampaignRunner(make_campaign()).run([spec])

        # Positions are per-process with workers; a small position
        # crashes whichever worker evaluates its first sites.
        inj = FaultInjector(crash_positions={"behavior.evaluate": {5}})
        with pytest.raises((InjectedCrash, Exception)):
            CampaignRunner(make_campaign(inj), checkpoint_path=ck,
                           workers=2, chunksize=1).run([spec])

        resumed = CampaignRunner(make_campaign(),
                                 checkpoint_path=ck).run([spec])
        assert records_bytes(resumed.records) == records_bytes(
            baseline.records)


class TestChaosWithWorkers:
    def test_rate_chaos_heals_under_retry(self):
        """Injected transient faults retry to clean records in workers."""
        spec = bridge_spec()
        healthy = CampaignRunner(make_campaign()).run([spec])
        inj = FaultInjector(seed=9,
                            rates={"behavior.evaluate": 0.02})
        chaotic = CampaignRunner(
            make_campaign(inj), workers=4,
            retry=RetryPolicy(max_attempts=6, base_delay=0.0, jitter=0.0),
        ).run([spec])
        # Clean records equal healthy values: an InjectedFault raises
        # before the inner evaluation, and the retry re-asks the pure
        # model.
        assert records_bytes(chaotic.records) == records_bytes(
            healthy.records)
        assert chaotic.total_errors == 0

    def test_injected_crash_propagates_from_worker(self):
        """BaseException crosses the pool boundary (no silent loss)."""
        inj = FaultInjector(crash_positions={"behavior.evaluate": {0}})
        runner = CampaignRunner(make_campaign(inj), workers=2,
                                chunksize=1)
        with pytest.raises(InjectedCrash):
            runner.run([bridge_spec()])
