"""Tests for repro.perf.batch: the scalar path as equivalence oracle.

The contract under test: ``strategy="batch"`` emits records
byte-identical to ``strategy="exact"`` serial for *every* model in the
capability matrix -- a correct vectorised hook, a model without the
hook, a hook that raises or returns the wrong shape, and a hook that
lies -- and under chaos, kill/resume and cache reuse.  Wall-clock is
the benchmark's business (:mod:`repro.perf.frontier_bench`); here the
speedup claim appears only as deterministic call-count inequalities.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.circuit.technology import CMOS018
from repro.defects.behavior import DefectBehaviorModel
from repro.defects.models import DefectKind
from repro.ifa.flow import TABLE1_RESISTANCES
from repro.perf.batch import BatchEvaluator
from repro.perf.cache import EvaluationCache
from repro.perf.fingerprint import (
    behavior_fingerprint,
    population_fingerprint,
)
from repro.runner.atomic import canonical_json
from repro.perf.frontier import FrontierPolicy, FrontierUnitEvaluator
from repro.runner.campaign import CampaignRunner, SweepSpec
from repro.runner.chaos import ChaosBehaviorModel, FaultInjector, InjectedCrash
from repro.runner.units import plan_units
from repro.stress import production_conditions


def all_conditions():
    return tuple(production_conditions(CMOS018).values())


def table1_spec():
    return SweepSpec.of(DefectKind.BRIDGE, TABLE1_RESISTANCES,
                        all_conditions())


def opens_spec():
    resistances = tuple(float(r) for r in np.logspace(4, 7.5, 8))
    return SweepSpec.of(DefectKind.OPEN, resistances, all_conditions())


def records_bytes(records):
    """Canonical byte serialisation for exact-identity comparison."""
    return json.dumps([dataclasses.asdict(r) for r in records],
                      sort_keys=True).encode()


class OpaqueModel:
    """Delegates ``fails_condition`` only -- offers no batch hook."""

    def __init__(self, inner):
        self._inner = inner

    def fails_condition(self, defect, condition):
        return self._inner.fails_condition(defect, condition)


class LyingBatchModel(OpaqueModel):
    """Claims every cell is detected (a lie the cross-check catches)."""

    def evaluate_batch(self, sites, resistances, condition):
        return np.ones((len(sites), len(resistances)), dtype=bool)


class BadShapeBatchModel(OpaqueModel):
    """Returns a transposed matrix (wrong shape, honest otherwise)."""

    def evaluate_batch(self, sites, resistances, condition):
        return np.zeros((len(resistances), len(sites)), dtype=bool)


class RaisingBatchModel(OpaqueModel):
    """A hook that blows up on every call."""

    def evaluate_batch(self, sites, resistances, condition):
        raise RuntimeError("vector unit on fire")


class TestBatchHookOracle:
    """evaluate_batch agrees with fails_condition, cell by cell."""

    @pytest.mark.parametrize("kind", [DefectKind.BRIDGE, DefectKind.OPEN])
    def test_matches_exact_model_everywhere(self, counting_campaign, kind):
        campaign = counting_campaign(n_sites=30)
        model = DefectBehaviorModel(CMOS018)
        population = (campaign.bridge_population()
                      if kind is DefectKind.BRIDGE
                      else campaign.open_population())
        grid = [float(r) for r in np.logspace(1, 7.5, 12)]
        for cond in all_conditions():
            matrix = model.evaluate_batch(population, grid, cond)
            assert matrix.shape == (len(population), len(grid))
            for i, site in enumerate(population):
                for j, r in enumerate(grid):
                    exact = model.fails_condition(
                        site.with_resistance(r), cond)
                    assert bool(matrix[i, j]) == exact, (
                        f"{site} at {r:g} under {cond.name}")


class TestEquivalence:
    def test_table1_byte_identical_with_5x_fewer_calls(
            self, counting_campaign):
        exact_campaign = counting_campaign()
        exact = CampaignRunner(exact_campaign).run([table1_spec()])
        batch_campaign = counting_campaign()
        batch = CampaignRunner(
            batch_campaign, strategy="batch").run([table1_spec()])
        assert records_bytes(exact.records) == records_bytes(batch.records)
        # The ISSUE acceptance floor, as a call-count inequality (the
        # only counted calls left are the cross-check sample).
        assert exact_campaign.behavior.calls >= (
            5 * batch_campaign.behavior.calls)
        stats = batch.batch_stats
        assert stats is not None
        assert stats["batch_sites"] == stats["sites"]
        assert stats["fallback_sites"] == 0
        assert stats["demoted_sites"] == 0
        assert stats["crosscheck_mismatches"] == 0
        assert stats["model_invocations"] == stats[
            "crosscheck_invocations"] == batch_campaign.behavior.calls
        assert exact.batch_stats is None

    def test_opens_sweep_byte_identical(self, counting_campaign):
        exact_campaign = counting_campaign()
        exact = CampaignRunner(exact_campaign).run([opens_spec()])
        batch_campaign = counting_campaign()
        batch = CampaignRunner(
            batch_campaign, strategy="batch").run([opens_spec()])
        assert records_bytes(exact.records) == records_bytes(batch.records)
        assert exact_campaign.behavior.calls >= (
            5 * batch_campaign.behavior.calls)

    def test_matches_parallel_exact_run(self, counting_campaign):
        parallel = CampaignRunner(
            counting_campaign(), workers=4).run([table1_spec()])
        batch = CampaignRunner(
            counting_campaign(), strategy="batch").run([table1_spec()])
        assert records_bytes(parallel.records) == records_bytes(
            batch.records)


class TestFallbacks:
    """Every capability gap degrades to the exact path, never to
    wrong records."""

    def run_pair(self, counting_campaign, wrap, **runner_kwargs):
        exact = CampaignRunner(
            counting_campaign(wrap=wrap)).run([table1_spec()])
        campaign = counting_campaign(wrap=wrap)
        batch = CampaignRunner(campaign, strategy="batch",
                               **runner_kwargs).run([table1_spec()])
        assert records_bytes(exact.records) == records_bytes(batch.records)
        return batch.batch_stats

    def test_opaque_model_falls_back_silently(self, counting_campaign):
        stats = self.run_pair(counting_campaign, OpaqueModel)
        assert stats["fallback_sites"] == stats["sites"]
        assert stats["batch_sites"] == 0
        assert stats["demotions"] == []

    def test_raising_hook_falls_back_with_ledger(self, counting_campaign):
        stats = self.run_pair(counting_campaign, RaisingBatchModel)
        assert stats["fallback_sites"] == stats["sites"]
        assert stats["batch_sites"] == 0
        assert len(stats["demotions"]) == len(stats["group_log"])
        entry = stats["demotions"][0]
        assert entry["reason"] == "probe-error"
        assert entry["stage"] == "batch"
        assert entry["site_index"] == -1
        assert "vector unit on fire" in entry["error"]

    def test_bad_shape_falls_back_with_ledger(self, counting_campaign):
        stats = self.run_pair(counting_campaign, BadShapeBatchModel)
        assert stats["fallback_sites"] == stats["sites"]
        reasons = {d["reason"] for d in stats["demotions"]}
        assert reasons == {"bad-shape"}

    def test_lying_hook_demoted_by_full_crosscheck(self, counting_campaign):
        policy = FrontierPolicy(batch_crosscheck_fraction=1.0)
        stats = self.run_pair(counting_campaign, LyingBatchModel,
                              frontier_policy=policy)
        # Checking every cell catches every lying site; the records
        # above were still byte-identical because demoted sites rerun
        # exactly per unit.
        assert stats["crosscheck_mismatches"] > 0
        assert stats["demoted_sites"] > 0
        entry = next(d for d in stats["demotions"]
                     if d["reason"] == "lying-model")
        assert entry["stage"] == "crosscheck"
        assert entry["site_index"] >= 0
        assert "batch row says" in entry["error"]

    def test_default_sparse_crosscheck_still_catches_the_liar(
            self, counting_campaign):
        # An all-True hook is wrong class-wide, so even the default 1%
        # sample trips on sampled undetectable cells and flags the
        # model.  Only the sampled sites are *corrected*, though --
        # full correction under a hostile hook needs fraction 1.0
        # (previous test); the sparse default is a tripwire, and the
        # mismatch counter is the signal operators alarm on.
        result = CampaignRunner(
            counting_campaign(wrap=LyingBatchModel),
            strategy="batch").run([table1_spec()])
        stats = result.batch_stats
        assert stats["crosscheck_mismatches"] > 0
        assert stats["demoted_sites"] == stats["crosscheck_mismatches"]


class TestChaosEquivalence:
    """Batch + faults == exact + faults: pattern, ledger and records."""

    def chaos_run(self, counting_campaign, injector, strategy):
        campaign = counting_campaign()
        campaign.behavior = ChaosBehaviorModel(campaign.behavior, injector)
        return CampaignRunner(campaign, strategy=strategy).run(
            [table1_spec()])

    def test_chaos_model_declines_the_hook(self):
        chaos = ChaosBehaviorModel(DefectBehaviorModel(CMOS018),
                                   FaultInjector())
        assert chaos.evaluate_batch is None

    def test_flaky_faults_identical_ledgers(self, counting_campaign):
        exact = self.chaos_run(
            counting_campaign,
            FaultInjector(seed=7, rates={"behavior.evaluate": 0.05}),
            "exact")
        batch = self.chaos_run(
            counting_campaign,
            FaultInjector(seed=7, rates={"behavior.evaluate": 0.05}),
            "batch")
        assert records_bytes(exact.records) == records_bytes(batch.records)
        assert exact.quarantine == batch.quarantine
        assert dataclasses.asdict(exact.retry_stats) == dataclasses.asdict(
            batch.retry_stats)

    def test_positional_faults_identical_quarantine(self,
                                                    counting_campaign):
        positions = {"behavior.evaluate": {0, 1, 2, 40, 41, 42}}
        exact = self.chaos_run(counting_campaign,
                               FaultInjector(positions=positions), "exact")
        batch = self.chaos_run(counting_campaign,
                               FaultInjector(positions=positions), "batch")
        assert exact.quarantine, "the burst should exhaust retries"
        assert records_bytes(exact.records) == records_bytes(batch.records)
        assert exact.quarantine == batch.quarantine

    def test_chaos_batch_run_is_all_fallback(self, counting_campaign):
        batch = self.chaos_run(counting_campaign, FaultInjector(), "batch")
        stats = batch.batch_stats
        assert stats["fallback_sites"] == stats["sites"]
        assert stats["batch_sites"] == 0


class TestResume:
    def test_killed_batch_campaign_resumes_byte_identical(
            self, tmp_path, counting_campaign):
        make = counting_campaign
        baseline = CampaignRunner(make()).run([table1_spec()])
        ck = tmp_path / "ck.json"
        inj = FaultInjector(crash_positions={"io.replace": {4}})
        with pytest.raises(InjectedCrash):
            CampaignRunner(make(), checkpoint_path=ck, strategy="batch",
                           fault_hook=inj.check).run([table1_spec()])
        resumed = CampaignRunner(make(), checkpoint_path=ck,
                                 strategy="batch").run([table1_spec()])
        assert resumed.resumed_units > 0
        assert records_bytes(resumed.records) == records_bytes(
            baseline.records)

    def test_exact_checkpoint_resumes_under_batch(self, tmp_path,
                                                  counting_campaign):
        baseline = CampaignRunner(counting_campaign()).run([table1_spec()])
        ck = tmp_path / "ck.json"
        inj = FaultInjector(crash_positions={"io.replace": {7}})
        with pytest.raises(InjectedCrash):
            CampaignRunner(counting_campaign(), checkpoint_path=ck,
                           fault_hook=inj.check).run([table1_spec()])
        resumed = CampaignRunner(counting_campaign(), checkpoint_path=ck,
                                 strategy="batch").run([table1_spec()])
        assert resumed.resumed_units > 0
        assert records_bytes(resumed.records) == records_bytes(
            baseline.records)


class TestCacheInterop:
    def plan(self):
        return plan_units(DefectKind.BRIDGE, TABLE1_RESISTANCES,
                          all_conditions())

    def evaluate_all(self, evaluator):
        return [evaluator.evaluate(u).record for u in self.plan()]

    def test_exact_warmed_cache_serves_batch_run(self, counting_campaign):
        cache = EvaluationCache()
        exact = CampaignRunner(counting_campaign(),
                               cache=cache).run([table1_spec()])
        campaign = counting_campaign()
        batch = CampaignRunner(campaign, cache=cache,
                               strategy="batch").run([table1_spec()])
        assert batch.cached_units == len(batch.records)
        assert campaign.behavior.calls == 0
        assert records_bytes(exact.records) == records_bytes(batch.records)

    def test_frontier_table_serves_batch_and_back(self, counting_campaign):
        """Both strategies read and write the same group-table rows."""
        cache = EvaluationCache()
        plan = self.plan()
        frontier_campaign = counting_campaign()
        frontier = FrontierUnitEvaluator(frontier_campaign, plan,
                                         cache=cache)
        frontier_records = self.evaluate_all(frontier)
        assert frontier.stats.groups > 0

        batch_campaign = counting_campaign()
        batch = BatchEvaluator(batch_campaign, plan, cache=cache)
        batch_records = self.evaluate_all(batch)
        assert batch.stats.cached_groups == frontier.stats.groups
        assert batch.stats.groups == 0
        # Cached tables are trusted: zero scalar invocations at all.
        assert batch_campaign.behavior.calls == 0
        assert records_bytes(frontier_records) == records_bytes(
            batch_records)

        # ... and the reverse direction: a batch-derived table serves
        # a later frontier evaluator.
        fresh_cache = EvaluationCache()
        warm = BatchEvaluator(counting_campaign(), plan, cache=fresh_cache)
        self.evaluate_all(warm)
        served_campaign = counting_campaign()
        served = FrontierUnitEvaluator(served_campaign, plan,
                                       cache=fresh_cache)
        served_records = self.evaluate_all(served)
        assert served.stats.cached_groups == warm.stats.groups
        assert served_campaign.behavior.calls == 0
        assert records_bytes(served_records) == records_bytes(
            batch_records)


class TestFingerprintStability:
    """Batch capability must not fork the cache-key space."""

    def test_hook_is_invisible_to_behavior_fingerprint(self):
        doc = canonical_json(behavior_fingerprint(
            DefectBehaviorModel(CMOS018)))
        assert "evaluate_batch" not in doc

    def test_population_memo_is_invisible_to_fingerprints(
            self, counting_campaign):
        campaign = counting_campaign()
        before = canonical_json(
            population_fingerprint(campaign, DefectKind.BRIDGE))
        campaign.bridge_population()  # fill the underscore memo
        after = canonical_json(
            population_fingerprint(campaign, DefectKind.BRIDGE))
        assert before == after


class TestGuards:
    def test_batch_strategy_is_serial_only(self, counting_campaign):
        with pytest.raises(ValueError, match="serial"):
            CampaignRunner(counting_campaign(), strategy="batch",
                           workers=4)

    def test_unknown_strategy_rejected(self, counting_campaign):
        with pytest.raises(ValueError, match="strategy"):
            CampaignRunner(counting_campaign(), strategy="turbo")

    def test_policy_validates_batch_fraction(self):
        with pytest.raises(ValueError, match="batch_crosscheck_fraction"):
            FrontierPolicy(batch_crosscheck_fraction=1.5)

    def test_unit_deadline_must_be_positive(self, counting_campaign):
        with pytest.raises(ValueError, match="unit_deadline"):
            BatchEvaluator(counting_campaign(), [], unit_deadline=0.0)
