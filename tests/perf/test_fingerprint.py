"""Tests for repro.perf.fingerprint: stability, sensitivity, refusal."""

import numpy as np
import pytest

from repro.circuit.technology import CMOS013, CMOS018
from repro.defects.behavior import BehaviorParams, DefectBehaviorModel
from repro.defects.models import DefectKind
from repro.ifa.flow import IfaCampaign
from repro.memory.geometry import MemoryGeometry
from repro.perf.fingerprint import (
    FingerprintError,
    behavior_fingerprint,
    fingerprint_digest,
    fingerprint_document,
    population_fingerprint,
)
from repro.runner.atomic import canonical_json

GEOM = MemoryGeometry(16, 2, 4)


def make_campaign(**kwargs):
    defaults = dict(n_sites=40, seed=11)
    defaults.update(kwargs)
    return IfaCampaign(GEOM, CMOS018, **defaults)


class TestFingerprintDocument:
    def test_primitives_pass_through(self):
        assert fingerprint_document(None) is None
        assert fingerprint_document(True) is True
        assert fingerprint_document(3) == 3
        assert fingerprint_document("x") == "x"

    def test_float_round_trips_exactly(self):
        doc = fingerprint_document(0.1 + 0.2)
        assert doc == ["f", repr(0.1 + 0.2)]

    def test_enum_includes_class(self):
        doc = fingerprint_document(DefectKind.BRIDGE)
        assert doc == ["enum", "DefectKind", "bridge"]

    def test_numpy_scalars_and_arrays(self):
        assert fingerprint_document(np.float64(1.5)) == ["f", "1.5"]
        assert fingerprint_document(np.int64(7)) == 7
        doc = fingerprint_document(np.array([1.0, 2.0]))
        assert doc == [["f", "1.0"], ["f", "2.0"]]

    def test_dict_keys_must_be_strings(self):
        with pytest.raises(FingerprintError, match="not a string"):
            fingerprint_document({1: "a"})

    def test_set_order_is_canonical(self):
        a = fingerprint_document({"b", "a", "c"})
        b = fingerprint_document({"c", "a", "b"})
        assert a == b

    def test_document_is_json_canonicalisable(self):
        doc = fingerprint_document(DefectBehaviorModel(CMOS018))
        canonical_json(doc)  # must not raise

    def test_unfingerprintable_names_path(self):
        class Holder:
            def __init__(self):
                self.rng = np.random.default_rng(0)

        with pytest.raises(FingerprintError, match=r"\$\.rng"):
            fingerprint_document(Holder())

    def test_cycle_is_refused(self):
        a = {}
        a["self"] = a
        with pytest.raises(FingerprintError, match="cyclic"):
            fingerprint_document(a)

    def test_private_attributes_are_skipped(self):
        class WithCache:
            def __init__(self, x):
                self.x = x
                self._memo = object()  # unfingerprintable, but private

        assert (fingerprint_document(WithCache(1))
                == ["obj", "TestFingerprintDocument.test_private_"
                    "attributes_are_skipped.<locals>.WithCache", {"x": 1}])


class TestBehaviorFingerprint:
    def test_stable_across_instances(self):
        a = behavior_fingerprint(DefectBehaviorModel(CMOS018))
        b = behavior_fingerprint(DefectBehaviorModel(CMOS018))
        assert canonical_json(a) == canonical_json(b)

    def test_sensitive_to_technology(self):
        a = behavior_fingerprint(DefectBehaviorModel(CMOS018))
        b = behavior_fingerprint(DefectBehaviorModel(CMOS013))
        assert canonical_json(a) != canonical_json(b)

    def test_sensitive_to_calibration_constant(self):
        base = BehaviorParams()
        tweaked = BehaviorParams(rail_c=base.rail_c * 1.01)
        a = behavior_fingerprint(DefectBehaviorModel(CMOS018, params=base))
        b = behavior_fingerprint(
            DefectBehaviorModel(CMOS018, params=tweaked))
        assert canonical_json(a) != canonical_json(b)


class TestPopulationFingerprint:
    def test_stable_across_instances(self):
        a = population_fingerprint(make_campaign(), DefectKind.BRIDGE)
        b = population_fingerprint(make_campaign(), DefectKind.BRIDGE)
        assert canonical_json(a) == canonical_json(b)

    @pytest.mark.parametrize("change", [
        dict(seed=12), dict(n_sites=41),
    ])
    def test_sensitive_to_campaign_knobs(self, change):
        a = population_fingerprint(make_campaign(), DefectKind.BRIDGE)
        b = population_fingerprint(make_campaign(**change),
                                   DefectKind.BRIDGE)
        assert canonical_json(a) != canonical_json(b)

    def test_sensitive_to_kind(self):
        campaign = make_campaign()
        a = population_fingerprint(campaign, DefectKind.BRIDGE)
        b = population_fingerprint(campaign, DefectKind.OPEN)
        assert canonical_json(a) != canonical_json(b)

    def test_missing_attribute_raises(self):
        with pytest.raises(FingerprintError, match="required attribute"):
            population_fingerprint(object(), DefectKind.BRIDGE)


class TestDigest:
    def test_digest_is_sha256_hex(self):
        digest = fingerprint_digest({"a": 1})
        assert len(digest) == 64
        int(digest, 16)  # hex

    def test_equal_inputs_equal_digests(self):
        assert (fingerprint_digest(DefectBehaviorModel(CMOS018))
                == fingerprint_digest(DefectBehaviorModel(CMOS018)))
