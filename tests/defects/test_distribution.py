"""Tests for repro.defects.distribution."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.defects.distribution import (
    DefectDensity,
    LognormalComponent,
    ResistanceDistribution,
    default_bridge_distribution,
    default_open_distribution,
)


@pytest.fixture(scope="module")
def bridge_dist():
    return default_bridge_distribution()


@pytest.fixture(scope="module")
def open_dist():
    return default_open_distribution()


class TestComponentValidation:
    def test_negative_weight(self):
        with pytest.raises(ValueError):
            LognormalComponent(-0.1, 100.0, 1.0)

    def test_zero_median(self):
        with pytest.raises(ValueError):
            LognormalComponent(0.5, 0.0, 1.0)

    def test_empty_mixture(self):
        with pytest.raises(ValueError):
            ResistanceDistribution([])

    def test_weights_normalised(self):
        d = ResistanceDistribution([
            LognormalComponent(2.0, 100.0, 1.0),
            LognormalComponent(2.0, 1000.0, 1.0),
        ])
        assert sum(c.weight for c in d.components) == pytest.approx(1.0)


class TestCdf:
    def test_limits(self, bridge_dist):
        assert bridge_dist.cdf(0.0) == 0.0
        assert bridge_dist.cdf(1e12) == pytest.approx(1.0, abs=1e-6)

    @given(st.floats(min_value=0.1, max_value=1e8),
           st.floats(min_value=1.01, max_value=100.0))
    @settings(max_examples=60)
    def test_monotone(self, r, factor):
        d = default_bridge_distribution()
        assert d.cdf(r * factor) >= d.cdf(r)

    def test_band_probability(self, bridge_dist):
        p = bridge_dist.band_probability(10.0, 1e3)
        assert 0.0 < p < 1.0
        assert p == pytest.approx(bridge_dist.cdf(1e3) - bridge_dist.cdf(10.0))

    def test_band_validation(self, bridge_dist):
        with pytest.raises(ValueError):
            bridge_dist.band_probability(100.0, 10.0)

    def test_pdf_integrates_to_cdf(self, bridge_dist):
        """Numeric integral of pdf over a band matches the cdf diff."""
        grid = np.logspace(1, 3, 2000)
        total = np.trapezoid([bridge_dist.pdf(r) for r in grid], grid)
        assert total == pytest.approx(bridge_dist.band_probability(10, 1e3),
                                      rel=0.01)


class TestShapes:
    def test_bridges_mostly_low_ohmic(self, bridge_dist):
        """The fab-shape assumption behind Table 1's defect coverage."""
        assert bridge_dist.cdf(500.0) > 0.6
        assert bridge_dist.band_probability(30e3, 1e12) < 0.1

    def test_opens_reach_megohms(self, open_dist):
        """Figure 8's relevant range must carry real probability."""
        assert open_dist.band_probability(1.5e6, 1e12) > 0.02

    def test_sampling_matches_cdf(self, bridge_dist):
        rng = np.random.default_rng(1)
        samples = bridge_dist.sample(rng, 20000)
        empirical = float(np.mean(samples <= 1e3))
        assert empirical == pytest.approx(bridge_dist.cdf(1e3), abs=0.02)

    def test_sampling_deterministic_with_seed(self, open_dist):
        a = open_dist.sample(np.random.default_rng(7), 10)
        b = open_dist.sample(np.random.default_rng(7), 10)
        assert np.allclose(a, b)


class TestQuantileGrid:
    def test_grid_covers_bulk(self, bridge_dist):
        grid = bridge_dist.quantile_grid(32)
        assert len(grid) == 32
        assert bridge_dist.cdf(grid[0]) < 0.01
        assert bridge_dist.cdf(grid[-1]) > 0.99

    def test_grid_sorted(self, open_dist):
        grid = open_dist.quantile_grid(16)
        assert np.all(np.diff(grid) > 0)


class TestDefectDensity:
    def test_yield_formula(self):
        d = DefectDensity(d0_per_cm2=1.0)
        area_um2 = 1e8  # 1 cm^2
        assert d.yield_fraction(area_um2) == pytest.approx(math.exp(-1.0))

    def test_defects_per_chip_linear_in_area(self):
        d = DefectDensity(d0_per_cm2=2.0)
        assert d.defects_per_chip(2e6) == pytest.approx(
            2.0 * d.defects_per_chip(1e6))

    def test_validation(self):
        with pytest.raises(ValueError):
            DefectDensity(d0_per_cm2=0.0)
        with pytest.raises(ValueError):
            DefectDensity(bridge_fraction=1.5)
        with pytest.raises(ValueError):
            DefectDensity().defects_per_chip(-1.0)
