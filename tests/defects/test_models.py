"""Tests for repro.defects.models."""

import pytest

from repro.defects.models import (
    BridgeSite,
    Defect,
    DefectKind,
    OpenSite,
    bridge,
    open_defect,
)


class TestDefectValidation:
    def test_bridge_constructor(self):
        d = bridge(BridgeSite.CELL_NODE_RAIL, 1e3, cell=5, polarity=1)
        assert d.kind is DefectKind.BRIDGE
        assert d.resistance == 1e3
        assert d.cell == 5

    def test_open_constructor(self):
        d = open_defect(OpenSite.DECODER_INPUT, 1e6)
        assert d.kind is DefectKind.OPEN

    def test_kind_site_mismatch_rejected(self):
        with pytest.raises(TypeError):
            Defect(DefectKind.BRIDGE, OpenSite.CELL_ACCESS, 1e3)
        with pytest.raises(TypeError):
            Defect(DefectKind.OPEN, BridgeSite.CELL_NODE_RAIL, 1e3)

    def test_non_positive_resistance_rejected(self):
        with pytest.raises(ValueError):
            bridge(BridgeSite.CELL_NODE_RAIL, 0.0)

    def test_bad_strength_rejected(self):
        with pytest.raises(ValueError):
            bridge(BridgeSite.CELL_NODE_RAIL, 1e3, strength=0.0)

    def test_bad_polarity_rejected(self):
        with pytest.raises(ValueError):
            bridge(BridgeSite.CELL_NODE_RAIL, 1e3, polarity=0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            bridge(BridgeSite.CELL_NODE_RAIL, 1e3, weight=-1.0)


class TestWithResistance:
    def test_copy_semantics(self):
        d = bridge(BridgeSite.CELL_NODE_NODE, 1e3, strength=2.0, cell=7)
        d2 = d.with_resistance(5e4)
        assert d2.resistance == 5e4
        assert d2.strength == 2.0 and d2.cell == 7
        assert d.resistance == 1e3  # original untouched

    def test_str_contains_site_and_r(self):
        d = open_defect(OpenSite.BITLINE_SEGMENT, 2e6)
        assert "bitline_segment" in str(d)
        assert "2,000,000" in str(d)


class TestTaxonomy:
    def test_bridge_sites_cover_paper_mechanisms(self):
        names = {s.name for s in BridgeSite}
        assert "CELL_NODE_RAIL" in names       # VLV divider class
        assert "EQUIVALENT_NODE" in names      # never-detected floor

    def test_open_sites_cover_paper_mechanisms(self):
        names = {s.name for s in OpenSite}
        assert "DECODER_INPUT" in names        # Figures 5/6, Chip-2
        assert "BITLINE_SEGMENT" in names      # Figure 8 / Chip-3
        assert "PERIPHERY_PATH" in names       # Chip-4
