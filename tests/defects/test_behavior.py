"""Tests for repro.defects.behavior -- the stress-manifestation engine.

Locks in every electrical mechanism the paper's conclusions rest on.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.technology import CMOS018
from repro.defects.behavior import DefectBehaviorModel, FaultMode
from repro.defects.models import BridgeSite, OpenSite, bridge, open_defect
from repro.stress import StressCondition, production_conditions


@pytest.fixture(scope="module")
def model():
    return DefectBehaviorModel(CMOS018)


@pytest.fixture(scope="module")
def conds():
    return production_conditions(CMOS018)


class TestRailBridgeClass:
    """Section 4.1: the voltage-divider mechanism."""

    def test_critical_resistance_decreases_with_vdd(self, model):
        rs = [model.bridge_critical_resistance(BridgeSite.CELL_NODE_RAIL, v)
              for v in (1.0, 1.65, 1.8, 1.95)]
        assert all(a > b for a, b in zip(rs, rs[1:]))

    def test_vlv_detects_several_times_higher_r(self, model):
        """Kruseman 02 / Section 4.1: VLV reaches ~5x the resistance of
        nominal-voltage testing."""
        r_vlv = model.bridge_critical_resistance(BridgeSite.CELL_NODE_RAIL, 1.0)
        r_nom = model.bridge_critical_resistance(BridgeSite.CELL_NODE_RAIL, 1.8)
        assert 4.0 < r_vlv / r_nom < 12.0

    def test_chip1_signature_vlv_only(self, model, conds):
        """A high-ohmic rail bridge fails only the VLV condition."""
        d = bridge(BridgeSite.CELL_NODE_RAIL, 150e3, polarity=1)
        fails = {n: model.fails_condition(d, c) for n, c in conds.items()}
        assert fails == {"VLV": True, "Vmin": False, "Vnom": False,
                         "Vmax": False, "at-speed": False}

    def test_low_ohmic_bridge_fails_everywhere(self, model, conds):
        d = bridge(BridgeSite.CELL_NODE_RAIL, 20.0)
        assert all(model.fails_condition(d, c) for c in conds.values())

    def test_manifests_as_cell_stuck_with_polarity(self, model, conds):
        d = bridge(BridgeSite.CELL_NODE_RAIL, 150e3, polarity=1, cell=42)
        m = model.manifestation(d, conds["VLV"])
        assert m.mode is FaultMode.CELL_STUCK
        assert m.stuck_value == 1          # Chip-1: stuck-at-1 behaviour
        assert m.cell == 42

    def test_strength_scales_threshold(self, model):
        r1 = model.bridge_critical_resistance(BridgeSite.CELL_NODE_RAIL,
                                              1.8, strength=1.0)
        r2 = model.bridge_critical_resistance(BridgeSite.CELL_NODE_RAIL,
                                              1.8, strength=2.0)
        assert r2 == pytest.approx(2.0 * r1)

    @given(st.floats(min_value=0.85, max_value=2.2),
           st.floats(min_value=0.01, max_value=0.3))
    @settings(max_examples=50)
    def test_monotone_everywhere(self, vdd, dv):
        model = DefectBehaviorModel(CMOS018)
        site = BridgeSite.CELL_NODE_RAIL
        assert (model.bridge_critical_resistance(site, vdd)
                >= model.bridge_critical_resistance(site, vdd + dv))


class TestOtherBridgeClasses:
    def test_snm_class_vlv_window(self, model):
        r_vlv = model.bridge_critical_resistance(BridgeSite.CELL_NODE_NODE, 1.0)
        r_nom = model.bridge_critical_resistance(BridgeSite.CELL_NODE_NODE, 1.8)
        assert r_vlv > 50 * r_nom

    def test_wordline_class_vlv_only(self, model, conds):
        d = bridge(BridgeSite.WORDLINE_CELL, 20.0)
        assert model.fails_condition(d, conds["VLV"])
        assert not model.fails_condition(d, conds["Vmin"])

    def test_equivalent_node_never_detected(self, model, conds):
        d = bridge(BridgeSite.EQUIVALENT_NODE, 1.0)
        assert not any(model.fails_condition(d, c) for c in conds.values())

    def test_bitline_masked_at_high_vdd(self, model):
        d = bridge(BridgeSite.BITLINE_BITLINE, 1e3)
        slow = 100e-9
        assert model.fails_condition(
            d, StressCondition("lo", 1.0, slow))
        assert not model.fails_condition(
            d, StressCondition("hi", 2.1, slow))

    def test_periphery_needs_hard_short(self, model, conds):
        hard = bridge(BridgeSite.PERIPHERY_METAL, 20.0)
        soft = bridge(BridgeSite.PERIPHERY_METAL, 10e3)
        assert model.fails_condition(hard, conds["Vnom"])
        assert not model.fails_condition(soft, conds["Vnom"])


class TestOpenDelayClasses:
    """Section 4.3 / Figure 8: frequency-dependent open detection."""

    def test_figure8_anchors(self, model):
        """4 Mohm floor at 50 MHz, 1.5 Mohm at 100 MHz."""
        r50 = model.open_detection_threshold(period=20e-9)
        r100 = model.open_detection_threshold(period=10e-9)
        assert r50 == pytest.approx(4e6, rel=0.05)
        assert r100 == pytest.approx(1.5e6, rel=0.05)

    def test_threshold_decreases_with_frequency(self, model):
        periods = [40e-9, 20e-9, 10e-9, 7e-9]
        ths = [model.open_detection_threshold(p) for p in periods]
        assert all(a > b for a, b in zip(ths, ths[1:]))

    def test_open_between_thresholds_escapes_slow_test(self, model):
        """A 2.5 Mohm open escapes at 50 MHz but is caught at 100 MHz --
        the paper's argument for testing at (or above) specified speed."""
        d = open_defect(OpenSite.BITLINE_SEGMENT, 2.5e6)
        at_50 = StressCondition("50MHz", 1.8, 20e-9)
        at_100 = StressCondition("100MHz", 1.8, 10e-9)
        assert not model.fails_condition(d, at_50)
        assert model.fails_condition(d, at_100)

    def test_chip3_near_vertical_boundary(self, model):
        """Bitline-segment opens: pass/fail period almost independent of
        supply in the operating range (Chip-3's shmoo)."""
        d = open_defect(OpenSite.BITLINE_SEGMENT, 3e6)
        failing_periods = {}
        for vdd in (1.5, 1.8, 2.1):
            for period in (20e-9, 17e-9, 16e-9, 14e-9):
                c = StressCondition("p", vdd, period)
                failing_periods.setdefault(vdd, set())
                if model.fails_condition(d, c):
                    failing_periods[vdd].add(period)
        assert failing_periods[1.5] == failing_periods[1.8] == \
            failing_periods[2.1]

    def test_periphery_boundary_moves_with_voltage(self, model):
        """Chip-4: the delay scales with gate delay -> voltage dependent."""
        d = open_defect(OpenSite.PERIPHERY_PATH, 3e6)
        period = 12e-9
        low = StressCondition("lo", 1.4, period)
        high = StressCondition("hi", 2.0, period)
        assert model.fails_condition(d, low)
        assert not model.fails_condition(d, high)


class TestDecoderOpenClass:
    """Section 4.2 / Figures 5-7: the Vmax-only class."""

    def test_detection_voltage_decreases_with_resistance(self, model):
        v1 = model.decoder_open_detection_voltage(
            open_defect(OpenSite.DECODER_INPUT, 1e5))
        v2 = model.decoder_open_detection_voltage(
            open_defect(OpenSite.DECODER_INPUT, 1e7))
        assert v1 > v2

    def test_chip2_signature_vmax_only_any_frequency(self, model, conds):
        d = open_defect(OpenSite.DECODER_INPUT, 5e5)
        v_det = model.decoder_open_detection_voltage(d)
        assert 1.8 < v_det <= 1.95
        assert model.fails_condition(d, conds["Vmax"])
        assert not model.fails_condition(d, conds["Vnom"])
        assert not model.fails_condition(d, conds["VLV"])
        # Frequency independence: Vmax at speed also fails.
        assert model.fails_condition(
            d, StressCondition("fast-vmax", 1.95, 15e-9))

    def test_wrong_site_rejected(self, model):
        with pytest.raises(ValueError):
            model.decoder_open_detection_voltage(
                open_defect(OpenSite.CELL_ACCESS, 1e6))

    def test_manifests_as_address_hazard(self, model, conds):
        d = open_defect(OpenSite.DECODER_INPUT, 2e6, cell=9)
        m = model.manifestation(d, conds["Vmax"])
        assert m.mode is FaultMode.ADDRESS_HAZARD


class TestPullupOpenClass:
    """The VLV+Vmax overlap class of Figure 11."""

    def test_large_open_fails_vlv_and_vmax_only(self, model, conds):
        d = open_defect(OpenSite.CELL_PULLUP, 10e6)
        fails = {n: model.fails_condition(d, c) for n, c in conds.items()}
        assert fails["VLV"] and fails["Vmax"]
        assert not fails["Vmin"] and not fails["Vnom"]

    def test_moderate_open_vlv_only(self, model, conds):
        d = open_defect(OpenSite.CELL_PULLUP, 3e6)
        fails = {n: model.fails_condition(d, c) for n, c in conds.items()}
        assert fails["VLV"]
        assert not fails["Vmax"]

    def test_small_open_silent(self, model, conds):
        d = open_defect(OpenSite.CELL_PULLUP, 1e5)
        assert not any(model.fails_condition(d, c) for c in conds.values())


class TestThresholdApi:
    def test_delay_type_sites_only(self, model):
        with pytest.raises(ValueError):
            model.open_detection_threshold(10e-9, site=OpenSite.DECODER_INPUT)

    def test_zero_when_no_slack(self, model):
        # At an absurdly short period even R=0 has no slack.
        assert model.open_detection_threshold(1e-10) == 0.0

    def test_cell_access_threshold_positive(self, model):
        thr = model.open_detection_threshold(100e-9,
                                             site=OpenSite.CELL_ACCESS)
        assert thr > 0.0


class TestDecoderOpenDelayMechanism:
    """The [Azimane 04] link: decoder opens as address-delay faults."""

    def test_manifests_only_at_speed(self, model, conds):
        d = open_defect(OpenSite.DECODER_INPUT, 3e6)
        assert model.decoder_open_delay_manifests(d, conds["at-speed"])
        assert not model.decoder_open_delay_manifests(d, conds["Vnom"])

    def test_small_open_never_lags(self, model, conds):
        d = open_defect(OpenSite.DECODER_INPUT, 1e5)
        assert not model.decoder_open_delay_manifests(d, conds["at-speed"])

    def test_wrong_site_rejected(self, model, conds):
        with pytest.raises(ValueError):
            model.decoder_open_delay_manifests(
                open_defect(OpenSite.CELL_ACCESS, 1e6), conds["at-speed"])

    def test_rendered_fault_needs_movi(self, model, conds):
        """End to end: the rendered delay fault escapes linear marching
        on its bit but falls to the rotation."""
        from repro.defects.injection import decoder_open_to_delay_fault
        from repro.march.library import TEST_11N
        from repro.tester.movi import MoviExecutor

        d = open_defect(OpenSite.DECODER_INPUT, 3e6, cell=6, polarity=1)
        fault = decoder_open_to_delay_fault(d, conds["at-speed"],
                                            address_bits=4, behavior=model)
        assert fault is not None and fault.bit == 2
        executor = MoviExecutor(4)
        assert not executor.linear_reference(TEST_11N, fault).detected
        assert executor.run(TEST_11N, fault).detected

    def test_none_below_budget(self, model, conds):
        from repro.defects.injection import decoder_open_to_delay_fault

        d = open_defect(OpenSite.DECODER_INPUT, 1e5)
        assert decoder_open_to_delay_fault(
            d, conds["at-speed"], 4, model) is None
