"""Tests for repro.defects.injection."""

import pytest

from repro.circuit.technology import CMOS018
from repro.defects.behavior import FaultMode, Manifestation
from repro.defects.injection import (
    inject_bridge_into_cell,
    inject_open_into_decoder,
    make_atspeed_fault,
    to_functional_fault,
)
from repro.defects.models import BridgeSite, OpenSite, bridge, open_defect
from repro.faults.models import (
    DataRetentionFault,
    MemoryState,
    MultipleAccessFault,
    ReadDestructiveFault,
    StuckAtFault,
    StuckOpenFault,
)
from repro.memory.cell import SixTCell
from repro.memory.geometry import MemoryGeometry


class TestBehaviouralRendering:
    def test_cell_stuck(self):
        m = Manifestation(FaultMode.CELL_STUCK, cell=5, stuck_value=1)
        f = to_functional_fault(m, n_cells=16)
        assert isinstance(f, StuckAtFault)
        assert f.cell == 5 and f.value == 1

    def test_cell_flip(self):
        m = Manifestation(FaultMode.CELL_FLIP, cell=3)
        assert isinstance(to_functional_fault(m, n_cells=16),
                          ReadDestructiveFault)

    def test_read_delay(self):
        m = Manifestation(FaultMode.READ_DELAY, cell=3)
        assert isinstance(to_functional_fault(m, n_cells=16), StuckOpenFault)

    def test_address_hazard_has_neighbour(self):
        m = Manifestation(FaultMode.ADDRESS_HAZARD, cell=15)
        f = to_functional_fault(m, n_cells=16)
        assert isinstance(f, MultipleAccessFault)
        assert f.extra_cells == (0,)   # wraps around

    def test_retention(self):
        m = Manifestation(FaultMode.RETENTION, cell=2, stuck_value=0)
        f = to_functional_fault(m, n_cells=16)
        assert isinstance(f, DataRetentionFault)

    def test_geometry_supplies_n_cells(self):
        g = MemoryGeometry(4, 2, 2)
        m = Manifestation(FaultMode.ADDRESS_HAZARD, cell=g.bits - 1)
        f = to_functional_fault(m, geometry=g)
        assert f.extra_cells == (0,)


class TestAtSpeedFault:
    def test_back_to_back_only(self):
        f = make_atspeed_fault(cell=0, state=0, max_gap_cycles=1)
        mem = MemoryState(4)
        f.write(mem, 0, 0, 0)
        f.write(mem, 0, 1, 1)
        f.read(mem, 0, 2)
        assert mem.get(0) == 0   # fired

    def test_gap_suppresses(self):
        f = make_atspeed_fault(cell=0, state=0, max_gap_cycles=1)
        mem = MemoryState(4)
        f.write(mem, 0, 0, 0)
        f.write(mem, 0, 1, 1)
        f.read(mem, 0, 5)
        assert mem.get(0) == 1   # gap too large


class TestNetlistInjection:
    def test_bridge_into_cell_adds_resistor(self):
        cell = SixTCell(CMOS018)
        d = bridge(BridgeSite.CELL_NODE_RAIL, 5e3, polarity=-1)
        nl = inject_bridge_into_cell(cell, 1.8, 1, d)
        assert "Rbridge" in nl
        assert nl["Rbridge"].resistance == 5e3

    def test_bridge_polarity_selects_rail(self):
        cell = SixTCell(CMOS018)
        d_gnd = bridge(BridgeSite.CELL_NODE_RAIL, 5e3, polarity=-1)
        nl = inject_bridge_into_cell(cell, 1.8, 1, d_gnd)
        rb = nl["Rbridge"]
        assert "0" in (rb.node_a, rb.node_b)
        d_vdd = bridge(BridgeSite.CELL_NODE_RAIL, 5e3, polarity=1)
        nl2 = inject_bridge_into_cell(cell, 1.8, 1, d_vdd)
        rb2 = nl2["Rbridge"]
        assert "vdd" in (rb2.node_a, rb2.node_b)

    def test_electrical_effect_of_injected_bridge(self):
        """A hard bridge to ground flips the stored 1."""
        cell = SixTCell(CMOS018)
        d = bridge(BridgeSite.CELL_NODE_RAIL, 100.0, polarity=-1)
        nl = inject_bridge_into_cell(cell, 1.8, 1, d)
        op = cell.solve_state(1.8, 1, extra=nl)
        assert not cell.holds_state(op, 1, 1.8)

    def test_open_into_decoder_floats_both_gates(self):
        d = open_defect(OpenSite.DECODER_INPUT, 1e6)
        nl = inject_open_into_decoder(CMOS018, 1.8, d)
        assert "Ropen_a0_p" in nl
        # Both inverter devices hang off the same spliced node.
        assert nl["INVA0_P"].gate == nl["INVA0_N"].gate
        assert nl["INVA0_P"].gate.startswith("_open")


class TestRetentionRenderingScale:
    def test_retention_window_scales_with_words(self):
        """The decay window must fit between word-level touches, which
        recur every ~words cycles -- not every ~bits cycles."""
        from repro.memory.geometry import VEQTOR4_INSTANCE

        m = Manifestation(FaultMode.RETENTION, cell=5, stuck_value=0)
        fault = to_functional_fault(m, geometry=VEQTOR4_INSTANCE)
        assert fault.retention_cycles <= VEQTOR4_INSTANCE.words
