"""Tests for repro.analysis.export."""

import csv
import json

import numpy as np
import pytest

from repro.analysis.export import (
    write_coverage_csv,
    write_estimator_json,
    write_plans_csv,
    write_shmoo_csv,
    write_venn_json,
)
from repro.core.flow import MemoryTestFlow
from repro.core.testplan import TestPlan
from repro.experiment.venn import PAPER_VENN
from repro.ifa.flow import CoverageRecord
from repro.memory.geometry import MemoryGeometry
from repro.tester.shmoo import ShmooPlot


@pytest.fixture(scope="module")
def flow_result():
    return MemoryTestFlow(MemoryGeometry(32, 4, 8), n_sites=500).run()


class TestCoverageCsv:
    def test_roundtrip(self, flow_result, tmp_path):
        path = tmp_path / "cov.csv"
        write_coverage_csv(flow_result.database.records, path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(flow_result.database.records)
        first = rows[0]
        assert first["kind"] in ("bridge", "open")
        assert 0.0 <= float(first["coverage"]) <= 1.0


class TestEstimatorJson:
    def test_structure(self, flow_result, tmp_path):
        path = tmp_path / "est.json"
        write_estimator_json(flow_result.bridge_report, path)
        payload = json.loads(path.read_text())
        assert payload["kind"] == "bridge"
        assert payload["geometry"]["bits"] == 32 * 4 * 8
        names = {c["condition"] for c in payload["conditions"]}
        assert "VLV" in names and "Vmax" in names


class TestShmooCsv:
    def test_long_format(self, tmp_path):
        plot = ShmooPlot(np.array([1.0, 1.8]), np.array([1e-8, 1e-7]),
                         np.array([[True, False], [True, True]]))
        path = tmp_path / "shmoo.csv"
        write_shmoo_csv(plot, path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4
        assert {r["passed"] for r in rows} == {"0", "1"}


class TestVennJson:
    def test_regions(self, tmp_path):
        path = tmp_path / "venn.json"
        write_venn_json(PAPER_VENN, path, n_devices=11000)
        payload = json.loads(path.read_text())
        assert payload["regions"]["VLV only"] == 27
        assert payload["total"] == 36
        assert payload["n_devices"] == 11000


class TestPlansCsv:
    def test_rows(self, tmp_path):
        plans = [
            TestPlan(("VLV",), 0.01, 0.97, 50.0),
            TestPlan(("VLV", "Vmax"), 0.02, 0.99, 10.0),
        ]
        path = tmp_path / "plans.csv"
        write_plans_csv(plans, path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert rows[1]["conditions"] == "VLV+Vmax"
        assert float(rows[0]["dpm"]) == 50.0
