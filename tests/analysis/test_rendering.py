"""Tests for repro.analysis (table/figure renderers)."""

import numpy as np
import pytest

from repro.analysis.figures import (
    render_frequency_curve,
    render_venn_comparison,
    render_waveforms,
)
from repro.analysis.tables import (
    PAPER_TABLE1,
    render_coverage_matrix,
    render_table1,
)
from repro.circuit.waveform import Waveform
from repro.core.flow import MemoryTestFlow
from repro.experiment.venn import PAPER_VENN, VennCounts
from repro.faults.coverage import coverage_matrix
from repro.march.library import MATS, MATS_PLUS_PLUS
from repro.memory.geometry import MemoryGeometry


@pytest.fixture(scope="module")
def bridge_report():
    return MemoryTestFlow(MemoryGeometry(64, 4, 8),
                          n_sites=1500).run().bridge_report


class TestTable1Rendering:
    def test_contains_all_conditions(self, bridge_report):
        text = render_table1(bridge_report)
        for cond in ("VLV", "Vmin", "Vnom", "Vmax"):
            assert cond in text

    def test_paper_comparison_values_present(self, bridge_report):
        text = render_table1(bridge_report, compare_paper=True)
        assert "(99.61)" in text    # paper VLV @ 20 ohm
        assert "( 1.22)" in text    # paper Vmax @ 90 kohm

    def test_no_comparison_mode(self, bridge_report):
        text = render_table1(bridge_report, compare_paper=False)
        assert "(99.61)" not in text

    def test_paper_table_integrity(self):
        assert PAPER_TABLE1["Vmax"]["fault_coverage"][90e3] == 1.22
        assert PAPER_TABLE1["VLV"]["dpm_normalised"] == 1.0


class TestCoverageMatrixRendering:
    def test_matrix_renders(self):
        m = coverage_matrix([MATS, MATS_PLUS_PLUS], ["SAF", "TF"], n_cells=6)
        text = render_coverage_matrix(m)
        assert "MATS" in text and "TF" in text
        assert "100.0" in text

    def test_empty(self):
        assert "empty" in render_coverage_matrix({})


class TestFigureRendering:
    def test_frequency_curve(self):
        text = render_frequency_curve(
            [50e6, 100e6], [4e6, 1.5e6])
        assert "50MHz" in text
        assert "4.00 Mohm" in text
        assert "#" in text

    def test_frequency_curve_escape_label(self):
        text = render_frequency_curve([10e6], [0.0])
        assert "all escape" in text

    def test_frequency_curve_validation(self):
        with pytest.raises(ValueError):
            render_frequency_curve([1.0], [1.0, 2.0])

    def test_waveform_strip(self):
        t = np.linspace(0, 1e-8, 50)
        waves = {
            "wl0": Waveform("wl0", t, np.where(t > 5e-9, 1.8, 0.0)),
            "q1": Waveform("q1", t, np.full_like(t, 0.9)),
        }
        text = render_waveforms(waves, vdd=1.8)
        assert "wl0" in text and "q1" in text
        assert "#" in text and "." in text and "-" in text

    def test_venn_comparison(self):
        sim = VennCounts(vlv_only=20, vmax_only=5, atspeed_only=2)
        text = render_venn_comparison(sim, PAPER_VENN)
        assert "VLV only" in text
        assert "27" in text and "20" in text
