"""Tests for repro.experiment.veqtor."""

import pytest

from repro.circuit.technology import CMOS018
from repro.defects.behavior import DefectBehaviorModel
from repro.defects.models import BridgeSite, bridge
from repro.experiment.veqtor import VeqtorChip, VeqtorTestBench
from repro.march.library import TEST_11N
from repro.memory.geometry import MemoryGeometry
from repro.stress import production_conditions
from repro.tester.ate import VirtualTester


@pytest.fixture(scope="module")
def bench():
    return VeqtorTestBench(
        VirtualTester(DefectBehaviorModel(CMOS018)),
        geometry=MemoryGeometry(8, 2, 4),
    )


@pytest.fixture(scope="module")
def conds():
    return production_conditions(CMOS018)


class TestVeqtorChip:
    def test_four_instances(self):
        chip = VeqtorChip(0)
        assert len(chip.defects) == 4
        assert not chip.is_defective

    def test_add_defect(self):
        chip = VeqtorChip(0)
        chip.add_defect(2, bridge(BridgeSite.CELL_NODE_RAIL, 1e3))
        assert chip.is_defective
        assert len(chip.all_defects) == 1

    def test_instance_range_checked(self):
        chip = VeqtorChip(0)
        with pytest.raises(ValueError):
            chip.add_defect(4, bridge(BridgeSite.CELL_NODE_RAIL, 1e3))

    def test_wrong_defect_list_count(self):
        with pytest.raises(ValueError):
            VeqtorChip(0, defects=[[], []])


class TestBench:
    def test_clean_chip_passes(self, bench, conds):
        assert not bench.chip_fails(VeqtorChip(0), TEST_11N, conds["Vnom"])

    def test_any_instance_fails_the_part(self, bench, conds):
        chip = VeqtorChip(0)
        chip.add_defect(3, bridge(BridgeSite.CELL_NODE_RAIL, 20.0))
        assert bench.chip_fails(chip, TEST_11N, conds["Vnom"])

    def test_vlv_only_defect_signature(self, bench, conds):
        chip = VeqtorChip(0)
        chip.add_defect(0, bridge(BridgeSite.CELL_NODE_RAIL, 150e3))
        sig = bench.chip_signature(chip, TEST_11N, conds)
        assert sig == {"VLV": True, "Vmin": False, "Vnom": False,
                       "Vmax": False, "at-speed": False}
