"""Tests for repro.experiment.population."""

import numpy as np
import pytest

from repro.defects.distribution import DefectDensity
from repro.defects.models import DefectKind
from repro.experiment.population import PopulationGenerator, PopulationSpec


@pytest.fixture(scope="module")
def small_lot():
    spec = PopulationSpec(n_devices=2000, seed=7)
    return PopulationGenerator(spec), PopulationGenerator(spec).generate()


class TestGeneration:
    def test_lot_size(self, small_lot):
        _, chips = small_lot
        assert len(chips) == 2000
        assert [c.chip_id for c in chips] == list(range(2000))

    def test_deterministic_given_seed(self):
        spec = PopulationSpec(n_devices=300, seed=11)
        a = PopulationGenerator(spec).generate()
        b = PopulationGenerator(spec).generate()
        sig_a = [tuple(str(d) for d in c.all_defects) for c in a]
        sig_b = [tuple(str(d) for d in c.all_defects) for c in b]
        assert sig_a == sig_b

    def test_different_seeds_differ(self):
        a = PopulationGenerator(PopulationSpec(300, seed=1)).generate()
        b = PopulationGenerator(PopulationSpec(300, seed=2)).generate()
        na = sum(len(c.all_defects) for c in a)
        nb = sum(len(c.all_defects) for c in b)
        assert (na, [c.is_defective for c in a]) != (nb, [c.is_defective
                                                          for c in b])

    def test_defective_fraction_matches_poisson(self, small_lot):
        gen, chips = small_lot
        observed = sum(1 for c in chips if c.is_defective) / len(chips)
        expected = gen.expected_defective_fraction()
        assert observed == pytest.approx(expected, abs=0.02)

    def test_bridge_open_mix(self, small_lot):
        gen, chips = small_lot
        defects = [d for c in chips for d in c.all_defects]
        bridges = sum(d.kind is DefectKind.BRIDGE for d in defects)
        assert bridges / len(defects) == pytest.approx(
            gen.spec.density.bridge_fraction, abs=0.1)

    def test_resistances_sampled_from_distribution(self, small_lot):
        gen, chips = small_lot
        defects = [d for c in chips for d in c.all_defects
                   if d.kind is DefectKind.BRIDGE]
        rs = np.array([d.resistance for d in defects])
        # Bulk should be low-ohmic per the fab shape.
        assert np.median(rs) < 1e3


class TestSpec:
    def test_defaults_reflect_qualification_lot(self):
        spec = PopulationSpec()
        assert spec.n_devices == 11000
        assert spec.density.d0_per_cm2 > 1.0

    def test_custom_density(self):
        spec = PopulationSpec(100, DefectDensity(0.1, 0.5), seed=0)
        gen = PopulationGenerator(spec)
        assert gen.expected_defective_fraction() < 0.05
