"""Tests for repro.experiment.classify and repro.experiment.venn."""

import pytest

from repro.defects.models import BridgeSite, OpenSite, bridge, open_defect
from repro.experiment.classify import (
    DeviceRecord,
    ExperimentResult,
    StressClassifier,
)
from repro.experiment.population import PopulationGenerator, PopulationSpec
from repro.experiment.veqtor import VeqtorChip
from repro.experiment.venn import PAPER_VENN, VennCounts
from repro.memory.geometry import MemoryGeometry


def chip_with(defect):
    chip = VeqtorChip(0)
    chip.add_defect(0, defect)
    return chip


@pytest.fixture(scope="module")
def classifier():
    return StressClassifier(geometry=MemoryGeometry(8, 2, 4))


class TestProtocol:
    def test_clean_chip_not_recorded(self, classifier):
        result = classifier.classify([VeqtorChip(0)])
        assert result.records == []
        assert result.n_devices == 1

    def test_hard_fail_is_standard_yield_loss(self, classifier):
        chip = chip_with(bridge(BridgeSite.CELL_NODE_RAIL, 20.0))
        result = classifier.classify([chip])
        assert result.n_standard_fails == 1
        assert result.interesting_devices == []

    def test_vlv_only_defect_is_interesting(self, classifier):
        chip = chip_with(bridge(BridgeSite.CELL_NODE_RAIL, 150e3))
        result = classifier.classify([chip])
        interesting = result.interesting_devices
        assert len(interesting) == 1
        assert interesting[0].failed_stress == frozenset({"VLV"})

    def test_vmax_only_defect(self, classifier):
        chip = chip_with(open_defect(OpenSite.DECODER_INPUT, 5e5))
        result = classifier.classify([chip])
        assert result.interesting_devices[0].failed_stress == frozenset(
            {"Vmax"})

    def test_pullup_open_vlv_and_vmax(self, classifier):
        chip = chip_with(open_defect(OpenSite.CELL_PULLUP, 10e6))
        result = classifier.classify([chip])
        assert result.interesting_devices[0].failed_stress == frozenset(
            {"VLV", "Vmax"})

    def test_escape_dpm(self, classifier):
        chips = [chip_with(bridge(BridgeSite.CELL_NODE_RAIL, 150e3))
                 for _ in range(3)]
        chips += [VeqtorChip(i + 10) for i in range(7)]
        result = classifier.classify(chips)
        assert result.escape_dpm("VLV") == pytest.approx(3e5)
        assert result.escape_dpm("Vmax") == 0.0


class TestVennAccounting:
    def test_from_experiment(self):
        result = ExperimentResult(n_devices=10)
        result.records = [
            DeviceRecord(VeqtorChip(0), False, frozenset({"VLV"})),
            DeviceRecord(VeqtorChip(1), False, frozenset({"VLV"})),
            DeviceRecord(VeqtorChip(2), False, frozenset({"VLV", "Vmax"})),
            DeviceRecord(VeqtorChip(3), False, frozenset({"at-speed"})),
            DeviceRecord(VeqtorChip(4), True),   # standard fail: excluded
        ]
        venn = VennCounts.from_experiment(result)
        assert venn.vlv_only == 2
        assert venn.vlv_vmax == 1
        assert venn.atspeed_only == 1
        assert venn.total == 4

    def test_totals(self):
        v = VennCounts(vlv_only=27, vmax_only=3, atspeed_only=3,
                       vlv_vmax=2, vlv_atspeed=1)
        assert v.total == 36
        assert v.vlv_total == 30
        assert v.vmax_total == 5
        assert v.atspeed_total == 4

    def test_paper_figures(self):
        assert PAPER_VENN.total == 36
        assert PAPER_VENN.vlv_only == 27

    def test_render(self):
        text = PAPER_VENN.render("paper")
        assert "VLV only: 27" in text
        assert "interesting devices: 36" in text


class TestEndToEndVennShape:
    """The Figure 11 regression on a reduced lot (fast)."""

    @pytest.fixture(scope="class")
    def venn(self):
        spec = PopulationSpec(n_devices=4000, seed=1105)
        chips = PopulationGenerator(spec).generate()
        result = StressClassifier().classify(chips)
        return VennCounts.from_experiment(result)

    def test_vlv_dominates(self, venn):
        assert venn.vlv_only >= 3 * max(venn.vmax_only, 1) - 2
        assert venn.vlv_only > venn.atspeed_only

    def test_empty_regions_match_paper(self, venn):
        assert venn.vmax_atspeed == 0
        assert venn.all_three == 0

    def test_some_interesting_devices_exist(self, venn):
        assert venn.total > 0


class TestVennMerge:
    """The Venn reduce contract: merge/__add__ is a field-wise sum."""

    A = VennCounts(vlv_only=3, vmax_only=1, atspeed_only=2, vlv_vmax=1)
    B = VennCounts(vlv_only=2, vlv_atspeed=4, all_three=1)
    C = VennCounts(vmax_only=5, vmax_atspeed=2)

    def test_merge_is_fieldwise_addition(self):
        merged = self.A.merge(self.B)
        assert merged.vlv_only == 5
        assert merged.vlv_atspeed == 4
        assert merged.total == self.A.total + self.B.total

    def test_add_and_merge_agree(self):
        assert self.A + self.B == self.A.merge(self.B)

    def test_merge_is_commutative(self):
        assert self.A.merge(self.B) == self.B.merge(self.A)

    def test_merge_is_associative(self):
        left = (self.A + self.B) + self.C
        right = self.A + (self.B + self.C)
        assert left == right

    def test_empty_is_identity(self):
        assert self.A + VennCounts() == self.A

    def test_originals_unchanged(self):
        """VennCounts is frozen: merging returns a new value."""
        self.A.merge(self.B)
        assert self.A.vlv_only == 3
        assert self.B.vlv_only == 2


class TestEscapeDpmGuards:
    """Satellite: zero-division audit of the DPM estimators."""

    def test_empty_lot_has_no_escapes(self):
        empty = ExperimentResult(records=[], n_devices=0)
        assert empty.escape_dpm("VLV") == 0.0

    def test_lot_without_interesting_devices(self):
        result = ExperimentResult(
            records=[DeviceRecord(VeqtorChip(0), True)], n_devices=100)
        assert result.escape_dpm("VLV") == 0.0
