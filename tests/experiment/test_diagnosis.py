"""Tests for repro.experiment.diagnosis (lot bitmapping)."""

import pytest

from repro.defects.models import BridgeSite, OpenSite, bridge, open_defect
from repro.experiment.classify import DeviceRecord, ExperimentResult, StressClassifier
from repro.experiment.diagnosis import LotDiagnostician
from repro.experiment.population import PopulationGenerator, PopulationSpec
from repro.experiment.veqtor import VeqtorChip
from repro.tester.bitmap import DefectClassHint


def record_for(defect, stress):
    chip = VeqtorChip(0)
    chip.add_defect(0, defect)
    return DeviceRecord(chip, False, frozenset(stress))


@pytest.fixture(scope="module")
def diagnostician():
    return LotDiagnostician()


class TestDeviceDiagnosis:
    def test_vlv_bridge_is_single_cell_stuck(self, diagnostician):
        rec = record_for(
            bridge(BridgeSite.CELL_NODE_RAIL, 150e3, cell=100000,
                   polarity=1),
            ["VLV"])
        device = diagnostician.diagnose_device(rec)
        assert device.hints["VLV"] is DefectClassHint.SINGLE_CELL_STUCK
        assert "stuck-at-1" in device.summaries["VLV"]

    def test_decoder_open_is_address_pair(self, diagnostician):
        rec = record_for(open_defect(OpenSite.DECODER_INPUT, 5e5, cell=40),
                         ["Vmax"])
        device = diagnostician.diagnose_device(rec)
        assert device.hints["Vmax"] is DefectClassHint.ADDRESS_PAIR

    def test_delay_open_diagnosed_at_speed(self, diagnostician):
        rec = record_for(
            open_defect(OpenSite.BITLINE_SEGMENT, 3e6, cell=77),
            ["at-speed"])
        device = diagnostician.diagnose_device(rec)
        assert device.hints["at-speed"] is not DefectClassHint.CLEAN

    def test_rehoming_keeps_cell_in_range(self, diagnostician):
        rec = record_for(
            bridge(BridgeSite.CELL_NODE_RAIL, 150e3, cell=10 ** 6),
            ["VLV"])
        device = diagnostician.diagnose_device(rec)
        assert device.hints["VLV"] is not DefectClassHint.CLEAN


class TestLotDiagnosis:
    @pytest.fixture(scope="class")
    def lot(self, diagnostician=None):
        chips = PopulationGenerator(
            PopulationSpec(n_devices=4000, seed=1105)).generate()
        experiment = StressClassifier().classify(chips)
        return LotDiagnostician().diagnose(experiment), experiment

    def test_every_interesting_device_diagnosed(self, lot):
        diagnosis, experiment = lot
        assert len(diagnosis.devices) == len(experiment.interesting_devices)

    def test_no_clean_verdicts(self, lot):
        """Quick-mode fails must reproduce in full mode (model
        consistency between the two tiers)."""
        diagnosis, _ = lot
        for counts in diagnosis.hint_histogram.values():
            assert counts.get(DefectClassHint.CLEAN, 0) == 0

    def test_vlv_fails_dominated_by_single_cell(self, lot):
        """The paper's observation: the VLV escapes are single-bit
        matrix failures."""
        diagnosis, _ = lot
        vlv = diagnosis.hint_histogram.get("VLV")
        if vlv:
            assert vlv.most_common(1)[0][0] in (
                DefectClassHint.SINGLE_CELL_STUCK,
                DefectClassHint.SINGLE_CELL_DISTURB)

    def test_render(self, lot):
        diagnosis, _ = lot
        text = diagnosis.render()
        assert "diagnosed devices" in text


class TestLotDiagnosisMerge:
    """Shard-local diagnoses reduce into the lot view (streaming)."""

    def _shard(self, diagnostician, defect, stress):
        """A one-device shard-local LotDiagnosis."""
        from collections import Counter

        from repro.experiment.diagnosis import LotDiagnosis

        device = diagnostician.diagnose_device(record_for(defect, stress))
        lot = LotDiagnosis(devices=[device])
        for condition, hint in device.hints.items():
            lot.hint_histogram.setdefault(condition, Counter())[hint] += 1
        return lot

    def test_merge_concatenates_and_adds(self, diagnostician):
        a = self._shard(
            diagnostician,
            bridge(BridgeSite.CELL_NODE_RAIL, 150e3, cell=100000,
                   polarity=1),
            ["VLV"])
        b = self._shard(
            diagnostician,
            bridge(BridgeSite.CELL_NODE_RAIL, 150e3, cell=7,
                   polarity=1),
            ["VLV"])
        a_hist = dict(a.hint_histogram.get("VLV", {}))
        b_hist = dict(b.hint_histogram.get("VLV", {}))
        merged = a.merge(b)
        assert merged is a
        assert len(merged.devices) == 2
        for hint in set(a_hist) | set(b_hist):
            assert merged.hint_histogram["VLV"][hint] == (
                a_hist.get(hint, 0) + b_hist.get(hint, 0))

    def test_merge_is_commutative_on_histograms(self, diagnostician):
        def fresh():
            return (
                self._shard(
                    diagnostician,
                    bridge(BridgeSite.CELL_NODE_RAIL, 150e3,
                           cell=100000, polarity=1), ["VLV"]),
                self._shard(
                    diagnostician,
                    open_defect(OpenSite.CELL_PULLUP, 1e9, cell=3),
                    ["at-speed"]),
            )

        a, b = fresh()
        ab = a.merge(b).hint_histogram
        a, b = fresh()
        ba = b.merge(a).hint_histogram
        assert ab == ba

    def test_merge_with_empty_is_identity(self, diagnostician):
        from repro.experiment.diagnosis import LotDiagnosis

        lot = self._shard(
            diagnostician,
            bridge(BridgeSite.CELL_NODE_RAIL, 150e3, cell=100000,
                   polarity=1),
            ["VLV"])
        before = dict(lot.hint_histogram.get("VLV", {}))
        merged = lot.merge(LotDiagnosis())
        assert len(merged.devices) == 1
        assert dict(merged.hint_histogram["VLV"]) == before
