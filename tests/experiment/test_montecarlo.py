"""Tests for repro.experiment.montecarlo."""

import pytest

from repro.experiment.montecarlo import (
    REGIONS,
    MonteCarloResult,
    RegionStats,
    monte_carlo_seeds,
    run_monte_carlo,
)
from repro.experiment.venn import VennCounts


@pytest.fixture(scope="module")
def result():
    return run_monte_carlo(n_runs=4, n_devices=2500)


class TestRunner:
    def test_run_count(self, result):
        assert result.n_runs == 4
        assert len(result.venns) == 4
        assert result.seeds == [1105, 1106, 1107, 1108]

    def test_all_regions_tracked(self, result):
        assert set(result.stats) == set(REGIONS)
        for stats in result.stats.values():
            assert len(stats.counts) == 4

    def test_stats_consistent_with_venns(self, result):
        for region in REGIONS:
            values = [getattr(v, region) for v in result.venns]
            assert result.stats[region].counts == values
            assert result.stats[region].min == min(values)
            assert result.stats[region].max == max(values)

    def test_deterministic(self):
        a = run_monte_carlo(n_runs=2, n_devices=1500)
        b = run_monte_carlo(n_runs=2, n_devices=1500)
        assert [v.as_dict() for v in a.venns] == [v.as_dict()
                                                  for v in b.venns]

    def test_validation(self):
        with pytest.raises(ValueError):
            run_monte_carlo(n_runs=0)


class TestStability:
    def test_structural_claims_hold(self, result):
        stability = result.structural_stability()
        assert stability["vlv_only_dominates"] == 1.0
        assert stability["vmax_atspeed_and_triple_empty"] == 1.0

    def test_render(self, result):
        text = result.render()
        assert "vlv_only" in text
        assert "structural stability" in text


class TestRegionStats:
    def test_empty_stats(self):
        s = RegionStats("x")
        assert s.mean == 0.0 and s.min == 0 and s.max == 0

    def test_math(self):
        s = RegionStats("x", [1, 2, 3])
        assert s.mean == pytest.approx(2.0)
        assert s.min == 1 and s.max == 3


class TestSeedSchemes:
    """Satellite: run seeds via SeedSequence.spawn behind a flag."""

    def test_legacy_scheme_is_sequential(self):
        assert monte_carlo_seeds(1105, 4) == [1105, 1106, 1107, 1108]
        assert monte_carlo_seeds(1105, 4, scheme="legacy") == (
            [1105, 1106, 1107, 1108])

    def test_spawn_scheme_is_deterministic_and_distinct(self):
        a = monte_carlo_seeds(1105, 6, scheme="spawn")
        b = monte_carlo_seeds(1105, 6, scheme="spawn")
        assert a == b
        assert len(set(a)) == 6
        assert a != monte_carlo_seeds(1106, 6, scheme="spawn")
        assert a != [1105 + k for k in range(6)]

    def test_spawn_prefix_is_stable(self):
        """Growing n_runs extends, never reshuffles, the seed list."""
        assert monte_carlo_seeds(7, 8, scheme="spawn")[:3] == (
            monte_carlo_seeds(7, 3, scheme="spawn"))

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="seed_scheme"):
            monte_carlo_seeds(1105, 4, scheme="antithetic")

    def test_run_monte_carlo_honours_scheme(self):
        result = run_monte_carlo(n_runs=2, n_devices=400,
                                 seed_scheme="spawn")
        assert result.seeds == monte_carlo_seeds(1105, 2, scheme="spawn")


class TestRegionStatsGuards:
    """Satellite: zero-division audit of the summary statistics."""

    def test_empty_stats_are_all_zero(self):
        s = RegionStats("x")
        assert s.mean == 0.0
        assert s.std == 0.0
        assert s.min == 0
        assert s.max == 0

    def test_single_run_std_is_zero(self):
        s = RegionStats("x", [5])
        assert s.mean == 5.0
        assert s.std == 0.0
