"""Tests for repro.experiment.montecarlo."""

import pytest

from repro.experiment.montecarlo import (
    REGIONS,
    MonteCarloResult,
    RegionStats,
    run_monte_carlo,
)
from repro.experiment.venn import VennCounts


@pytest.fixture(scope="module")
def result():
    return run_monte_carlo(n_runs=4, n_devices=2500)


class TestRunner:
    def test_run_count(self, result):
        assert result.n_runs == 4
        assert len(result.venns) == 4
        assert result.seeds == [1105, 1106, 1107, 1108]

    def test_all_regions_tracked(self, result):
        assert set(result.stats) == set(REGIONS)
        for stats in result.stats.values():
            assert len(stats.counts) == 4

    def test_stats_consistent_with_venns(self, result):
        for region in REGIONS:
            values = [getattr(v, region) for v in result.venns]
            assert result.stats[region].counts == values
            assert result.stats[region].min == min(values)
            assert result.stats[region].max == max(values)

    def test_deterministic(self):
        a = run_monte_carlo(n_runs=2, n_devices=1500)
        b = run_monte_carlo(n_runs=2, n_devices=1500)
        assert [v.as_dict() for v in a.venns] == [v.as_dict()
                                                  for v in b.venns]

    def test_validation(self):
        with pytest.raises(ValueError):
            run_monte_carlo(n_runs=0)


class TestStability:
    def test_structural_claims_hold(self, result):
        stability = result.structural_stability()
        assert stability["vlv_only_dominates"] == 1.0
        assert stability["vmax_atspeed_and_triple_empty"] == 1.0

    def test_render(self, result):
        text = result.render()
        assert "vlv_only" in text
        assert "structural stability" in text


class TestRegionStats:
    def test_empty_stats(self):
        s = RegionStats("x")
        assert s.mean == 0.0 and s.min == 0 and s.max == 0

    def test_math(self):
        s = RegionStats("x", [1, 2, 3])
        assert s.mean == pytest.approx(2.0)
        assert s.min == 1 and s.max == 3
