"""Streaming sharded experiment: plan, accumulator, equivalence, chaos.

The load-bearing suite for :mod:`repro.experiment.streaming`: the shard
plan's determinism contract (results a pure function of ``(seed,
n_devices, block_devices)``), the accumulator's merge algebra, the
``scheme="legacy"`` byte-identity oracle against the materialise-
everything pipeline, checkpoint resume, and worker-kill chaos healing
without changing a single count.
"""

import json

import pytest

from repro.experiment import (
    ExperimentAccumulator,
    PopulationGenerator,
    PopulationSpec,
    ShardPlan,
    StreamingExperiment,
    StreamingRunner,
    StressClassifier,
    VeqtorChip,
)
from repro.experiment.classify import DeviceRecord
from repro.runner.atomic import canonical_json
from repro.runner.chaos import (
    WORKER_EXIT_SITE,
    ChaosBehaviorModel,
    FaultInjector,
)
from repro.runner.checkpoint import (
    CampaignCheckpoint,
    CheckpointMismatchError,
)


def _payload(n_devices, *, seed=1105, scheme="spawn", shard_devices=None,
             block_devices=None, workers=1, **runner_kwargs):
    """One streaming run's canonical accumulator payload."""
    engine = StreamingExperiment(
        n_devices=n_devices, seed=seed, scheme=scheme,
        **({"shard_devices": shard_devices}
           if shard_devices is not None else {}),
        **({"block_devices": block_devices}
           if block_devices is not None else {}))
    runner = StreamingRunner(engine, workers=workers, **runner_kwargs)
    return runner.run().accumulator.as_payload()


class TestShardPlan:
    def test_legacy_scheme_is_one_full_shard(self):
        plan = ShardPlan(10_000, scheme="legacy")
        shards = plan.shards()
        assert len(shards) == 1
        assert (shards[0].start, shards[0].stop) == (0, 10_000)

    def test_spawn_shards_tile_the_device_space(self):
        plan = ShardPlan(10_000, shard_devices=4096, block_devices=1024)
        shards = plan.shards()
        assert [(s.start, s.stop) for s in shards] == [
            (0, 4096), (4096, 8192), (8192, 10_000)]
        assert [s.index for s in shards] == [0, 1, 2]
        assert sum(s.devices for s in shards) == 10_000

    def test_blocks_carry_global_indices(self):
        plan = ShardPlan(16_384, shard_devices=8192, block_devices=4096)
        second = plan.shards()[1]
        assert plan.blocks_of(second) == [
            (2, 8192, 12_288), (3, 12_288, 16_384)]

    def test_unit_ids_are_stable_and_sortable(self):
        plan = ShardPlan(16_384, shard_devices=8192, block_devices=4096)
        ids = [s.unit_id for s in plan.shards()]
        assert ids == ["shard:00000:0-8192", "shard:00001:8192-16384"]
        assert ids == sorted(ids)

    def test_rejects_misaligned_shards(self):
        with pytest.raises(ValueError, match="block"):
            ShardPlan(10_000, shard_devices=5000, block_devices=4096)

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError, match="scheme"):
            ShardPlan(10_000, scheme="interleaved")

    def test_rejects_nonpositive_devices(self):
        with pytest.raises(ValueError):
            ShardPlan(0)


def _record(chip_id, failed_standard=False, failed_stress=()):
    return DeviceRecord(chip=VeqtorChip(chip_id=chip_id),
                        failed_standard=failed_standard,
                        failed_stress=frozenset(failed_stress))


def _synthetic(devices, records, hints=()):
    acc = ExperimentAccumulator(devices=devices)
    for record in records:
        acc.observe(record)
    for hint_map in hints:
        acc.observe_hints(hint_map)
    return acc


class TestAccumulator:
    def test_observe_routes_standard_before_stress(self):
        acc = _synthetic(3, [
            _record(0, failed_standard=True, failed_stress=("VLV",)),
            _record(1, failed_stress=("VLV",)),
            _record(2, failed_stress=("VLV", "Vmax")),
        ])
        assert acc.defective == 3
        assert acc.standard_fails == 1
        assert acc.interesting == 2
        assert acc.class_counts[frozenset({"VLV"})] == 1

    def test_payload_round_trip_is_identity(self):
        acc = _synthetic(10, [
            _record(0, failed_stress=("VLV", "at-speed")),
            _record(1, failed_standard=True),
        ], hints=[{"VLV": "coupling"}])
        payload = acc.as_payload()
        rebuilt = ExperimentAccumulator.from_payload(payload)
        assert canonical_json(rebuilt.as_payload()) == (
            canonical_json(payload))
        assert json.loads(json.dumps(payload)) == payload

    def test_merge_equals_single_pass(self):
        records = [
            _record(i, failed_standard=(i % 5 == 0),
                    failed_stress=("VLV",) if i % 3 == 0 else ())
            for i in range(30)
        ]
        whole = _synthetic(30, records)
        left = _synthetic(10, records[:10])
        right = _synthetic(20, records[10:])
        assert canonical_json(left.merge(right).as_payload()) == (
            canonical_json(whole.as_payload()))

    def test_merge_is_commutative_and_associative(self):
        def fresh():
            a = _synthetic(4, [_record(0, failed_stress=("VLV",))],
                           hints=[{"VLV": "single-cell"}])
            b = _synthetic(6, [_record(1, failed_standard=True),
                               _record(2, failed_stress=("Vmax",))])
            c = _synthetic(2, [_record(3, failed_stress=("VLV",))])
            return a, b, c

        a, b, c = fresh()
        ab_c = a.merge(b).merge(c).as_payload()
        a, b, c = fresh()
        a_bc = a.merge(b.merge(c)).as_payload()
        a, b, c = fresh()
        cba = c.merge(b).merge(a).as_payload()
        assert canonical_json(ab_c) == canonical_json(a_bc)
        assert canonical_json(ab_c) == canonical_json(cba)

    def test_escape_dpm_guards_empty_accumulator(self):
        assert ExperimentAccumulator().escape_dpm("VLV") == 0.0

    def test_escape_dpm_counts_region_membership(self):
        acc = _synthetic(1_000_000, [
            _record(0, failed_stress=("VLV",)),
            _record(1, failed_stress=("VLV", "Vmax")),
            _record(2, failed_stress=("at-speed",)),
        ])
        assert acc.escape_dpm("VLV") == 2.0
        assert acc.escape_dpm("Vmax") == 1.0


class TestLegacyEquivalence:
    """``scheme="legacy"`` streaming is byte-identical to the old path."""

    N = 2048
    SEED = 77

    def test_single_shard_matches_materialised_pipeline(self):
        spec = PopulationSpec(n_devices=self.N, seed=self.SEED)
        chips = PopulationGenerator(spec).generate()
        legacy = ExperimentAccumulator.from_experiment(
            StressClassifier().classify(chips))
        streamed = _payload(self.N, seed=self.SEED, scheme="legacy")
        assert canonical_json(streamed) == (
            canonical_json(legacy.as_payload()))


class TestInvariance:
    """Results are a pure function of (seed, n_devices, block_devices)."""

    N = 16_384

    @pytest.fixture(scope="class")
    def base_payload(self):
        return _payload(self.N, shard_devices=8192)

    def test_shard_layout_does_not_change_results(self, base_payload):
        resharded = _payload(self.N, shard_devices=4096)
        assert canonical_json(resharded) == canonical_json(base_payload)

    def test_worker_count_does_not_change_results(self, base_payload):
        pooled = _payload(self.N, shard_devices=4096, workers=4)
        assert canonical_json(pooled) == canonical_json(base_payload)

    def test_block_size_is_part_of_the_population_identity(
            self, base_payload):
        reblocked = _payload(self.N, shard_devices=8192,
                             block_devices=2048)
        assert canonical_json(reblocked) != canonical_json(base_payload)

    def test_journals_byte_identical_across_worker_counts(self, tmp_path):
        serial = tmp_path / "serial.jsonl"
        pooled = tmp_path / "pooled.jsonl"
        _payload(self.N, shard_devices=4096, journal=serial)
        _payload(self.N, shard_devices=4096, workers=2, journal=pooled)
        assert serial.read_bytes() == pooled.read_bytes()


class TestResume:
    N = 16_384

    def test_resume_matches_uninterrupted_run(self, tmp_path):
        ckpt_path = tmp_path / "exp.ckpt.json"
        uninterrupted = _payload(self.N, shard_devices=4096)
        full = _payload(self.N, shard_devices=4096,
                        checkpoint_path=ckpt_path, checkpoint_every=1)
        assert canonical_json(full) == canonical_json(uninterrupted)

        # Rewind the checkpoint to "killed after two shards": keep the
        # first two completed units, drop the rest.
        done = CampaignCheckpoint.load(ckpt_path)
        engine = StreamingExperiment(n_devices=self.N,
                                     shard_devices=4096)
        partial = CampaignCheckpoint(engine.meta())
        shards = engine.plan.shards()
        assert len(shards) == 4
        for shard in shards[:2]:
            partial.record_unit(shard.unit_id,
                                done.result_for(shard.unit_id))
        partial.save(ckpt_path)

        runner = StreamingRunner(
            StreamingExperiment(n_devices=self.N, shard_devices=4096),
            checkpoint_path=ckpt_path)
        result = runner.run()
        assert result.resumed_shards == 2
        assert result.executed_shards == 2
        assert canonical_json(result.accumulator.as_payload()) == (
            canonical_json(uninterrupted))

    def test_mismatched_checkpoint_is_rejected(self, tmp_path):
        ckpt_path = tmp_path / "exp.ckpt.json"
        _payload(self.N, shard_devices=4096, checkpoint_path=ckpt_path)
        runner = StreamingRunner(
            StreamingExperiment(n_devices=self.N, shard_devices=4096,
                                seed=2),
            checkpoint_path=ckpt_path)
        with pytest.raises(CheckpointMismatchError, match="seed"):
            runner.run()


class TestChaos:
    """Worker-kill chaos heals without changing a single count."""

    N = 8192

    def _chaotic_payload(self):
        engine = StreamingExperiment(n_devices=self.N,
                                     shard_devices=4096)
        victim = engine.plan.shards()[1].unit_id
        injector = FaultInjector(
            seed=0, worker_faults={WORKER_EXIT_SITE: {victim: 1}})
        chaotic = StreamingExperiment(
            n_devices=self.N, shard_devices=4096,
            behavior=ChaosBehaviorModel(
                StreamingExperiment(n_devices=self.N).behavior,
                injector))
        runner = StreamingRunner(chaotic, workers=2)
        return runner.run()

    def test_worker_exit_heals_with_identical_results(self):
        clean = _payload(self.N, shard_devices=4096)
        result = self._chaotic_payload()
        assert result.supervisor_stats["worker_losses"] >= 1
        assert result.supervisor_stats["redispatched_units"] >= 1
        assert result.quarantine == []
        assert result.accumulator.errors == 0
        assert canonical_json(result.accumulator.as_payload()) == (
            canonical_json(clean))


class TestRunnerObservability:
    N = 8192

    def test_journal_carries_shard_and_merge_events(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        _payload(self.N, shard_devices=4096, journal=journal)
        events = [json.loads(line)
                  for line in journal.read_text().splitlines()]
        shard_events = [e["data"] for e in events
                        if e.get("event") == "experiment.shard"]
        merge_events = [e["data"] for e in events
                        if e.get("event") == "experiment.merge"]
        assert len(shard_events) == 2
        assert [e["shard"] for e in shard_events] == [0, 1]
        assert all(e["source"] == "executed" for e in shard_events)
        assert len(merge_events) == 1
        assert merge_events[0]["devices"] == self.N

    def test_report_renders_experiment_section(self, tmp_path):
        from repro.obs.bus import read_journal
        from repro.obs.report import build_report, render_text

        journal = tmp_path / "run.jsonl"
        _payload(self.N, shard_devices=4096, journal=journal)
        meta, events = read_journal(journal)
        report = build_report(meta, events)
        section = report["experiment"]
        assert section["shards"] == 2
        assert section["devices"] == self.N
        text = render_text(report)
        assert "Streaming experiment:" in text
        assert f"devices={self.N}" in text
