"""Tests for repro.faults.simulator."""

import pytest

from repro.faults.models import StuckAtFault, TransitionFault
from repro.faults.simulator import FunctionalFaultSimulator
from repro.march.library import MARCH_CM, MATS_PLUS_PLUS, TEST_11N
from repro.march.sequencer import DataBackground


class TestFaultFreeRuns:
    @pytest.mark.parametrize("test", [MATS_PLUS_PLUS, MARCH_CM, TEST_11N],
                             ids=lambda t: t.name)
    def test_fault_free_passes(self, test):
        sim = FunctionalFaultSimulator(16)
        log = sim.run(test)
        assert not log.detected
        assert log.cycles_run == test.complexity * 16

    def test_fault_free_all_backgrounds(self):
        sim = FunctionalFaultSimulator(16, columns=4)
        for bg in DataBackground:
            assert not sim.run(MARCH_CM, background=bg).detected, bg


class TestFailLog:
    def test_sa0_fail_details(self):
        sim = FunctionalFaultSimulator(8)
        log = sim.run(TEST_11N, StuckAtFault(3, 0))
        assert log.detected
        first = log.first_fail
        assert first.address == 3
        assert first.expected == 1
        assert first.actual == 0
        assert log.failing_addresses() == {3}

    def test_sa1_fails_on_r0(self):
        sim = FunctionalFaultSimulator(8)
        log = sim.run(TEST_11N, StuckAtFault(3, 1))
        assert all(f.expected == 0 for f in log.fails)

    def test_stop_at_first_fail(self):
        sim = FunctionalFaultSimulator(8)
        full = sim.run(TEST_11N, StuckAtFault(0, 0))
        early = sim.run(TEST_11N, StuckAtFault(0, 0), stop_at_first_fail=True)
        assert len(early) == 1
        assert len(full) > 1
        assert early.first_fail == full.first_fail

    def test_element_attribution(self):
        """SA1 at cell 3: every read-0 op of every element fails."""
        sim = FunctionalFaultSimulator(8)
        log = sim.run(TEST_11N, StuckAtFault(3, 1))
        # 11N reads 0 in elements 1 (r0), 2 (..r0), 3 (r0..).
        assert log.failing_elements() == {1, 2, 3}

    def test_cycle_indices_match_op_stream(self):
        sim = FunctionalFaultSimulator(4)
        log = sim.run(MATS_PLUS_PLUS, StuckAtFault(2, 0))
        for f in log.fails:
            assert 0 <= f.cycle < 6 * 4


class TestTransitionDetection:
    def test_tf_up_detected_by_11n(self):
        sim = FunctionalFaultSimulator(8)
        assert sim.detects(TEST_11N, TransitionFault(4, rising=True))

    def test_tf_down_detected_by_11n(self):
        sim = FunctionalFaultSimulator(8)
        assert sim.detects(TEST_11N, TransitionFault(4, rising=False))


class TestInitialBits:
    def test_initial_bits_override(self):
        sim = FunctionalFaultSimulator(4)
        log = sim.run(MARCH_CM, initial_bits=1)
        assert not log.detected  # test initialises anyway
