"""Tests for repro.faults.dynamic (PrimitiveFault engine + at-speed)."""

import pytest

from repro.faults.dynamic import (
    AtSpeedDynamicFault,
    PrimitiveFault,
    make_double_read_fault,
    make_dynamic_rdf,
)
from repro.faults.models import MemoryState, ReadDestructiveFault, StuckAtFault
from repro.faults.primitives import FaultPrimitive
from repro.faults.simulator import FunctionalFaultSimulator
from repro.march.library import MARCH_CM, MARCH_SS, TEST_11N


@pytest.fixture
def mem():
    return MemoryState(8)


class TestStaticPrimitives:
    def test_rdf_primitive_matches_handwritten(self):
        """The generic engine reproduces the hand-written RDF model."""
        sim = FunctionalFaultSimulator(8)
        generic0 = PrimitiveFault(FaultPrimitive.parse("<0r0/1/1>"), cell=3)
        generic1 = PrimitiveFault(FaultPrimitive.parse("<1r1/0/0>"), cell=3)
        hand = ReadDestructiveFault(3)
        for test in (MARCH_CM, TEST_11N, MARCH_SS):
            hand_hit = sim.detects(test, hand)
            generic_hit = (sim.detects(test, generic0)
                           or sim.detects(test, generic1))
            assert hand_hit == generic_hit, test.name

    def test_cfst_style_primitive(self, mem):
        """<1; 0/1/->: victim forced to 1 while aggressor holds 1."""
        f = PrimitiveFault(FaultPrimitive.parse("<1; 0w0/1/->"), cell=2,
                           aggressor_cell=5)
        f.write(mem, 5, 1, 0)
        f.write(mem, 2, 0, 1)   # establishes state 0 (pre-state unknown)
        f.write(mem, 2, 0, 2)   # non-transition write from state 0: fires
        assert f.read(mem, 2, 3) == 1

    def test_aggressor_op_primitive(self, mem):
        """<0w1; 0/1/->: CFid-style aggressor-write coupling."""
        f = PrimitiveFault(FaultPrimitive.parse("<0w1; 0/1/->"), cell=2,
                           aggressor_cell=5)
        f.write(mem, 2, 0, 0)
        f.write(mem, 5, 0, 1)
        f.write(mem, 5, 1, 2)   # 0 -> 1 transition on aggressor
        assert f.read(mem, 2, 3) == 1

    def test_aggressor_required_state(self, mem):
        f = PrimitiveFault(FaultPrimitive.parse("<0w1; 0/1/->"), cell=2,
                           aggressor_cell=5)
        f.write(mem, 2, 0, 0)
        f.write(mem, 5, 1, 1)   # unknown -> 1: pre-state was not 0
        assert f.read(mem, 2, 2) == 0

    def test_coupling_needs_aggressor_cell(self):
        with pytest.raises(ValueError):
            PrimitiveFault(FaultPrimitive.parse("<1; 0/1/->"), cell=2)

    def test_victim_equals_aggressor_rejected(self):
        with pytest.raises(ValueError):
            PrimitiveFault(FaultPrimitive.parse("<1; 0/1/->"), cell=2,
                           aggressor_cell=2)


class TestDynamicSequences:
    def test_wr_pair_fires_back_to_back(self, mem):
        f = make_dynamic_rdf(cell=0, state=0)
        f.write(mem, 0, 0, 0)
        f.write(mem, 0, 1, 1)
        value = f.read(mem, 0, 2)
        assert value == 1            # deceptive: read looks correct
        assert mem.get(0) == 0       # but the cell flipped back

    def test_wr_pair_silent_with_gap(self, mem):
        f = make_dynamic_rdf(cell=0, state=0)
        f.write(mem, 0, 0, 0)
        f.write(mem, 0, 1, 1)
        # Intervening access to another cell consumes the timing slack.
        f.read(mem, 5, 2)
        assert f.read(mem, 0, 9) == 1
        assert mem.get(0) == 1       # no flip: not back-to-back

    def test_double_read_fault(self, mem):
        f = make_double_read_fault(cell=0, state=0)
        f.write(mem, 0, 0, 0)
        assert f.read(mem, 0, 1) == 0
        assert f.read(mem, 0, 2) == 1   # second consecutive read disturbs
        assert mem.get(0) == 1

    def test_initial_state_gating(self, mem):
        f = make_dynamic_rdf(cell=0, state=0)
        f.write(mem, 0, 1, 0)    # cell holds 1, not the required 0
        f.write(mem, 0, 1, 1)
        f.read(mem, 0, 2)
        assert mem.get(0) == 1   # primitive did not fire

    def test_gap_parameter_validation(self):
        with pytest.raises(ValueError):
            AtSpeedDynamicFault(
                primitive=FaultPrimitive.parse("<0w1r1/0/1>"), cell=0,
                max_gap_cycles=0)

    def test_wider_gap_window(self, mem):
        f = AtSpeedDynamicFault(
            primitive=FaultPrimitive.parse("<0w1r1/0/1>"), cell=0,
            max_gap_cycles=5)
        f.write(mem, 0, 0, 0)
        f.write(mem, 0, 1, 1)
        f.read(mem, 0, 4)        # gap of 3 cycles, within window
        assert mem.get(0) == 0


class TestDetectionByMarchTests:
    def test_dynamic_rdf_caught_by_read_after_write_test(self):
        """TEST_11N's ⇓(r0,w1,r1) element reads right after writing --
        it sensitises w-r dynamic faults; a second read elsewhere
        detects the flip."""
        sim = FunctionalFaultSimulator(8)
        detected = sum(
            sim.detects(TEST_11N, make_dynamic_rdf(c, 0)) for c in range(8)
        )
        assert detected == 8

    def test_reset_between_runs(self):
        sim = FunctionalFaultSimulator(8)
        fault = make_dynamic_rdf(0, 0)
        first = sim.detects(TEST_11N, fault)
        second = sim.detects(TEST_11N, fault)
        assert first == second
