"""Tests for repro.faults.primitives (<S/F/R> notation)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.faults.primitives import FaultPrimitive, SensitisingSequence
from repro.march.ops import Op, OpKind

ops_st = st.lists(
    st.builds(Op, st.sampled_from(list(OpKind)), st.sampled_from([0, 1])),
    min_size=0, max_size=3,
).map(tuple)

seq_st = st.builds(SensitisingSequence,
                   st.sampled_from([None, 0, 1]), ops_st)


class TestSensitisingSequence:
    def test_parse_state_only(self):
        s = SensitisingSequence.parse("1")
        assert s.initial_state == 1
        assert s.is_state_only

    def test_parse_state_plus_ops(self):
        s = SensitisingSequence.parse("0w1r1")
        assert s.initial_state == 0
        assert [op.notation for op in s.operations] == ["w1", "r1"]

    def test_parse_dash_is_empty(self):
        s = SensitisingSequence.parse("-")
        assert s.initial_state is None
        assert s.is_state_only

    def test_invalid_state(self):
        with pytest.raises(ValueError):
            SensitisingSequence(2, ())

    def test_parse_garbage(self):
        with pytest.raises(ValueError):
            SensitisingSequence.parse("0x1")

    @given(seq_st)
    def test_notation_roundtrip(self, seq):
        assert SensitisingSequence.parse(seq.notation) == seq


class TestFaultPrimitive:
    def test_parse_single_cell(self):
        fp = FaultPrimitive.parse("<0w1/0/->")
        assert fp.victim.initial_state == 0
        assert fp.faulty_value == 0
        assert fp.read_output is None
        assert not fp.is_coupling

    def test_parse_two_cell(self):
        fp = FaultPrimitive.parse("<1; 0/1/->")
        assert fp.is_coupling
        assert fp.aggressor.initial_state == 1
        assert fp.victim.initial_state == 0

    def test_parse_with_read_output(self):
        fp = FaultPrimitive.parse("<0r0/1/1>")
        assert fp.read_output == 1

    def test_read_output_requires_trailing_read(self):
        with pytest.raises(ValueError, match="read"):
            FaultPrimitive.parse("<0w1/0/1>")

    def test_dynamic_detection(self):
        static = FaultPrimitive.parse("<0r0/1/1>")
        dynamic = FaultPrimitive.parse("<0w1r1/0/1>")
        assert not static.is_dynamic
        assert dynamic.is_dynamic
        assert dynamic.operation_count == 2

    def test_invalid_faulty_value(self):
        with pytest.raises(ValueError):
            FaultPrimitive(SensitisingSequence(0), 2)

    def test_parse_rejects_malformed(self):
        for text in ("0w1/0/-", "<0w1/0>", "<//>"):
            with pytest.raises(ValueError):
                FaultPrimitive.parse(text)

    @pytest.mark.parametrize("notation", [
        "<0/1/->",        # SA1
        "<1/0/->",        # SA0
        "<0w1/0/->",      # TF up
        "<1w0/1/->",      # TF down
        "<0r0/1/1>",      # RDF
        "<0r0/1/0>",      # DRDF
        "<0r0/0/1>",      # IRF
        "<0w0/1/->",      # WDF
        "<0w1; 0/1/->",   # CFid
        "<1; 0/1/->",     # CFst
        "<0w1r1/0/1>",    # dynamic
        "<0r0r0/1/1>",    # dynamic double read
    ])
    def test_standard_primitives_roundtrip(self, notation):
        fp = FaultPrimitive.parse(notation)
        assert FaultPrimitive.parse(fp.notation) == fp
