"""Tests for repro.faults.address_delay (decoder delay faults)."""

import pytest

from repro.faults.address_delay import (
    AddressTransitionDelayFault,
    generate_address_delay_faults,
)
from repro.faults.models import MemoryState


def make_fault(bit=1, rising=True, bits=4, gap=1):
    return AddressTransitionDelayFault(bit=bit, rising=rising,
                                       address_bits=bits,
                                       max_gap_cycles=gap)


@pytest.fixture
def mem():
    m = MemoryState(16)
    m.bits.fill(0)
    return m


class TestHazardClassification:
    def test_single_bit_toggle_redirects(self, mem):
        f = make_fault(bit=1, rising=True)
        mem.set(0, 1)   # previous address holds 1
        f.read(mem, 0, 0)
        # 0 -> 2 toggles only bit 1, rising.
        assert f.read(mem, 2, 1) == 1   # reads cell 0, not cell 2

    def test_wrong_polarity_harmless(self, mem):
        f = make_fault(bit=1, rising=False)
        mem.set(0, 1)
        f.read(mem, 0, 0)
        assert f.read(mem, 2, 1) == 0   # rising toggle, fault is falling

    def test_multi_bit_transition_harmless(self, mem):
        """Carry transitions deselect the old line: no fault."""
        f = make_fault(bit=2, rising=True)
        mem.set(3, 1)
        f.read(mem, 3, 0)
        # 3 -> 4 flips bits 0,1,2 together.
        assert f.read(mem, 4, 1) == 0

    def test_gap_defuses_hazard(self, mem):
        f = make_fault(bit=1, rising=True, gap=1)
        mem.set(0, 1)
        f.read(mem, 0, 0)
        assert f.read(mem, 2, 5) == 0   # not back-to-back

    def test_write_redirected(self, mem):
        f = make_fault(bit=0, rising=True)
        f.write(mem, 0, 0, 0)
        f.write(mem, 1, 1, 1)   # single-bit rising toggle: lands on 0
        assert mem.get(0) == 1
        assert mem.get(1) == 0

    def test_reset_clears_history(self, mem):
        f = make_fault(bit=1, rising=True)
        mem.set(0, 1)
        f.read(mem, 0, 0)
        f.reset()
        assert f.read(mem, 2, 1) == 0


class TestValidation:
    def test_bit_range(self):
        with pytest.raises(ValueError):
            make_fault(bit=4, bits=4)

    def test_gap_positive(self):
        with pytest.raises(ValueError):
            make_fault(gap=0)

    def test_universe_size(self):
        faults = generate_address_delay_faults(5)
        assert len(faults) == 10
        assert {(f.bit, f.rising) for f in faults} == {
            (b, r) for b in range(5) for r in (True, False)}


class TestMoviGap:
    """The [Azimane 04] result: linear marching misses high-bit delay
    faults; MOVI catches all of them."""

    def test_linear_catches_only_bit0(self):
        from repro.march.library import TEST_11N
        from repro.tester.movi import MoviExecutor

        ex = MoviExecutor(4)
        detected_bits = set()
        for f in generate_address_delay_faults(4):
            if ex.linear_reference(TEST_11N, f).detected:
                detected_bits.add(f.bit)
        assert detected_bits == {0}

    def test_movi_catches_everything(self):
        from repro.march.library import TEST_11N
        from repro.tester.movi import MoviExecutor

        ex = MoviExecutor(4)
        for f in generate_address_delay_faults(4):
            assert ex.run(TEST_11N, f).detected, (f.bit, f.rising)

    def test_detecting_rotation_is_the_faulty_bit(self):
        from repro.march.library import TEST_11N
        from repro.tester.movi import MoviExecutor

        ex = MoviExecutor(4)
        fault = make_fault(bit=2, rising=True)
        result = ex.run(TEST_11N, fault)
        assert 2 in result.detecting_bits
