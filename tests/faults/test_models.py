"""Tests for repro.faults.models (classical fault behaviours)."""

import pytest

from repro.faults.models import (
    DataRetentionFault,
    DeceptiveReadDestructiveFault,
    DisturbCouplingFault,
    FaultFree,
    IdempotentCouplingFault,
    IncorrectReadFault,
    InversionCouplingFault,
    MemoryState,
    MultipleAccessFault,
    NoAccessFault,
    ReadDestructiveFault,
    StateCouplingFault,
    StuckAtFault,
    StuckOpenFault,
    TransitionFault,
    WriteDisturbFault,
    WrongAccessFault,
)


@pytest.fixture
def mem():
    return MemoryState(8)


class TestMemoryState:
    def test_starts_unknown(self, mem):
        assert all(mem.get(a) == MemoryState.UNKNOWN for a in range(8))

    def test_set_get(self, mem):
        mem.set(3, 1)
        assert mem.get(3) == 1

    def test_reset(self, mem):
        mem.set(0, 1)
        mem.touch(0, 5)
        mem.reset()
        assert mem.get(0) == MemoryState.UNKNOWN
        assert mem.last_access_cycle[0] == 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            MemoryState(0)


class TestFaultFree:
    def test_write_then_read(self, mem):
        f = FaultFree()
        f.write(mem, 2, 1, 0)
        assert f.read(mem, 2, 1) == 1


class TestStuckAt:
    def test_writes_ignored(self, mem):
        f = StuckAtFault(cell=1, value=0)
        f.write(mem, 1, 1, 0)
        assert f.read(mem, 1, 1) == 0

    def test_other_cells_unaffected(self, mem):
        f = StuckAtFault(cell=1, value=0)
        f.write(mem, 2, 1, 0)
        assert f.read(mem, 2, 1) == 1

    def test_primitives(self):
        assert StuckAtFault(0, 1).primitives() == ("<0/1/->",)


class TestTransition:
    def test_rising_blocked(self, mem):
        f = TransitionFault(cell=0, rising=True)
        f.write(mem, 0, 0, 0)
        f.write(mem, 0, 1, 1)   # blocked
        assert f.read(mem, 0, 2) == 0

    def test_falling_still_works_for_rising_tf(self, mem):
        f = TransitionFault(cell=0, rising=True)
        f.write(mem, 0, 0, 0)   # init
        # 0 -> 0 fine; directly writing 0 over unknown also fine
        assert f.read(mem, 0, 1) == 0

    def test_falling_blocked(self, mem):
        f = TransitionFault(cell=0, rising=False)
        f.write(mem, 0, 1, 0)
        f.write(mem, 0, 0, 1)   # blocked
        assert f.read(mem, 0, 2) == 1


class TestStuckOpen:
    def test_read_returns_previous_sensed(self, mem):
        f = StuckOpenFault(cell=2)
        f.write(mem, 1, 1, 0)
        assert f.read(mem, 1, 1) == 1      # sense amp now holds 1
        f.write(mem, 2, 0, 2)              # lost
        assert f.read(mem, 2, 3) == 1      # returns stale sensed value

    def test_reset_clears_sense_state(self, mem):
        f = StuckOpenFault(cell=2)
        f.write(mem, 1, 1, 0)
        f.read(mem, 1, 1)
        f.reset()
        assert f.read(mem, 2, 2) == 0


class TestReadFaults:
    def test_rdf_flips_and_returns_flipped(self, mem):
        f = ReadDestructiveFault(cell=0)
        f.write(mem, 0, 0, 0)
        assert f.read(mem, 0, 1) == 1
        assert mem.get(0) == 1

    def test_drdf_returns_correct_but_flips(self, mem):
        f = DeceptiveReadDestructiveFault(cell=0)
        f.write(mem, 0, 0, 0)
        assert f.read(mem, 0, 1) == 0      # looks fine
        assert f.read(mem, 0, 2) == 1      # second read exposes it

    def test_irf_wrong_value_state_intact(self, mem):
        f = IncorrectReadFault(cell=0)
        f.write(mem, 0, 1, 0)
        assert f.read(mem, 0, 1) == 0
        assert mem.get(0) == 1

    def test_wdf_non_transition_write_flips(self, mem):
        f = WriteDisturbFault(cell=0)
        f.write(mem, 0, 1, 0)
        f.write(mem, 0, 1, 1)   # w1 on 1 -> disturb
        assert f.read(mem, 0, 2) == 0


class TestCouplingFaults:
    def test_cfin_inverts_victim_on_transition(self, mem):
        f = InversionCouplingFault(aggressor=0, victim=1, rising=True)
        f.write(mem, 1, 0, 0)
        f.write(mem, 0, 0, 1)
        f.write(mem, 0, 1, 2)   # rising transition
        assert f.read(mem, 1, 3) == 1

    def test_cfin_no_effect_without_transition(self, mem):
        f = InversionCouplingFault(aggressor=0, victim=1, rising=True)
        f.write(mem, 1, 0, 0)
        f.write(mem, 0, 1, 1)   # unknown -> 1: not a 0->1 transition
        assert f.read(mem, 1, 2) == 0

    def test_cfid_forces_value(self, mem):
        f = IdempotentCouplingFault(0, 1, rising=False, forced_value=1)
        f.write(mem, 1, 0, 0)
        f.write(mem, 0, 1, 1)
        f.write(mem, 0, 0, 2)   # falling transition
        assert f.read(mem, 1, 3) == 1

    def test_cfst_forces_while_state_held(self, mem):
        f = StateCouplingFault(0, 1, aggressor_state=1, forced_value=0)
        f.write(mem, 0, 1, 0)
        f.write(mem, 1, 1, 1)
        assert f.read(mem, 1, 2) == 0

    def test_cfst_inactive_in_other_state(self, mem):
        f = StateCouplingFault(0, 1, aggressor_state=1, forced_value=0)
        f.write(mem, 0, 0, 0)
        f.write(mem, 1, 1, 1)
        assert f.read(mem, 1, 2) == 1

    def test_cfdst_read_disturbs(self, mem):
        f = DisturbCouplingFault(0, 1, forced_value=1)
        f.write(mem, 1, 0, 0)
        f.write(mem, 0, 0, 1)
        f.read(mem, 0, 2)
        assert f.read(mem, 1, 3) == 1

    def test_same_cell_rejected(self):
        with pytest.raises(ValueError):
            InversionCouplingFault(1, 1, rising=True)
        with pytest.raises(ValueError):
            StateCouplingFault(2, 2, 0, 0)


class TestDataRetention:
    def test_decays_after_idle(self, mem):
        f = DataRetentionFault(cell=0, decay_value=0, retention_cycles=5)
        f.write(mem, 0, 1, 0)
        assert f.read(mem, 0, 3) == 1     # still fresh
        assert f.read(mem, 0, 100) == 0   # decayed

    def test_refresh_by_access(self, mem):
        f = DataRetentionFault(cell=0, decay_value=0, retention_cycles=5)
        f.write(mem, 0, 1, 0)
        f.read(mem, 0, 4)   # touch refreshes the timer
        assert f.read(mem, 0, 8) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DataRetentionFault(0, 0, retention_cycles=0)


class TestAddressFaults:
    def test_no_access_write_lost(self, mem):
        f = NoAccessFault(address=1, float_value=1)
        f.write(mem, 1, 0, 0)
        assert f.read(mem, 1, 1) == 1     # floating value

    def test_wrong_access_redirects(self, mem):
        f = WrongAccessFault(address=0, actual_cell=3)
        f.write(mem, 0, 1, 0)
        assert mem.get(3) == 1
        assert mem.get(0) == MemoryState.UNKNOWN
        assert f.read(mem, 0, 1) == 1

    def test_multiple_access_write_hits_all(self, mem):
        f = MultipleAccessFault(address=0, extra_cells=(2,))
        f.write(mem, 0, 1, 0)
        assert mem.get(0) == 1 and mem.get(2) == 1

    def test_multiple_access_read_wire_ands(self, mem):
        f = MultipleAccessFault(address=0, extra_cells=(2,))
        f.write(mem, 0, 1, 0)
        f.write(mem, 2, 0, 1)
        assert f.read(mem, 0, 2) == 0     # 1 & 0

    def test_validation(self):
        with pytest.raises(ValueError):
            WrongAccessFault(1, 1)
        with pytest.raises(ValueError):
            MultipleAccessFault(1, ())
        with pytest.raises(ValueError):
            MultipleAccessFault(1, (1,))
