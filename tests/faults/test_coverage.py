"""Tests for repro.faults.coverage (classical coverage results).

These lock in the textbook march-test coverage table: which classical
fault classes each published test detects completely.  Deviations here
mean the fault models or the march library drifted.
"""

import pytest

from repro.faults.coverage import (
    FAULT_CLASS_GENERATORS,
    class_coverage,
    coverage_matrix,
)
from repro.march.library import (
    MARCH_CM,
    MARCH_SS,
    MATS,
    MATS_PLUS,
    MATS_PLUS_PLUS,
    TEST_11N,
)


class TestClassicalResults:
    """Textbook coverage facts [van de Goor 98]."""

    @pytest.mark.parametrize("fc", ["SAF", "TF", "AF", "CFin", "CFid",
                                    "CFst"])
    def test_march_cm_complete_on_static_classes(self, fc):
        assert class_coverage(MARCH_CM, fc, 8).coverage == 1.0

    def test_mats_covers_saf_only_half_tf(self):
        assert class_coverage(MATS, "SAF", 8).coverage == 1.0
        assert class_coverage(MATS, "TF", 8).coverage == 0.5

    def test_matspp_adds_full_tf(self):
        assert class_coverage(MATS_PLUS_PLUS, "TF", 8).coverage == 1.0

    def test_mats_plus_covers_af(self):
        assert class_coverage(MATS_PLUS, "AF", 8).coverage == 1.0

    def test_march_cm_misses_drdf(self):
        assert class_coverage(MARCH_CM, "DRDF", 8).coverage == 0.0

    def test_march_ss_catches_drdf(self):
        assert class_coverage(MARCH_SS, "DRDF", 8).coverage == 1.0

    def test_march_ss_catches_wdf(self):
        assert class_coverage(MARCH_SS, "WDF", 8).coverage == 1.0

    def test_11n_covers_saf_tf_af(self):
        for fc in ("SAF", "TF", "AF"):
            assert class_coverage(TEST_11N, fc, 8).coverage == 1.0, fc

    def test_11n_strictly_better_than_matspp_on_cfin(self):
        c11 = class_coverage(TEST_11N, "CFin", 8).coverage
        cmp_ = class_coverage(MATS_PLUS_PLUS, "CFin", 8).coverage
        assert c11 > cmp_

    def test_irf_caught_by_any_reading_test(self):
        assert class_coverage(MATS_PLUS_PLUS, "IRF", 8).coverage == 1.0


class TestGenerators:
    def test_instance_counts(self):
        n = 6
        assert len(list(FAULT_CLASS_GENERATORS["SAF"](n))) == 2 * n
        assert len(list(FAULT_CLASS_GENERATORS["TF"](n))) == 2 * n
        assert len(list(FAULT_CLASS_GENERATORS["CFin"](n))) == 2 * n * (n - 1)
        assert len(list(FAULT_CLASS_GENERATORS["CFid"](n))) == 4 * n * (n - 1)
        assert len(list(FAULT_CLASS_GENERATORS["CFst"](n))) == 4 * n * (n - 1)
        assert len(list(FAULT_CLASS_GENERATORS["AF"](n))) == 6 * n

    def test_unknown_class_raises(self):
        with pytest.raises(KeyError, match="available"):
            class_coverage(MARCH_CM, "XYZ", 8)


class TestCoverageMatrix:
    def test_matrix_shape(self):
        matrix = coverage_matrix([MATS, MARCH_CM], ["SAF", "TF"], n_cells=6)
        assert set(matrix) == {"MATS", "March C-"}
        assert set(matrix["MATS"]) == {"SAF", "TF"}

    def test_matrix_values_match_single_calls(self):
        matrix = coverage_matrix([MATS], ["TF"], n_cells=6)
        single = class_coverage(MATS, "TF", 6)
        assert matrix["MATS"]["TF"].coverage == single.coverage


class TestCoverageResult:
    def test_percent_and_str(self):
        r = class_coverage(MATS, "SAF", 4)
        assert r.percent == 100.0
        assert "MATS" in str(r)
        assert "SAF" in str(r)
