"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_estimate_defaults(self):
        args = build_parser().parse_args(["estimate"])
        assert args.rows == 512 and args.bits == 32

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_estimate_runs(self, capsys):
        rc = main(["estimate", "--rows", "32", "--columns", "4",
                   "--bits", "8", "--sites", "400"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "VLV" in out and "DPM" in out

    def test_estimate_saves_database(self, capsys, tmp_path):
        db_path = tmp_path / "cov.json"
        rc = main(["estimate", "--rows", "32", "--columns", "4",
                   "--bits", "8", "--sites", "300",
                   "--save-db", str(db_path)])
        assert rc == 0
        from repro.core.database import CoverageDatabase

        loaded = CoverageDatabase.load(db_path)
        assert len(loaded) > 0

    def test_shmoo_fault_free(self, capsys):
        rc = main(["shmoo"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "+" in out and "V |" in out

    def test_shmoo_with_preset(self, capsys):
        rc = main(["shmoo", "--defect", "rail-bridge",
                   "--resistance", "240e3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rail-bridge" in out

    def test_shmoo_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            main(["shmoo", "--defect", "gamma-ray"])

    def test_venn_small_lot(self, capsys):
        rc = main(["venn", "--devices", "800", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "VLV only" in out

    def test_plan(self, capsys):
        rc = main(["plan", "--samples", "500", "--target-dpm", "100"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Pareto front" in out
        assert "cheapest plan" in out
