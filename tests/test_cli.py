"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_estimate_defaults(self):
        args = build_parser().parse_args(["estimate"])
        assert args.rows == 512 and args.bits == 32

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_estimate_runs(self, capsys):
        rc = main(["estimate", "--rows", "32", "--columns", "4",
                   "--bits", "8", "--sites", "400"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "VLV" in out and "DPM" in out

    def test_estimate_saves_database(self, capsys, tmp_path):
        db_path = tmp_path / "cov.json"
        rc = main(["estimate", "--rows", "32", "--columns", "4",
                   "--bits", "8", "--sites", "300",
                   "--save-db", str(db_path)])
        assert rc == 0
        from repro.core.database import CoverageDatabase

        loaded = CoverageDatabase.load(db_path)
        assert len(loaded) > 0

    def test_shmoo_fault_free(self, capsys):
        rc = main(["shmoo"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "+" in out and "V |" in out

    def test_shmoo_with_preset(self, capsys):
        rc = main(["shmoo", "--defect", "rail-bridge",
                   "--resistance", "240e3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rail-bridge" in out

    def test_shmoo_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            main(["shmoo", "--defect", "gamma-ray"])

    def test_venn_small_lot(self, capsys):
        rc = main(["venn", "--devices", "800", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "VLV only" in out

    def test_plan(self, capsys):
        rc = main(["plan", "--samples", "500", "--target-dpm", "100"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Pareto front" in out
        assert "cheapest plan" in out


class TestLintCommand:
    """Regression tests for the stable 0/1/2 lint exit-code contract."""

    def test_clean_target_exits_zero(self, capsys):
        assert main(["lint", "march:March C-"]) == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().out

    def test_warning_target_exits_zero_without_strict(self, capsys):
        assert main(["lint", "march:MATS"]) == 0

    def test_warning_target_exits_one_with_strict(self, capsys):
        assert main(["lint", "march:MATS", "--strict"]) == 1

    def test_broken_netlist_exits_two(self, capsys):
        assert main(["lint", "netlist:demo-broken"]) == 2
        out = capsys.readouterr().out
        assert "NET001" in out and "NET003" in out

    def test_broken_netlist_json(self, capsys):
        import json

        assert main(["lint", "netlist:demo-broken", "--format",
                     "json"]) == 2
        doc = json.loads(capsys.readouterr().out)
        rules = {i["rule"] for i in doc["issues"]}
        assert {"NET001", "NET003"} <= rules
        assert doc["summary"]["exit_code"] == 2

    def test_default_targets_are_error_free(self, capsys):
        assert main(["lint"]) == 0

    def test_suppression_flag(self, capsys):
        rc = main(["lint", "march:MATS", "--strict",
                   "--disable", "MARCH008,MARCH009"])
        assert rc == 0

    def test_unknown_suppression_exits_two(self, capsys):
        assert main(["lint", "netlist:cell", "--disable", "NET999"]) == 2
        assert "unknown rule 'NET999'" in capsys.readouterr().err

    def test_strict_errors_still_exit_two(self, capsys):
        assert main(["lint", "netlist:demo-broken", "--strict"]) == 2

    def test_unknown_target_exits_two(self, capsys):
        assert main(["lint", "netlist:frobnicate"]) == 2
        assert "unknown netlist target" in capsys.readouterr().err

    def test_unknown_march_test_exits_two(self, capsys):
        assert main(["lint", "march:no-such-test"]) == 2

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rid in ("NET001", "MARCH001", "PLAN001"):
            assert rid in out

    def test_plan_target_with_dpm_gate(self, capsys):
        rc = main(["lint", "plan:production", "--target-dpm", "1000",
                   "--samples", "200"])
        assert rc == 0

    def test_plan_target_unreachable_dpm(self, capsys):
        rc = main(["lint", "plan:standard", "--target-dpm", "1e-6",
                   "--samples", "200"])
        assert rc == 2
        assert "PLAN003" in capsys.readouterr().out


class TestCampaign:
    """The resilient-runner front door: run / resume / status."""

    ARGS = ["--rows", "16", "--columns", "2", "--bits", "4",
            "--sites", "40", "--seed", "7"]

    def test_run_without_checkpoint(self, capsys):
        rc = main(["campaign", "run", *self.ARGS])
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign complete" in out
        assert "quarantined sites: 0" in out

    def test_run_status_resume_cycle(self, capsys, tmp_path):
        ck = str(tmp_path / "ck.json")
        assert main(["campaign", "run", *self.ARGS,
                     "--checkpoint", ck]) == 0
        capsys.readouterr()

        assert main(["campaign", "status", ck]) == 0
        out = capsys.readouterr().out
        assert "units complete (0 remaining)" in out
        assert "16x2x4x1" in out

        db = str(tmp_path / "db.json")
        assert main(["campaign", "resume", ck, "--save-db", db]) == 0
        out = capsys.readouterr().out
        assert "resumed from checkpoint" in out

        from repro.core.database import CoverageDatabase

        assert len(CoverageDatabase.load(db)) > 0

    def test_run_under_chaos_survives(self, capsys):
        rc = main(["campaign", "run", *self.ARGS,
                   "--chaos-rate", "0.01", "--chaos-seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "chaos:" in out and "faults injected" in out

    def test_run_with_workers_and_cache(self, capsys, tmp_path):
        cache = str(tmp_path / "cache.json")
        rc = main(["campaign", "run", *self.ARGS,
                   "--workers", "2", "--cache", cache])
        assert rc == 0
        out = capsys.readouterr().out
        assert "across 2 workers" in out
        assert "hit rate 0 %" in out

        # Second run: every unit served from the warm cache.
        assert main(["campaign", "run", *self.ARGS,
                     "--cache", cache]) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out
        assert "hit rate 100 %" in out

    def test_resume_accepts_workers(self, capsys, tmp_path):
        ck = str(tmp_path / "ck.json")
        assert main(["campaign", "run", *self.ARGS,
                     "--checkpoint", ck]) == 0
        capsys.readouterr()
        assert main(["campaign", "resume", ck, "--workers", "2"]) == 0
        assert "resumed from checkpoint" in capsys.readouterr().out

    def test_status_missing_checkpoint(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["campaign", "status", str(tmp_path / "absent.json")])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_run_with_frontier_strategy(self, capsys):
        rc = main(["campaign", "run", *self.ARGS,
                   "--strategy", "frontier"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign complete" in out
        assert "frontier:" in out and "model invocations" in out

    def test_frontier_rejects_workers(self, capsys):
        rc = main(["campaign", "run", *self.ARGS,
                   "--strategy", "frontier", "--workers", "2"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "serial" in err

    def test_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "run",
                                       "--strategy", "turbo"])

    def test_run_with_batch_strategy(self, capsys):
        rc = main(["campaign", "run", *self.ARGS,
                   "--strategy", "batch"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign complete" in out
        assert "batch:" in out and "model invocations" in out

    def test_batch_rejects_workers(self, capsys):
        rc = main(["campaign", "run", *self.ARGS,
                   "--strategy", "batch", "--workers", "2"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "serial" in err


class TestShmooStrategy:
    def test_boundary_strategy_prints_trace_stats(self, capsys):
        rc = main(["shmoo", "--defect", "rail-bridge",
                   "--resistance", "240e3", "--strategy", "boundary"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "boundary trace:" in out and "tester invocations" in out

    def test_exact_strategy_prints_no_trace_stats(self, capsys):
        rc = main(["shmoo"])
        assert rc == 0
        assert "boundary trace:" not in capsys.readouterr().out

    def test_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["shmoo", "--strategy", "turbo"])


class TestJournalCli:
    """The observability front door: --journal and `repro report`."""

    ARGS = ["--rows", "16", "--columns", "2", "--bits", "4",
            "--sites", "40", "--seed", "7"]

    def test_campaign_journal_then_report(self, capsys, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        assert main(["campaign", "run", *self.ARGS,
                     "--journal", journal]) == 0
        out = capsys.readouterr().out
        assert "run journal:" in out

        assert main(["report", journal]) == 0
        out = capsys.readouterr().out
        assert "Run report" in out
        assert "Quarantines:" in out
        assert "Frontier demotions:" in out

    def test_report_json_format(self, capsys, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        assert main(["campaign", "run", *self.ARGS,
                     "--journal", journal]) == 0
        capsys.readouterr()
        assert main(["report", journal, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.run-report"
        assert doc["totals"]["executed_units"] == 80

    def test_report_missing_journal_exits_two(self, capsys, tmp_path):
        rc = main(["report", str(tmp_path / "absent.jsonl")])
        assert rc == 2
        assert "no run journal" in capsys.readouterr().err

    def test_report_corrupt_journal_exits_two(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not a journal\n")
        rc = main(["report", str(bad)])
        assert rc == 2
        assert "line 1" in capsys.readouterr().err

    def test_report_without_journal_is_legacy_report(self, capsys):
        rc = main(["report", "--sites", "200", "--devices", "500"])
        assert rc == 0

    def test_shmoo_journal(self, capsys, tmp_path):
        journal = str(tmp_path / "shmoo.jsonl")
        assert main(["shmoo", "--journal", journal]) == 0
        assert "run journal:" in capsys.readouterr().out
        assert main(["report", journal]) == 0
        assert "Shmoo: strategy=exact" in capsys.readouterr().out

    def test_status_with_cache_forensics(self, capsys, tmp_path):
        ck = str(tmp_path / "ck.json")
        cache = tmp_path / "cache.json"
        cache.write_text("garbage")
        assert main(["campaign", "run", *self.ARGS, "--checkpoint", ck,
                     "--cache", str(cache)]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", ck,
                     "--cache", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "cache:" in out


class TestExperimentCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["experiment", "run"])
        assert args.devices == 1_000_000
        assert args.scheme == "spawn"
        assert args.workers == 1

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment"])

    def test_run_small_experiment(self, capsys, tmp_path):
        journal = tmp_path / "exp.jsonl"
        rc = main(["experiment", "run", "--devices", "8192",
                   "--shard-devices", "4096",
                   "--journal", str(journal)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "experiment complete" in out
        assert "2 shard(s)" in out
        assert "escape DPM (VLV)" in out
        lines = [json.loads(line)
                 for line in journal.read_text().splitlines()]
        assert sum(e.get("event") == "experiment.shard"
                   for e in lines) == 2

    def test_resume_from_checkpoint(self, capsys, tmp_path):
        ckpt = tmp_path / "exp.ckpt.json"
        base = ["experiment", "run", "--devices", "8192",
                "--shard-devices", "4096", "--checkpoint", str(ckpt),
                "--checkpoint-every", "1"]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert main(base) == 0
        second = capsys.readouterr().out
        assert "2 resumed from checkpoint" in second
        assert first.splitlines()[1] == second.splitlines()[1]

    def test_chaos_worker_exit_heals(self, capsys):
        rc = main(["experiment", "run", "--devices", "8192",
                   "--shard-devices", "4096", "--workers", "2",
                   "--chaos-worker-exit", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "worker losses 1" in out

    def test_rejects_unknown_chaos_shard(self):
        with pytest.raises(SystemExit, match="out of range"):
            main(["experiment", "run", "--devices", "8192",
                  "--shard-devices", "4096",
                  "--chaos-worker-exit", "99"])
