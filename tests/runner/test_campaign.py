"""Tests for repro.runner.campaign: kill/resume, quarantine, degradation.

These are the acceptance tests of the resilient runner: a campaign
killed mid-run resumes from its checkpoint into records byte-identical
to an uninterrupted run, and injected per-site failures are quarantined
and reported rather than fatal.
"""

import dataclasses
import json

import pytest

from repro.circuit.technology import CMOS018
from repro.defects.models import DefectKind
from repro.ifa.flow import IfaCampaign
from repro.memory.geometry import MemoryGeometry
from repro.runner.campaign import (
    CampaignRunner,
    SweepSpec,
    UnitDeadlineExceeded,
)
from repro.runner.chaos import (
    ChaosBehaviorModel,
    FaultInjector,
    InjectedCrash,
)
from repro.runner.checkpoint import (
    CampaignCheckpoint,
    CheckpointMismatchError,
)
from repro.runner.retry import RetryPolicy
from repro.stress import production_conditions

GEOM = MemoryGeometry(16, 2, 4)
N_SITES = 40
SEED = 11


def make_campaign(injector=None):
    campaign = IfaCampaign(GEOM, CMOS018, n_sites=N_SITES, seed=SEED)
    if injector is not None:
        campaign.behavior = ChaosBehaviorModel(campaign.behavior, injector)
    return campaign


def two_conditions():
    conds = production_conditions(CMOS018)
    return (conds["VLV"], conds["Vmax"])


def bridge_spec():
    return SweepSpec.of(DefectKind.BRIDGE, (1e3, 10e3), two_conditions())


def records_bytes(records):
    """Canonical byte serialisation for exact-identity comparison."""
    return json.dumps([dataclasses.asdict(r) for r in records],
                      sort_keys=True).encode()


class TestPlainRun:
    def test_matches_direct_loop(self):
        """The runner reproduces the historical monolithic loop."""
        campaign = make_campaign()
        result = CampaignRunner(campaign).run([bridge_spec()])
        population = campaign.bridge_population()
        spec = bridge_spec()
        expected = []
        for r in spec.resistances:
            variants = [d.with_resistance(r) for d in population]
            for cond in spec.conditions:
                expected.append(sum(
                    1 for d in variants
                    if campaign.behavior.fails_condition(d, cond)))
        assert [rec.detected for rec in result.records] == expected
        assert all(rec.errors == 0 for rec in result.records)
        assert all(rec.total == N_SITES for rec in result.records)

    def test_record_order_is_plan_order(self):
        result = CampaignRunner(make_campaign()).run([bridge_spec()])
        keys = [(r.resistance, r.condition) for r in result.records]
        assert keys == [(1e3, "VLV"), (1e3, "Vmax"),
                        (10e3, "VLV"), (10e3, "Vmax")]

    def test_multi_kind_plan(self):
        specs = [
            bridge_spec(),
            SweepSpec.of(DefectKind.OPEN, (1e6,), two_conditions()),
        ]
        result = CampaignRunner(make_campaign()).run(specs)
        assert [r.kind for r in result.records] == ["bridge"] * 4 + [
            "open"] * 2


class TestKillResume:
    @pytest.mark.parametrize("crash_position", [30, 75, 130])
    def test_resume_is_byte_identical(self, tmp_path, crash_position):
        """Kill mid-campaign (at several depths), resume, compare."""
        baseline = CampaignRunner(make_campaign()).run([bridge_spec()])

        ck = tmp_path / "ck.json"
        inj = FaultInjector(
            crash_positions={"behavior.evaluate": {crash_position}})
        with pytest.raises(InjectedCrash):
            CampaignRunner(make_campaign(inj),
                           checkpoint_path=ck).run([bridge_spec()])

        resumed = CampaignRunner(make_campaign(),
                                 checkpoint_path=ck).run([bridge_spec()])
        assert records_bytes(resumed.records) == records_bytes(
            baseline.records)
        assert resumed.resumed_units == crash_position // N_SITES
        assert resumed.resumed_units + resumed.executed_units == 4

    def test_crash_during_checkpoint_io_is_survivable(self, tmp_path):
        """A crash inside the checkpoint *write* loses nothing either."""
        baseline = CampaignRunner(make_campaign()).run([bridge_spec()])
        ck = tmp_path / "ck.json"
        inj = FaultInjector(crash_positions={"io.replace": {2}})
        with pytest.raises(InjectedCrash):
            CampaignRunner(make_campaign(), checkpoint_path=ck,
                           fault_hook=inj.check).run([bridge_spec()])
        resumed = CampaignRunner(make_campaign(),
                                 checkpoint_path=ck).run([bridge_spec()])
        assert records_bytes(resumed.records) == records_bytes(
            baseline.records)

    def test_completed_checkpoint_resumes_without_evaluation(self,
                                                            tmp_path):
        ck = tmp_path / "ck.json"
        CampaignRunner(make_campaign(), checkpoint_path=ck).run(
            [bridge_spec()])
        # An injector with rate 1.0 would fail every evaluation -- but
        # none must happen on a fully complete checkpoint.
        inj = FaultInjector(rates={"behavior.evaluate": 1.0})
        result = CampaignRunner(make_campaign(inj),
                                checkpoint_path=ck).run([bridge_spec()])
        assert result.executed_units == 0 and result.resumed_units == 4

    def test_checkpoint_of_other_campaign_refused(self, tmp_path):
        ck = tmp_path / "ck.json"
        CampaignRunner(make_campaign(), checkpoint_path=ck).run(
            [bridge_spec()])
        other = IfaCampaign(GEOM, CMOS018, n_sites=N_SITES, seed=SEED + 1)
        with pytest.raises(CheckpointMismatchError, match="seed"):
            CampaignRunner(other, checkpoint_path=ck).run([bridge_spec()])

    def test_checkpoint_quarantine_restored_on_resume(self, tmp_path):
        ck = tmp_path / "ck.json"
        inj = FaultInjector(
            positions={"behavior.evaluate": {0, 1, 2}},  # 3 tries: site 0
            crash_positions={"behavior.evaluate": {120}})
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        with pytest.raises(InjectedCrash):
            CampaignRunner(make_campaign(inj), retry=policy,
                           checkpoint_path=ck).run([bridge_spec()])
        resumed = CampaignRunner(make_campaign(),
                                 checkpoint_path=ck).run([bridge_spec()])
        assert len(resumed.quarantine) == 1
        assert resumed.quarantine[0]["site_index"] == 0
        assert resumed.records[0].errors == 1


class TestErrorsUnderResume:
    """Regression tests for docs/robustness.md 'errors under resume':
    completed units are re-emitted, never re-evaluated, so quarantine
    outcomes persist across resume even when the failure has healed."""

    def run_degraded_checkpoint(self, tmp_path):
        """Quarantine site 0 of unit 0, crash before the campaign ends."""
        ck = tmp_path / "ck.json"
        inj = FaultInjector(
            positions={"behavior.evaluate": {0, 1, 2}},
            crash_positions={"behavior.evaluate": {120}})
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        with pytest.raises(InjectedCrash):
            CampaignRunner(make_campaign(inj), retry=policy,
                           checkpoint_path=ck).run([bridge_spec()])
        return ck

    def test_healed_model_does_not_clear_errors(self, tmp_path):
        """Resuming with a healthy model keeps the stored errors count:
        the record reports the unit's one evaluation, not the world's
        current state."""
        ck = self.run_degraded_checkpoint(tmp_path)
        resumed = CampaignRunner(make_campaign(),  # no injector: healed
                                 checkpoint_path=ck).run([bridge_spec()])
        assert resumed.records[0].errors == 1
        assert resumed.total_errors == 1
        assert resumed.quarantine[0]["site_index"] == 0

    def test_degraded_unit_is_not_reexecuted_on_resume(self, tmp_path):
        """The quarantined unit counts as resumed, not executed."""
        ck = self.run_degraded_checkpoint(tmp_path)
        resumed = CampaignRunner(make_campaign(),
                                 checkpoint_path=ck).run([bridge_spec()])
        assert resumed.resumed_units >= 1
        # Unit 0 (the degraded one) came from the checkpoint: the
        # resumed run made no retry calls for its 40 sites.
        total_sites = sum(r.total for r in resumed.records)
        executed_sites = resumed.executed_units * N_SITES
        assert resumed.retry_stats.calls == executed_sites
        assert executed_sites < total_sites

    def test_fresh_run_reevaluates_where_resume_does_not(self, tmp_path):
        """Without the checkpoint, a healed model produces errors == 0 —
        the contrast that makes the resume semantics worth documenting."""
        ck = self.run_degraded_checkpoint(tmp_path)
        resumed = CampaignRunner(make_campaign(),
                                 checkpoint_path=ck).run([bridge_spec()])
        fresh = CampaignRunner(make_campaign()).run([bridge_spec()])
        assert resumed.records[0].errors == 1
        assert fresh.records[0].errors == 0
        assert fresh.records[0].detected >= resumed.records[0].detected


class TestQuarantine:
    def test_persistent_failure_is_quarantined_not_fatal(self):
        # Positions 0..2 exhaust the 3-attempt policy on site 0 of the
        # first unit; position 10 is a one-off that retry heals.
        inj = FaultInjector(
            positions={"behavior.evaluate": {0, 1, 2, 10}})
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        result = CampaignRunner(make_campaign(inj), retry=policy).run(
            [bridge_spec()])
        assert result.total_errors == 1
        assert len(result.quarantine) == 1
        entry = result.quarantine[0]
        assert entry["site_index"] == 0
        assert entry["attempts"] == 3
        assert "InjectedFault" in entry["error"]
        assert result.retry_stats.retries >= 3

    def test_quarantined_site_not_counted_detected(self):
        """errors + detected never exceeds the population."""
        inj = FaultInjector(rates={"behavior.evaluate": 0.2}, seed=5)
        policy = RetryPolicy(max_attempts=1)  # no retry: quarantine often
        result = CampaignRunner(make_campaign(inj), retry=policy).run(
            [bridge_spec()])
        assert result.total_errors > 0
        for rec in result.records:
            assert rec.detected + rec.errors <= rec.total
            unit_id = f"{rec.kind}:{rec.resistance!r}:{rec.condition}"
            assert rec.errors == sum(
                1 for q in result.quarantine if q["unit_id"] == unit_id)

    def test_chaos_quarantine_is_deterministic(self):
        """Same seed -> same quarantine ledger, run to run."""
        def run_once():
            inj = FaultInjector(rates={"behavior.evaluate": 0.1}, seed=9)
            policy = RetryPolicy(max_attempts=2, base_delay=0.0,
                                 jitter=0.0)
            return CampaignRunner(make_campaign(inj), retry=policy).run(
                [bridge_spec()])

        a, b = run_once(), run_once()
        assert a.quarantine == b.quarantine
        assert records_bytes(a.records) == records_bytes(b.records)


class TestDeadline:
    def test_unit_deadline_aborts_resumably(self, tmp_path):
        now = [0.0]

        def clock():
            now[0] += 1.0  # every site evaluation "takes" one second
            return now[0]

        ck = tmp_path / "ck.json"
        runner = CampaignRunner(make_campaign(), checkpoint_path=ck,
                                unit_deadline=10.0, clock=clock)
        with pytest.raises(UnitDeadlineExceeded, match="checkpointed"):
            runner.run([bridge_spec()])
        # Nothing committed (first unit overran), but the file is sane.
        assert not ck.exists() or CampaignCheckpoint.load(ck)

    def test_validation(self):
        with pytest.raises(ValueError, match="unit_deadline"):
            CampaignRunner(make_campaign(), unit_deadline=0.0)
        with pytest.raises(ValueError, match="checkpoint_every"):
            CampaignRunner(make_campaign(), checkpoint_every=0)


class TestCheckpointEvery:
    def test_batched_checkpointing_still_resumes(self, tmp_path):
        baseline = CampaignRunner(make_campaign()).run([bridge_spec()])
        ck = tmp_path / "ck.json"
        inj = FaultInjector(crash_positions={"behavior.evaluate": {130}})
        with pytest.raises(InjectedCrash):
            CampaignRunner(make_campaign(inj), checkpoint_path=ck,
                           checkpoint_every=2).run([bridge_spec()])
        resumed = CampaignRunner(make_campaign(), checkpoint_path=ck,
                                 checkpoint_every=2).run([bridge_spec()])
        assert records_bytes(resumed.records) == records_bytes(
            baseline.records)
        # With batching, fewer units survive the crash -- but never a
        # torn or inconsistent checkpoint.
        assert resumed.resumed_units in (0, 2)


class TestStatus:
    def test_status_progression(self, tmp_path):
        ck = tmp_path / "ck.json"
        runner = CampaignRunner(make_campaign(), checkpoint_path=ck)
        spec = bridge_spec()
        assert runner.status([spec])["completed_units"] == 0
        runner.run([spec])
        status = runner.status([spec])
        assert status["completed_units"] == 4
        assert status["total_units"] == 4
        assert status["remaining_units"] == 0
