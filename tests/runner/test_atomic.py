"""Tests for repro.runner.atomic: crash-safe writes and envelopes."""

import json

import pytest

from repro.runner.atomic import (
    EnvelopeError,
    atomic_write_envelope,
    atomic_write_text,
    body_checksum,
    temp_path_for,
    unwrap_envelope,
    wrap_envelope,
)
from repro.runner.chaos import FaultInjector, InjectedFault


class TestAtomicWrite:
    def test_creates_file(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(path, "hello")
        assert path.read_text() == "hello"

    def test_replaces_existing(self, tmp_path):
        path = tmp_path / "out.json"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_no_temp_left_behind(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(path, "x")
        assert not temp_path_for(path).exists()

    @pytest.mark.parametrize("crash_site", ["io.write", "io.fsync"])
    def test_crash_before_rename_preserves_old(self, tmp_path, crash_site):
        """A crash at any point before the rename leaves the previous
        file byte-identical."""
        path = tmp_path / "out.json"
        path.write_text("precious")
        inj = FaultInjector(positions={crash_site: {0}})
        with pytest.raises(InjectedFault):
            atomic_write_text(path, "torn", fault_hook=inj.check)
        assert path.read_text() == "precious"

    def test_crash_at_replace_leaves_valid_temp(self, tmp_path):
        """Crash between fsync and rename: destination stale, temp
        complete -- the recovery source for checkpoint/database load."""
        path = tmp_path / "out.json"
        path.write_text("stale")
        inj = FaultInjector(positions={"io.replace": {0}})
        with pytest.raises(InjectedFault):
            atomic_write_text(path, "fresh", fault_hook=inj.check)
        assert path.read_text() == "stale"
        assert temp_path_for(path).read_text() == "fresh"


class TestEnvelope:
    def test_roundtrip(self):
        body = {"a": [1, 2.5], "b": "x"}
        env = wrap_envelope("s", 1, body)
        version, out = unwrap_envelope(env, "s", 1)
        assert version == 1 and out == body

    def test_checksum_is_canonical(self):
        assert body_checksum({"a": 1, "b": 2}) == body_checksum(
            {"b": 2, "a": 1})

    def test_wrong_schema(self):
        env = wrap_envelope("s", 1, {})
        with pytest.raises(EnvelopeError, match="schema mismatch"):
            unwrap_envelope(env, "other", 1)

    def test_unsupported_version(self):
        env = wrap_envelope("s", 5, {})
        with pytest.raises(EnvelopeError, match="unsupported schema"):
            unwrap_envelope(env, "s", 1)

    def test_missing_key(self):
        env = wrap_envelope("s", 1, {})
        del env["checksum"]
        with pytest.raises(EnvelopeError, match="missing the 'checksum'"):
            unwrap_envelope(env, "s", 1)

    def test_tampered_body_fails_checksum(self):
        env = wrap_envelope("s", 1, {"n": 1})
        env["body"]["n"] = 2
        with pytest.raises(EnvelopeError, match="checksum mismatch"):
            unwrap_envelope(env, "s", 1)

    def test_not_a_dict(self):
        with pytest.raises(EnvelopeError, match="expected an envelope"):
            unwrap_envelope([1, 2], "s", 1)

    def test_atomic_write_envelope(self, tmp_path):
        path = tmp_path / "e.json"
        atomic_write_envelope(path, "s", 1, {"k": "v"})
        payload = json.loads(path.read_text())
        assert unwrap_envelope(payload, "s", 1) == (1, {"k": "v"})
