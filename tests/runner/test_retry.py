"""Tests for repro.runner.retry: backoff, jitter, deadlines."""

import pytest

from repro.runner.retry import (
    RetryExhaustedError,
    RetryPolicy,
    RetryStats,
    run_with_retry,
)


class Flaky:
    """Callable failing the first ``n_failures`` times."""

    def __init__(self, n_failures, exc=RuntimeError("boom")):
        self.n_failures = n_failures
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.n_failures:
            raise self.exc
        return "ok"


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay": -1.0},
        {"backoff": 0.5},
        {"jitter": 1.5},
        {"deadline": 0.0},
    ])
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestDelays:
    def test_exponential_growth(self):
        policy = RetryPolicy(max_attempts=5, base_delay=1.0, backoff=2.0,
                             max_delay=100.0, jitter=0.0)
        assert policy.schedule("k") == [1.0, 2.0, 4.0, 8.0]

    def test_max_delay_caps(self):
        policy = RetryPolicy(max_attempts=6, base_delay=1.0, backoff=10.0,
                             max_delay=5.0, jitter=0.0)
        assert max(policy.schedule("k")) == 5.0

    def test_jitter_is_deterministic(self):
        """Same (seed, key, attempt) -> identical delay, every time."""
        a = RetryPolicy(max_attempts=4, base_delay=1.0, jitter=0.5)
        b = RetryPolicy(max_attempts=4, base_delay=1.0, jitter=0.5)
        assert a.schedule("unit:3") == b.schedule("unit:3")

    def test_jitter_decorrelates_keys(self):
        policy = RetryPolicy(max_attempts=4, base_delay=1.0, jitter=0.5)
        assert policy.schedule("unit:1") != policy.schedule("unit:2")

    def test_jitter_decorrelates_seeds(self):
        a = RetryPolicy(max_attempts=4, base_delay=1.0, jitter=0.5, seed=1)
        b = RetryPolicy(max_attempts=4, base_delay=1.0, jitter=0.5, seed=2)
        assert a.schedule("k") != b.schedule("k")

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(max_attempts=50, base_delay=1.0, backoff=1.0,
                             jitter=0.2)
        for delay in policy.schedule("k"):
            assert 0.8 <= delay <= 1.2


class TestRunWithRetry:
    def test_success_first_try(self):
        fn = Flaky(0)
        assert run_with_retry(fn, RetryPolicy(), "k",
                              sleep=lambda s: None) == "ok"
        assert fn.calls == 1

    def test_recovers_after_failures(self):
        fn = Flaky(2)
        stats = RetryStats()
        out = run_with_retry(fn, RetryPolicy(max_attempts=3), "k",
                             sleep=lambda s: None, stats=stats)
        assert out == "ok" and fn.calls == 3
        assert stats.retries == 2 and stats.exhausted == 0

    def test_exhaustion_carries_history(self):
        fn = Flaky(10, exc=ValueError("nope"))
        with pytest.raises(RetryExhaustedError) as info:
            run_with_retry(fn, RetryPolicy(max_attempts=3), "unit:7",
                           sleep=lambda s: None)
        err = info.value
        assert err.attempts == 3 and err.key == "unit:7"
        assert all(isinstance(c, ValueError) for c in err.causes)
        assert "unit:7" in str(err) and "nope" in str(err)

    def test_non_retryable_propagates_immediately(self):
        fn = Flaky(1, exc=KeyError("fatal"))
        policy = RetryPolicy(max_attempts=5, retryable=(ValueError,))
        with pytest.raises(KeyError):
            run_with_retry(fn, policy, "k", sleep=lambda s: None)
        assert fn.calls == 1

    def test_base_exception_never_caught(self):
        fn = Flaky(1, exc=KeyboardInterrupt())
        with pytest.raises(KeyboardInterrupt):
            run_with_retry(fn, RetryPolicy(max_attempts=5), "k",
                           sleep=lambda s: None)
        assert fn.calls == 1

    def test_sleeps_follow_schedule(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.5, backoff=3.0,
                             jitter=0.0)
        slept = []
        run_with_retry(Flaky(2), policy, "k", sleep=slept.append)
        assert slept == [0.5, 1.5]

    def test_deadline_stops_retrying(self):
        policy = RetryPolicy(max_attempts=100, base_delay=10.0,
                             backoff=1.0, max_delay=10.0,
                             jitter=0.0, deadline=25.0)
        now = [0.0]

        def clock():
            return now[0]

        def sleep(s):
            now[0] += s

        fn = Flaky(100)
        with pytest.raises(RetryExhaustedError) as info:
            run_with_retry(fn, policy, "k", sleep=sleep, clock=clock)
        assert info.value.deadline_hit
        assert "deadline" in str(info.value)
        # 10 + 10 sleeps fit in 25 s; a third would overrun.
        assert fn.calls == 3


class TestErrorCap:
    """RetryStats.errors is bounded: head + tail kept, middle elided."""

    CAP = RetryStats.ERRORS_HEAD + RetryStats.ERRORS_TAIL

    def test_under_cap_identical_to_plain_append(self):
        """Regression: the cap must be invisible until it triggers."""
        stats = RetryStats()
        plain = []
        for i in range(self.CAP):
            msg = f"k: RuntimeError: boom {i}"
            stats.record_error(msg)
            plain.append(msg)
        assert stats.errors == plain
        assert stats.errors_elided == 0
        assert stats.error_log() == plain

    def test_over_cap_keeps_head_and_sliding_tail(self):
        stats = RetryStats()
        for i in range(self.CAP + 5):
            stats.record_error(f"e{i}")
        assert len(stats.errors) == self.CAP
        assert stats.errors_elided == 5
        head = [f"e{i}" for i in range(RetryStats.ERRORS_HEAD)]
        tail = [f"e{i}" for i in range(RetryStats.ERRORS_HEAD + 5,
                                       self.CAP + 5)]
        assert stats.errors == head + tail

    def test_error_log_inserts_elision_marker(self):
        stats = RetryStats()
        for i in range(self.CAP + 3):
            stats.record_error(f"e{i}")
        log = stats.error_log()
        assert log[RetryStats.ERRORS_HEAD] == "... 3 error(s) elided ..."
        assert len(log) == self.CAP + 1

    def test_merge_replays_through_cap(self):
        a, b = RetryStats(), RetryStats()
        for i in range(self.CAP):
            a.record_error(f"a{i}")
        for i in range(self.CAP):
            b.record_error(f"b{i}")
        a.merge(b)
        assert len(a.errors) == self.CAP
        assert a.errors_elided == self.CAP
        # Head frozen from a, tail slid to b's newest messages.
        assert a.errors[:RetryStats.ERRORS_HEAD] == [
            f"a{i}" for i in range(RetryStats.ERRORS_HEAD)]
        assert a.errors[-1] == f"b{self.CAP - 1}"

    def test_run_with_retry_records_through_cap(self):
        stats = RetryStats()
        fn = Flaky(self.CAP + 4)
        with pytest.raises(RetryExhaustedError):
            run_with_retry(fn, RetryPolicy(max_attempts=self.CAP + 4),
                           "k", sleep=lambda s: None, stats=stats)
        assert stats.errors_elided == 4
        assert len(stats.errors) == self.CAP
