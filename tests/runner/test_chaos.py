"""Tests for repro.runner.chaos: deterministic fault injection."""

import pytest

from repro.circuit.technology import CMOS018
from repro.defects.behavior import DefectBehaviorModel
from repro.defects.models import BridgeSite, bridge
from repro.runner.chaos import (
    ChaosBehaviorModel,
    FaultInjector,
    InjectedCrash,
    InjectedFault,
)
from repro.stress import production_conditions


def fault_pattern(injector, site, n_calls):
    """Which of n_calls at ``site`` raise, as a bool list."""
    pattern = []
    for _ in range(n_calls):
        try:
            injector.check(site)
            pattern.append(False)
        except InjectedFault:
            pattern.append(True)
    return pattern


class TestDeterminism:
    def test_same_seed_same_faults(self):
        a = FaultInjector(seed=42, rates={"s": 0.3})
        b = FaultInjector(seed=42, rates={"s": 0.3})
        assert fault_pattern(a, "s", 500) == fault_pattern(b, "s", 500)

    def test_different_seed_different_faults(self):
        a = FaultInjector(seed=1, rates={"s": 0.3})
        b = FaultInjector(seed=2, rates={"s": 0.3})
        assert fault_pattern(a, "s", 500) != fault_pattern(b, "s", 500)

    def test_sites_have_independent_streams(self):
        """Probing one site never perturbs another site's pattern."""
        a = FaultInjector(seed=7, rates={"x": 0.3, "y": 0.3})
        b = FaultInjector(seed=7, rates={"x": 0.3, "y": 0.3})
        fault_pattern(a, "y", 100)  # interleave extra traffic on y
        assert fault_pattern(a, "x", 200) == fault_pattern(b, "x", 200)


class TestConfiguration:
    def test_zero_rate_never_fires(self):
        inj = FaultInjector(seed=0, rates={"s": 0.0})
        assert fault_pattern(inj, "s", 200) == [False] * 200

    def test_rate_one_always_fires(self):
        inj = FaultInjector(seed=0, rates={"s": 1.0})
        assert fault_pattern(inj, "s", 50) == [True] * 50

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            FaultInjector(rates={"s": 1.5})

    def test_positions_fire_exactly(self):
        inj = FaultInjector(positions={"s": {1, 3}})
        assert fault_pattern(inj, "s", 5) == [False, True, False, True,
                                              False]

    def test_unconfigured_site_is_silent(self):
        inj = FaultInjector(seed=0, rates={"other": 1.0})
        assert fault_pattern(inj, "s", 20) == [False] * 20

    def test_crash_positions_raise_base_exception(self):
        inj = FaultInjector(crash_positions={"s": {2}})
        inj.check("s")
        inj.check("s")
        with pytest.raises(InjectedCrash):
            inj.check("s")
        # InjectedCrash must NOT be an Exception: recovery code catching
        # Exception would otherwise swallow the simulated kill -9.
        assert not issubclass(InjectedCrash, Exception)

    def test_stats_accounting(self):
        inj = FaultInjector(positions={"s": {0}})
        fault_pattern(inj, "s", 3)
        assert inj.stats() == {"s": {"calls": 3, "injected": 1}}


class TestChaosBehaviorModel:
    def test_delegates_and_injects(self):
        model = DefectBehaviorModel(CMOS018)
        inj = FaultInjector(positions={"behavior.evaluate": {1}})
        chaos = ChaosBehaviorModel(model, inj)
        defect = bridge(BridgeSite.CELL_NODE_RAIL, 1e3)
        cond = production_conditions(CMOS018)["VLV"]
        assert chaos.fails_condition(defect, cond) == model.fails_condition(
            defect, cond)
        with pytest.raises(InjectedFault):
            chaos.fails_condition(defect, cond)

    def test_proxies_other_attributes(self):
        model = DefectBehaviorModel(CMOS018)
        chaos = ChaosBehaviorModel(model, FaultInjector())
        assert chaos.tech is model.tech
        assert chaos.params is model.params
