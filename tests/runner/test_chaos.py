"""Tests for repro.runner.chaos: deterministic fault injection."""

import pytest

from repro.circuit.technology import CMOS018
from repro.defects.behavior import DefectBehaviorModel
from repro.defects.models import BridgeSite, bridge
from repro.runner.chaos import (
    WORKER_EXIT_SITE,
    WORKER_HANG_SITE,
    ChaosBehaviorModel,
    FaultInjector,
    InjectedCrash,
    InjectedFault,
)
from repro.stress import production_conditions


def fault_pattern(injector, site, n_calls):
    """Which of n_calls at ``site`` raise, as a bool list."""
    pattern = []
    for _ in range(n_calls):
        try:
            injector.check(site)
            pattern.append(False)
        except InjectedFault:
            pattern.append(True)
    return pattern


class TestDeterminism:
    def test_same_seed_same_faults(self):
        a = FaultInjector(seed=42, rates={"s": 0.3})
        b = FaultInjector(seed=42, rates={"s": 0.3})
        assert fault_pattern(a, "s", 500) == fault_pattern(b, "s", 500)

    def test_different_seed_different_faults(self):
        a = FaultInjector(seed=1, rates={"s": 0.3})
        b = FaultInjector(seed=2, rates={"s": 0.3})
        assert fault_pattern(a, "s", 500) != fault_pattern(b, "s", 500)

    def test_sites_have_independent_streams(self):
        """Probing one site never perturbs another site's pattern."""
        a = FaultInjector(seed=7, rates={"x": 0.3, "y": 0.3})
        b = FaultInjector(seed=7, rates={"x": 0.3, "y": 0.3})
        fault_pattern(a, "y", 100)  # interleave extra traffic on y
        assert fault_pattern(a, "x", 200) == fault_pattern(b, "x", 200)


class TestConfiguration:
    def test_zero_rate_never_fires(self):
        inj = FaultInjector(seed=0, rates={"s": 0.0})
        assert fault_pattern(inj, "s", 200) == [False] * 200

    def test_rate_one_always_fires(self):
        inj = FaultInjector(seed=0, rates={"s": 1.0})
        assert fault_pattern(inj, "s", 50) == [True] * 50

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            FaultInjector(rates={"s": 1.5})

    def test_positions_fire_exactly(self):
        inj = FaultInjector(positions={"s": {1, 3}})
        assert fault_pattern(inj, "s", 5) == [False, True, False, True,
                                              False]

    def test_unconfigured_site_is_silent(self):
        inj = FaultInjector(seed=0, rates={"other": 1.0})
        assert fault_pattern(inj, "s", 20) == [False] * 20

    def test_crash_positions_raise_base_exception(self):
        inj = FaultInjector(crash_positions={"s": {2}})
        inj.check("s")
        inj.check("s")
        with pytest.raises(InjectedCrash):
            inj.check("s")
        # InjectedCrash must NOT be an Exception: recovery code catching
        # Exception would otherwise swallow the simulated kill -9.
        assert not issubclass(InjectedCrash, Exception)

    def test_stats_accounting(self):
        inj = FaultInjector(positions={"s": {0}})
        fault_pattern(inj, "s", 3)
        assert inj.stats() == {"s": {"calls": 3, "injected": 1}}


class TestWorkerFaults:
    def test_unknown_worker_site_rejected(self):
        with pytest.raises(ValueError, match="worker-fault site"):
            FaultInjector(worker_faults={"worker.meteor": {"u": 1}})

    def test_invalid_hang_seconds_rejected(self):
        with pytest.raises(ValueError, match="hang_seconds"):
            FaultInjector(hang_seconds=0.0)

    def test_parent_probe_raises_instead_of_dying(self):
        """in_worker=False converts the death into InjectedCrash."""
        inj = FaultInjector(worker_faults={WORKER_EXIT_SITE: {"u": 2}})
        for attempt in (0, 1):
            with pytest.raises(InjectedCrash, match="worker.exit"):
                inj.check_worker("u", attempt, in_worker=False)
        # The budget is spent: attempt 2 is clean, as is any other unit.
        inj.check_worker("u", 2, in_worker=False)
        inj.check_worker("other", 0, in_worker=False)
        assert inj.stats()[WORKER_EXIT_SITE] == {
            "calls": 3, "injected": 2}

    def test_hang_site_parent_probe(self):
        inj = FaultInjector(worker_faults={WORKER_HANG_SITE: {"u": 1}})
        with pytest.raises(InjectedCrash, match="worker.hang"):
            inj.check_worker("u", 0, in_worker=False)

    def test_decision_is_pure_function_of_unit_and_attempt(self):
        """Two injectors (parent/worker split) always agree."""
        table = {WORKER_EXIT_SITE: {"a": 1, "b": 3}}
        a = FaultInjector(worker_faults=table)
        b = FaultInjector(worker_faults=table)

        def fires(inj, unit, attempt):
            try:
                inj.check_worker(unit, attempt, in_worker=False)
                return False
            except InjectedCrash:
                return True

        for unit in ("a", "b", "c"):
            for attempt in range(5):
                assert fires(a, unit, attempt) == fires(b, unit, attempt)


class TestCounterMerge:
    def test_counters_since_reports_only_moved_sites(self):
        inj = FaultInjector(positions={"s": {0}})
        snap = inj.counter_snapshot()
        fault_pattern(inj, "s", 2)
        assert inj.counters_since(snap) == {
            "s": {"calls": 2, "injected": 1}}

    def test_merge_counts_restores_serial_totals(self):
        """snapshot -> delta -> merge round-trips the counters."""
        serial = FaultInjector(positions={"s": {0, 2}})
        fault_pattern(serial, "s", 4)

        worker = FaultInjector(positions={"s": {0, 2}})
        parent = FaultInjector(positions={"s": {0, 2}})
        snap = worker.counter_snapshot()
        fault_pattern(worker, "s", 4)
        parent.merge_counts(worker.counters_since(snap))
        assert parent.stats() == serial.stats()


class TestScopeByUnit:
    def test_scoped_streams_independent_of_other_units(self):
        """Per-unit substreams: traffic on one unit never shifts
        another unit's fault pattern (the serial == pooled property)."""
        a = FaultInjector(seed=7, rates={"s": 0.3}, scope_by_unit=True)
        b = FaultInjector(seed=7, rates={"s": 0.3}, scope_by_unit=True)
        a.begin_unit("u1")
        fault_pattern(a, "s", 100)  # extra traffic on u1 only in a
        a.begin_unit("u2")
        b.begin_unit("u2")
        assert fault_pattern(a, "s", 200) == fault_pattern(b, "s", 200)

    def test_unscoped_default_keeps_global_stream(self):
        a = FaultInjector(seed=7, rates={"s": 0.3})
        b = FaultInjector(seed=7, rates={"s": 0.3})
        a.begin_unit("u1")  # no-op without scope_by_unit
        assert fault_pattern(a, "s", 200) == fault_pattern(b, "s", 200)


class TestChaosBehaviorModel:
    def test_delegates_and_injects(self):
        model = DefectBehaviorModel(CMOS018)
        inj = FaultInjector(positions={"behavior.evaluate": {1}})
        chaos = ChaosBehaviorModel(model, inj)
        defect = bridge(BridgeSite.CELL_NODE_RAIL, 1e3)
        cond = production_conditions(CMOS018)["VLV"]
        assert chaos.fails_condition(defect, cond) == model.fails_condition(
            defect, cond)
        with pytest.raises(InjectedFault):
            chaos.fails_condition(defect, cond)

    def test_proxies_other_attributes(self):
        model = DefectBehaviorModel(CMOS018)
        chaos = ChaosBehaviorModel(model, FaultInjector())
        assert chaos.tech is model.tech
        assert chaos.params is model.params
