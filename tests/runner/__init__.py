"""Tests for the resilient campaign runner (repro.runner)."""
