"""Soak test: a campaign looped under sustained fault injection.

Marked ``slow``: run explicitly with ``pytest -m slow`` or through
``scripts/soak.sh``.  Kept short enough for tier-1, but the point is
the *shape* -- repeated kill/heal cycles against one checkpoint, with
chaos at every layer at once -- rather than a single curated failure.
"""

import dataclasses
import json

import pytest

from repro.circuit.technology import CMOS018
from repro.defects.models import DefectKind
from repro.ifa.flow import IfaCampaign
from repro.memory.geometry import MemoryGeometry
from repro.runner.campaign import CampaignRunner, SweepSpec
from repro.runner.chaos import (
    ChaosBehaviorModel,
    FaultInjector,
    InjectedCrash,
)
from repro.runner.retry import RetryPolicy
from repro.stress import production_conditions

GEOM = MemoryGeometry(16, 2, 4)
N_SITES = 30
SEED = 23


def make_campaign(injector=None):
    campaign = IfaCampaign(GEOM, CMOS018, n_sites=N_SITES, seed=SEED)
    if injector is not None:
        campaign.behavior = ChaosBehaviorModel(campaign.behavior, injector)
    return campaign


def spec():
    conds = tuple(production_conditions(CMOS018).values())
    return SweepSpec.of(DefectKind.BRIDGE, (20.0, 1e3, 10e3, 90e3), conds)


@pytest.mark.slow
def test_campaign_survives_repeated_crashes_and_faults(tmp_path):
    """Crash every ~150 evaluations, with transient faults throughout;
    the checkpoint must converge to the clean-run records."""
    baseline = CampaignRunner(make_campaign()).run([spec()])
    ck = tmp_path / "soak.json"
    policy = RetryPolicy(max_attempts=4, base_delay=0.0, jitter=0.0)

    result = None
    crashes = 0
    for round_no in range(40):  # far more rounds than ever needed
        inj = FaultInjector(
            seed=1000 + round_no,
            rates={"behavior.evaluate": 0.01},
            crash_positions={"behavior.evaluate": {150}},
        )
        runner = CampaignRunner(make_campaign(inj), retry=policy,
                                checkpoint_path=ck,
                                fault_hook=inj.check)
        try:
            result = runner.run([spec()])
            break
        except InjectedCrash:
            crashes += 1
    else:
        pytest.fail("campaign never completed")

    assert crashes > 0, "soak never exercised a crash"
    # Transient chaos may quarantine the odd site (conservative records)
    # but counts must stay consistent and most sites must be healthy.
    assert len(result.records) == len(baseline.records)
    for got, want in zip(result.records, baseline.records):
        assert got.total == want.total
        assert got.detected + got.errors <= got.total
        assert got.errors <= 2
    quarantined = sum(r.errors for r in result.records)
    assert quarantined == len(result.quarantine)


@pytest.mark.slow
def test_clean_soak_converges_byte_identical(tmp_path):
    """Without transient faults (crashes only), the converged records
    are byte-identical to an uninterrupted run."""
    baseline = CampaignRunner(make_campaign()).run([spec()])
    ck = tmp_path / "soak.json"

    result = None
    for round_no in range(40):
        inj = FaultInjector(
            crash_positions={"behavior.evaluate": {111}})
        runner = CampaignRunner(make_campaign(inj), checkpoint_path=ck)
        try:
            result = runner.run([spec()])
            break
        except InjectedCrash:
            continue
    else:
        pytest.fail("campaign never completed")

    def as_bytes(records):
        return json.dumps([dataclasses.asdict(r) for r in records],
                          sort_keys=True).encode()

    assert as_bytes(result.records) == as_bytes(baseline.records)
