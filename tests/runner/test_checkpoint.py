"""Tests for repro.runner.checkpoint: durability and recovery."""

import json

import pytest

from repro.runner.atomic import temp_path_for
from repro.runner.checkpoint import (
    CampaignCheckpoint,
    CheckpointCorruptError,
    CheckpointMismatchError,
)

META = {"seed": 7, "n_sites": 100, "geometry": [8, 2, 2, 1]}


def make_checkpoint():
    ckpt = CampaignCheckpoint(META)
    ckpt.record_unit("bridge:1000.0:VLV",
                     {"kind": "bridge", "detected": 9, "total": 10,
                      "errors": 1},
                     quarantine=[{"unit_id": "bridge:1000.0:VLV",
                                  "site_index": 3, "error": "boom"}])
    ckpt.record_unit("bridge:1000.0:Vmax",
                     {"kind": "bridge", "detected": 2, "total": 10,
                      "errors": 0})
    return ckpt


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        path = tmp_path / "ck.json"
        make_checkpoint().save(path)
        loaded = CampaignCheckpoint.load(path)
        assert loaded.meta == META
        assert loaded.is_complete("bridge:1000.0:VLV")
        assert not loaded.is_complete("bridge:99.0:VLV")
        assert loaded.result_for("bridge:1000.0:Vmax")["detected"] == 2
        assert len(loaded.quarantine) == 1
        assert not loaded.recovered_from_temp

    def test_incremental_save_replaces(self, tmp_path):
        path = tmp_path / "ck.json"
        ckpt = make_checkpoint()
        ckpt.save(path)
        ckpt.record_unit("open:5000.0:VLV", {"detected": 1, "total": 10})
        ckpt.save(path)
        assert len(CampaignCheckpoint.load(path).completed) == 3

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no checkpoint"):
            CampaignCheckpoint.load(tmp_path / "absent.json")


class TestCorruption:
    def test_truncated_json(self, tmp_path):
        path = tmp_path / "ck.json"
        make_checkpoint().save(path)
        path.write_text(path.read_text()[:40])
        with pytest.raises(CheckpointCorruptError,
                           match="invalid/truncated JSON") as info:
            CampaignCheckpoint.load(path)
        assert str(path) in str(info.value)

    def test_checksum_mismatch(self, tmp_path):
        path = tmp_path / "ck.json"
        make_checkpoint().save(path)
        payload = json.loads(path.read_text())
        payload["body"]["completed"]["bridge:1000.0:VLV"]["detected"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointCorruptError,
                           match="checksum mismatch"):
            CampaignCheckpoint.load(path)

    def test_wrong_schema(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"schema": "other", "version": 1,
                                    "checksum": "x", "body": {}}))
        with pytest.raises(CheckpointCorruptError, match="schema"):
            CampaignCheckpoint.load(path)

    def test_missing_body_key(self, tmp_path):
        from repro.runner.atomic import wrap_envelope
        from repro.runner.checkpoint import SCHEMA, VERSION

        path = tmp_path / "ck.json"
        env = wrap_envelope(SCHEMA, VERSION, {"meta": {},
                                              "completed": {}})
        path.write_text(json.dumps(env))
        with pytest.raises(CheckpointCorruptError,
                           match="missing the 'quarantine'"):
            CampaignCheckpoint.load(path)


class TestTempRecovery:
    def test_recovers_when_main_corrupt(self, tmp_path):
        path = tmp_path / "ck.json"
        ckpt = make_checkpoint()
        ckpt.save(path)
        # Simulate crash-after-fsync-before-rename: intact temp, torn
        # destination.
        temp_path_for(path).write_text(path.read_text())
        path.write_text("{torn")
        loaded = CampaignCheckpoint.load(path)
        assert loaded.recovered_from_temp
        assert loaded.completed == ckpt.completed

    def test_recovers_when_main_missing(self, tmp_path):
        path = tmp_path / "ck.json"
        ckpt = make_checkpoint()
        ckpt.save(temp_path_for(path))
        loaded = CampaignCheckpoint.load(path)
        assert loaded.recovered_from_temp
        assert loaded.completed == ckpt.completed

    def test_corrupt_temp_does_not_mask_main_error(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{torn")
        temp_path_for(path).write_text("also torn")
        with pytest.raises(CheckpointCorruptError):
            CampaignCheckpoint.load(path)


class TestFingerprint:
    def test_matching_meta_accepted(self, tmp_path):
        path = tmp_path / "ck.json"
        make_checkpoint().save(path)
        CampaignCheckpoint.load(path).ensure_matches(dict(META))

    def test_mismatch_names_keys(self, tmp_path):
        path = tmp_path / "ck.json"
        make_checkpoint().save(path)
        other = dict(META, seed=8, extra=True)
        with pytest.raises(CheckpointMismatchError) as info:
            CampaignCheckpoint.load(path).ensure_matches(other)
        assert "seed" in str(info.value) and "extra" in str(info.value)


class TestStatus:
    def test_counts(self):
        status = make_checkpoint().status(total_units=10)
        assert status["completed_units"] == 2
        assert status["remaining_units"] == 8
        assert status["quarantined_sites"] == 1
