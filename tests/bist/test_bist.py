"""Tests for repro.bist (LFSR/MISR + BIST engine)."""

import pytest

from repro.bist.engine import BistEngine, ResponseMode
from repro.bist.misr import PRIMITIVE_TAPS, Lfsr, Misr
from repro.circuit.technology import CMOS018
from repro.defects.behavior import DefectBehaviorModel
from repro.defects.injection import to_functional_fault
from repro.defects.models import BridgeSite, bridge
from repro.faults.models import StuckAtFault
from repro.march.library import MARCH_CM, TEST_11N
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import Sram
from repro.stress import StressCondition, production_conditions


@pytest.fixture
def sram():
    return Sram(MemoryGeometry(8, 2, 4), CMOS018)


@pytest.fixture(scope="module")
def conds():
    return production_conditions(CMOS018)


class TestLfsr:
    def test_nonzero_cycle(self):
        lfsr = Lfsr(8)
        seen = set()
        for _ in range(300):
            seen.add(lfsr.step())
        assert 0 not in seen
        # A primitive polynomial visits all 255 non-zero states.
        assert len(seen) == 255

    def test_reset(self):
        lfsr = Lfsr(8, seed=5)
        lfsr.step()
        lfsr.reset()
        assert lfsr.state == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            Lfsr(1)
        with pytest.raises(ValueError):
            Lfsr(8, seed=0)
        with pytest.raises(ValueError):
            Lfsr(9)  # no default taps


class TestMisr:
    def test_deterministic(self):
        a, b = Misr(16), Misr(16)
        for word in (1, 7, 0, 12, 5):
            a.inject(word)
            b.inject(word)
        assert a.signature == b.signature

    def test_sensitive_to_single_bit(self):
        a, b = Misr(16), Misr(16)
        stream = [3, 9, 4, 15, 0, 2]
        for w in stream:
            a.inject(w)
        stream[3] ^= 1
        for w in stream:
            b.inject(w)
        assert a.signature != b.signature

    def test_order_sensitive(self):
        a, b = Misr(16), Misr(16)
        for w in (1, 2):
            a.inject(w)
        for w in (2, 1):
            b.inject(w)
        assert a.signature != b.signature

    def test_wide_word_folding(self):
        m = Misr(8)
        m.inject(0x1FF)  # wider than the register
        assert 0 <= m.signature < 256

    def test_aliasing_probability(self):
        assert Misr(16).aliasing_probability() == pytest.approx(2.0 ** -16)

    def test_primitive_taps_table(self):
        assert set(PRIMITIVE_TAPS) >= {8, 16, 32}


class TestBistEngine:
    def test_clean_device_passes_both_modes(self, sram, conds):
        engine = BistEngine(sram)
        for mode in ResponseMode:
            result = engine.run(TEST_11N, conds["Vnom"], mode)
            assert result.passed, mode
            assert result.cycles == 11 * sram.geometry.words

    def test_comparator_latches_first_fail(self, sram, conds):
        cell = sram.geometry.cell_index(5, 2)
        sram.attach_fault(StuckAtFault(cell, 0))
        engine = BistEngine(sram)
        result = engine.run(TEST_11N, conds["Vnom"])
        assert not result.passed
        assert result.first_fail_address == 5
        assert result.first_fail_cycle >= 0

    def test_misr_signature_differs_on_fault(self, sram, conds):
        sram.attach_fault(StuckAtFault(3, 1))
        engine = BistEngine(sram)
        result = engine.run(TEST_11N, conds["Vnom"], ResponseMode.MISR)
        assert not result.passed
        assert result.signature != result.golden

    def test_misr_agrees_with_comparator(self, sram, conds):
        """Both response modes give the same verdict (aliasing aside)."""
        engine = BistEngine(sram)
        cases = [None, StuckAtFault(0, 0), StuckAtFault(7, 1)]
        for fault in cases:
            sram.clear_faults()
            if fault is not None:
                sram.attach_fault(fault)
            comp = engine.run(MARCH_CM, conds["Vnom"])
            misr = engine.run(MARCH_CM, conds["Vnom"], ResponseMode.MISR)
            assert comp.passed == misr.passed

    def test_gross_timing_fail(self, sram, conds):
        engine = BistEngine(sram)
        result = engine.run(TEST_11N, StressCondition("fast", 1.0, 5e-9))
        assert not result.passed
        assert result.gross_timing_fail

    def test_stress_methodology_through_bist(self, sram, conds):
        """The paper's flow with on-chip test: the VLV-only bridge
        passes the BIST at Vnom and fails it at VLV."""
        geometry = sram.geometry
        behavior = DefectBehaviorModel(CMOS018)
        defect = bridge(BridgeSite.CELL_NODE_RAIL, 150e3,
                        cell=geometry.cell_index(3, 1), polarity=1)
        engine = BistEngine(sram)

        for name, expect_pass in (("Vnom", True), ("VLV", False)):
            sram.clear_faults()
            m = behavior.manifestation(defect, conds[name])
            if m is not None:
                sram.attach_fault(to_functional_fault(m, geometry=geometry))
            result = engine.run(TEST_11N, conds[name])
            assert result.passed == expect_pass, name
        sram.clear_faults()

    def test_golden_signature_cached(self, sram, conds):
        engine = BistEngine(sram)
        engine.run(TEST_11N, conds["Vnom"], ResponseMode.MISR)
        assert len(engine._golden_cache) == 1
        engine.run(TEST_11N, conds["Vmax"], ResponseMode.MISR)
        assert len(engine._golden_cache) == 1  # same test reused


class TestMisrProperties:
    """Hypothesis: the MISR must catch any single-word corruption."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(st.lists(st.integers(min_value=0, max_value=0xF), min_size=2,
                    max_size=40),
           st.integers(min_value=0, max_value=39),
           st.integers(min_value=1, max_value=0xF))
    @settings(max_examples=60)
    def test_single_word_error_always_detected(self, stream, pos, flip):
        from repro.bist.misr import Misr

        pos = pos % len(stream)
        golden, faulty = Misr(16), Misr(16)
        for w in stream:
            golden.inject(w)
        corrupted = list(stream)
        corrupted[pos] ^= flip
        for w in corrupted:
            faulty.inject(w)
        # A single-word error is a nonzero syndrome through a linear
        # machine: it can never alias to the golden signature.
        assert faulty.signature != golden.signature

    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=1,
                    max_size=30),
           st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=1,
                    max_size=30))
    @settings(max_examples=40)
    def test_signature_linear_in_stream(self, a, b):
        """The MISR is affine over GF(2):
        sig(a XOR b) XOR sig(0) == (sig(a) XOR sig(0)) XOR
        (sig(b) XOR sig(0)) for equal-length streams -- the linearity the
        aliasing analysis rests on."""
        from repro.bist.misr import Misr

        n = min(len(a), len(b))
        a, b = a[:n], b[:n]

        def sig(stream):
            m = Misr(16)
            for w in stream:
                m.inject(w)
            return m.signature

        s0 = sig([0] * n)
        lhs = sig([x ^ y for x, y in zip(a, b)]) ^ s0
        rhs = (sig(a) ^ s0) ^ (sig(b) ^ s0)
        assert lhs == rhs
