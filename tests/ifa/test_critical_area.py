"""Tests for repro.ifa.critical_area."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ifa.critical_area import (
    find_adjacent_pairs,
    open_weight,
    short_weight,
    total_short_weight,
)
from repro.ifa.layout import Rect


class TestWeights:
    def test_short_weight_formula(self):
        # w = L / (2 s)
        assert short_weight(0.5, 2.0) == pytest.approx(2.0)

    def test_short_weight_zero_length(self):
        assert short_weight(0.5, 0.0) == 0.0

    def test_short_weight_invalid_spacing(self):
        with pytest.raises(ValueError):
            short_weight(0.0, 1.0)

    @given(st.floats(min_value=0.1, max_value=2.0),
           st.floats(min_value=0.1, max_value=10.0))
    def test_closer_spacing_higher_weight(self, s, length):
        assert short_weight(s / 2, length) > short_weight(s, length)

    def test_open_weight_formula(self):
        assert open_weight(0.25, 1.0) == pytest.approx(2.0)

    def test_open_weight_invalid(self):
        with pytest.raises(ValueError):
            open_weight(0.0, 1.0)


class TestAdjacency:
    def test_horizontal_neighbours_found(self):
        a = Rect("metal1", 0.0, 0.0, 1.0, 1.0, "A")
        b = Rect("metal1", 1.3, 0.0, 2.3, 1.0, "B")
        pairs = find_adjacent_pairs([a, b])
        assert len(pairs) == 1
        assert pairs[0].spacing == pytest.approx(0.3)
        assert pairs[0].facing_length == pytest.approx(1.0)

    def test_vertical_neighbours_found(self):
        a = Rect("metal1", 0.0, 0.0, 2.0, 1.0, "A")
        b = Rect("metal1", 0.0, 1.4, 2.0, 2.0, "B")
        pairs = find_adjacent_pairs([a, b])
        assert len(pairs) == 1
        assert pairs[0].spacing == pytest.approx(0.4)
        assert pairs[0].facing_length == pytest.approx(2.0)

    def test_different_layers_ignored(self):
        a = Rect("metal1", 0.0, 0.0, 1.0, 1.0, "A")
        b = Rect("metal2", 1.2, 0.0, 2.2, 1.0, "B")
        assert find_adjacent_pairs([a, b]) == []

    def test_same_net_ignored(self):
        a = Rect("metal1", 0.0, 0.0, 1.0, 1.0, "N")
        b = Rect("metal1", 1.2, 0.0, 2.2, 1.0, "N")
        assert find_adjacent_pairs([a, b]) == []

    def test_far_apart_ignored(self):
        a = Rect("metal1", 0.0, 0.0, 1.0, 1.0, "A")
        b = Rect("metal1", 5.0, 0.0, 6.0, 1.0, "B")
        assert find_adjacent_pairs([a, b], max_spacing=1.0) == []

    def test_diagonal_no_overlap_ignored(self):
        a = Rect("metal1", 0.0, 0.0, 1.0, 1.0, "A")
        b = Rect("metal1", 1.2, 1.2, 2.2, 2.2, "B")
        assert find_adjacent_pairs([a, b]) == []

    def test_total_weight_accumulates(self):
        a = Rect("metal1", 0.0, 0.0, 1.0, 1.0, "A")
        b = Rect("metal1", 1.2, 0.0, 2.2, 1.0, "B")
        c = Rect("metal1", 2.4, 0.0, 3.4, 1.0, "C")
        pairs = find_adjacent_pairs([a, b, c])
        assert len(pairs) == 2
        assert total_short_weight(pairs) == pytest.approx(
            2 * short_weight(0.2, 1.0))
