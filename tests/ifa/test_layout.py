"""Tests for repro.ifa.layout."""

import pytest

from repro.ifa.layout import CellTileSpec, Rect, SramLayout, Via
from repro.memory.geometry import VEQTOR4_INSTANCE, MemoryGeometry


@pytest.fixture(scope="module")
def layout():
    return SramLayout(MemoryGeometry(8, 2, 4), max_rows=8, max_cols=8)


class TestRect:
    def test_properties(self):
        r = Rect("metal1", 0.0, 0.0, 2.0, 1.0, "n")
        assert r.width == 2.0 and r.height == 1.0 and r.area == 2.0

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Rect("metal1", 1.0, 0.0, 1.0, 1.0, "n")


class TestLayoutStructure:
    def test_has_all_net_families(self, layout):
        nets = {r.net for r in layout.rects}
        assert any(n.startswith("cell[") for n in nets)
        assert "vdd" in nets and "gnd" in nets
        assert any(n.startswith("wl[") for n in nets)
        assert any(n.startswith("bl[") for n in nets)
        assert any(n.startswith("dec.") for n in nets)
        assert any(n.startswith("sa.") for n in nets)

    def test_via_kinds_complete(self, layout):
        kinds = {v.kind for v in layout.vias}
        assert kinds == {"cell_pullup", "cell_access", "bitline",
                         "decoder_input", "periphery"}

    def test_cells_tile_without_overlap(self, layout):
        """Storage-node rects of distinct cells never overlap."""
        nodes = [r for r in layout.rects if r.net.startswith("cell[")
                 and (r.net.endswith(".t") or r.net.endswith(".c"))]
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                no_overlap = (a.x1 <= b.x0 or b.x1 <= a.x0
                              or a.y1 <= b.y0 or b.y1 <= a.y0)
                assert no_overlap, (a.net, b.net)

    def test_window_capped(self):
        layout = SramLayout(VEQTOR4_INSTANCE, max_rows=8, max_cols=8)
        assert layout.gen_rows == 8 and layout.gen_cols == 8
        assert layout.replication_factor > 1000

    def test_replication_exact(self):
        g = MemoryGeometry(8, 2, 4)
        layout = SramLayout(g, max_rows=8, max_cols=8)
        assert layout.replication_factor == pytest.approx(
            g.rows * g.bitlines_per_block / (8 * 8))

    def test_stats(self, layout):
        stats = layout.stats()
        assert stats["via[cell_pullup]"] == 8 * 8
        assert "rect[metal1]" in stats

    def test_rects_on_layer(self, layout):
        m2 = layout.rects_on_layer("metal2")
        assert m2 and all(r.layer == "metal2" for r in m2)


class TestTileSpec:
    def test_cell_area_near_2um2(self):
        t = CellTileSpec()
        assert t.width * t.height == pytest.approx(1.92, rel=0.05)
