"""Tests for repro.ifa.flow -- the coverage campaign and its Table 1
regression against the paper."""

import pytest

from repro.circuit.technology import CMOS018
from repro.defects.models import DefectKind
from repro.ifa.flow import TABLE1_RESISTANCES, CoverageRecord, IfaCampaign
from repro.memory.geometry import VEQTOR4_INSTANCE, MemoryGeometry
from repro.stress import production_conditions

#: The paper's Table 1 fault-coverage percentages (bridges, 0.18 um).
PAPER_TABLE1_FC = {
    (20.0, "VLV"): 99.61, (20.0, "Vmin"): 97.76,
    (20.0, "Vnom"): 97.58, (20.0, "Vmax"): 95.65,
    (1e3, "VLV"): 98.57, (1e3, "Vmin"): 86.95,
    (1e3, "Vnom"): 87.90, (1e3, "Vmax"): 87.89,
    (10e3, "VLV"): 98.57, (10e3, "Vmin"): 86.95,
    (10e3, "Vnom"): 86.95, (10e3, "Vmax"): 87.82,
    (90e3, "VLV"): 88.90, (90e3, "Vmin"): 77.91,
    (90e3, "Vnom"): 30.81, (90e3, "Vmax"): 1.22,
}


@pytest.fixture(scope="module")
def campaign():
    return IfaCampaign(VEQTOR4_INSTANCE, CMOS018, n_sites=3000, seed=2005)


@pytest.fixture(scope="module")
def table_conditions():
    conds = production_conditions(CMOS018)
    return [conds[k] for k in ("VLV", "Vmin", "Vnom", "Vmax")]


@pytest.fixture(scope="module")
def bridge_records(campaign, table_conditions):
    return campaign.run_bridges(TABLE1_RESISTANCES, table_conditions)


class TestCampaignMechanics:
    def test_record_grid_complete(self, bridge_records):
        keys = {(r.resistance, r.condition) for r in bridge_records}
        assert len(keys) == 16
        assert all(r.total == 3000 for r in bridge_records)

    def test_population_stable_across_sweep(self, campaign):
        pop1 = campaign.bridge_population()
        pop2 = campaign.bridge_population()
        assert pop1 == pop2

    def test_coverage_record_math(self):
        rec = CoverageRecord("bridge", 1e3, "VLV", 1.0, 1e-7, 95, 100)
        assert rec.coverage == pytest.approx(0.95)
        assert rec.percent == pytest.approx(95.0)

    def test_open_campaign_runs(self, campaign, table_conditions):
        recs = campaign.run_opens([1e5, 1e7], table_conditions[:1])
        assert len(recs) == 2
        assert all(r.kind == "open" for r in recs)

    def test_invalid_n_sites(self):
        with pytest.raises(ValueError):
            IfaCampaign(MemoryGeometry(4, 2, 2), CMOS018, n_sites=0)

    def test_coverage_record_errors_default(self):
        rec = CoverageRecord("bridge", 1e3, "VLV", 1.0, 1e-7, 95, 100)
        assert rec.errors == 0


class TestSweepValidation:
    """Empty sweeps used to return an empty record list that only broke
    the estimator much later; now they fail at the source."""

    @pytest.fixture()
    def small_campaign(self):
        return IfaCampaign(MemoryGeometry(8, 2, 2), CMOS018, n_sites=20)

    def test_empty_resistances_raises(self, small_campaign,
                                      table_conditions):
        with pytest.raises(ValueError, match="no resistances"):
            small_campaign.run([], table_conditions)

    def test_empty_conditions_raises(self, small_campaign):
        with pytest.raises(ValueError, match="no stress conditions"):
            small_campaign.run([1e3], [])

    def test_empty_conditions_iterator_raises(self, small_campaign):
        with pytest.raises(ValueError, match="no stress conditions"):
            small_campaign.run([1e3], iter([]))

    def test_non_positive_resistance_raises(self, small_campaign,
                                            table_conditions):
        with pytest.raises(ValueError, match="positive"):
            small_campaign.run([1e3, -5.0], table_conditions)

    def test_with_resistance_rejects_non_positive(self):
        from repro.defects.models import BridgeSite, bridge

        defect = bridge(BridgeSite.CELL_NODE_RAIL, 1e3)
        for bad in (0.0, -1.0, float("nan")):
            with pytest.raises(ValueError, match="positive"):
                defect.with_resistance(bad)

    def test_checkpointed_run_resumes(self, small_campaign,
                                      table_conditions, tmp_path):
        """IfaCampaign.run(checkpoint_path=...) wires the runner in."""
        ck = tmp_path / "ck.json"
        first = small_campaign.run([1e3], table_conditions[:1],
                                   checkpoint_path=ck)
        assert ck.exists()
        again = small_campaign.run([1e3], table_conditions[:1],
                                   checkpoint_path=ck)
        assert again == first


class TestTable1Regression:
    """The paper's Table 1 must be reproduced within sampling noise +
    calibration tolerance (< 4 percentage points per cell)."""

    @pytest.mark.parametrize("key", sorted(PAPER_TABLE1_FC, key=str))
    def test_cell_within_tolerance(self, bridge_records, key):
        resistance, condition = key
        rec = next(r for r in bridge_records
                   if r.resistance == resistance and r.condition == condition)
        assert rec.percent == pytest.approx(PAPER_TABLE1_FC[key], abs=4.0)

    def test_vlv_best_at_every_resistance(self, bridge_records):
        for r in TABLE1_RESISTANCES:
            by_cond = {rec.condition: rec.percent for rec in bridge_records
                       if rec.resistance == r}
            assert by_cond["VLV"] == max(by_cond.values())

    def test_vmax_collapse_at_high_r(self, bridge_records):
        vmax_90k = next(r for r in bridge_records
                        if r.resistance == 90e3 and r.condition == "Vmax")
        assert vmax_90k.percent < 5.0

    def test_coverage_decreases_with_resistance_per_condition(
            self, bridge_records):
        for cond in ("VLV", "Vmin", "Vnom", "Vmax"):
            percents = [r.percent for r in sorted(
                (rec for rec in bridge_records if rec.condition == cond),
                key=lambda rec: rec.resistance)]
            assert all(a >= b - 1.0 for a, b in zip(percents, percents[1:]))


class TestOpenCampaignShape:
    def test_vmax_beats_vnom_on_opens(self, campaign):
        """Section 4.2: high-voltage testing is the open-defect
        condition."""
        conds = production_conditions(CMOS018)
        import numpy as np
        rs = np.logspace(5, 7, 6)
        recs = campaign.run_opens(rs, [conds["Vnom"], conds["Vmax"]])
        vnom = sum(r.detected for r in recs if r.condition == "Vnom")
        vmax = sum(r.detected for r in recs if r.condition == "Vmax")
        assert vmax > vnom
