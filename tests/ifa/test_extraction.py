"""Tests for repro.ifa.extraction."""

import numpy as np
import pytest

from repro.defects.models import BridgeSite, DefectKind, OpenSite
from repro.ifa.critical_area import AdjacentPair
from repro.ifa.extraction import (
    BRIDGE_SITE_MIX,
    OPEN_SITE_MIX,
    STRENGTH_SIGMA,
    IfaExtractor,
    classify_bridge_pair,
)
from repro.ifa.layout import Rect
from repro.memory.geometry import MemoryGeometry


@pytest.fixture(scope="module")
def extractor():
    return IfaExtractor(MemoryGeometry(8, 2, 4))


def pair(net_a, net_b):
    a = Rect("metal1", 0.0, 0.0, 1.0, 1.0, net_a)
    b = Rect("metal1", 1.2, 0.0, 2.2, 1.0, net_b)
    return AdjacentPair(a, b, 0.2, 1.0)


class TestClassification:
    @pytest.mark.parametrize("nets,expected", [
        (("cell[0,0].t", "vdd"), BridgeSite.CELL_NODE_RAIL),
        (("cell[0,0].c", "gnd"), BridgeSite.CELL_NODE_RAIL),
        (("cell[0,0].t", "cell[0,0].c"), BridgeSite.CELL_NODE_NODE),
        (("cell[0,0].t", "cell[0,1].t"), BridgeSite.CELL_NODE_NODE),
        (("wl[3]", "cell[3,1].t"), BridgeSite.WORDLINE_CELL),
        (("bl[2]", "blb[2]"), BridgeSite.BITLINE_BITLINE),
        (("dec.nand[0]", "dec.wldrv[0]"), BridgeSite.DECODER_LOGIC),
        (("sa.in[1]", "sa.out[1]"), BridgeSite.PERIPHERY_METAL),
        (("wl[0]", "vdd"), BridgeSite.PERIPHERY_METAL),
    ])
    def test_pair_classes(self, nets, expected):
        assert classify_bridge_pair(pair(*nets)) == expected


class TestMixes:
    def test_bridge_mix_sums_to_one(self):
        assert sum(BRIDGE_SITE_MIX.values()) == pytest.approx(1.0)

    def test_open_mix_sums_to_one(self):
        assert sum(OPEN_SITE_MIX.values()) == pytest.approx(1.0)

    def test_rail_class_dominates(self):
        assert BRIDGE_SITE_MIX[BridgeSite.CELL_NODE_RAIL] > 0.5

    def test_every_class_has_strength_sigma(self):
        for site in list(BridgeSite) + list(OpenSite):
            assert site in STRENGTH_SIGMA

    def test_calibrated_classes_match_mix(self, extractor):
        classes = extractor.bridge_site_classes()
        weights = {c.site: c.weight for c in classes}
        assert weights == BRIDGE_SITE_MIX

    def test_raw_mode_uses_geometry(self):
        raw = IfaExtractor(MemoryGeometry(8, 2, 4), calibrated=False)
        classes = raw.bridge_site_classes()
        total = sum(c.weight for c in classes)
        assert total == pytest.approx(1.0)
        # Geometry independently ranks the rail class on top.
        by_weight = sorted(classes, key=lambda c: c.weight, reverse=True)
        assert by_weight[0].site in (BridgeSite.CELL_NODE_RAIL,
                                     BridgeSite.WORDLINE_CELL)

    def test_geometric_instances_found(self, extractor):
        classes = {c.site: c for c in extractor.bridge_site_classes()}
        assert classes[BridgeSite.CELL_NODE_RAIL].pair_count > 0
        assert classes[BridgeSite.BITLINE_BITLINE].pair_count > 0


class TestSampling:
    def test_sample_bridges_fields(self, extractor):
        rng = np.random.default_rng(0)
        defects = extractor.sample_bridges(200, rng)
        assert len(defects) == 200
        assert all(d.kind is DefectKind.BRIDGE for d in defects)
        assert all(0 <= d.cell < extractor.geometry.bits for d in defects)
        assert all(d.strength > 0 for d in defects)

    def test_sample_respects_mix(self, extractor):
        rng = np.random.default_rng(1)
        defects = extractor.sample_bridges(6000, rng)
        rail = sum(d.site is BridgeSite.CELL_NODE_RAIL for d in defects)
        assert rail / 6000 == pytest.approx(
            BRIDGE_SITE_MIX[BridgeSite.CELL_NODE_RAIL], abs=0.03)

    def test_sample_opens(self, extractor):
        rng = np.random.default_rng(2)
        defects = extractor.sample_opens(100, rng)
        assert all(d.kind is DefectKind.OPEN for d in defects)

    def test_resistance_sampler_used(self, extractor):
        rng = np.random.default_rng(3)
        defects = extractor.sample_bridges(
            10, rng, resistance_sampler=lambda r: 123.0)
        assert all(d.resistance == 123.0 for d in defects)

    def test_deterministic_given_seed(self, extractor):
        a = extractor.sample_bridges(20, np.random.default_rng(9))
        b = extractor.sample_bridges(20, np.random.default_rng(9))
        assert a == b

    def test_invalid_count(self, extractor):
        with pytest.raises(ValueError):
            extractor.sample_bridges(0, np.random.default_rng(0))
