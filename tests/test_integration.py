"""Cross-module integration tests: the paper's stories end to end."""

import pytest

from repro.analysis.tables import render_table1
from repro.circuit.technology import CMOS018
from repro.core.flow import MemoryTestFlow
from repro.defects.behavior import DefectBehaviorModel
from repro.defects.models import BridgeSite, OpenSite, bridge, open_defect
from repro.experiment.classify import StressClassifier
from repro.experiment.population import PopulationGenerator, PopulationSpec
from repro.experiment.venn import VennCounts
from repro.march.library import TEST_11N
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import Sram
from repro.stress import production_conditions
from repro.tester.ate import VirtualTester
from repro.tester.bitmap import BitmapAnalyzer, DefectClassHint
from repro.tester.shmoo import ShmooRunner, default_period_axis, default_voltage_axis


@pytest.fixture(scope="module")
def geom():
    return MemoryGeometry(8, 2, 4)


@pytest.fixture(scope="module")
def tester():
    return VirtualTester(DefectBehaviorModel(CMOS018))


class TestChip1Story:
    """Section 4.1 end to end: defect -> shmoo -> bitmap -> conclusion."""

    def test_full_chain(self, geom, tester):
        sram = Sram(geom, CMOS018)
        cell = geom.cell_index(3, 1)
        defect = bridge(BridgeSite.CELL_NODE_RAIL, 150e3, cell=cell,
                        polarity=1)
        conds = production_conditions(CMOS018)

        # 1. Passes the standard screen.
        for name in ("Vmin", "Vnom", "Vmax"):
            assert tester.test_device(sram, [defect], TEST_11N,
                                      conds[name]).passed
        # 2. Fails VLV.
        vlv = tester.test_device(sram, [defect], TEST_11N, conds["VLV"],
                                 quick=False)
        assert not vlv.passed
        # 3. Bitmap: single cell, three march elements, reading '0'.
        diag = BitmapAnalyzer(geom, TEST_11N).diagnose(vlv.fails)
        assert diag.hint is DefectClassHint.SINGLE_CELL_STUCK
        assert {s.notation for s in diag.element_signatures} == {
            "{R0W1}", "{R1W0R0}", "{R0W1R1}"}
        assert diag.read_value_bias == 0
        # 4. Shmoo shows the low-voltage-only fail region.
        plot = ShmooRunner(tester, TEST_11N).run(
            sram, [defect], default_voltage_axis(), default_period_axis())
        assert plot.passes_at(1.8, 100e-9)
        assert not plot.passes_at(1.0, 100e-9)


class TestChip2Story:
    """Section 4.2: the decoder open detected only at Vmax."""

    def test_full_chain(self, geom, tester):
        sram = Sram(geom, CMOS018)
        defect = open_defect(OpenSite.DECODER_INPUT, 5e5, cell=9)
        conds = production_conditions(CMOS018)
        assert tester.test_device(sram, [defect], TEST_11N,
                                  conds["Vnom"]).passed
        assert tester.test_device(sram, [defect], TEST_11N,
                                  conds["VLV"]).passed
        vmax = tester.test_device(sram, [defect], TEST_11N, conds["Vmax"],
                                  quick=False)
        assert not vmax.passed
        diag = BitmapAnalyzer(geom, TEST_11N).diagnose(vmax.fails)
        # Paper: single-address failure reading '0', two march elements.
        assert diag.hint in (DefectClassHint.ADDRESS_PAIR,
                             DefectClassHint.SINGLE_CELL_STUCK)


class TestSimulationVsSilicon:
    """Section 5's headline: the estimator and the population agree."""

    @pytest.fixture(scope="class")
    def estimator_report(self):
        from repro.memory.geometry import VEQTOR4_INSTANCE
        return MemoryTestFlow(VEQTOR4_INSTANCE,
                              n_sites=2000).run().bridge_report

    @pytest.fixture(scope="class")
    def experiment(self):
        spec = PopulationSpec(n_devices=6000, seed=1105)
        chips = PopulationGenerator(spec).generate()
        return StressClassifier().classify(chips)

    def test_vlv_is_best_in_both_worlds(self, estimator_report, experiment):
        assert estimator_report.best_condition().condition == "VLV"
        venn = VennCounts.from_experiment(experiment)
        assert venn.vlv_total == max(venn.vlv_total, venn.vmax_total,
                                     venn.atspeed_total)

    def test_order_of_magnitude_agreement(self, estimator_report,
                                          experiment):
        """Estimator's DPM ratio and the population's escape ratio are
        both 'almost an order of magnitude' (paper: ~9x both ways)."""
        est_ratio = estimator_report.dpm_ratio("Vmax", "VLV")
        vlv_escapes = experiment.escape_dpm("VLV")
        vmax_escapes = max(experiment.escape_dpm("Vmax"), 1.0)
        pop_ratio = vlv_escapes / vmax_escapes
        assert est_ratio > 3.0
        assert pop_ratio > 3.0

    def test_table1_rendering_end_to_end(self, estimator_report):
        text = render_table1(estimator_report)
        assert "VLV" in text and "DPM" in text
