"""Tests for the shipped pre-calculated coverage database."""

import pytest

from repro.core.database import load_default_database
from repro.core.estimator import FaultCoverageEstimator
from repro.memory.geometry import VEQTOR4_INSTANCE


@pytest.fixture(scope="module")
def db():
    return load_default_database()


class TestShippedDatabase:
    def test_loads_and_is_populated(self, db):
        assert len(db) > 100

    def test_covers_both_kinds_and_all_conditions(self, db):
        expected = {"VLV", "Vmin", "Vnom", "Vmax", "at-speed"}
        assert set(db.conditions("bridge")) == expected
        assert set(db.conditions("open")) == expected

    def test_includes_table1_grid(self, db):
        rs = set(db.resistances("bridge"))
        assert {20.0, 1e3, 10e3, 90e3} <= rs

    def test_dense_grid(self, db):
        """The shipped DB carries a much denser R grid than Table 1, so
        interpolation error is small."""
        assert len(db.resistances("bridge")) >= 20
        assert len(db.resistances("open")) >= 12

    def test_estimator_without_campaign(self, db):
        """The paper's deployment story: geometry in, DPM out, no IFA."""
        estimator = FaultCoverageEstimator(db)
        report = estimator.estimate(VEQTOR4_INSTANCE, "bridge")
        assert report.best_condition().condition == "VLV"
        assert 3.0 < report.dpm_ratio("Vmax", "VLV") < 20.0

    def test_table1_pattern_in_shipped_data(self, db):
        assert db.coverage("bridge", "VLV", 90e3) > 0.8
        assert db.coverage("bridge", "Vmax", 90e3) < 0.05


class TestReportModule:
    def test_full_report_small(self):
        from repro.analysis.report import full_report

        text = full_report(n_sites=300, n_devices=400)
        assert "Table 1" in text
        assert "Figure 8" in text
        assert "Venn" in text
        assert "DPM ratio" in text
