"""Tests for repro.core.testplan."""

import pytest

from repro.circuit.technology import CMOS018
from repro.core.testplan import JointCoverageTable, TestPlanOptimizer
from repro.march.library import TEST_11N
from repro.memory.geometry import MemoryGeometry
from repro.stress import production_conditions


@pytest.fixture(scope="module")
def table():
    return JointCoverageTable(
        MemoryGeometry(512, 16, 32), CMOS018,
        production_conditions(CMOS018), n_samples=1500, seed=7)


@pytest.fixture(scope="module")
def optimizer(table):
    return TestPlanOptimizer(table, TEST_11N)


class TestJointTable:
    def test_full_suite_covers_detectable_population(self, table):
        assert table.subset_coverage(tuple(table.condition_names)) == 1.0

    def test_empty_subset_zero(self, table):
        assert table.subset_coverage(()) == 0.0

    def test_union_monotone(self, table):
        c1 = table.subset_coverage(("VLV",))
        c2 = table.subset_coverage(("VLV", "Vmax"))
        c3 = table.subset_coverage(("VLV", "Vmax", "at-speed"))
        assert c1 <= c2 <= c3

    def test_vlv_is_strongest_single_voltage_condition(self, table):
        cov = {n: table.subset_coverage((n,))
               for n in ("VLV", "Vmin", "Vnom", "Vmax")}
        assert cov["VLV"] == max(cov.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            JointCoverageTable(MemoryGeometry(4, 2, 2), CMOS018,
                               production_conditions(CMOS018), n_samples=0)


class TestOptimizer:
    def test_condition_time_scales_with_period(self, optimizer):
        assert (optimizer.condition_time("VLV")
                > optimizer.condition_time("at-speed"))

    def test_all_plans_count(self, optimizer):
        # 5 conditions -> 2^5 - 1 subsets.
        assert len(optimizer.all_plans()) == 31

    def test_pareto_front_properties(self, optimizer):
        front = optimizer.pareto_front()
        assert front
        times = [p.test_time for p in front]
        dpms = [p.dpm for p in front]
        assert times == sorted(times)
        assert dpms == sorted(dpms, reverse=True)

    def test_full_stress_plan_on_front(self, optimizer):
        """The paper's recommended combination reaches the best DPM."""
        front = optimizer.pareto_front()
        best = front[-1]
        assert {"VLV"} <= set(best.conditions)
        assert best.dpm == min(p.dpm for p in optimizer.all_plans())

    def test_vmin_vnom_never_needed(self, optimizer):
        """Everything Vmin/Vnom catch, the stress conditions also catch:
        the non-stress corners are dominated (the insight behind the
        paper's 'specific stress conditions' recommendation)."""
        front = optimizer.pareto_front()
        for plan in front:
            assert "Vmin" not in plan.conditions
            assert "Vnom" not in plan.conditions

    def test_cheapest_meeting_target(self, optimizer):
        best_dpm = min(p.dpm for p in optimizer.all_plans())
        plan = optimizer.cheapest_meeting(best_dpm + 1.0)
        assert plan is not None
        assert plan.dpm <= best_dpm + 1.0

    def test_unreachable_target(self, optimizer):
        assert optimizer.cheapest_meeting(-1.0) is None

    def test_plan_str(self, optimizer):
        plan = optimizer.evaluate(("VLV",))
        assert "VLV" in str(plan)
        assert "DPM" in str(plan)
