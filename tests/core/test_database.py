"""Tests for repro.core.database."""

import json

import pytest

from repro.core.database import CoverageDatabase, DatabaseCorruptError
from repro.defects.distribution import default_bridge_distribution
from repro.ifa.flow import CoverageRecord
from repro.runner.atomic import temp_path_for


def rec(kind, r, cond, detected, total=100):
    return CoverageRecord(kind, r, cond, 1.8, 1e-7, detected, total)


@pytest.fixture
def db():
    return CoverageDatabase([
        rec("bridge", 1e2, "VLV", 100),
        rec("bridge", 1e4, "VLV", 90),
        rec("bridge", 1e6, "VLV", 50),
        rec("bridge", 1e2, "Vmax", 95),
        rec("bridge", 1e4, "Vmax", 40),
        rec("bridge", 1e6, "Vmax", 1),
    ])


class TestQueries:
    def test_exact_points(self, db):
        assert db.coverage("bridge", "VLV", 1e4) == pytest.approx(0.90)

    def test_log_interpolation_midpoint(self, db):
        # Geometric mean of 1e2 and 1e4 -> arithmetic mean of coverages.
        assert db.coverage("bridge", "VLV", 1e3) == pytest.approx(0.95)

    def test_clamped_below_and_above(self, db):
        assert db.coverage("bridge", "VLV", 1.0) == pytest.approx(1.00)
        assert db.coverage("bridge", "VLV", 1e9) == pytest.approx(0.50)

    def test_unknown_key(self, db):
        with pytest.raises(KeyError, match="available"):
            db.coverage("open", "VLV", 1e3)
        with pytest.raises(KeyError):
            db.coverage("bridge", "Vmin", 1e3)

    def test_conditions_and_resistances(self, db):
        assert db.conditions("bridge") == ["VLV", "Vmax"]
        assert db.resistances("bridge") == [1e2, 1e4, 1e6]

    def test_len(self, db):
        assert len(db) == 6


class TestWeightedCoverage:
    def test_bounds(self, db):
        dist = default_bridge_distribution()
        dc = db.weighted_coverage("bridge", "VLV", dist)
        assert 0.0 <= dc <= 1.0

    def test_ordering_follows_per_r_ordering(self, db):
        """VLV dominates Vmax at every R, so weighted coverage too."""
        dist = default_bridge_distribution()
        assert (db.weighted_coverage("bridge", "VLV", dist)
                > db.weighted_coverage("bridge", "Vmax", dist))

    def test_constant_coverage_is_identity(self):
        db = CoverageDatabase([
            rec("bridge", 1e2, "X", 80),
            rec("bridge", 1e6, "X", 80),
        ])
        dist = default_bridge_distribution()
        assert db.weighted_coverage("bridge", "X", dist) == pytest.approx(
            0.80, abs=1e-6)


class TestPersistence:
    def test_save_load_roundtrip(self, db, tmp_path):
        path = tmp_path / "coverage.json"
        db.save(path)
        loaded = CoverageDatabase.load(path)
        assert len(loaded) == len(db)
        assert loaded.coverage("bridge", "VLV", 1e4) == pytest.approx(
            db.coverage("bridge", "VLV", 1e4))

    def test_loaded_records_equal(self, db, tmp_path):
        path = tmp_path / "coverage.json"
        db.save(path)
        loaded = CoverageDatabase.load(path)
        assert loaded.records == db.records

    def test_save_is_atomic_replace(self, db, tmp_path):
        path = tmp_path / "coverage.json"
        path.write_text("old content")
        db.save(path)
        assert not temp_path_for(path).exists()
        assert len(CoverageDatabase.load(path)) == len(db)

    def test_errors_field_roundtrips(self, tmp_path):
        db = CoverageDatabase([CoverageRecord(
            "bridge", 1e3, "VLV", 1.0, 1e-7, 90, 100, errors=4)])
        path = tmp_path / "coverage.json"
        db.save(path)
        assert CoverageDatabase.load(path).records[0].errors == 4

    def test_legacy_bare_list_still_loads(self, tmp_path):
        """Databases written before the envelope format (e.g. the
        shipped cmos018 file) keep loading; errors defaults to 0."""
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps([{
            "kind": "bridge", "resistance": 1e3, "condition": "VLV",
            "vdd": 1.8, "period": 1e-7, "detected": 5, "total": 10,
        }]))
        loaded = CoverageDatabase.load(path)
        assert loaded.records[0].detected == 5
        assert loaded.records[0].errors == 0


class TestCorruption:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no coverage"):
            CoverageDatabase.load(tmp_path / "absent.json")

    def test_truncated_json_names_path_and_defect(self, db, tmp_path):
        path = tmp_path / "coverage.json"
        db.save(path)
        path.write_text(path.read_text()[:25])
        with pytest.raises(DatabaseCorruptError,
                           match="invalid/truncated JSON") as info:
            CoverageDatabase.load(path)
        assert str(path) in str(info.value)

    def test_missing_key_is_corruption_not_keyerror(self, tmp_path):
        path = tmp_path / "coverage.json"
        path.write_text(json.dumps([{"kind": "bridge",
                                     "resistance": 1e3}]))
        with pytest.raises(DatabaseCorruptError,
                           match=r"row 0 is missing key"):
            CoverageDatabase.load(path)

    def test_wrong_row_type(self, tmp_path):
        path = tmp_path / "coverage.json"
        path.write_text(json.dumps(["not-a-row"]))
        with pytest.raises(DatabaseCorruptError, match="row 0"):
            CoverageDatabase.load(path)

    def test_tampered_envelope_fails_checksum(self, db, tmp_path):
        path = tmp_path / "coverage.json"
        db.save(path)
        payload = json.loads(path.read_text())
        payload["body"]["records"][0]["detected"] = 12345
        path.write_text(json.dumps(payload))
        with pytest.raises(DatabaseCorruptError,
                           match="checksum mismatch"):
            CoverageDatabase.load(path)

    def test_unexpected_extra_key_is_malformed(self, tmp_path):
        path = tmp_path / "coverage.json"
        path.write_text(json.dumps([{
            "kind": "bridge", "resistance": 1e3, "condition": "VLV",
            "vdd": 1.8, "period": 1e-7, "detected": 5, "total": 10,
            "mystery": 1,
        }]))
        with pytest.raises(DatabaseCorruptError, match="malformed"):
            CoverageDatabase.load(path)

    def test_recovery_from_temp_sibling(self, db, tmp_path):
        """Crash between write and rename: the intact temp rescues."""
        path = tmp_path / "coverage.json"
        db.save(path)
        temp_path_for(path).write_text(path.read_text())
        path.write_text("{torn")
        loaded = CoverageDatabase.load(path)
        assert len(loaded) == len(db)

    def test_corrupt_temp_does_not_mask_error(self, db, tmp_path):
        path = tmp_path / "coverage.json"
        db.save(path)
        path.write_text("{torn")
        temp_path_for(path).write_text("also torn")
        with pytest.raises(DatabaseCorruptError):
            CoverageDatabase.load(path)

    def test_corrupt_temp_discard_is_journalled(self, db, tmp_path):
        """The passed-over corrupt .tmp used to vanish without a trace;
        with a bus it becomes a database.discard_corrupt_tmp event."""
        from repro.obs import EventBus

        path = tmp_path / "coverage.json"
        db.save(path)
        path.write_text("{torn")
        tmp = temp_path_for(path)
        tmp.write_text("also torn")
        bus = EventBus()
        with pytest.raises(DatabaseCorruptError, match=str(path)):
            CoverageDatabase.load(path, bus=bus)
        (event,) = bus.events
        assert event.name == "database.discard_corrupt_tmp"
        assert event.data["path"] == str(tmp)
        assert "JSON" in event.data["error"]

    def test_corrupt_temp_with_missing_main_raises_corruption(
            self, db, tmp_path):
        """A lone corrupt .tmp is a corruption story, not file-not-found
        (the old code raised a misleading FileNotFoundError here)."""
        path = tmp_path / "coverage.json"
        temp_path_for(path).write_text("{torn")
        with pytest.raises(DatabaseCorruptError):
            CoverageDatabase.load(path)


class TestResistanceValidation:
    """Non-positive/non-finite R would poison log-R interpolation with
    a bare ``math domain error``; both ingestion paths reject it by
    naming the offending record instead."""

    @pytest.mark.parametrize("bad_r", [0.0, -1e3, float("inf"),
                                       float("nan")])
    def test_add_records_rejects_bad_resistance(self, bad_r):
        with pytest.raises(ValueError,
                           match=r"record 1 \(kind='bridge', "
                                 r"condition='VLV'\)"):
            CoverageDatabase([rec("bridge", 1e3, "VLV", 90),
                              rec("bridge", bad_r, "VLV", 80)])

    def test_valid_resistances_still_interpolate(self):
        db = CoverageDatabase([rec("bridge", 1e2, "VLV", 100),
                               rec("bridge", 1e4, "VLV", 90)])
        assert db.coverage("bridge", "VLV", 1e3) == pytest.approx(0.95)

    @pytest.mark.parametrize("bad_r", [0.0, -5.0])
    def test_load_rejects_bad_resistance_naming_row(self, tmp_path,
                                                    bad_r):
        path = tmp_path / "coverage.json"
        path.write_text(json.dumps([
            {"kind": "bridge", "resistance": 1e3, "condition": "VLV",
             "vdd": 1.8, "period": 1e-7, "detected": 9, "total": 10},
            {"kind": "bridge", "resistance": bad_r, "condition": "VLV",
             "vdd": 1.8, "period": 1e-7, "detected": 9, "total": 10},
        ]))
        with pytest.raises(DatabaseCorruptError,
                           match="row 1 .*non-positive or non-finite"):
            CoverageDatabase.load(path)

    def test_load_rejects_non_numeric_resistance(self, tmp_path):
        path = tmp_path / "coverage.json"
        path.write_text(json.dumps([
            {"kind": "bridge", "resistance": "1e3", "condition": "VLV",
             "vdd": 1.8, "period": 1e-7, "detected": 9, "total": 10},
        ]))
        with pytest.raises(DatabaseCorruptError, match="row 0"):
            CoverageDatabase.load(path)

    def test_kinds_lists_stored_kinds(self, db):
        db.add_records([rec("open", 1e5, "Vmax", 60)])
        assert db.kinds() == ["bridge", "open"]


class TestIncrementalAdd:
    def test_add_rebuilds_index(self, db):
        db.add_records([rec("open", 1e5, "Vmax", 60)])
        assert db.coverage("open", "Vmax", 1e5) == pytest.approx(0.60)

    def test_duplicate_resistance_last_wins(self):
        db = CoverageDatabase([
            rec("bridge", 1e3, "X", 10),
            rec("bridge", 1e3, "X", 90),
        ])
        assert db.coverage("bridge", "X", 1e3) == pytest.approx(0.90)


class TestEnvelope:
    def test_envelope_dominates_every_condition(self, db):
        from repro.defects.distribution import default_bridge_distribution

        dist = default_bridge_distribution()
        env = db.envelope_coverage("bridge", dist)
        for cond in db.conditions("bridge"):
            assert env >= db.weighted_coverage("bridge", cond, dist) - 1e-9

    def test_envelope_unknown_kind(self, db):
        from repro.defects.distribution import default_bridge_distribution

        with pytest.raises(KeyError):
            db.envelope_coverage("open", default_bridge_distribution())
