"""Tests for repro.core.database."""

import pytest

from repro.core.database import CoverageDatabase
from repro.defects.distribution import default_bridge_distribution
from repro.ifa.flow import CoverageRecord


def rec(kind, r, cond, detected, total=100):
    return CoverageRecord(kind, r, cond, 1.8, 1e-7, detected, total)


@pytest.fixture
def db():
    return CoverageDatabase([
        rec("bridge", 1e2, "VLV", 100),
        rec("bridge", 1e4, "VLV", 90),
        rec("bridge", 1e6, "VLV", 50),
        rec("bridge", 1e2, "Vmax", 95),
        rec("bridge", 1e4, "Vmax", 40),
        rec("bridge", 1e6, "Vmax", 1),
    ])


class TestQueries:
    def test_exact_points(self, db):
        assert db.coverage("bridge", "VLV", 1e4) == pytest.approx(0.90)

    def test_log_interpolation_midpoint(self, db):
        # Geometric mean of 1e2 and 1e4 -> arithmetic mean of coverages.
        assert db.coverage("bridge", "VLV", 1e3) == pytest.approx(0.95)

    def test_clamped_below_and_above(self, db):
        assert db.coverage("bridge", "VLV", 1.0) == pytest.approx(1.00)
        assert db.coverage("bridge", "VLV", 1e9) == pytest.approx(0.50)

    def test_unknown_key(self, db):
        with pytest.raises(KeyError, match="available"):
            db.coverage("open", "VLV", 1e3)
        with pytest.raises(KeyError):
            db.coverage("bridge", "Vmin", 1e3)

    def test_conditions_and_resistances(self, db):
        assert db.conditions("bridge") == ["VLV", "Vmax"]
        assert db.resistances("bridge") == [1e2, 1e4, 1e6]

    def test_len(self, db):
        assert len(db) == 6


class TestWeightedCoverage:
    def test_bounds(self, db):
        dist = default_bridge_distribution()
        dc = db.weighted_coverage("bridge", "VLV", dist)
        assert 0.0 <= dc <= 1.0

    def test_ordering_follows_per_r_ordering(self, db):
        """VLV dominates Vmax at every R, so weighted coverage too."""
        dist = default_bridge_distribution()
        assert (db.weighted_coverage("bridge", "VLV", dist)
                > db.weighted_coverage("bridge", "Vmax", dist))

    def test_constant_coverage_is_identity(self):
        db = CoverageDatabase([
            rec("bridge", 1e2, "X", 80),
            rec("bridge", 1e6, "X", 80),
        ])
        dist = default_bridge_distribution()
        assert db.weighted_coverage("bridge", "X", dist) == pytest.approx(
            0.80, abs=1e-6)


class TestPersistence:
    def test_save_load_roundtrip(self, db, tmp_path):
        path = tmp_path / "coverage.json"
        db.save(path)
        loaded = CoverageDatabase.load(path)
        assert len(loaded) == len(db)
        assert loaded.coverage("bridge", "VLV", 1e4) == pytest.approx(
            db.coverage("bridge", "VLV", 1e4))

    def test_loaded_records_equal(self, db, tmp_path):
        path = tmp_path / "coverage.json"
        db.save(path)
        loaded = CoverageDatabase.load(path)
        assert loaded.records == db.records


class TestIncrementalAdd:
    def test_add_rebuilds_index(self, db):
        db.add_records([rec("open", 1e5, "Vmax", 60)])
        assert db.coverage("open", "Vmax", 1e5) == pytest.approx(0.60)

    def test_duplicate_resistance_last_wins(self):
        db = CoverageDatabase([
            rec("bridge", 1e3, "X", 10),
            rec("bridge", 1e3, "X", 90),
        ])
        assert db.coverage("bridge", "X", 1e3) == pytest.approx(0.90)


class TestEnvelope:
    def test_envelope_dominates_every_condition(self, db):
        from repro.defects.distribution import default_bridge_distribution

        dist = default_bridge_distribution()
        env = db.envelope_coverage("bridge", dist)
        for cond in db.conditions("bridge"):
            assert env >= db.weighted_coverage("bridge", cond, dist) - 1e-9

    def test_envelope_unknown_kind(self, db):
        from repro.defects.distribution import default_bridge_distribution

        with pytest.raises(KeyError):
            db.envelope_coverage("open", default_bridge_distribution())
