"""Tests for repro.core.estimator and repro.core.flow."""

import pytest

from repro.core.database import CoverageDatabase
from repro.core.estimator import (
    ConditionEstimate,
    EmptyReportError,
    EstimatorReport,
    FaultCoverageEstimator,
)
from repro.core.flow import MemoryTestFlow
from repro.ifa.flow import CoverageRecord
from repro.memory.geometry import VEQTOR4_INSTANCE, MemoryGeometry


def rec(kind, r, cond, detected, total=100):
    return CoverageRecord(kind, r, cond, 1.8, 1e-7, detected, total)


@pytest.fixture(scope="module")
def flow_result():
    return MemoryTestFlow(VEQTOR4_INSTANCE, n_sites=2000).run()


class TestEstimatorReport:
    def test_vlv_best_condition(self, flow_result):
        report = flow_result.bridge_report
        assert report.best_condition().condition == "VLV"
        assert report.by_condition("VLV").dpm_normalised == pytest.approx(1.0)

    def test_dpm_ratio_order_of_magnitude(self, flow_result):
        """Paper Section 3.1: ~9.3x between Vmax and VLV."""
        ratio = flow_result.bridge_report.dpm_ratio("Vmax", "VLV")
        assert 5.0 < ratio < 20.0

    def test_defect_coverage_ordering(self, flow_result):
        report = flow_result.bridge_report
        dc = {e.condition: e.defect_coverage for e in report.estimates}
        assert dc["VLV"] > dc["Vmin"] > dc["Vmax"]

    def test_defect_coverage_near_paper(self, flow_result):
        report = flow_result.bridge_report
        assert report.by_condition("VLV").defect_coverage == pytest.approx(
            0.9892, abs=0.02)
        assert report.by_condition("Vmax").defect_coverage == pytest.approx(
            0.8976, abs=0.05)

    def test_unknown_condition(self, flow_result):
        with pytest.raises(KeyError):
            flow_result.bridge_report.by_condition("Vhuge")

    def test_open_report_prefers_stress(self, flow_result):
        """Opens: Vmax and at-speed beat Vnom (Sections 4.2/4.3)."""
        report = flow_result.open_report
        dc = {e.condition: e.defect_coverage for e in report.estimates}
        assert dc["Vmax"] > dc["Vnom"]
        assert dc["at-speed"] > dc["Vnom"]


class TestEstimatorApi:
    def test_yield_override(self):
        db = CoverageDatabase([rec("bridge", 1e3, "VLV", 90)])
        est = FaultCoverageEstimator(db)
        g = MemoryGeometry(4, 2, 2)
        rep = est.estimate(g, "bridge", yield_fraction=0.5)
        assert rep.yield_fraction == 0.5

    def test_yield_from_geometry(self):
        db = CoverageDatabase([rec("bridge", 1e3, "VLV", 90)])
        est = FaultCoverageEstimator(db)
        small = est.estimate(MemoryGeometry(4, 2, 2), "bridge")
        big = est.estimate(MemoryGeometry(512, 16, 32), "bridge")
        assert small.yield_fraction > big.yield_fraction

    def test_bigger_memory_higher_dpm(self):
        """Same coverage, larger area -> lower yield -> more escapes;
        the paper's motivation: growing memory size endangers SoC DPM."""
        db = CoverageDatabase([rec("bridge", 1e3, "VLV", 90)])
        est = FaultCoverageEstimator(db)
        small = est.estimate(MemoryGeometry(64, 4, 8), "bridge")
        big = est.estimate(MemoryGeometry(512, 16, 32), "bridge")
        assert (big.by_condition("VLV").dpm
                > small.by_condition("VLV").dpm)

    def test_invalid_kind(self):
        db = CoverageDatabase([rec("bridge", 1e3, "VLV", 90)])
        est = FaultCoverageEstimator(db)
        with pytest.raises(ValueError):
            est.estimate(MemoryGeometry(4, 2, 2), "stuck")

    def test_invalid_yield(self):
        db = CoverageDatabase([rec("bridge", 1e3, "VLV", 90)])
        est = FaultCoverageEstimator(db)
        with pytest.raises(ValueError):
            est.estimate(MemoryGeometry(4, 2, 2), "bridge",
                         yield_fraction=1.5)

    def test_escapes_per_million(self, flow_result):
        est = flow_result.estimator
        vlv = est.escapes_per_million(VEQTOR4_INSTANCE, "bridge", "VLV")
        vmax = est.escapes_per_million(VEQTOR4_INSTANCE, "bridge", "Vmax")
        assert vmax > vlv > 0.0


class TestFlowPlumbing:
    def test_database_carries_both_kinds(self, flow_result):
        assert set(flow_result.database.conditions("bridge")) == {
            "VLV", "Vmin", "Vnom", "Vmax", "at-speed"}
        assert flow_result.database.resistances("open")

    def test_flow_deterministic(self):
        g = MemoryGeometry(16, 2, 4)
        r1 = MemoryTestFlow(g, n_sites=500, seed=3).run()
        r2 = MemoryTestFlow(g, n_sites=500, seed=3).run()
        assert (r1.bridge_report.by_condition("VLV").defect_coverage
                == r2.bridge_report.by_condition("VLV").defect_coverage)

    def test_flow_validates_n_sites(self):
        with pytest.raises(ValueError):
            MemoryTestFlow(MemoryGeometry(4, 2, 2), n_sites=0)


class TestZeroDpmNormalisation:
    """Perfect-coverage suites: 0/0 DPM normalises to 1.0, never inf."""

    def test_perfect_suite_normalises_to_one(self):
        db = CoverageDatabase([rec("bridge", 1e3, "VLV", 100),
                               rec("bridge", 1e3, "Vmax", 100)])
        rep = FaultCoverageEstimator(db).estimate(
            MemoryGeometry(4, 2, 2), "bridge")
        for e in rep.estimates:
            assert e.dpm == 0.0
            assert e.dpm_normalised == 1.0

    def test_imperfect_condition_against_perfect_best_is_inf(self):
        db = CoverageDatabase([rec("bridge", 1e3, "VLV", 100),
                               rec("bridge", 1e3, "Vmax", 60)])
        rep = FaultCoverageEstimator(db).estimate(
            MemoryGeometry(4, 2, 2), "bridge")
        assert rep.by_condition("VLV").dpm_normalised == 1.0
        assert rep.by_condition("Vmax").dpm_normalised == float("inf")

    def test_with_normalisation_zero_over_zero(self):
        est = ConditionEstimate("VLV", {1e3: 1.0}, 1.0, dpm=0.0)
        assert est.with_normalisation(0.0).dpm_normalised == 1.0

    def test_dpm_ratio_both_zero_is_one(self):
        db = CoverageDatabase([rec("bridge", 1e3, "VLV", 100),
                               rec("bridge", 1e3, "Vmax", 100)])
        rep = FaultCoverageEstimator(db).estimate(
            MemoryGeometry(4, 2, 2), "bridge")
        assert rep.dpm_ratio("Vmax", "VLV") == 1.0

    def test_dpm_ratio_nonzero_over_zero_is_inf(self):
        db = CoverageDatabase([rec("bridge", 1e3, "VLV", 100),
                               rec("bridge", 1e3, "Vmax", 60)])
        rep = FaultCoverageEstimator(db).estimate(
            MemoryGeometry(4, 2, 2), "bridge")
        assert rep.dpm_ratio("Vmax", "VLV") == float("inf")


class TestNamedErrors:
    def test_empty_report_best_condition(self):
        report = EstimatorReport("bridge", MemoryGeometry(4, 2, 2),
                                 1.0, ())
        with pytest.raises(EmptyReportError,
                           match="no condition estimates"):
            report.best_condition()

    def test_empty_report_error_is_a_value_error(self):
        assert issubclass(EmptyReportError, ValueError)

    def test_absent_kind_raises_named_keyerror(self):
        db = CoverageDatabase([rec("bridge", 1e3, "VLV", 90)])
        est = FaultCoverageEstimator(db)
        with pytest.raises(KeyError, match="no records for kind='open'"):
            est.estimate(MemoryGeometry(4, 2, 2), "open")


class TestRelativeCoverage:
    def test_bridge_vlv_relative_near_one(self, flow_result):
        """VLV's per-R curve *is* the bridge envelope almost everywhere."""
        rel = flow_result.bridge_report.by_condition("VLV").relative_coverage
        assert rel == pytest.approx(1.0, abs=0.02)

    def test_open_relative_ranking_matches_paper_sections(self, flow_result):
        """Sections 4.2/4.3: opens belong to Vmax and at-speed; the
        detectable-relative view makes that unmistakable."""
        report = flow_result.open_report
        rel = {e.condition: e.relative_coverage for e in report.estimates}
        assert rel["at-speed"] > rel["Vnom"] > rel["Vmin"]
        assert rel["Vmax"] > rel["Vnom"]

    def test_relative_at_least_absolute(self, flow_result):
        for report in (flow_result.bridge_report, flow_result.open_report):
            for est in report.estimates:
                assert est.relative_coverage >= est.defect_coverage - 1e-9
