"""Tests for repro.core.williams_brown (paper equations (1) and (2))."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.williams_brown import (
    defect_level,
    dpm,
    poisson_yield,
    required_coverage,
)


class TestPoissonYield:
    def test_zero_area_full_yield(self):
        assert poisson_yield(0.0, 1.0) == 1.0

    def test_formula(self):
        assert poisson_yield(5e7, 2.0) == pytest.approx(math.exp(-1.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_yield(-1.0, 1.0)
        with pytest.raises(ValueError):
            poisson_yield(1.0, -1.0)

    @given(st.floats(min_value=0.0, max_value=1e9),
           st.floats(min_value=0.0, max_value=10.0))
    def test_bounds(self, area, d0):
        y = poisson_yield(area, d0)
        assert 0.0 < y <= 1.0


class TestDefectLevel:
    def test_perfect_coverage_no_escapes(self):
        assert defect_level(0.9, 1.0) == pytest.approx(0.0)

    def test_zero_coverage_ships_all_defects(self):
        assert defect_level(0.9, 0.0) == pytest.approx(0.1)

    def test_paper_shape_vlv_vs_vmax(self):
        """DC 98.92% vs 89.76% at equal yield: ~9x DPM apart (paper)."""
        y = 0.998
        ratio = defect_level(y, 0.8976) / defect_level(y, 0.9892)
        assert ratio == pytest.approx(9.5, abs=1.0)

    @given(st.floats(min_value=0.01, max_value=0.999),
           st.floats(min_value=0.0, max_value=0.98),
           st.floats(min_value=0.001, max_value=0.02))
    def test_monotone_decreasing_in_coverage(self, y, dc, step):
        assert defect_level(y, dc + step) <= defect_level(y, dc)

    @given(st.floats(min_value=0.01, max_value=0.99),
           st.floats(min_value=0.0, max_value=1.0))
    def test_bounds(self, y, dc):
        dl = defect_level(y, dc)
        assert 0.0 <= dl <= 1.0 - y + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            defect_level(0.0, 0.5)
        with pytest.raises(ValueError):
            defect_level(1.1, 0.5)
        with pytest.raises(ValueError):
            defect_level(0.9, 1.5)

    def test_dpm_scaling(self):
        assert dpm(0.9, 0.0) == pytest.approx(1e5)


class TestRequiredCoverage:
    def test_roundtrip(self):
        y = 0.95
        dc = required_coverage(y, target_dpm=10.0)
        assert dpm(y, dc) == pytest.approx(10.0, rel=1e-6)

    def test_lenient_target_needs_no_coverage(self):
        # Yield loss itself is below the target.
        assert required_coverage(0.9999999, target_dpm=1000.0) == 0.0

    def test_automotive_target_needs_high_coverage(self):
        dc = required_coverage(0.998, target_dpm=10.0)
        assert dc > 0.99

    def test_validation(self):
        with pytest.raises(ValueError):
            required_coverage(1.0, 10.0)
        with pytest.raises(ValueError):
            required_coverage(0.9, 0.0)
