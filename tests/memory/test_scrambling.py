"""Tests for repro.memory.scrambling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.geometry import MemoryGeometry
from repro.memory.scrambling import (
    AddressScrambler,
    DataScrambler,
    ScrambledView,
)


class TestAddressScrambler:
    def test_identity_default(self):
        s = AddressScrambler(4)
        assert all(s.scramble(a) == a for a in range(16))

    def test_xor_mask(self):
        s = AddressScrambler(4, xor_mask=0b0101)
        assert s.scramble(0) == 0b0101

    def test_permutation_applied(self):
        # physical bit 0 takes logical bit 3.
        s = AddressScrambler(4, permutation=(3, 1, 2, 0))
        assert s.scramble(0b1000) == 0b0001

    @given(st.integers(min_value=2, max_value=10), st.randoms())
    @settings(max_examples=40)
    def test_roundtrip_random_scramblers(self, bits, rnd):
        perm = list(range(bits))
        rnd.shuffle(perm)
        mask = rnd.randrange(1 << bits)
        s = AddressScrambler(bits, tuple(perm), mask)
        for logical in range(min(1 << bits, 64)):
            assert s.descramble(s.scramble(logical)) == logical

    def test_bijection(self):
        s = AddressScrambler.typical(6)
        image = {s.scramble(a) for a in range(64)}
        assert image == set(range(64))

    def test_validation(self):
        with pytest.raises(ValueError):
            AddressScrambler(4, permutation=(0, 0, 1, 2))
        with pytest.raises(ValueError):
            AddressScrambler(4, xor_mask=16)
        with pytest.raises(ValueError):
            AddressScrambler(4).scramble(16)

    def test_typical_is_nontrivial(self):
        s = AddressScrambler.typical(6)
        assert any(s.scramble(a) != a for a in range(64))

    def test_typical_small_width_is_identity(self):
        s = AddressScrambler.typical(2)
        assert all(s.scramble(a) == a for a in range(4))


class TestDataScrambler:
    def test_involution(self):
        d = DataScrambler.alternating(8)
        for word in (0, 0xFF, 0xA5, 0x3C):
            assert d.to_logical(d.to_physical(word)) == word

    def test_alternating_mask(self):
        d = DataScrambler.alternating(4)
        assert d.inversion_mask == 0b1010

    def test_solid_logical_is_striped_physical(self):
        """The scramble-awareness point: logical all-ones is a physical
        stripe pattern."""
        d = DataScrambler.alternating(4)
        assert d.to_physical(0b1111) == 0b0101

    def test_validation(self):
        with pytest.raises(ValueError):
            DataScrambler(0)
        with pytest.raises(ValueError):
            DataScrambler(4, inversion_mask=16)
        with pytest.raises(ValueError):
            DataScrambler(4).to_physical(16)


class TestScrambledView:
    @pytest.fixture
    def view(self):
        geometry = MemoryGeometry(8, 2, 4)
        return ScrambledView(
            geometry,
            AddressScrambler.typical(geometry.address_bits),
            DataScrambler.alternating(geometry.bits_per_word),
        )

    def test_physical_cell_in_range(self, view):
        for addr in range(view.geometry.words):
            for bit in range(view.geometry.bits_per_word):
                cell = view.physical_cell(addr, bit)
                assert 0 <= cell < view.geometry.bits

    def test_access_mapping_injective(self, view):
        seen = set()
        for addr in range(view.geometry.words):
            for bit in range(view.geometry.bits_per_word):
                seen.add(view.physical_cell(addr, bit))
        assert len(seen) == view.geometry.bits

    def test_stored_value_respects_inversion(self, view):
        # Bit 1 is inverted by the alternating scrambler.
        assert view.stored_value(0, 1, 1) == 0
        assert view.stored_value(0, 0, 1) == 1

    def test_neighbours_are_descrambled(self, view):
        """Physical neighbours map back through the inverse scramble."""
        for logical, bit in ((0, 0), (5, 2), (11, 3)):
            for n_addr, n_bit in view.logical_neighbours(logical, bit):
                assert 0 <= n_addr < view.geometry.words
                # Physical adjacency must hold after re-scrambling.
                phys_a = view.address.scramble(logical) % view.geometry.words
                phys_b = view.address.scramble(n_addr) % view.geometry.words
                neighbours = view.geometry.neighbours(phys_a, bit)
                assert (phys_b, n_bit) in neighbours

    def test_logical_neighbours_differ_from_logical_adjacency(self, view):
        """With scrambling on, at least one access has physical
        neighbours that are not logical-address neighbours."""
        surprises = 0
        for addr in range(view.geometry.words):
            for n_addr, _ in view.logical_neighbours(addr, 0):
                if abs(n_addr - addr) > 1:
                    surprises += 1
        assert surprises > 0

    def test_defaults_are_identity(self):
        view = ScrambledView(MemoryGeometry(4, 2, 2))
        assert view.physical_cell(3, 1) == view.geometry.cell_index(3, 1)


class TestScrambledViewGuards:
    def test_non_power_of_two_words_rejected(self):
        """A folded scramble is non-injective; the view must refuse it."""
        geometry = MemoryGeometry(3, 2, 2)   # 6 words, scrambler spans 8
        with pytest.raises(ValueError, match="power-of-two"):
            ScrambledView(geometry)
