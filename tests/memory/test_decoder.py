"""Tests for repro.memory.decoder."""

import pytest

from repro.circuit.devices import Mosfet
from repro.circuit.solver import dc_operating_point
from repro.circuit.technology import CMOS018
from repro.memory.decoder import (
    RowDecoder,
    build_decoder_netlist,
    decoder_input_waveforms,
)


class TestFunctionalDecode:
    def test_identity_map(self):
        dec = RowDecoder(4, CMOS018)
        assert dec.n_rows == 16
        assert dec.decode(7) == 7

    def test_out_of_range(self):
        dec = RowDecoder(2, CMOS018)
        with pytest.raises(ValueError):
            dec.decode(4)

    def test_validation(self):
        with pytest.raises(ValueError):
            RowDecoder(0, CMOS018)


class TestTiming:
    def test_nominal_delay_grows_at_low_vdd(self):
        dec = RowDecoder(4, CMOS018)
        assert dec.nominal_delay(1.0) > dec.nominal_delay(1.8)

    def test_open_adds_rc(self):
        dec = RowDecoder(4, CMOS018)
        t_clean = dec.timing_with_open(1.8, 0.0)
        t_open = dec.timing_with_open(1.8, 1e6)
        assert t_open.select_delay > t_clean.select_delay
        assert t_open.overlap > 0.0
        assert t_clean.overlap == 0.0

    def test_overlap_proportional_to_resistance(self):
        dec = RowDecoder(4, CMOS018)
        o1 = dec.timing_with_open(1.8, 1e6).overlap
        o2 = dec.timing_with_open(1.8, 2e6).overlap
        assert o2 == pytest.approx(2.0 * o1)

    def test_negative_resistance_rejected(self):
        dec = RowDecoder(4, CMOS018)
        with pytest.raises(ValueError):
            dec.timing_with_open(1.8, -1.0)


class TestDecoderNetlist:
    def test_structure(self):
        nl = build_decoder_netlist(CMOS018, 1.8, address_bits=2)
        mosfets = list(nl.devices_of_type(Mosfet))
        # 2 input inverters (2 devices each) + 4 rows x (2 pull-ups +
        # 2 stack + 2 driver).
        assert len(mosfets) == 4 + 4 * 6
        assert "wl0" in nl.nodes and "wl3" in nl.nodes

    def test_dc_selects_correct_wordline(self):
        vdd = 1.8
        nl = build_decoder_netlist(CMOS018, vdd, address_bits=2)
        nl["Va0"].value = vdd   # address = 0b01
        nl["Va1"].value = 0.0
        op = dc_operating_point(nl)
        assert op["wl1"] > 0.9 * vdd
        for other in ("wl0", "wl2", "wl3"):
            assert op[other] < 0.1 * vdd

    def test_every_address_selects_exactly_one(self):
        vdd = 1.8
        for address in range(4):
            nl = build_decoder_netlist(CMOS018, vdd, address_bits=2)
            nl["Va0"].value = vdd * (address & 1)
            nl["Va1"].value = vdd * ((address >> 1) & 1)
            op = dc_operating_point(nl)
            high = [r for r in range(4) if op[f"wl{r}"] > 0.9 * vdd]
            assert high == [address]

    def test_bits_out_of_range(self):
        with pytest.raises(ValueError):
            build_decoder_netlist(CMOS018, 1.8, address_bits=5)


class TestInputWaveforms:
    def test_waveform_values_at_cycle_centres(self):
        vdd = 1.8
        seq = [0, 1, 3, 2]
        waves = decoder_input_waveforms(seq, 10e-9, vdd, 2)
        for i, address in enumerate(seq):
            t_mid = (i + 0.5) * 10e-9
            for j in range(2):
                expected = vdd * ((address >> j) & 1)
                assert waves[f"a{j}"](t_mid) == pytest.approx(expected)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            decoder_input_waveforms([0, 1], 0.0, 1.8, 1)
