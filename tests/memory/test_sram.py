"""Tests for repro.memory.sram (the device under test)."""

import math

import pytest

from repro.circuit.technology import CMOS018
from repro.faults.models import StuckAtFault
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import Sram, TimingModel


@pytest.fixture
def sram():
    return Sram(MemoryGeometry(8, 2, 4), CMOS018)


class TestTimingModel:
    def test_access_time_nominal_anchor(self):
        tm = TimingModel()
        t = tm.access_time(1.8, 1.8)
        # Paper: the memories run at 5..10 ns.
        assert 5e-9 < t < 10e-9

    def test_access_time_monotone_decreasing_in_vdd(self):
        tm = TimingModel()
        ts = [tm.access_time(v, 1.8) for v in (1.0, 1.2, 1.65, 1.8, 1.95)]
        assert all(a > b for a, b in zip(ts, ts[1:]))

    def test_infinite_below_path_threshold(self):
        tm = TimingModel()
        assert math.isinf(tm.access_time(0.5, 1.8))


class TestShmooAnchors:
    """Figure 3 anchors: the fault-free device's pass region."""

    def test_passes_vlv_at_slow_period(self, sram):
        assert sram.meets_timing(1.0, 100e-9)

    def test_passes_nominal_at_speed(self, sram):
        assert sram.meets_timing(1.8, 15e-9)

    def test_fails_vlv_at_speed(self, sram):
        assert not sram.meets_timing(1.0, 15e-9)

    def test_min_period_monotone(self, sram):
        assert sram.min_period(1.0) > sram.min_period(1.8)


class TestFunctionalFace:
    def test_word_roundtrip(self, sram):
        sram.power_cycle()
        sram.write_word(5, 0b1100)
        assert sram.read_word(5) == 0b1100

    def test_word_range_checked(self, sram):
        sram.power_cycle()
        with pytest.raises(ValueError):
            sram.write_word(0, 1 << 4)

    def test_fault_changes_read(self, sram):
        cell = sram.geometry.cell_index(5, 2)
        sram.attach_fault(StuckAtFault(cell, 0))
        sram.power_cycle()
        sram.write_word(5, 0b1111)
        assert sram.read_word(5) == 0b1011

    def test_power_cycle_resets_state(self, sram):
        sram.power_cycle()
        sram.write_word(0, 0b0001)
        sram.power_cycle()
        # Unknown cells read as -1 internally -> bit not set.
        assert sram.read_word(0) == 0

    def test_clear_faults(self, sram):
        sram.attach_fault(StuckAtFault(0, 0))
        sram.clear_faults()
        assert not sram.faults

    def test_repr_mentions_geometry(self, sram):
        assert "8R" in repr(sram)


class TestMultiFaultComposition:
    def test_non_mutating_fault_not_masked(self, sram):
        """A stuck-open's stale view must survive a second attached
        fault reading the stored state (the two-tier consistency
        contract for multi-defect devices)."""
        from repro.faults.models import StuckAtFault, StuckOpenFault

        victim = sram.geometry.cell_index(3, 1)
        other = sram.geometry.cell_index(6, 0)
        stride = sram.geometry.bitlines_per_block
        sram.clear_faults()
        sram.attach_fault(StuckOpenFault(victim, column_stride=stride))
        sram.attach_fault(StuckAtFault(other, 0))
        sram.power_cycle()
        # Prime the victim's bit line with the opposite data, then write
        # the victim (lost) and read it back: the stale 0 must surface.
        sram.write_word(2, 0b0000)
        sram.read_word(2)
        sram.write_word(3, 0b1111)   # write to victim word is lost
        assert (sram.read_word(3) >> 1) & 1 == 0
        sram.clear_faults()
