"""Tests for repro.memory.cell (6T cell electrical analysis)."""

import pytest

from repro.circuit.technology import CMOS018
from repro.memory.cell import CellRatios, SixTCell


@pytest.fixture(scope="module")
def cell():
    return SixTCell(CMOS018)


class TestCellRatios:
    def test_defaults_are_read_stable(self):
        r = CellRatios()
        assert r.beta > 1.0       # pull-down stronger than access
        assert r.gamma > 1.0      # access stronger than pull-up

    def test_validation(self):
        with pytest.raises(ValueError):
            CellRatios(pull_down=0.0)


class TestBistability:
    @pytest.mark.parametrize("vdd", [1.0, 1.65, 1.8, 1.95])
    @pytest.mark.parametrize("state", [0, 1])
    def test_holds_both_states_at_all_corners(self, cell, vdd, state):
        op = cell.solve_state(vdd, state)
        assert cell.holds_state(op, state, vdd)

    def test_nodes_complementary(self, cell):
        op = cell.solve_state(1.8, 1)
        assert op[cell.node("t")] > 1.5
        assert op[cell.node("c")] < 0.3


class TestCriticalResistance:
    def test_gnd_bridge_critical_resistance_decreases_with_vdd(self, cell):
        """The VLV mechanism at transistor level: lower supply -> weaker
        restore -> higher-ohmic bridges upset the cell."""
        r_vlv = cell.retention_upset_resistance(1.0, 1, "gnd")
        r_nom = cell.retention_upset_resistance(1.8, 1, "gnd")
        r_max = cell.retention_upset_resistance(1.95, 1, "gnd")
        assert r_vlv > r_nom > r_max

    def test_hard_short_always_upsets(self, cell):
        r = cell.retention_upset_resistance(1.8, 1, "gnd")
        assert r > 100.0  # a 100-ohm short is well below critical

    def test_vdd_bridge_direction(self, cell):
        """Bridging the low node to VDD also has a finite critical R."""
        r = cell.retention_upset_resistance(1.8, 1, "vdd")
        assert 100.0 < r < 1e8

    def test_invalid_rail(self, cell):
        with pytest.raises(ValueError):
            cell.retention_upset_resistance(1.8, 1, "vss")


class TestMargins:
    def test_snm_increases_with_vdd(self, cell):
        snms = [cell.static_noise_margin(v) for v in (1.0, 1.4, 1.8)]
        assert snms[0] < snms[1] < snms[2]

    def test_snm_zero_below_vt(self, cell):
        assert cell.static_noise_margin(0.3) == 0.0

    def test_read_current_increases_with_vdd(self, cell):
        assert cell.read_current(1.8) > cell.read_current(1.0) > 0.0

    def test_read_current_zero_when_off(self, cell):
        assert cell.read_current(0.2) == 0.0

    def test_read_current_below_weaker_device(self, cell):
        """Series stack current is below each individual device's."""
        from repro.circuit.devices import Mosfet, MosType

        acc = Mosfet("a", MosType.NMOS, "d", "g", "s",
                     cell.ratios.access, CMOS018)
        assert cell.read_current(1.8) < acc.saturation_current(1.8)


class TestNetlistConstruction:
    def test_six_transistors(self, cell):
        from repro.circuit.devices import Mosfet
        from repro.circuit.netlist import Netlist

        nl = Netlist()
        from repro.circuit.devices import VoltageSource
        nl.add(VoltageSource("Vdd", "vdd", "0", 1.8))
        cell.build(nl)
        assert len(list(nl.devices_of_type(Mosfet))) == 6

    def test_standalone_has_supplies_and_caps(self, cell):
        nl = cell.standalone_netlist(1.8, 1)
        assert "Vdd" in nl and "Vwl" in nl and "Vbl" in nl
        assert "Ct" in nl and "Cc" in nl

    def test_wordline_off_by_default(self, cell):
        nl = cell.standalone_netlist(1.8, 1)
        assert nl["Vwl"].value == 0.0

    def test_wordline_on_option(self, cell):
        nl = cell.standalone_netlist(1.8, 1, wordline_on=True)
        assert nl["Vwl"].value == 1.8
