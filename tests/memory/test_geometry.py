"""Tests for repro.memory.geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.geometry import VEQTOR4_INSTANCE, MemoryGeometry

geom_st = st.builds(
    MemoryGeometry,
    rows=st.integers(min_value=1, max_value=64),
    columns=st.integers(min_value=1, max_value=8),
    bits_per_word=st.integers(min_value=1, max_value=8),
    blocks=st.integers(min_value=1, max_value=3),
)


class TestSizes:
    def test_veqtor_instance_is_256kbit(self):
        assert VEQTOR4_INSTANCE.bits == 256 * 1024

    def test_derived_counts(self):
        g = MemoryGeometry(16, 4, 8, blocks=2)
        assert g.words_per_block == 64
        assert g.words == 128
        assert g.bits_per_block == 512
        assert g.bits == 1024
        assert g.bitlines_per_block == 32

    def test_address_bits(self):
        g = MemoryGeometry(16, 4, 8)
        assert g.address_bits == 6
        assert g.row_address_bits == 4
        assert g.column_address_bits == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryGeometry(0, 1, 1)
        with pytest.raises(ValueError):
            MemoryGeometry(1, 1, -1)

    def test_area_scales_with_bits(self):
        small = MemoryGeometry(16, 4, 8)
        big = MemoryGeometry(32, 4, 8)
        assert big.array_area_um2() == pytest.approx(
            2.0 * small.array_area_um2())


class TestAddressMapping:
    @given(geom_st, st.integers(min_value=0, max_value=100000))
    @settings(max_examples=80)
    def test_split_join_roundtrip(self, g, raw):
        address = raw % g.words
        block, row, col = g.split_address(address)
        assert g.join_address(block, row, col) == address
        assert 0 <= block < g.blocks
        assert 0 <= row < g.rows
        assert 0 <= col < g.columns

    @given(geom_st)
    @settings(max_examples=40)
    def test_cell_index_is_bijective(self, g):
        seen = set()
        for address in range(g.words):
            for bit in range(g.bits_per_word):
                seen.add(g.cell_index(address, bit))
        assert len(seen) == g.bits
        assert min(seen) == 0 and max(seen) == g.bits - 1

    def test_out_of_range(self):
        g = MemoryGeometry(4, 2, 2)
        with pytest.raises(ValueError):
            g.split_address(g.words)
        with pytest.raises(ValueError):
            g.bit_position(0, 2)
        with pytest.raises(ValueError):
            g.join_address(0, 4, 0)


class TestInterleaving:
    def test_bits_of_one_word_not_adjacent(self):
        """Column-mux interleaving: consecutive bits of a word are
        `columns` bitlines apart (soft-error / coupling robustness)."""
        g = MemoryGeometry(8, 4, 4)
        _, _, bl0 = g.bit_position(0, 0)
        _, _, bl1 = g.bit_position(0, 1)
        assert abs(bl1 - bl0) == g.columns

    def test_same_row_for_all_bits(self):
        g = MemoryGeometry(8, 4, 4)
        rows = {g.bit_position(5, b)[1] for b in range(4)}
        assert len(rows) == 1


class TestNeighbours:
    def test_interior_cell_has_four(self):
        g = MemoryGeometry(8, 4, 4)
        addr = g.join_address(0, 4, 1)
        assert len(g.neighbours(addr, 1)) == 4

    def test_corner_cell_has_two(self):
        g = MemoryGeometry(8, 4, 4)
        addr = g.join_address(0, 0, 0)
        assert len(g.neighbours(addr, 0)) == 2

    @given(geom_st)
    @settings(max_examples=30)
    def test_neighbourhood_symmetric(self, g):
        """If B neighbours A then A neighbours B."""
        addr, bit = 0, 0
        for n_addr, n_bit in g.neighbours(addr, bit):
            back = g.neighbours(n_addr, n_bit)
            assert (addr, bit) in back
