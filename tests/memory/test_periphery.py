"""Tests for sense amp, write driver, precharge and bit array."""

import math

import pytest

from repro.circuit.technology import CMOS018
from repro.memory.array import UNKNOWN, BitArray
from repro.memory.geometry import MemoryGeometry
from repro.memory.precharge import Precharge
from repro.memory.senseamp import SenseAmp
from repro.memory.writedriver import WriteDriver


class TestSenseAmp:
    @pytest.fixture
    def sa(self):
        return SenseAmp(CMOS018)

    def test_differential_grows_with_time(self, sa):
        assert (sa.differential(1e-6, 100e-9)
                > sa.differential(1e-6, 10e-9))

    def test_differential_clamped_to_swing(self, sa):
        assert sa.differential(1.0, 1e-3) <= CMOS018.vdd_max

    def test_resolves_threshold(self, sa):
        i_min = sa.minimum_current(20e-9)
        assert not sa.resolves(0.9 * i_min, 20e-9)
        assert sa.resolves(1.1 * i_min, 20e-9)

    def test_critical_period_inverse_of_current(self, sa):
        p1 = sa.critical_period(100e-6)
        p2 = sa.critical_period(200e-6)
        assert p1 == pytest.approx(2.0 * p2)

    def test_zero_current_never_resolves(self, sa):
        assert math.isinf(sa.critical_period(0.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            SenseAmp(CMOS018, v_offset=0.0)
        with pytest.raises(ValueError):
            SenseAmp(CMOS018, develop_fraction=1.5)
        sa = SenseAmp(CMOS018)
        with pytest.raises(ValueError):
            sa.differential(-1.0, 1e-9)
        with pytest.raises(ValueError):
            sa.develop_time(0.0)


class TestWriteDriver:
    @pytest.fixture
    def wd(self):
        return WriteDriver(CMOS018)

    def test_can_write_clean_cell(self, wd):
        for vdd in (1.0, 1.8, 1.95):
            assert wd.can_write(vdd)

    def test_series_resistance_weakens_drive(self, wd):
        assert (wd.drive_current(1.8, 1e6) < wd.drive_current(1.8, 0.0))

    def test_write_time_finite_and_grows_with_r(self, wd):
        t0 = wd.write_time(1.8)
        t1 = wd.write_time(1.8, 5e6)
        assert 0 < t0 < t1

    def test_write_fails_with_huge_open(self, wd):
        assert not wd.can_write(1.8, 1e9)

    def test_critical_open_resistance_positive(self, wd):
        r = wd.critical_open_resistance(1.8, 100e-9)
        assert r > 1e3
        # Just beyond critical the write fails its budget.
        assert (not wd.can_write(1.8, 4 * r)
                or wd.write_time(1.8, 4 * r) > 0.45 * 100e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            WriteDriver(CMOS018, width=0.0)
        wd = WriteDriver(CMOS018)
        with pytest.raises(ValueError):
            wd.drive_current(1.8, -1.0)


class TestPrecharge:
    @pytest.fixture
    def pc(self):
        return Precharge(CMOS018)

    def test_complete_at_slow_period(self, pc):
        assert pc.is_complete(1.8, 100e-9)

    def test_residual_decays_with_period(self, pc):
        r1 = pc.residual_differential(1.8, 5e-9, 1.8)
        r2 = pc.residual_differential(1.8, 50e-9, 1.8)
        assert r2 < r1

    def test_series_resistance_slows_precharge(self, pc):
        tau0 = pc.time_constant(1.8)
        tau1 = pc.time_constant(1.8, series_resistance=1e6)
        assert tau1 > tau0

    def test_incomplete_with_big_open_at_speed(self, pc):
        assert not pc.is_complete(1.8, 5e-9, series_resistance=1e6)

    def test_validation(self):
        with pytest.raises(ValueError):
            Precharge(CMOS018, precharge_fraction=1.0)
        with pytest.raises(ValueError):
            Precharge(CMOS018).residual_differential(1.8, 0.0, 1.0)


class TestBitArray:
    @pytest.fixture
    def arr(self):
        return BitArray(MemoryGeometry(4, 2, 4))

    def test_word_roundtrip(self, arr):
        arr.write_word(3, 0b1010)
        assert arr.read_word(3) == 0b1010

    def test_bit_access(self, arr):
        arr.write_bit(2, 1, 1)
        assert arr.read_bit(2, 1) == 1
        assert arr.read_bit(2, 0) == UNKNOWN

    def test_unknown_reads_as_zero_in_word(self, arr):
        assert arr.read_word(0) == 0

    def test_fill_and_mismatch_count(self, arr):
        other = BitArray(arr.geometry)
        arr.fill(0)
        other.fill(0)
        other.write_bit(1, 2, 1)
        assert arr.count_mismatches(other) == 1

    def test_word_value_range_checked(self, arr):
        with pytest.raises(ValueError):
            arr.write_word(0, 1 << 4)

    def test_geometry_mismatch(self, arr):
        with pytest.raises(ValueError):
            arr.count_mismatches(BitArray(MemoryGeometry(2, 2, 4)))
