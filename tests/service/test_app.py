"""Tests for repro.service.app dispatch: identity, cache, hot reload."""

import json

import pytest

from repro.core.database import CoverageDatabase
from repro.ifa.flow import CoverageRecord
from repro.memory.geometry import MemoryGeometry
from repro.obs.bus import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.runner.atomic import canonical_json
from repro.service.app import EstimatorService
from repro.service.schema import batch_response_document, report_document
from repro.service.state import DatabaseSnapshot, ServiceState


def rec(kind, r, cond, detected, total=100):
    return CoverageRecord(kind, r, cond, 1.8, 1e-7, detected, total)


def database_v1():
    return CoverageDatabase([rec("bridge", 1e2, "VLV", 100),
                             rec("bridge", 1e4, "VLV", 90),
                             rec("bridge", 1e2, "Vmax", 80),
                             rec("bridge", 1e4, "Vmax", 40)])


def database_v2():
    return CoverageDatabase([rec("bridge", 1e2, "VLV", 95),
                             rec("bridge", 1e4, "VLV", 70)])


def estimate_body(rows=8, kind="bridge", **extra):
    query = {"geometry": {"rows": rows, "columns": 2,
                          "bits_per_word": 4}, "kind": kind, **extra}
    return json.dumps({"queries": [query]}).encode()


@pytest.fixture
def db_path(tmp_path):
    path = tmp_path / "coverage.json"
    database_v1().save(path)
    return path


@pytest.fixture
def service(db_path):
    return EstimatorService(
        ServiceState(DatabaseSnapshot.load(db_path), db_path),
        bus=EventBus(), metrics=MetricsRegistry())


class TestEstimate:
    def test_byte_identical_to_in_process_estimator(self, service):
        response = service.dispatch("POST", "/v1/estimate",
                                    estimate_body())
        snapshot = service.state.snapshot
        report = snapshot.estimator.estimate(MemoryGeometry(8, 2, 4),
                                             "bridge")
        expected = batch_response_document(
            snapshot.etag, [report_document(report)])
        assert response.status == 200
        assert response.body == (canonical_json(expected) + "\n").encode()

    def test_batch_preserves_query_order(self, service):
        queries = [{"geometry": {"rows": r, "columns": 2,
                                 "bits_per_word": 4}}
                   for r in (32, 8)]
        response = service.dispatch(
            "POST", "/v1/estimate",
            json.dumps({"queries": queries}).encode())
        doc = json.loads(response.body)
        assert [r["geometry"]["rows"] for r in doc["results"]] == [32, 8]

    def test_etag_header_quotes_fingerprint(self, service):
        response = service.dispatch("POST", "/v1/estimate",
                                    estimate_body())
        etag = service.state.snapshot.etag
        assert response.headers["ETag"] == f'"{etag}"'

    def test_miss_then_hit_byte_identical(self, service):
        first = service.dispatch("POST", "/v1/estimate", estimate_body())
        second = service.dispatch("POST", "/v1/estimate", estimate_body())
        assert first.headers["X-Cache"] == "miss"
        assert second.headers["X-Cache"] == "hit"
        assert first.body == second.body

    def test_equivalent_spellings_share_entry(self, service):
        sparse = estimate_body()
        explicit = json.dumps({"queries": [{
            "kind": "bridge", "yield_fraction": None, "conditions": None,
            "geometry": {"blocks": 1, "bits_per_word": 4, "columns": 2,
                         "rows": 8}}]}).encode()
        service.dispatch("POST", "/v1/estimate", sparse)
        response = service.dispatch("POST", "/v1/estimate", explicit)
        assert response.headers["X-Cache"] == "hit"

    def test_schema_defect_is_named_400(self, service):
        response = service.dispatch("POST", "/v1/estimate", b"{nope")
        assert response.status == 400
        assert json.loads(response.body)["error"]["code"] == "bad-json"

    def test_absent_kind_is_404(self, service):
        response = service.dispatch("POST", "/v1/estimate",
                                    estimate_body(kind="open"))
        assert response.status == 404
        doc = json.loads(response.body)
        assert doc["error"]["code"] == "unknown-kind"
        assert "no records for kind='open'" in doc["error"]["detail"]

    def test_unknown_condition_is_404_and_uncached(self, service):
        body = estimate_body(conditions=["Vhuge"])
        response = service.dispatch("POST", "/v1/estimate", body)
        assert response.status == 404
        assert (json.loads(response.body)["error"]["code"]
                == "unknown-condition")
        assert len(service.cache) == 0

    def test_errors_are_not_cached(self, service):
        service.dispatch("POST", "/v1/estimate", b"{nope")
        response = service.dispatch("POST", "/v1/estimate", b"{nope")
        assert "X-Cache" not in response.headers


class TestRouting:
    def test_unknown_path_404(self, service):
        response = service.dispatch("GET", "/v2/estimate", b"")
        assert response.status == 404
        assert json.loads(response.body)["error"]["code"] == "not-found"

    def test_wrong_method_405_names_allowed(self, service):
        response = service.dispatch("GET", "/v1/estimate", b"")
        assert response.status == 405
        assert response.headers["Allow"] == "POST"
        response = service.dispatch("POST", "/v1/health", b"")
        assert response.status == 405
        assert response.headers["Allow"] == "GET"

    def test_health_document(self, service):
        response = service.dispatch("GET", "/v1/health", b"")
        doc = json.loads(response.body)
        assert doc["status"] == "ok"
        assert doc["etag"] == service.state.snapshot.etag
        assert doc["generation"] == 1
        assert doc["records"] == 4
        assert doc["kinds"] == ["bridge"]
        assert doc["cache"]["entries"] == 0


class TestHotReload:
    def test_unchanged_file_keeps_snapshot(self, service):
        before = service.state.snapshot
        response = service.dispatch("POST", "/v1/reload", b"")
        assert response.status == 200
        assert json.loads(response.body)["outcome"] == "unchanged"
        assert service.state.snapshot is before

    def test_reload_swaps_snapshot_and_bumps_generation(
            self, service, db_path):
        database_v2().save(db_path)
        response = service.dispatch("POST", "/v1/reload", b"")
        doc = json.loads(response.body)
        assert doc["outcome"] == "reloaded"
        assert doc["etag"] == service.state.snapshot.etag
        assert service.state.snapshot.generation == 2
        assert len(service.state.snapshot.database) == 2

    def test_reload_leaves_zero_reachable_stale_entries(
            self, service, db_path):
        """The fingerprint-keyed cache makes a swap invalidate
        everything implicitly: the same request re-misses and serves
        the new database's answer."""
        body = estimate_body()
        before = service.dispatch("POST", "/v1/estimate", body)
        assert service.dispatch("POST", "/v1/estimate",
                                body).headers["X-Cache"] == "hit"
        database_v2().save(db_path)
        service.dispatch("POST", "/v1/reload", b"")
        after = service.dispatch("POST", "/v1/estimate", body)
        assert after.headers["X-Cache"] == "miss"
        assert after.body != before.body
        assert (json.loads(after.body)["etag"]
                == service.state.snapshot.etag)

    def test_corrupt_candidate_rejected_without_downtime(
            self, service, db_path):
        before = service.dispatch("POST", "/v1/estimate",
                                  estimate_body())
        db_path.write_text("{torn")
        response = service.dispatch("POST", "/v1/reload", b"")
        doc = json.loads(response.body)
        assert response.status == 409
        assert doc["outcome"] == "rejected"
        assert str(db_path) in doc["error"]
        assert service.state.snapshot.generation == 1
        after = service.dispatch("POST", "/v1/estimate", estimate_body())
        assert after.status == 200
        assert after.body == before.body

    def test_missing_candidate_rejected(self, service, db_path):
        db_path.unlink()
        response = service.dispatch("POST", "/v1/reload", b"")
        assert response.status == 409

    def test_no_path_rejects_reload(self):
        state = ServiceState(
            DatabaseSnapshot.from_database(database_v1()))
        response = EstimatorService(state).dispatch(
            "POST", "/v1/reload", b"")
        assert response.status == 409
        assert "no reloadable" in json.loads(response.body)["error"]


class TestObservability:
    def test_request_events_carry_status_and_cached(self, service):
        service.dispatch("POST", "/v1/estimate", estimate_body())
        service.dispatch("POST", "/v1/estimate", estimate_body())
        service.dispatch("POST", "/v1/estimate", b"{nope")
        requests = [e for e in service.bus.events
                    if e.name == "service.request"]
        assert [e.data["status"] for e in requests] == [200, 200, 400]
        assert [e.data["cached"] for e in requests] == [
            False, True, False]
        assert requests[0].data["queries"] == 1

    def test_cache_hit_event_names_key(self, service):
        service.dispatch("POST", "/v1/estimate", estimate_body())
        service.dispatch("POST", "/v1/estimate", estimate_body())
        (hit,) = [e for e in service.bus.events
                  if e.name == "service.cache_hit"]
        assert len(hit.data["key"]) == 64

    def test_reload_event_carries_outcome(self, service, db_path):
        db_path.write_text("{torn")
        service.dispatch("POST", "/v1/reload", b"")
        (reload_event,) = [e for e in service.bus.events
                           if e.name == "service.reload"]
        assert reload_event.data["outcome"] == "rejected"
        assert str(db_path) in reload_event.data["error"]

    def test_metrics_counters(self, service):
        service.dispatch("POST", "/v1/estimate", estimate_body())
        service.dispatch("POST", "/v1/estimate", estimate_body())
        service.dispatch("POST", "/v1/reload", b"")
        counters = service.metrics.snapshot()["counters"]
        assert counters["service.request"] == 3
        assert counters["service.cache_miss"] == 1
        assert counters["service.cache_hit"] == 1
        assert counters["service.reload.unchanged"] == 1

    def test_cache_disabled_never_hits(self, db_path):
        service = EstimatorService(
            ServiceState(DatabaseSnapshot.load(db_path), db_path),
            cache_size=0)
        service.dispatch("POST", "/v1/estimate", estimate_body())
        response = service.dispatch("POST", "/v1/estimate",
                                    estimate_body())
        assert response.headers["X-Cache"] == "miss"
