"""Tests for repro.service.schema: request validation and projection."""

import json

import pytest

from repro.core.database import CoverageDatabase
from repro.core.estimator import FaultCoverageEstimator
from repro.ifa.flow import CoverageRecord
from repro.memory.geometry import MemoryGeometry
from repro.service.schema import (
    MAX_QUERIES,
    BatchRequest,
    EstimateQuery,
    RequestError,
    error_document,
    parse_request,
    report_document,
)


def rec(kind, r, cond, detected, total=100):
    return CoverageRecord(kind, r, cond, 1.8, 1e-7, detected, total)


def body(queries):
    return json.dumps({"queries": queries}).encode()


GOOD_QUERY = {"geometry": {"rows": 8, "columns": 2, "bits_per_word": 4}}


class TestParseRequest:
    def test_minimal_query_fills_defaults(self):
        request = parse_request(body([GOOD_QUERY]))
        (query,) = request.queries
        assert query.geometry == MemoryGeometry(8, 2, 4)
        assert query.kind == "bridge"
        assert query.conditions is None
        assert query.yield_fraction is None

    def test_full_query(self):
        request = parse_request(body([{
            "geometry": {"rows": 8, "columns": 2, "bits_per_word": 4,
                         "blocks": 2},
            "kind": "open",
            "conditions": ["VLV", "Vmax"],
            "yield_fraction": 0.9,
        }]))
        (query,) = request.queries
        assert query.geometry.blocks == 2
        assert query.kind == "open"
        assert query.conditions == ("VLV", "Vmax")
        assert query.yield_fraction == 0.9

    def test_order_preserved(self):
        queries = [{"geometry": {"rows": r, "columns": 2,
                                 "bits_per_word": 4}}
                   for r in (32, 8, 16)]
        request = parse_request(body(queries))
        assert [q.geometry.rows for q in request.queries] == [32, 8, 16]

    @pytest.mark.parametrize("raw,code", [
        (b"{not json", "bad-json"),
        (b"\xff\xfe", "bad-json"),
        (b"[1, 2]", "not-an-object"),
        (b"{}", "missing-queries"),
        (b'{"queries": 5}', "missing-queries"),
        (b'{"queries": []}', "empty-queries"),
        (b'{"queries": [{"geometry": {"rows": 1, "columns": 1, '
         b'"bits_per_word": 1}}], "extra": 1}', "not-an-object"),
    ])
    def test_top_level_defects(self, raw, code):
        with pytest.raises(RequestError) as info:
            parse_request(raw)
        assert info.value.code == code
        assert info.value.status == 400

    def test_too_many_queries(self):
        with pytest.raises(RequestError) as info:
            parse_request(body([GOOD_QUERY] * (MAX_QUERIES + 1)))
        assert info.value.code == "too-many-queries"

    @pytest.mark.parametrize("query,code", [
        ("not-an-object", "bad-query"),
        ({**GOOD_QUERY, "mystery": 1}, "bad-query"),
        ({}, "bad-geometry"),
        ({"geometry": [8, 2, 4]}, "bad-geometry"),
        ({"geometry": {"rows": 8, "columns": 2}}, "bad-geometry"),
        ({"geometry": {"rows": 0, "columns": 2, "bits_per_word": 4}},
         "bad-geometry"),
        ({"geometry": {"rows": 8.5, "columns": 2, "bits_per_word": 4}},
         "bad-geometry"),
        ({"geometry": {"rows": 8, "columns": 2, "bits_per_word": 4,
                       "depth": 3}}, "bad-geometry"),
        ({**GOOD_QUERY, "kind": "stuck"}, "bad-kind"),
        ({**GOOD_QUERY, "conditions": []}, "bad-conditions"),
        ({**GOOD_QUERY, "conditions": "VLV"}, "bad-conditions"),
        ({**GOOD_QUERY, "conditions": [1]}, "bad-conditions"),
        ({**GOOD_QUERY, "yield_fraction": 0.0}, "bad-yield"),
        ({**GOOD_QUERY, "yield_fraction": 1.5}, "bad-yield"),
        ({**GOOD_QUERY, "yield_fraction": True}, "bad-yield"),
    ])
    def test_query_defects_name_the_entry(self, query, code):
        with pytest.raises(RequestError) as info:
            parse_request(body([GOOD_QUERY, query]))
        assert info.value.code == code
        assert "queries[1]" in info.value.detail

    def test_error_str_carries_code(self):
        with pytest.raises(RequestError, match="bad-kind"):
            parse_request(body([{**GOOD_QUERY, "kind": "nope"}]))


class TestCanonicalBody:
    def test_key_order_and_defaults_collapse(self):
        """Spelling differences share one cache identity."""
        sparse = parse_request(body([GOOD_QUERY]))
        explicit = parse_request(json.dumps({"queries": [{
            "kind": "bridge",
            "conditions": None,
            "yield_fraction": None,
            "geometry": {"blocks": 1, "bits_per_word": 4,
                         "columns": 2, "rows": 8},
        }]}).encode())
        assert sparse.canonical_body() == explicit.canonical_body()

    def test_distinct_requests_distinct_bodies(self):
        a = parse_request(body([GOOD_QUERY]))
        b = parse_request(body([{**GOOD_QUERY, "kind": "open"}]))
        assert a.canonical_body() != b.canonical_body()

    def test_canonical_body_is_deterministic(self):
        query = EstimateQuery(MemoryGeometry(8, 2, 4))
        request = BatchRequest((query,))
        assert request.canonical_body() == request.canonical_body()


class TestReportDocument:
    @pytest.fixture
    def report(self):
        db = CoverageDatabase([rec("bridge", 1e2, "VLV", 100),
                               rec("bridge", 1e4, "VLV", 90),
                               rec("bridge", 1e2, "Vmax", 80),
                               rec("bridge", 1e4, "Vmax", 40)])
        return FaultCoverageEstimator(db).estimate(
            MemoryGeometry(8, 2, 4), "bridge")

    def test_projection_shape(self, report):
        doc = report_document(report)
        assert doc["kind"] == "bridge"
        assert doc["geometry"] == {"rows": 8, "columns": 2,
                                   "bits_per_word": 4, "blocks": 1}
        assert [e["condition"] for e in doc["estimates"]] == [
            "VLV", "Vmax"]
        assert doc["estimates"][0]["fault_coverage"] == [
            [1e2, 1.0], [1e4, 0.9]]

    def test_condition_filter_reorders(self, report):
        doc = report_document(report, ("Vmax", "VLV"))
        assert [e["condition"] for e in doc["estimates"]] == [
            "Vmax", "VLV"]

    def test_filter_keeps_full_suite_normalisation(self, report):
        """dpm_normalised stays pinned to the whole suite's best."""
        doc = report_document(report, ("Vmax",))
        full = report_document(report)
        assert (doc["estimates"][0]["dpm_normalised"]
                == full["estimates"][1]["dpm_normalised"])

    def test_unknown_condition_is_404(self, report):
        with pytest.raises(RequestError) as info:
            report_document(report, ("VLV", "Vhuge"))
        assert info.value.code == "unknown-condition"
        assert info.value.status == 404
        assert "'Vhuge'" in info.value.detail

    def test_json_serialisable(self, report):
        json.dumps(report_document(report))


class TestErrorDocument:
    def test_shape(self):
        assert error_document("bad-kind", "nope") == {
            "error": {"code": "bad-kind", "detail": "nope"}}
