"""Tests for the asyncio HTTP front end: framing, keep-alive, reload
consistency under concurrent traffic."""

import asyncio
import json

import pytest

from repro.core.database import CoverageDatabase
from repro.ifa.flow import CoverageRecord
from repro.memory.geometry import MemoryGeometry
from repro.runner.atomic import canonical_json
from repro.service.app import MAX_BODY_BYTES, EstimatorService, serve
from repro.service.schema import batch_response_document, report_document
from repro.service.state import DatabaseSnapshot, ServiceState


def rec(kind, r, cond, detected, total=100):
    return CoverageRecord(kind, r, cond, 1.8, 1e-7, detected, total)


def database_v1():
    return CoverageDatabase([rec("bridge", 1e2, "VLV", 100),
                             rec("bridge", 1e4, "VLV", 90)])


def database_v2():
    return CoverageDatabase([rec("bridge", 1e2, "VLV", 95),
                             rec("bridge", 1e4, "VLV", 70)])


ESTIMATE_BODY = json.dumps({"queries": [{"geometry": {
    "rows": 8, "columns": 2, "bits_per_word": 4}}]}).encode()


def expected_estimate_body(snapshot):
    """The byte-exact response the service must produce."""
    report = snapshot.estimator.estimate(MemoryGeometry(8, 2, 4),
                                         "bridge")
    doc = batch_response_document(snapshot.etag,
                                  [report_document(report)])
    return (canonical_json(doc) + "\n").encode()


def make_service(tmp_path):
    db_path = tmp_path / "coverage.json"
    database_v1().save(db_path)
    return EstimatorService(
        ServiceState(DatabaseSnapshot.load(db_path), db_path)), db_path


async def read_response(reader):
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        if line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    payload = await reader.readexactly(int(headers["content-length"]))
    return status, headers, payload


async def request(port, method, path, body=b"", close=True):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    connection = "close" if close else "keep-alive"
    writer.write((f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
                  f"Content-Length: {len(body)}\r\n"
                  f"Connection: {connection}\r\n\r\n").encode() + body)
    await writer.drain()
    try:
        return await read_response(reader)
    finally:
        writer.close()


async def with_server(service, scenario):
    server = await serve(service)
    port = server.sockets[0].getsockname()[1]
    try:
        return await scenario(port)
    finally:
        server.close()
        await server.wait_closed()


class TestHttpFraming:
    def test_estimate_byte_identical_over_the_wire(self, tmp_path):
        service, _ = make_service(tmp_path)

        async def scenario(port):
            return await request(port, "POST", "/v1/estimate",
                                 ESTIMATE_BODY)

        status, headers, payload = asyncio.run(
            with_server(service, scenario))
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert payload == expected_estimate_body(service.state.snapshot)

    def test_keep_alive_serves_second_request_from_cache(self, tmp_path):
        service, _ = make_service(tmp_path)

        async def scenario(port):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            results = []
            for _ in range(2):
                writer.write((f"POST /v1/estimate HTTP/1.1\r\nHost: t"
                              f"\r\nContent-Length: "
                              f"{len(ESTIMATE_BODY)}\r\n\r\n"
                              ).encode() + ESTIMATE_BODY)
                await writer.drain()
                results.append(await read_response(reader))
            writer.close()
            return results

        (s1, h1, p1), (s2, h2, p2) = asyncio.run(
            with_server(service, scenario))
        assert (s1, s2) == (200, 200)
        assert h1["x-cache"] == "miss"
        assert h2["x-cache"] == "hit"
        assert p1 == p2

    def test_health_over_the_wire(self, tmp_path):
        service, _ = make_service(tmp_path)

        async def scenario(port):
            return await request(port, "GET", "/v1/health")

        status, _, payload = asyncio.run(with_server(service, scenario))
        assert status == 200
        assert json.loads(payload)["status"] == "ok"

    def test_malformed_request_line_is_400(self, tmp_path):
        service, _ = make_service(tmp_path)

        async def scenario(port):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(b"NONSENSE\r\n\r\n")
            await writer.drain()
            result = await read_response(reader)
            extra = await reader.read()   # 400s close the connection
            writer.close()
            return result, extra

        (status, _, payload), extra = asyncio.run(
            with_server(service, scenario))
        assert status == 400
        assert json.loads(payload)["error"]["code"] == "bad-request"
        assert extra == b""

    def test_bad_content_length_is_400(self, tmp_path):
        service, _ = make_service(tmp_path)

        async def scenario(port):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(b"POST /v1/estimate HTTP/1.1\r\n"
                         b"Content-Length: banana\r\n\r\n")
            await writer.drain()
            result = await read_response(reader)
            writer.close()
            return result

        status, _, _ = asyncio.run(with_server(service, scenario))
        assert status == 400

    def test_oversized_body_is_rejected_unread(self, tmp_path):
        service, _ = make_service(tmp_path)

        async def scenario(port):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write((f"POST /v1/estimate HTTP/1.1\r\n"
                          f"Content-Length: {MAX_BODY_BYTES + 1}"
                          f"\r\n\r\n").encode())
            await writer.drain()
            result = await read_response(reader)
            writer.close()
            return result

        status, _, payload = asyncio.run(with_server(service, scenario))
        assert status == 400
        assert "Content-Length" in json.loads(payload)["error"]["detail"]


class TestConcurrentHotReload:
    def test_requests_during_reload_see_one_generation_each(
            self, tmp_path):
        """Concurrent estimates racing a database swap: every response
        must byte-equal one whole generation's answer -- never a mix --
        and traffic after the swap serves the new database."""
        service, db_path = make_service(tmp_path)
        expected_v1 = expected_estimate_body(service.state.snapshot)
        expected_v2 = expected_estimate_body(
            DatabaseSnapshot.from_database(database_v2()))

        async def scenario(port):
            async def client(n):
                results = []
                for _ in range(n):
                    results.append(await request(
                        port, "POST", "/v1/estimate", ESTIMATE_BODY))
                return results

            clients = [asyncio.create_task(client(5)) for _ in range(4)]
            await asyncio.sleep(0)        # let the first wave start
            database_v2().save(db_path)
            reload_status, _, reload_payload = await request(
                port, "POST", "/v1/reload")
            raced = [r for results in await asyncio.gather(*clients)
                     for r in results]
            final = await request(port, "POST", "/v1/estimate",
                                  ESTIMATE_BODY)
            return reload_status, reload_payload, raced, final

        reload_status, reload_payload, raced, final = asyncio.run(
            with_server(service, scenario))
        assert reload_status == 200
        assert json.loads(reload_payload)["outcome"] == "reloaded"
        for status, _, payload in raced:
            assert status == 200
            assert payload in (expected_v1, expected_v2)
        status, _, payload = final
        assert status == 200
        assert payload == expected_v2

    def test_corrupt_swap_keeps_serving_old_generation(self, tmp_path):
        service, db_path = make_service(tmp_path)
        expected_v1 = expected_estimate_body(service.state.snapshot)

        async def scenario(port):
            before = await request(port, "POST", "/v1/estimate",
                                   ESTIMATE_BODY)
            db_path.write_text("{torn")
            rejected = await request(port, "POST", "/v1/reload")
            after = await request(port, "POST", "/v1/estimate",
                                  ESTIMATE_BODY)
            return before, rejected, after

        before, rejected, after = asyncio.run(
            with_server(service, scenario))
        assert before[0] == 200 and before[2] == expected_v1
        assert rejected[0] == 409
        assert json.loads(rejected[2])["outcome"] == "rejected"
        assert after[0] == 200 and after[2] == expected_v1


class TestServeLifecycle:
    def test_ephemeral_port_is_real(self, tmp_path):
        service, _ = make_service(tmp_path)

        async def scenario():
            server = await serve(service, port=0)
            port = server.sockets[0].getsockname()[1]
            server.close()
            await server.wait_closed()
            return port

        assert asyncio.run(scenario()) > 0

    def test_clean_eof_before_any_request(self, tmp_path):
        service, _ = make_service(tmp_path)

        async def scenario(port):
            _, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.close()
            await writer.wait_closed()
            # The handler must swallow the empty connection; a follow-up
            # request proves the server is still healthy.
            return await request(port, "GET", "/v1/health")

        status, _, _ = asyncio.run(with_server(service, scenario))
        assert status == 200


@pytest.mark.parametrize("path,method", [("/v1/estimate", "GET"),
                                         ("/v1/reload", "GET"),
                                         ("/v1/health", "POST")])
def test_wrong_method_over_the_wire(tmp_path, path, method):
    service, _ = make_service(tmp_path)

    async def scenario(port):
        return await request(port, method, path)

    status, headers, _ = asyncio.run(with_server(service, scenario))
    assert status == 405
    assert "allow" in headers
