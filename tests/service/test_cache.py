"""Tests for repro.service.cache: LRU bound and content addressing."""

import pytest

from repro.service.cache import ResponseCache, response_cache_key


class TestResponseCacheKey:
    def test_deterministic(self):
        assert (response_cache_key("etag", "body")
                == response_cache_key("etag", "body"))

    def test_either_half_changes_key(self):
        base = response_cache_key("etag", "body")
        assert response_cache_key("etag2", "body") != base
        assert response_cache_key("etag", "body2") != base

    def test_halves_do_not_concatenate_ambiguously(self):
        """The separator keeps ("ab","c") and ("a","bc") apart."""
        assert (response_cache_key("ab", "c")
                != response_cache_key("a", "bc"))


class TestResponseCache:
    def test_roundtrip_and_counters(self):
        cache = ResponseCache(4)
        assert cache.get("k") is None
        cache.put("k", b"v")
        assert cache.get("k") == b"v"
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction_order(self):
        cache = ResponseCache(2)
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.get("a")          # refresh a; b is now LRU
        cache.put("c", b"3")
        assert cache.get("b") is None
        assert cache.get("a") == b"1"
        assert cache.get("c") == b"3"
        assert cache.evictions == 1

    def test_overwrite_refreshes_without_evicting(self):
        cache = ResponseCache(2)
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.put("a", b"updated")
        assert len(cache) == 2
        assert cache.get("a") == b"updated"
        assert cache.evictions == 0

    def test_zero_capacity_disables_storage(self):
        cache = ResponseCache(0)
        cache.put("k", b"v")
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            ResponseCache(-1)

    def test_stats_shape(self):
        cache = ResponseCache(4)
        cache.put("k", b"v")
        cache.get("k")
        cache.get("absent")
        stats = cache.stats()
        assert stats == {"entries": 1, "max_entries": 4, "hits": 1,
                         "misses": 1, "evictions": 0, "hit_rate": 0.5}

    def test_stats_hit_rate_none_before_any_probe(self):
        assert ResponseCache(4).stats()["hit_rate"] is None
