#!/usr/bin/env python3
"""Dead-link checker for the repository's markdown documentation.

Scans README.md and docs/*.md for relative references -- markdown links
(``[text](path)``) and backtick-quoted file mentions (`` `docs/x.md` ``)
-- and fails when a referenced file does not exist.  External URLs and
pure anchors are ignored.  Also enforces the docs index: every
``docs/*.md`` file must be reachable from README.md.

Usage::

    python scripts/check_links.py            # check, exit 1 on problems
    python scripts/check_links.py --verbose  # also list what was checked

Run by ``scripts/check.sh`` as the docs gate.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

#: Markdown inline links: [text](target), excluding images.
_MD_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")

#: Backtick-quoted repo paths: `docs/x.md`, `scripts/check.sh` ...
#: A slash is required so bare module/file mentions (`quickstart.py`,
#: `EXPERIMENTS.md`) -- which name things relative to contexts the prose
#: establishes -- do not false-positive.
_TICK_PATH = re.compile(
    r"`([A-Za-z0-9_.-]+/[A-Za-z0-9_./-]*\.(?:md|sh|json|py|toml))`")

#: Targets that are not files to resolve.
_EXTERNAL = ("http://", "https://", "mailto:", "#")


def _targets(text: str) -> set[str]:
    """All checkable relative targets referenced by a markdown text."""
    found = set(_MD_LINK.findall(text)) | set(_TICK_PATH.findall(text))
    return {
        t.split("#", 1)[0]
        for t in found
        if not t.startswith(_EXTERNAL) and t.split("#", 1)[0]
    }


def check_file(path: Path, root: Path,
               verbose: bool = False) -> list[str]:
    """Return dead-reference problems found in one markdown file.

    Args:
        path: The markdown file to scan.
        root: Repository root (targets resolve relative to the file's
            directory first, then to the root).
        verbose: Print each checked reference.

    Returns:
        Problem strings, empty when every reference resolves.
    """
    problems = []
    for target in sorted(_targets(path.read_text())):
        # Prose references paths relative to the file, the repo root,
        # the package root and examples/ -- accept any that resolves.
        resolved = (path.parent / target, root / target,
                    root / "src" / "repro" / target,
                    root / "examples" / target)
        ok = any(p.exists() for p in resolved)
        if verbose:
            print(f"  {path.relative_to(root)}: {target} "
                  f"{'ok' if ok else 'MISSING'}")
        if not ok:
            problems.append(
                f"{path.relative_to(root)}: dead reference {target!r}")
    return problems


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        description="Check markdown docs for dead relative links.")
    parser.add_argument("--verbose", action="store_true",
                        help="list every checked reference")
    args = parser.parse_args(argv)

    root = Path(__file__).resolve().parents[1]
    files = [root / "README.md", *sorted((root / "docs").glob("*.md"))]
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path, root, verbose=args.verbose))

    # Index completeness: every docs page must be linked from README.
    readme_targets = _targets((root / "README.md").read_text())
    for doc in sorted((root / "docs").glob("*.md")):
        ref = f"docs/{doc.name}"
        if ref not in readme_targets:
            problems.append(
                f"README.md: docs page {ref} is not linked from the "
                "documentation index")

    for problem in problems:
        print(problem, file=sys.stderr)
    checked = len(files)
    print(f"check_links: {checked} file(s) checked, "
          f"{len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
