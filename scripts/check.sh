#!/usr/bin/env bash
# CI / pre-commit gate: style lint, type check, domain lint, docs links,
# benchmark smoke, tier-1 tests.
#
#   scripts/check.sh            # full sequence
#   STRICT_LINT=1 scripts/check.sh   # repro lint treats warnings as errors
#
# ruff and mypy are skipped with a notice when not installed (offline
# images bake only the runtime toolchain); the pytest tier-1 suite, the
# repro-lint smoke, the docs link check and the benchmark-schema smoke
# always run.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

status=0

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests || status=$?
else
    echo "== ruff == (not installed; skipped)"
fi

if command -v mypy >/dev/null 2>&1; then
    echo "== mypy =="
    mypy || status=$?
else
    echo "== mypy == (not installed; skipped)"
fi

echo "== repro lint =="
lint_flags=()
if [ "${STRICT_LINT:-0}" = "1" ]; then
    lint_flags+=(--strict)
fi
python -m repro lint "${lint_flags[@]}" || status=$?

echo "== docs (dead-link check) =="
python scripts/check_links.py || status=$?

echo "== docs (public docstrings: repro.runner / repro.perf) =="
python scripts/check_docstrings.py || status=$?

echo "== benchmark smoke (BENCH_campaign.json schema) =="
bench_out="$(mktemp /tmp/bench_smoke.XXXXXX.json)"
python benchmarks/perf/bench_campaign.py --quick --out "$bench_out" \
    && python benchmarks/perf/bench_campaign.py --validate "$bench_out" \
    || status=$?
python benchmarks/perf/bench_campaign.py --validate BENCH_campaign.json \
    || status=$?
rm -f "$bench_out"

echo "== pytest (chaos / robustness suite) =="
python -m pytest -q tests/runner || status=$?

echo "== pytest (tier 1) =="
python -m pytest -x -q || status=$?

exit "$status"
