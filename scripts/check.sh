#!/usr/bin/env bash
# CI / pre-commit gate: style lint, type check, domain lint, docs links,
# benchmark smoke, tier-1 tests.
#
#   scripts/check.sh            # full sequence
#   STRICT_LINT=1 scripts/check.sh   # repro lint treats warnings as errors
#
# ruff and mypy are skipped with a notice when not installed (offline
# images bake only the runtime toolchain); the pytest tier-1 suite, the
# repro-lint smoke, the docs link check and the benchmark-schema smoke
# always run.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

status=0

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests || status=$?
else
    echo "== ruff == (not installed; skipped)"
fi

if command -v mypy >/dev/null 2>&1; then
    echo "== mypy =="
    mypy || status=$?
else
    echo "== mypy == (not installed; skipped)"
fi

echo "== repro lint =="
lint_flags=()
if [ "${STRICT_LINT:-0}" = "1" ]; then
    lint_flags+=(--strict)
fi
python -m repro lint "${lint_flags[@]}" || status=$?

echo "== repro lint code (determinism / IO / observability rules) =="
python -m repro lint "${lint_flags[@]}" code src tests benchmarks scripts \
    || status=$?

echo "== docs (dead-link check) =="
python scripts/check_links.py || status=$?

echo "== docs (public docstrings: runner / perf / obs / lint.code / service) =="
python scripts/check_docstrings.py || status=$?

echo "== benchmark smoke (BENCH_campaign.json schema) =="
bench_out="$(mktemp /tmp/bench_smoke.XXXXXX.json)"
python benchmarks/perf/bench_campaign.py --quick --out "$bench_out" \
    && python benchmarks/perf/bench_campaign.py --validate "$bench_out" \
    || status=$?
python benchmarks/perf/bench_campaign.py --validate BENCH_campaign.json \
    || status=$?
rm -f "$bench_out"

echo "== benchmark smoke (BENCH_frontier.json schema + reduction/batch floors) =="
frontier_out="$(mktemp /tmp/frontier_smoke.XXXXXX.json)"
python benchmarks/perf/bench_frontier.py --quick --out "$frontier_out" \
    && python benchmarks/perf/bench_frontier.py --validate "$frontier_out" \
    || status=$?
python benchmarks/perf/bench_frontier.py --validate BENCH_frontier.json \
    || status=$?
rm -f "$frontier_out"

echo "== benchmark smoke (BENCH_experiment.json schema + throughput/invariance floors) =="
experiment_out="$(mktemp /tmp/experiment_smoke.XXXXXX.json)"
python benchmarks/perf/bench_experiment.py --quick --out "$experiment_out" \
    && python benchmarks/perf/bench_experiment.py --validate "$experiment_out" \
    || status=$?
python benchmarks/perf/bench_experiment.py --validate BENCH_experiment.json \
    || status=$?
rm -f "$experiment_out"

echo "== benchmark smoke (BENCH_service.json schema + qps/hit-rate floors) =="
service_out="$(mktemp /tmp/service_smoke.XXXXXX.json)"
python benchmarks/perf/bench_service.py --quick --out "$service_out" \
    && python benchmarks/perf/bench_service.py --validate "$service_out" \
    || status=$?
python benchmarks/perf/bench_service.py --validate BENCH_service.json \
    || status=$?
rm -f "$service_out"

echo "== service smoke (repro serve: estimate/cache/reload-reject chain) =="
svc_db="$(mktemp /tmp/service_smoke_db.XXXXXX.json)"
svc_journal="$(mktemp /tmp/service_smoke.XXXXXX.jsonl)"
svc_log="$(mktemp /tmp/service_smoke_log.XXXXXX.txt)"
python -m repro campaign run --rows 8 --columns 2 --bits 4 --sites 40 \
    --save-db "$svc_db" >/dev/null || status=$?
python -m repro serve --db "$svc_db" --port 0 --journal "$svc_journal" \
    >"$svc_log" 2>&1 &
svc_pid=$!
svc_port=""
for _ in $(seq 1 100); do
    svc_port="$(sed -n 's#^serving on http://127.0.0.1:##p' "$svc_log")"
    [ -n "$svc_port" ] && break
    sleep 0.1
done
if [ -z "$svc_port" ]; then
    echo "service smoke: server never announced its port"
    cat "$svc_log"
    status=1
else
    python - "$svc_port" "$svc_db" <<'PYEOF' || status=$?
import json
import socket
import sys

port, db = int(sys.argv[1]), sys.argv[2]


def http(method, path, body=b""):
    s = socket.create_connection(("127.0.0.1", port))
    s.sendall((f"{method} {path} HTTP/1.1\r\nHost: smoke\r\n"
               f"Content-Length: {len(body)}\r\n"
               "Connection: close\r\n\r\n").encode() + body)
    data = b""
    while chunk := s.recv(65536):
        data += chunk
    s.close()
    head, _, payload = data.partition(b"\r\n\r\n")
    headers = {}
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    return int(head.split(b" ")[1]), headers, payload


status, _, payload = http("GET", "/v1/health")
assert status == 200, (status, payload)
body = json.dumps({"queries": [{"geometry": {
    "rows": 8, "columns": 2, "bits_per_word": 4},
    "kind": "bridge"}]}).encode()
s1, h1, p1 = http("POST", "/v1/estimate", body)
assert s1 == 200 and h1["x-cache"] == "miss", (s1, h1)
s2, h2, p2 = http("POST", "/v1/estimate", body)
assert s2 == 200 and h2["x-cache"] == "hit" and p1 == p2, (s2, h2)
s3, _, p3 = http("POST", "/v1/reload")
assert s3 == 200 and json.loads(p3)["outcome"] == "unchanged", p3
with open(db, "r+") as fh:
    fh.write("corrupt!")
s4, _, p4 = http("POST", "/v1/reload")
assert s4 == 409 and json.loads(p4)["outcome"] == "rejected", (s4, p4)
s5, _, p5 = http("POST", "/v1/estimate", body)
assert s5 == 200 and p5 == p1, "old snapshot must keep serving"
print("service smoke: estimate/cache/reload-reject chain ok")
PYEOF
fi
kill "$svc_pid" 2>/dev/null || true
wait "$svc_pid" 2>/dev/null || true
for event in service.request service.reload; do
    if ! grep -qF "\"$event\"" "$svc_journal"; then
        echo "service smoke: journal missing $event event"
        status=1
    fi
done
rm -f "$svc_db" "$svc_journal" "$svc_log"

echo "== streaming-experiment smoke (experiment run --journal -> repro report) =="
exp_journal="$(mktemp /tmp/experiment_smoke.XXXXXX.jsonl)"
python -m repro experiment run --devices 8192 --shard-devices 4096 \
    --journal "$exp_journal" >/dev/null || status=$?
# The journal must carry the full experiment.shard -> experiment.merge
# event chain (one shard event per shard, one merge), and the text
# report must render the streaming section from it.
python - "$exp_journal" <<'PYEOF' || status=$?
import json, sys
events = []
with open(sys.argv[1]) as fh:
    for line in fh:
        record = json.loads(line)
        if "event" in record:
            events.append(record)
shards = [e for e in events if e["event"] == "experiment.shard"]
merges = [e for e in events if e["event"] == "experiment.merge"]
assert len(shards) == 2, f"expected 2 experiment.shard events, got {len(shards)}"
assert [e["data"]["shard"] for e in shards] == [0, 1], "shard events out of plan order"
assert len(merges) == 1, f"expected 1 experiment.merge event, got {len(merges)}"
assert merges[0]["data"]["devices"] == 8192, merges[0]["data"]
print("experiment journal: shard/merge chain ok,", len(events), "events")
PYEOF
exp_report="$(python -m repro report "$exp_journal")" || status=$?
if ! grep -qF "Streaming experiment:" <<<"$exp_report"; then
    echo "experiment smoke: report missing 'Streaming experiment:' section"
    status=1
fi
rm -f "$exp_journal"

echo "== fast-path equivalence markers =="
# Every guarded fast path must name the test file that proves it
# byte-identical to its exact path -- and that file must exist.
for module in src/repro/perf/frontier.py src/repro/perf/batch.py \
              src/repro/tester/shmoo.py \
              src/repro/experiment/streaming/engine.py; do
    marker="$(grep -o 'Exact-path equivalence: [^ ]*' "$module" || true)"
    if [ -z "$marker" ]; then
        echo "$module: missing 'Exact-path equivalence: <test file>' marker"
        status=1
        continue
    fi
    test_file="${marker#Exact-path equivalence: }"
    if [ ! -f "$test_file" ]; then
        echo "$module: equivalence test '$test_file' does not exist"
        status=1
    fi
done

echo "== run-journal smoke (campaign --journal -> repro report) =="
journal_out="$(mktemp /tmp/journal_smoke.XXXXXX.jsonl)"
ckpt_out="$(mktemp /tmp/journal_smoke_ckpt.XXXXXX.json)"
rm -f "$ckpt_out"   # campaign run wants to create it
python -m repro campaign run --rows 8 --columns 2 --bits 4 --sites 60 \
    --checkpoint "$ckpt_out" --journal "$journal_out" >/dev/null \
    || status=$?
# The text report must always render the failure-forensics sections
# (with "(none)" when clean), and the JSON report must validate.
report_txt="$(python -m repro report "$journal_out")" || status=$?
for section in "Quarantines:" "Frontier demotions:" "Batch demotions:"; do
    if ! grep -qF "$section" <<<"$report_txt"; then
        echo "journal report: missing '$section' section"
        status=1
    fi
done
python -m repro report "$journal_out" --format json \
    | python -c '
import json, sys
rep = json.loads(sys.stdin.read())
assert rep["schema"] == "repro.run-report", rep["schema"]
assert rep["totals"]["plan_units"] > 0
assert rep["totals"]["executed_units"] + rep["totals"]["cached_units"] \
    + rep["totals"]["resumed_units"] == rep["totals"]["plan_units"]
print("journal report: schema ok,", rep["totals"]["events"], "events")
' || status=$?
rm -f "$journal_out" "$ckpt_out"

echo "== chaos-pool smoke (injected worker death heals byte-identically) =="
pool_db="$(mktemp /tmp/pool_smoke.XXXXXX.json)"
serial_db="$(mktemp /tmp/pool_smoke_serial.XXXXXX.json)"
pool_journal="$(mktemp /tmp/pool_smoke.XXXXXX.jsonl)"
python -m repro campaign run --rows 8 --columns 2 --bits 4 --sites 24 \
    --seed 5 --save-db "$serial_db" >/dev/null || status=$?
python -m repro campaign run --rows 8 --columns 2 --bits 4 --sites 24 \
    --seed 5 --workers 2 --chaos-seed 5 --chaos-worker-exit 1 \
    --journal "$pool_journal" --save-db "$pool_db" >/dev/null || status=$?
if ! cmp -s "$serial_db" "$pool_db"; then
    echo "chaos-pool smoke: healed pool database differs from serial"
    status=1
fi
for event in pool.worker_lost pool.rebuild pool.redispatch; do
    if ! grep -qF "\"$event\"" "$pool_journal"; then
        echo "chaos-pool smoke: journal missing $event event"
        status=1
    fi
done
rm -f "$pool_db" "$serial_db" "$pool_journal"

echo "== pytest (chaos / robustness suite) =="
python -m pytest -q tests/runner || status=$?

echo "== pytest (tier 1) =="
python -m pytest -x -q || status=$?

exit "$status"
