#!/usr/bin/env bash
# CI / pre-commit gate: style lint, type check, domain lint, tier-1 tests.
#
#   scripts/check.sh            # full sequence
#   STRICT_LINT=1 scripts/check.sh   # repro lint treats warnings as errors
#
# ruff and mypy are skipped with a notice when not installed (offline
# images bake only the runtime toolchain); the pytest tier-1 suite and
# the repro-lint smoke always run.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

status=0

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests || status=$?
else
    echo "== ruff == (not installed; skipped)"
fi

if command -v mypy >/dev/null 2>&1; then
    echo "== mypy =="
    mypy || status=$?
else
    echo "== mypy == (not installed; skipped)"
fi

echo "== repro lint =="
lint_flags=()
if [ "${STRICT_LINT:-0}" = "1" ]; then
    lint_flags+=(--strict)
fi
python -m repro lint "${lint_flags[@]}" || status=$?

echo "== pytest (chaos / robustness suite) =="
python -m pytest -q tests/runner || status=$?

echo "== pytest (tier 1) =="
python -m pytest -x -q || status=$?

exit "$status"
