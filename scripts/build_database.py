"""Rebuild the shipped pre-calculated coverage database.

Usage:  python scripts/build_database.py [output_path]

Runs the full IFA campaign (6000 sites, seed 2005) over the Veqtor4
geometry for both defect kinds across the production stress suite, and
writes the JSON the package ships as ``repro/data/cmos018_coverage.json``.
"""

import sys

import numpy as np

from repro.circuit import CMOS018
from repro.core.database import CoverageDatabase
from repro.defects.models import DefectKind
from repro.ifa.flow import IfaCampaign
from repro.memory.geometry import VEQTOR4_INSTANCE
from repro.stress import production_conditions


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else \
        "src/repro/data/cmos018_coverage.json"
    campaign = IfaCampaign(VEQTOR4_INSTANCE, CMOS018, n_sites=6000,
                           seed=2005)
    conditions = list(production_conditions(CMOS018).values())
    database = CoverageDatabase()
    bridge_rs = np.unique(np.concatenate(
        [np.logspace(1, 6, 21), [20.0, 1e3, 10e3, 90e3]]))
    database.add_records(
        campaign.run(sorted(bridge_rs), conditions, DefectKind.BRIDGE))
    database.add_records(
        campaign.run(np.logspace(3.5, 7.5, 17), conditions,
                     DefectKind.OPEN))
    database.save(out)
    print(f"{len(database)} records -> {out}")


if __name__ == "__main__":
    main()
