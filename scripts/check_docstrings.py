#!/usr/bin/env python3
"""Docstring gate for the execution layer and the code-lint pack.

A dependency-free fallback for ruff's pydocstyle ``D`` rules (which are
configured in ``pyproject.toml`` but only run where ruff is installed):
walks the listed packages' ASTs and fails when a module, public class or
public function/method lacks a docstring.  ``__init__``/dunders are
exempt, matching the ruff configuration (D105/D107 ignored; class
docstrings carry the Args sections in Google style).

Usage::

    python scripts/check_docstrings.py

Run by ``scripts/check.sh`` as part of the docs gate.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Packages whose public API must be documented.
PACKAGES = ("src/repro/runner", "src/repro/perf", "src/repro/obs",
            "src/repro/lint/code", "src/repro/service")


def _missing_in(path: Path, root: Path) -> list[str]:
    """Missing-docstring problems for one source file."""
    tree = ast.parse(path.read_text())
    rel = path.relative_to(root)
    problems = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{rel}:1: module docstring missing")

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            name = child.name
            public = not name.startswith("_")
            qualified = f"{prefix}{name}"
            if public and ast.get_docstring(child) is None:
                kind = ("class" if isinstance(child, ast.ClassDef)
                        else "function")
                problems.append(f"{rel}:{child.lineno}: {kind} "
                                f"{qualified!r} docstring missing")
            if isinstance(child, ast.ClassDef):
                walk(child, qualified + ".")

    walk(tree, "")
    return problems


def main() -> int:
    """Entry point; returns a process exit code."""
    root = Path(__file__).resolve().parents[1]
    problems: list[str] = []
    checked = 0
    for package in PACKAGES:
        for path in sorted((root / package).rglob("*.py")):
            checked += 1
            problems.extend(_missing_in(path, root))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"check_docstrings: {checked} file(s) checked, "
          f"{len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
