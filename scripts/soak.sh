#!/usr/bin/env bash
# Soak gate: loop a short checkpointed campaign under injected faults.
#
#   scripts/soak.sh             # pytest -m slow, then 5 chaos CLI rounds
#   scripts/soak.sh 20          # more rounds
#
# Each round runs a small campaign with transient chaos in the
# behaviour model (rate 0.01, per-round seed), checks its status, then
# resumes the finished checkpoint and exports the database -- the full
# run/status/resume/save cycle under fault injection.  Any crash,
# corrupt checkpoint or inconsistent resume fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

rounds="${1:-5}"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "== soak: pytest -m slow =="
python -m pytest -q -m slow tests/runner

echo "== soak: ${rounds} chaos campaign rounds =="
for i in $(seq 1 "$rounds"); do
    ck="$workdir/soak-$i.json"
    echo "-- round $i (chaos seed $i) --"
    python -m repro campaign run \
        --rows 16 --columns 2 --bits 4 --sites 40 \
        --checkpoint "$ck" \
        --chaos-rate 0.01 --chaos-seed "$i" --max-attempts 4
    python -m repro campaign status "$ck"
    python -m repro campaign resume "$ck" --save-db "$workdir/db-$i.json"
done

echo "soak complete: ${rounds} rounds survived"
