#!/usr/bin/env bash
# Soak gate: loop a short checkpointed campaign under injected faults.
#
#   scripts/soak.sh             # pytest -m slow, then 5 chaos CLI rounds
#   scripts/soak.sh 20          # more rounds
#
# Each round runs a small campaign with transient chaos in the
# behaviour model (rate 0.01, per-round seed), checks its status, then
# resumes the finished checkpoint and exports the database -- the full
# run/status/resume/save cycle under fault injection.  Any crash,
# corrupt checkpoint or inconsistent resume fails the script.
#
# A final round SIGKILLs random pool workers out from under a live
# 2-worker campaign: the supervised executor must rebuild the pool,
# finish the run, and produce a database byte-identical to serial.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

rounds="${1:-5}"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "== soak: pytest -m slow =="
python -m pytest -q -m slow tests/runner

echo "== soak: ${rounds} chaos campaign rounds =="
for i in $(seq 1 "$rounds"); do
    ck="$workdir/soak-$i.json"
    echo "-- round $i (chaos seed $i) --"
    python -m repro campaign run \
        --rows 16 --columns 2 --bits 4 --sites 40 \
        --checkpoint "$ck" \
        --chaos-rate 0.01 --chaos-seed "$i" --max-attempts 4
    python -m repro campaign status "$ck"
    python -m repro campaign resume "$ck" --save-db "$workdir/db-$i.json"
done

echo "== soak: SIGKILL random pool workers mid-campaign =="
serial_db="$workdir/sigkill-serial.json"
pool_db="$workdir/sigkill-pool.json"
pool_ck="$workdir/sigkill-pool-ck.json"
python -m repro campaign run \
    --rows 16 --columns 2 --bits 4 --sites 40 --seed 7 \
    --save-db "$serial_db" >/dev/null
python -m repro campaign run \
    --rows 16 --columns 2 --bits 4 --sites 40 --seed 7 \
    --workers 2 --checkpoint "$pool_ck" --save-db "$pool_db" &
run_pid=$!
kills=0
while kill -0 "$run_pid" 2>/dev/null && [ "$kills" -lt 3 ]; do
    sleep 0.4
    victim="$(pgrep -P "$run_pid" | shuf -n 1 || true)"
    if [ -n "$victim" ] && kill -9 "$victim" 2>/dev/null; then
        kills=$((kills + 1))
        echo "-- SIGKILLed worker pid $victim ($kills/3)"
    fi
done
wait "$run_pid"
python -m repro campaign status "$pool_ck"
if ! cmp -s "$serial_db" "$pool_db"; then
    echo "soak: post-SIGKILL database differs from serial run"
    exit 1
fi
echo "-- survived $kills worker SIGKILL(s); database matches serial"

echo "soak complete: ${rounds} rounds survived"
