"""Fail-bitmap analysis and defect-class diagnosis.

The paper reads its failing devices through *bitmapping*: which physical
cells failed, in which clock cycles, belonging to which march elements.
From that it reasons to the defect class -- e.g. Chip-1 fails in three
clock cycles of elements {R0W1}, {R1W0R0} and {R0W1R1}, always the same
cell, always reading '0': a resistive bridge acting as a stuck-at-1 at
low supply only (Section 4.1).

:class:`BitmapAnalyzer` reproduces that reasoning chain over
:class:`~repro.tester.ate.AteFailRecord` logs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum

from repro.march.test import MarchTest
from repro.memory.geometry import MemoryGeometry
from repro.tester.ate import AteFailRecord


class DefectClassHint(Enum):
    """Diagnosis outcome: the defect family the bitmap points to."""

    SINGLE_CELL_STUCK = "single_cell_stuck"
    SINGLE_CELL_DISTURB = "single_cell_disturb"
    ROW_FAILURE = "row_failure"
    COLUMN_FAILURE = "column_failure"
    ADDRESS_PAIR = "address_pair"
    SCATTERED = "scattered"
    CLEAN = "clean"


@dataclass(frozen=True)
class ElementSignature:
    """One failing march element with the failing read highlighted.

    Rendered like the paper: ``{R0W1}`` with the failing op index noted.
    """

    element_index: int
    notation: str
    failing_op_index: int
    fail_count: int


@dataclass
class Diagnosis:
    """Bitmap diagnosis of one failing test run.

    Attributes:
        hint: Structural classification.
        failing_cells: Set of (word address, bit) pairs.
        failing_rows / failing_bitlines: Physical coordinates touched.
        element_signatures: Per-march-element fail signatures.
        read_value_bias: The expected value of failing reads when they
            all agree (0 -> behaves stuck-at-1, 1 -> stuck-at-0);
            ``None`` when mixed.
        summary: One-paragraph human-readable analysis.
    """

    hint: DefectClassHint
    failing_cells: set[tuple[int, int]] = field(default_factory=set)
    failing_rows: set[int] = field(default_factory=set)
    failing_bitlines: set[int] = field(default_factory=set)
    element_signatures: list[ElementSignature] = field(default_factory=list)
    read_value_bias: int | None = None
    summary: str = ""


class BitmapAnalyzer:
    """Diagnose fail logs against the memory's physical organisation."""

    def __init__(self, geometry: MemoryGeometry, test: MarchTest) -> None:
        self.geometry = geometry
        self.test = test

    def diagnose(self, fails: list[AteFailRecord]) -> Diagnosis:
        """Classify a fail log into a defect-class hint."""
        if not fails:
            return Diagnosis(DefectClassHint.CLEAN,
                             summary="no failing reads: device passes")

        cells = {(f.address, f.bit) for f in fails}
        rows: set[int] = set()
        bitlines: set[int] = set()
        for address, bit in cells:
            _, row, bitline = self.geometry.bit_position(address, bit)
            rows.add(row)
            bitlines.add(bitline)

        signatures = self._element_signatures(fails)
        expected_values = {f.expected for f in fails}
        bias = expected_values.pop() if len(expected_values) == 1 else None

        hint = self._classify(cells, rows, bitlines)
        summary = self._summarise(hint, cells, signatures, bias)
        return Diagnosis(
            hint=hint,
            failing_cells=cells,
            failing_rows=rows,
            failing_bitlines=bitlines,
            element_signatures=signatures,
            read_value_bias=bias,
            summary=summary,
        )

    # ------------------------------------------------------------------
    def _element_signatures(self, fails: list[AteFailRecord],
                            ) -> list[ElementSignature]:
        counts: Counter[tuple[int, int]] = Counter(
            (f.element_index, f.op_index) for f in fails
        )
        out = []
        for (ei, oi), n in sorted(counts.items()):
            element = self.test.elements[ei]
            body = "".join(
                op.notation.upper() for op in element.ops
            )
            out.append(ElementSignature(
                element_index=ei,
                notation="{" + body + "}",
                failing_op_index=oi,
                fail_count=n,
            ))
        return out

    def _classify(self, cells: set[tuple[int, int]], rows: set[int],
                  bitlines: set[int]) -> DefectClassHint:
        if len(cells) == 1:
            return DefectClassHint.SINGLE_CELL_STUCK
        if len(cells) == 2:
            return DefectClassHint.ADDRESS_PAIR
        if len(rows) == 1 and len(bitlines) > 2:
            return DefectClassHint.ROW_FAILURE
        if len(bitlines) == 1 and len(rows) > 2:
            return DefectClassHint.COLUMN_FAILURE
        return DefectClassHint.SCATTERED

    def _summarise(self, hint: DefectClassHint,
                   cells: set[tuple[int, int]],
                   signatures: list[ElementSignature],
                   bias: int | None) -> str:
        parts = [
            f"{len(cells)} failing cell(s); "
            f"march elements {', '.join(s.notation for s in signatures)}"
        ]
        if bias is not None:
            behaves = "stuck-at-1" if bias == 0 else "stuck-at-0"
            parts.append(
                f"all fails while reading '{bias}' -> behaves like {behaves}"
            )
        if hint is DefectClassHint.SINGLE_CELL_STUCK:
            parts.append(
                "single-bit failure in the matrix (cell-level resistive "
                "defect candidate)"
            )
        elif hint is DefectClassHint.ADDRESS_PAIR:
            parts.append(
                "two coupled addresses (address-decoder hazard or "
                "inter-cell defect candidate)"
            )
        elif hint in (DefectClassHint.ROW_FAILURE,
                      DefectClassHint.COLUMN_FAILURE):
            parts.append("line-oriented failure (decoder/bitline defect)")
        return "; ".join(parts)
