"""The virtual ATE: apply march tests to devices at stress conditions.

:class:`VirtualTester` is the library's automatic test equipment.  Given
a device (an :class:`~repro.memory.sram.Sram` plus its resistive
defects), a march test and a :class:`~repro.stress.StressCondition`, it
produces a pass/fail verdict and -- in full mode -- a cycle-accurate fail
log suitable for bitmap diagnosis, exactly the data the paper reads off
its tester ("the bitmapping result shows the failure in three clock
cycles that belong to three march elements...").

Two execution modes:

* ``quick=True`` (default): the pre-calculated behavioural path --
  fault-free timing check plus per-defect manifestation queries.  O(#
  defects); used for shmoo plots and the 11k-device population.
* ``quick=False``: the manifested defects are rendered into functional
  faults and the march test is run word-by-word through the SRAM model;
  returns every failing read with march-element attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.defects.behavior import DefectBehaviorModel, Manifestation
from repro.defects.injection import to_functional_fault
from repro.defects.models import Defect
from repro.march.sequencer import DataBackground, MarchSequencer
from repro.march.test import MarchTest
from repro.memory.sram import Sram
from repro.stress import StressCondition


@dataclass(frozen=True)
class AteFailRecord:
    """One failing bit observed by the tester comparator.

    Attributes:
        cycle: Clock cycle of the failing read.
        element_index: March element the read belongs to.
        op_index: Op position within the element.
        address: Word address.
        bit: Failing bit within the word.
        expected: Expected bit value.
        actual: Observed bit value.
    """

    cycle: int
    element_index: int
    op_index: int
    address: int
    bit: int
    expected: int
    actual: int


@dataclass
class TestResult:
    """Outcome of one test application.

    Attributes:
        passed: Verdict.
        condition: The stress condition applied.
        test_name: March test name.
        gross_timing_fail: True when the fault-free access time already
            exceeds the period (the whole shmoo region below the
            fault-free boundary).
        fails: Failing bits (full mode only; empty in quick mode).
        manifestations: The defect manifestations active at this
            condition (for diagnosis cross-checks).
    """

    passed: bool
    condition: StressCondition
    test_name: str
    gross_timing_fail: bool = False
    fails: list[AteFailRecord] = field(default_factory=list)
    manifestations: list[Manifestation] = field(default_factory=list)


class VirtualTester:
    """Applies march tests under stress conditions.

    Args:
        behavior: The defect behaviour model (shared with the estimator
            so simulation and "silicon" agree by construction, as the
            paper observes about its own flow).
    """

    def __init__(self, behavior: DefectBehaviorModel) -> None:
        self.behavior = behavior

    # ------------------------------------------------------------------
    def test_device(self, sram: Sram, defects: list[Defect],
                    test: MarchTest, condition: StressCondition,
                    quick: bool = True,
                    background: DataBackground = DataBackground.SOLID,
                    ) -> TestResult:
        """Apply ``test`` to the device at ``condition``.

        Quick mode answers pass/fail from the behavioural model; full
        mode also simulates the march cycle stream (under the chosen
        data background) and logs failing bits.
        """
        if not sram.meets_timing(condition.vdd, condition.period):
            return TestResult(False, condition, test.name,
                              gross_timing_fail=True)
        manifested = [
            m for m in (self.behavior.manifestation(d, condition)
                        for d in defects)
            if m is not None
        ]
        if quick:
            return TestResult(not manifested, condition, test.name,
                              manifestations=manifested)
        return self._full_run(sram, manifested, test, condition, background)

    def _full_run(self, sram: Sram, manifested: list[Manifestation],
                  test: MarchTest, condition: StressCondition,
                  background: DataBackground = DataBackground.SOLID,
                  ) -> TestResult:
        sram.clear_faults()
        for m in manifested:
            sram.attach_fault(to_functional_fault(m, geometry=sram.geometry))
        sram.power_cycle()

        width = sram.geometry.bits_per_word
        all_ones = (1 << width) - 1
        sequencer = MarchSequencer(sram.geometry.words,
                                   columns=sram.geometry.columns)
        result = TestResult(True, condition, test.name,
                            manifestations=manifested)
        for cop in sequencer.run(test, background):
            word_value = all_ones if cop.value else 0
            if cop.op.is_write:
                sram.write_word(cop.address, word_value)
                continue
            actual = sram.read_word(cop.address)
            if actual == word_value:
                continue
            result.passed = False
            diff = actual ^ word_value
            for bit in range(width):
                if (diff >> bit) & 1:
                    result.fails.append(AteFailRecord(
                        cycle=cop.cycle,
                        element_index=cop.element_index,
                        op_index=cop.op_index,
                        address=cop.address,
                        bit=bit,
                        expected=cop.value,
                        actual=1 - cop.value,
                    ))
        sram.clear_faults()
        return result

    # ------------------------------------------------------------------
    def condition_signature(self, sram: Sram, defects: list[Defect],
                            test: MarchTest,
                            conditions: dict[str, StressCondition],
                            ) -> dict[str, bool]:
        """Pass/fail across a condition suite: name -> failed?"""
        return {
            name: not self.test_device(sram, defects, test, cond).passed
            for name, cond in conditions.items()
        }
