"""Weak-write test mode (WWTM): the DFT alternative to stress corners.

An industrially common screen for *stability* defects (weakened
pull-ups, degraded SNM) without moving the supply: a dedicated test mode
writes each cell with deliberately weakened drivers.  A healthy cell
resists the weak write (its state survives); a weakened cell flips.  The
read-back then separates the two.  See e.g. Meixner & Banik, "Weak Write
Test Mode: An SRAM Cell Stability Design for Test Technique" (ITC 1996)
-- contemporary with the paper's VLV references.

The model: the weak write overpowers the cell iff the cell's restoring
strength has degraded below a margin factor.  For this library's defect
classes that means

* pull-up opens above a threshold resistance (weakened restore),
* node-to-node bridges above a threshold (degraded SNM),
* rail bridges low enough to pre-bias the cell.

WWTM is attractive because it runs at nominal conditions (no slow VLV
pass); the benchmark compares its reach against the VLV corner -- it
catches the *cell-stability* subset but is blind to the decoder/timing
classes that need Vmax/at-speed, so it complements rather than replaces
stress testing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.technology import Technology
from repro.defects.models import BridgeSite, Defect, DefectKind, OpenSite


@dataclass(frozen=True)
class WeakWriteSettings:
    """Tuning of the weak-write driver.

    Attributes:
        drive_margin: Fraction of the nominal cell restoring strength
            the weak driver is trimmed to (0.5 = half-strength).  Lower
            margins flag weaker cells but risk flipping healthy ones.
        pullup_r_threshold: Pull-up open resistance above which the cell
            loses to the weak write.
        snm_bridge_r_threshold: Node-to-node bridge resistance above
            which the cell's SNM no longer resists the weak write
            (bridges *below* it destroy the cell outright and are caught
            by the standard test).
        rail_bridge_r_threshold: Rail-bridge resistance below which the
            pre-biased cell flips under the weak write.
    """

    drive_margin: float = 0.5
    pullup_r_threshold: float = 2.0e6
    snm_bridge_r_threshold: float = 40e3
    rail_bridge_r_threshold: float = 200e3

    def __post_init__(self) -> None:
        if not 0.0 < self.drive_margin < 1.0:
            raise ValueError("drive_margin must be in (0, 1)")
        for name in ("pullup_r_threshold", "snm_bridge_r_threshold",
                     "rail_bridge_r_threshold"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


class WeakWriteTester:
    """Cell-stability screen at nominal conditions.

    Args:
        tech: Technology corner.
        settings: Weak-driver trim.
    """

    def __init__(self, tech: Technology,
                 settings: WeakWriteSettings | None = None) -> None:
        self.tech = tech
        self.settings = settings if settings is not None else WeakWriteSettings()

    def detects(self, defect: Defect) -> bool:
        """Does the weak-write screen flag this defect?

        Only cell-stability mechanisms respond; decoder hazards and pure
        timing defects are untouched by definition (the mode exercises
        the cell, not the periphery).
        """
        s = self.settings
        if defect.kind is DefectKind.OPEN:
            if defect.site is OpenSite.CELL_PULLUP:
                return (defect.resistance
                        >= s.pullup_r_threshold * defect.strength)
            return False
        if defect.site is BridgeSite.CELL_NODE_NODE:
            return (defect.resistance
                    >= s.snm_bridge_r_threshold * defect.strength)
        if defect.site is BridgeSite.CELL_NODE_RAIL:
            return (defect.resistance
                    <= s.rail_bridge_r_threshold * defect.strength)
        return False

    def coverage(self, defects: list[Defect]) -> float:
        """Detected fraction of a defect population."""
        if not defects:
            return 1.0
        return sum(1 for d in defects if self.detects(d)) / len(defects)

    def stability_subset(self, defects: list[Defect]) -> list[Defect]:
        """The cell-stability defects WWTM is *designed* for."""
        wanted_sites = {OpenSite.CELL_PULLUP, BridgeSite.CELL_NODE_NODE,
                        BridgeSite.CELL_NODE_RAIL}
        return [d for d in defects if d.site in wanted_sites]
