"""Iddq testing: the stress-condition alternative the paper weighs.

The paper's VLV discussion builds on [Kruseman 02], "Comparison of Iddq
Testing and Very-Low Voltage Testing": a bridge that escapes functional
testing still draws quiescent supply current, so measuring Iddq after
each pattern catches it -- *if* the defect current stands out above the
chip's background leakage.  The comparison matters because Iddq is
cheap (no extra voltage corner) but dies with technology scaling: the
background leakage of millions of off transistors swamps the defect
current in deep sub-micron processes, which is precisely why the paper's
generation moved to VLV instead.

:class:`IddqTester` models both sides:

* defect current: a bridge of resistance R across an (on average)
  half-supply potential difference draws ``~ Vdd / (2 R)``, weighted by
  the fraction of march states that bias the bridge (opens draw nothing
  -- the classic Iddq blind spot);
* background: per-cell subthreshold leakage scaling exponentially with
  temperature and with the technology's threshold voltage.

The decision rule is the industry-standard threshold test with a
current-resolution floor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuit.technology import Technology
from repro.defects.models import Defect, DefectKind, BridgeSite
from repro.memory.geometry import MemoryGeometry


@dataclass(frozen=True)
class IddqSettings:
    """Measurement parameters of the Iddq screen.

    Attributes:
        threshold_factor: Fail when measured current exceeds
            ``threshold_factor x`` the expected background (3x is a
            common production choice).
        resolution: Smallest defect current the PMU resolves (A).
        leakage_per_cell_25c: Background leakage per cell at 25 C and
            nominal supply (A).  ~5 pA/cell is representative of a
            0.18 um SRAM (a 256 Kbit instance leaks ~1 uA); leakier
            scaled corners override it.
        leakage_doubling_temp: Temperature increase that doubles the
            leakage (C); ~10 C for subthreshold conduction.
        bias_fraction: Fraction of Iddq strobe states in which a given
            bridge is biased (both ends at different potentials);
            0.5 reflects the alternating march backgrounds.
    """

    threshold_factor: float = 3.0
    resolution: float = 1e-6
    leakage_per_cell_25c: float = 5e-12
    leakage_doubling_temp: float = 10.0
    bias_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.threshold_factor <= 1.0:
            raise ValueError("threshold_factor must exceed 1.0")
        if self.resolution <= 0 or self.leakage_per_cell_25c <= 0:
            raise ValueError("currents must be positive")
        if not 0.0 < self.bias_fraction <= 1.0:
            raise ValueError("bias_fraction must be in (0, 1]")


class IddqTester:
    """Quiescent-current screen over a memory.

    Args:
        tech: Technology corner.
        geometry: Memory organisation (sets the background leakage).
        settings: Measurement parameters.
    """

    def __init__(self, tech: Technology, geometry: MemoryGeometry,
                 settings: IddqSettings | None = None) -> None:
        self.tech = tech
        self.geometry = geometry
        self.settings = settings if settings is not None else IddqSettings()

    # ------------------------------------------------------------------
    def background_current(self, temperature: float = 25.0) -> float:
        """Chip background leakage (A) at a junction temperature."""
        s = self.settings
        scale = 2.0 ** ((temperature - 25.0) / s.leakage_doubling_temp)
        return self.geometry.bits * s.leakage_per_cell_25c * scale

    def defect_current(self, defect: Defect, vdd: float | None = None) -> float:
        """Quiescent current added by a defect (A).

        Bridges conduct; opens do not (the Iddq blind spot).  Bridges
        between electrically equivalent nodes see no potential
        difference and are equally invisible.
        """
        if defect.kind is DefectKind.OPEN:
            return 0.0
        if defect.site is BridgeSite.EQUIVALENT_NODE:
            return 0.0
        vdd = self.tech.vdd_nominal if vdd is None else vdd
        return self.settings.bias_fraction * vdd / (2.0 * defect.resistance)

    def detects(self, defect: Defect, temperature: float = 25.0,
                vdd: float | None = None) -> bool:
        """Does the Iddq screen flag the defect?

        Requires the defect current to (a) clear the PMU resolution and
        (b) push the total past ``threshold_factor x`` background.
        """
        i_defect = self.defect_current(defect, vdd)
        if i_defect < self.settings.resolution:
            return False
        background = self.background_current(temperature)
        total = background + i_defect
        return total > self.settings.threshold_factor * background

    def detection_threshold(self, temperature: float = 25.0,
                            vdd: float | None = None) -> float:
        """Largest detectable bridge resistance (ohms).

        Shrinks as background leakage grows -- the scaling argument for
        why Iddq loses to VLV in deep sub-micron (the defect current
        needed to stand out grows with the chip's own leakage).
        """
        vdd = self.tech.vdd_nominal if vdd is None else vdd
        background = self.background_current(temperature)
        i_needed = max(
            self.settings.resolution,
            (self.settings.threshold_factor - 1.0) * background,
        )
        return self.settings.bias_fraction * vdd / (2.0 * i_needed)

    # ------------------------------------------------------------------
    def coverage(self, defects: list[Defect],
                 temperature: float = 25.0) -> float:
        """Detected fraction of a defect population."""
        if not defects:
            return 1.0
        hits = sum(1 for d in defects if self.detects(d, temperature))
        return hits / len(defects)
