"""Virtual tester: ATE, shmoo plots and fail-bitmap diagnosis.

The experimental half of the paper: apply march tests at stress
conditions, sweep the (Vdd, period) plane into shmoo plots, and reason
from fail bitmaps back to defect classes.
"""

from repro.tester.ate import AteFailRecord, TestResult, VirtualTester
from repro.tester.iddq import IddqSettings, IddqTester
from repro.tester.movi import MoviExecutor, MoviResult, MoviRunResult
from repro.tester.weakwrite import WeakWriteSettings, WeakWriteTester
from repro.tester.bitmap import (
    BitmapAnalyzer,
    DefectClassHint,
    Diagnosis,
    ElementSignature,
)
from repro.tester.shmoo import (
    FAIL_MARK,
    PASS_MARK,
    ShmooPlot,
    ShmooRunner,
    default_period_axis,
    default_voltage_axis,
)

__all__ = [
    "BitmapAnalyzer",
    "DefectClassHint",
    "Diagnosis",
    "ElementSignature",
    "FAIL_MARK",
    "IddqSettings",
    "IddqTester",
    "MoviExecutor",
    "MoviResult",
    "MoviRunResult",
    "PASS_MARK",
    "ShmooPlot",
    "ShmooRunner",
    "TestResult",
    "AteFailRecord",
    "WeakWriteSettings",
    "WeakWriteTester",
    "VirtualTester",
    "default_period_axis",
    "default_voltage_axis",
]
