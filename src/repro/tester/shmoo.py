"""Shmoo plots: pass/fail over the (Vdd, clock period) plane.

The paper's experimental evidence is presented as tester-generated shmoo
plots (Figures 3, 4, 7, 9, 10): supply voltage on the Y axis, clock
period on the X axis, one pass/fail mark per grid point.
:class:`ShmooRunner` sweeps the virtual tester over the grid;
:class:`ShmooPlot` holds the result, extracts boundaries and renders the
classic ASCII shmoo.

Axis conventions follow the paper: X = period ascending left-to-right
(so "at-speed" is on the left), Y = voltage ascending bottom-to-top.

Two fill strategies are available.  ``"exact"`` tests every grid point
(O(V x P) tester invocations).  ``"boundary"`` exploits the structure
every paper shmoo exhibits -- within one voltage row, failing a longer
period implies failing every shorter one, so each row's pass region is
a suffix of the ascending period axis -- and locates each row's
boundary by bisection (seeded with the previous row's boundary),
flooding the rest of the row: O(V log P) invocations, typically ~2-3
per row.  A seeded sample of grid cells is then re-tested exactly; any
disagreement discards the traced grid and refills it exactly, so the
returned plot is byte-identical to the exact strategy for every
monotone-per-row device and still correct for adversarial ones.

Exact-path equivalence: tests/tester/test_shmoo.py
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

import numpy as np

from repro.defects.models import Defect
from repro.march.test import MarchTest
from repro.memory.sram import Sram
from repro.stress import StressCondition
from repro.tester.ate import VirtualTester

PASS_MARK = "+"
FAIL_MARK = "."


@dataclass
class ShmooPlot:
    """A filled shmoo grid.

    Attributes:
        voltages: Y-axis values (V), ascending.
        periods: X-axis values (s), ascending.
        passed: Boolean matrix ``[i_voltage, j_period]``.
        title: Plot label.
    """

    voltages: np.ndarray
    periods: np.ndarray
    passed: np.ndarray
    title: str = ""

    def __post_init__(self) -> None:
        self.voltages = np.asarray(self.voltages, dtype=float)
        self.periods = np.asarray(self.periods, dtype=float)
        self.passed = np.asarray(self.passed, dtype=bool)
        if self.passed.shape != (self.voltages.size, self.periods.size):
            raise ValueError("passed matrix shape mismatch")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def passes_at(self, vdd: float, period: float) -> bool:
        """Pass/fail at the grid point nearest to (vdd, period)."""
        i = int(np.abs(self.voltages - vdd).argmin())
        j = int(np.abs(self.periods - period).argmin())
        return bool(self.passed[i, j])

    def min_passing_voltage(self, period: float) -> float | None:
        """Lowest passing Vdd at a period (None if the column all fails)."""
        j = int(np.abs(self.periods - period).argmin())
        col = self.passed[:, j]
        idx = np.flatnonzero(col)
        return float(self.voltages[idx[0]]) if idx.size else None

    def min_passing_period(self, vdd: float) -> float | None:
        """Shortest passing period at a voltage (None if the row fails)."""
        i = int(np.abs(self.voltages - vdd).argmin())
        row = self.passed[i, :]
        idx = np.flatnonzero(row)
        return float(self.periods[idx[0]]) if idx.size else None

    def fail_region_fraction(self) -> float:
        return 1.0 - float(self.passed.mean())

    def boundary_is_vertical(self, tolerance_steps: int = 1) -> bool:
        """True when the pass/fail boundary is (nearly) voltage
        independent -- the signature of a pure-RC delay defect, the
        paper's Chip-3."""
        cols = []
        for i in range(self.voltages.size):
            idx = np.flatnonzero(self.passed[i, :])
            if idx.size == 0:
                return False
            cols.append(int(idx[0]))
        return max(cols) - min(cols) <= tolerance_steps

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, markers: dict[tuple[float, float], str] | None = None,
               ) -> str:
        """ASCII shmoo, voltage descending top-to-bottom.

        Args:
            markers: Optional ``(vdd, period) -> char`` overlays (e.g.
                the paper's dashed reference lines).  Each marker is
                *snapped to the nearest grid point* on both axes --
                exactly like :meth:`passes_at` -- so a reference value
                between grid lines lands on its closest cell instead of
                silently vanishing; markers snapping to the same cell
                overwrite in iteration order.
        """
        # Precompute each marker's grid cell once (nearest-index
        # lookup), instead of scanning every marker at every cell with
        # brittle float equality.
        cell_marks: dict[tuple[int, int], str] = {}
        if markers:
            for (mv, mp), mch in markers.items():
                i = int(np.abs(self.voltages - mv).argmin())
                j = int(np.abs(self.periods - mp).argmin())
                cell_marks[(i, j)] = mch
        lines = []
        if self.title:
            lines.append(self.title)
        for i in range(self.voltages.size - 1, -1, -1):
            row_chars = []
            for j in range(self.periods.size):
                ch = cell_marks.get(
                    (i, j), PASS_MARK if self.passed[i, j] else FAIL_MARK)
                row_chars.append(ch)
            lines.append(f"{self.voltages[i]:5.2f}V |" + "".join(row_chars))
        axis = "       +" + "-" * self.periods.size
        lines.append(axis)
        lo = self.periods[0] * 1e9
        hi = self.periods[-1] * 1e9
        lines.append(f"        {lo:.0f}ns .. {hi:.0f}ns (period)")
        return "\n".join(lines)


@dataclass
class ShmooRunStats:
    """Instrumentation of one :meth:`ShmooRunner.run` call.

    Attributes:
        strategy: Fill strategy actually requested (``"exact"`` or
            ``"boundary"``).
        grid_cells: Grid size (V x P) -- the exact strategy's tester
            invocation count.
        tester_invocations: Tester invocations actually issued,
            including boundary tracing, the consistency sample and any
            exact refill.
        crosscheck_invocations: Subset spent on the boundary mode's
            consistency sample.
        fallback: True when the consistency sample disagreed with the
            traced grid and the plot was refilled exactly.
    """

    strategy: str
    grid_cells: int
    tester_invocations: int = 0
    crosscheck_invocations: int = 0
    fallback: bool = False


class ShmooRunner:
    """Sweep the tester over a (Vdd, period) grid.

    Args:
        tester: The virtual ATE.
        test: March test to apply at every point.
        crosscheck_fraction: Fraction of grid cells re-tested exactly
            after a boundary trace (the guard that triggers the exact
            refill); ignored by the exact strategy.
        crosscheck_seed: Seed of the deterministic cell sample.
    """

    def __init__(self, tester: VirtualTester, test: MarchTest,
                 crosscheck_fraction: float = 0.05,
                 crosscheck_seed: int = 20050314) -> None:
        if not 0.0 <= crosscheck_fraction <= 1.0:
            raise ValueError("crosscheck_fraction must be in [0, 1]")
        self.tester = tester
        self.test = test
        self.crosscheck_fraction = crosscheck_fraction
        self.crosscheck_seed = crosscheck_seed
        #: Stats of the most recent :meth:`run` (None before any run).
        self.last_stats: ShmooRunStats | None = None

    def run(self, sram: Sram, defects: list[Defect],
            voltages: np.ndarray | list[float],
            periods: np.ndarray | list[float],
            title: str = "", strategy: str = "exact",
            bus=None) -> ShmooPlot:
        """Fill the shmoo grid (quick behavioural mode per point).

        Args:
            sram: Device under test.
            defects: Injected defects (empty for fault-free).
            voltages: Y-axis supply values (sorted ascending).
            periods: X-axis period values (sorted ascending).
            title: Plot label.
            strategy: ``"exact"`` tests every cell; ``"boundary"``
                traces each row's pass/fail boundary by bisection and
                floods the rest (see the module docstring), falling
                back to an exact refill when the sampled consistency
                check disagrees.  Both return byte-identical grids for
                row-monotone devices -- which every stock defect model
                is -- and ``last_stats`` reports the invocation counts.
            bus: Optional :class:`~repro.obs.bus.EventBus`.  Emits
                ``shmoo.start``, one ``shmoo.row`` per filled voltage
                row (its first passing period index, or ``None`` for
                an all-fail row), ``shmoo.fallback`` when the
                consistency sample triggers the exact refill (the
                refilled rows are then journalled again -- the journal
                records what actually ran) and ``shmoo.done`` with the
                tester-invocation total.  ``None`` (default) emits
                nothing.

        Returns:
            The filled :class:`ShmooPlot`.

        Raises:
            ValueError: unknown ``strategy``.
        """
        if strategy not in ("exact", "boundary"):
            raise ValueError(
                f"strategy must be 'exact' or 'boundary', got {strategy!r}")
        voltages = np.sort(np.asarray(voltages, dtype=float))
        periods = np.sort(np.asarray(periods, dtype=float))
        stats = ShmooRunStats(strategy=strategy,
                              grid_cells=voltages.size * periods.size)
        if bus is not None:
            bus.emit("shmoo.start", strategy=strategy,
                     voltages=int(voltages.size),
                     periods=int(periods.size))
        if strategy == "boundary":
            passed = self._fill_boundary(sram, defects, voltages, periods,
                                         stats, bus)
        else:
            passed = self._fill_exact(sram, defects, voltages, periods,
                                      stats, bus)
        self.last_stats = stats
        if bus is not None:
            bus.emit("shmoo.done",
                     tester_invocations=stats.tester_invocations)
            bus.flush()
        return ShmooPlot(voltages, periods, passed, title)

    # ------------------------------------------------------------------
    # Fill strategies
    # ------------------------------------------------------------------
    def _point(self, sram: Sram, defects: list[Defect], vdd: float,
               period: float, stats: ShmooRunStats) -> bool:
        """One counted tester invocation at a grid point."""
        stats.tester_invocations += 1
        condition = StressCondition("shmoo", float(vdd), float(period))
        return bool(self.tester.test_device(sram, defects, self.test,
                                            condition, quick=True).passed)

    @staticmethod
    def _emit_row(bus, i: int, vdd: float, first: int, n: int) -> None:
        """One ``shmoo.row`` event (``first_pass`` None = all-fail)."""
        if bus is not None:
            bus.emit("shmoo.row", row=i, vdd=float(vdd),
                     first_pass=int(first) if first < n else None)

    def _fill_exact(self, sram: Sram, defects: list[Defect],
                    voltages: np.ndarray, periods: np.ndarray,
                    stats: ShmooRunStats, bus=None) -> np.ndarray:
        """Test every cell of the grid."""
        passed = np.zeros((voltages.size, periods.size), dtype=bool)
        for i, vdd in enumerate(voltages):
            for j, period in enumerate(periods):
                passed[i, j] = self._point(sram, defects, vdd, period,
                                           stats)
            row = np.flatnonzero(passed[i, :])
            self._emit_row(bus, i, vdd,
                           int(row[0]) if row.size else periods.size,
                           periods.size)
        return passed

    def _fill_boundary(self, sram: Sram, defects: list[Defect],
                       voltages: np.ndarray, periods: np.ndarray,
                       stats: ShmooRunStats, bus=None) -> np.ndarray:
        """Trace each row's boundary, flood the rest, verify a sample."""
        n = periods.size
        passed = np.zeros((voltages.size, n), dtype=bool)
        hint: int | None = None
        for i, vdd in enumerate(voltages):
            first = self._first_passing(
                lambda j, v=vdd: self._point(sram, defects, v,
                                             periods[j], stats),
                n, hint)
            passed[i, first:] = True
            hint = first
            self._emit_row(bus, i, vdd, first, n)
        if not self._consistent(sram, defects, voltages, periods, passed,
                                stats):
            stats.fallback = True
            if bus is not None:
                bus.emit("shmoo.fallback")
            return self._fill_exact(sram, defects, voltages, periods,
                                    stats, bus)
        return passed

    @staticmethod
    def _first_passing(point, n: int, hint: int | None) -> int:
        """First index with ``point(j)`` True, assuming a pass suffix.

        Bisects under the row-monotonicity assumption (pass at period j
        implies pass at every j' > j), seeding from the previous row's
        boundary when given: the hint is probed first and the frontier
        galloped outward from it, so rows whose boundary moved little
        cost ~2 probes.  Results are memoised, so no grid point is
        tested twice within one row.

        Args:
            point: ``j -> bool`` pass probe for this row.
            n: Row length.
            hint: Previous row's first passing index (or None).

        Returns:
            The first passing index, or ``n`` when the row all-fails.
        """
        known: dict[int, bool] = {}

        def probe(j: int) -> bool:
            if j not in known:
                known[j] = point(j)
            return known[j]

        if n == 0:
            return 0
        lo: int | None = None  # greatest known failing index
        hi: int | None = None  # least known passing index
        if hint is not None and 0 <= hint < n:
            if probe(hint):
                if hint == 0 or not probe(hint - 1):
                    return hint
                # Boundary is strictly left of the hint: gallop left.
                hi, step = hint - 1, 1
                cursor = hi - step
                while cursor > 0 and probe(cursor):
                    hi = cursor
                    step *= 2
                    cursor = hi - step
                if cursor <= 0:
                    if probe(0):
                        return 0
                    lo = 0
                else:
                    lo = cursor
            else:
                # Boundary is strictly right of the hint: gallop right.
                lo, step = hint, 1
                cursor = lo + step
                while cursor < n - 1 and not probe(cursor):
                    lo = cursor
                    step *= 2
                    cursor = lo + step
                if cursor >= n - 1:
                    if not probe(n - 1):
                        return n
                    hi = n - 1
                else:
                    hi = cursor
        else:
            if not probe(n - 1):
                return n
            if probe(0):
                return 0
            lo, hi = 0, n - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if probe(mid):
                hi = mid
            else:
                lo = mid
        return hi

    def _consistent(self, sram: Sram, defects: list[Defect],
                    voltages: np.ndarray, periods: np.ndarray,
                    passed: np.ndarray, stats: ShmooRunStats) -> bool:
        """Re-test a seeded sample of cells against the traced grid."""
        total = voltages.size * periods.size
        if self.crosscheck_fraction <= 0.0 or total == 0:
            return True
        samples = min(total,
                      max(1, math.ceil(self.crosscheck_fraction * total)))
        rng = random.Random(f"{self.crosscheck_seed}:{total}")
        for cell in rng.sample(range(total), samples):
            i, j = divmod(cell, periods.size)
            stats.crosscheck_invocations += 1
            if self._point(sram, defects, voltages[i], periods[j],
                           stats) != passed[i, j]:
                return False
        return True


def default_voltage_axis(lo: float = 0.8, hi: float = 2.2,
                         steps: int = 15) -> np.ndarray:
    """The paper's shmoo voltage range (0.8 .. 2.2 V)."""
    return np.linspace(lo, hi, steps)


def default_period_axis(lo: float = 5e-9, hi: float = 120e-9,
                        steps: int = 24) -> np.ndarray:
    """Log-spaced period axis covering at-speed (5 ns) to slow (120 ns)."""
    return np.logspace(np.log10(lo), np.log10(hi), steps)
