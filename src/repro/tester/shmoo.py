"""Shmoo plots: pass/fail over the (Vdd, clock period) plane.

The paper's experimental evidence is presented as tester-generated shmoo
plots (Figures 3, 4, 7, 9, 10): supply voltage on the Y axis, clock
period on the X axis, one pass/fail mark per grid point.
:class:`ShmooRunner` sweeps the virtual tester over the grid;
:class:`ShmooPlot` holds the result, extracts boundaries and renders the
classic ASCII shmoo.

Axis conventions follow the paper: X = period ascending left-to-right
(so "at-speed" is on the left), Y = voltage ascending bottom-to-top.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.defects.models import Defect
from repro.march.test import MarchTest
from repro.memory.sram import Sram
from repro.stress import StressCondition
from repro.tester.ate import VirtualTester

PASS_MARK = "+"
FAIL_MARK = "."


@dataclass
class ShmooPlot:
    """A filled shmoo grid.

    Attributes:
        voltages: Y-axis values (V), ascending.
        periods: X-axis values (s), ascending.
        passed: Boolean matrix ``[i_voltage, j_period]``.
        title: Plot label.
    """

    voltages: np.ndarray
    periods: np.ndarray
    passed: np.ndarray
    title: str = ""

    def __post_init__(self) -> None:
        self.voltages = np.asarray(self.voltages, dtype=float)
        self.periods = np.asarray(self.periods, dtype=float)
        self.passed = np.asarray(self.passed, dtype=bool)
        if self.passed.shape != (self.voltages.size, self.periods.size):
            raise ValueError("passed matrix shape mismatch")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def passes_at(self, vdd: float, period: float) -> bool:
        """Pass/fail at the grid point nearest to (vdd, period)."""
        i = int(np.abs(self.voltages - vdd).argmin())
        j = int(np.abs(self.periods - period).argmin())
        return bool(self.passed[i, j])

    def min_passing_voltage(self, period: float) -> float | None:
        """Lowest passing Vdd at a period (None if the column all fails)."""
        j = int(np.abs(self.periods - period).argmin())
        col = self.passed[:, j]
        idx = np.flatnonzero(col)
        return float(self.voltages[idx[0]]) if idx.size else None

    def min_passing_period(self, vdd: float) -> float | None:
        """Shortest passing period at a voltage (None if the row fails)."""
        i = int(np.abs(self.voltages - vdd).argmin())
        row = self.passed[i, :]
        idx = np.flatnonzero(row)
        return float(self.periods[idx[0]]) if idx.size else None

    def fail_region_fraction(self) -> float:
        return 1.0 - float(self.passed.mean())

    def boundary_is_vertical(self, tolerance_steps: int = 1) -> bool:
        """True when the pass/fail boundary is (nearly) voltage
        independent -- the signature of a pure-RC delay defect, the
        paper's Chip-3."""
        cols = []
        for i in range(self.voltages.size):
            idx = np.flatnonzero(self.passed[i, :])
            if idx.size == 0:
                return False
            cols.append(int(idx[0]))
        return max(cols) - min(cols) <= tolerance_steps

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, markers: dict[tuple[float, float], str] | None = None,
               ) -> str:
        """ASCII shmoo, voltage descending top-to-bottom.

        Args:
            markers: Optional ``(vdd, period) -> char`` overlays (e.g.
                the paper's dashed reference lines).
        """
        lines = []
        if self.title:
            lines.append(self.title)
        for i in range(self.voltages.size - 1, -1, -1):
            row_chars = []
            for j in range(self.periods.size):
                ch = PASS_MARK if self.passed[i, j] else FAIL_MARK
                if markers:
                    for (mv, mp), mch in markers.items():
                        if (abs(self.voltages[i] - mv) < 1e-12
                                and abs(self.periods[j] - mp) < 1e-15):
                            ch = mch
                row_chars.append(ch)
            lines.append(f"{self.voltages[i]:5.2f}V |" + "".join(row_chars))
        axis = "       +" + "-" * self.periods.size
        lines.append(axis)
        lo = self.periods[0] * 1e9
        hi = self.periods[-1] * 1e9
        lines.append(f"        {lo:.0f}ns .. {hi:.0f}ns (period)")
        return "\n".join(lines)


class ShmooRunner:
    """Sweep the tester over a (Vdd, period) grid.

    Args:
        tester: The virtual ATE.
        test: March test to apply at every point.
    """

    def __init__(self, tester: VirtualTester, test: MarchTest) -> None:
        self.tester = tester
        self.test = test

    def run(self, sram: Sram, defects: list[Defect],
            voltages: np.ndarray | list[float],
            periods: np.ndarray | list[float],
            title: str = "") -> ShmooPlot:
        """Fill the shmoo grid (quick behavioural mode per point)."""
        voltages = np.sort(np.asarray(voltages, dtype=float))
        periods = np.sort(np.asarray(periods, dtype=float))
        passed = np.zeros((voltages.size, periods.size), dtype=bool)
        for i, vdd in enumerate(voltages):
            for j, period in enumerate(periods):
                condition = StressCondition("shmoo", float(vdd), float(period))
                result = self.tester.test_device(sram, defects, self.test,
                                                 condition, quick=True)
                passed[i, j] = result.passed
        return ShmooPlot(voltages, periods, passed, title)


def default_voltage_axis(lo: float = 0.8, hi: float = 2.2,
                         steps: int = 15) -> np.ndarray:
    """The paper's shmoo voltage range (0.8 .. 2.2 V)."""
    return np.linspace(lo, hi, steps)


def default_period_axis(lo: float = 5e-9, hi: float = 120e-9,
                        steps: int = 24) -> np.ndarray:
    """Log-spaced period axis covering at-speed (5 ns) to slow (120 ns)."""
    return np.logspace(np.log10(lo), np.log10(hi), steps)
