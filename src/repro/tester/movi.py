"""The MOVI test procedure: march-with-rotated-address execution.

The paper's production 11N test is "a variation of MATS++, March C- and
MOVI"; the MOVI ingredient (March with Overlapped Read and Inversion,
[de Jonge & Smeulders 76]) re-runs a base march test once per address
bit with that bit rotated into the fastest-toggling position.  At speed,
this exercises every address-bit transition back-to-back in both
polarities -- the sensitisation that address-decoder delay faults
require (:mod:`repro.faults.address_delay`, [Azimane 04]).

:class:`MoviExecutor` runs the procedure against a fault-carrying memory
and reports which rotation caught what -- the data behind the
methodology benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.models import FaultFree, FunctionalFault, MemoryState
from repro.faults.simulator import FailLog, FailRecord
from repro.march.sequencer import DataBackground, MarchSequencer, bit_rotation_map
from repro.march.test import MarchTest


@dataclass
class MoviRunResult:
    """Outcome of one MOVI rotation.

    Attributes:
        fast_bit: The address bit rotated into the LSB position.
        log: Fail log of the run.
    """

    fast_bit: int
    log: FailLog

    @property
    def detected(self) -> bool:
        return self.log.detected


@dataclass
class MoviResult:
    """Outcome of the full MOVI procedure.

    Attributes:
        test_name: Base march test.
        runs: One result per address bit (in schedule order).
    """

    test_name: str
    runs: list[MoviRunResult] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        return any(r.detected for r in self.runs)

    @property
    def detecting_bits(self) -> list[int]:
        return [r.fast_bit for r in self.runs if r.detected]

    @property
    def total_operations(self) -> int:
        """Test-cost bookkeeping: MOVI multiplies the base test length by
        the address width -- the test-time pressure the paper's
        conclusion weighs against coverage."""
        return sum(r.log.cycles_run for r in self.runs)


class MoviExecutor:
    """Runs the MOVI procedure on a fault-carrying memory model.

    Args:
        address_bits: Address width (memory size = 2**address_bits).
        columns: Topological row width for data backgrounds.
    """

    def __init__(self, address_bits: int, columns: int | None = None) -> None:
        if address_bits <= 0:
            raise ValueError("address_bits must be positive")
        self.address_bits = address_bits
        self.n_addresses = 1 << address_bits
        self.columns = columns

    # ------------------------------------------------------------------
    def run_rotation(self, test: MarchTest, fault: FunctionalFault | None,
                     fast_bit: int,
                     background: DataBackground = DataBackground.SOLID,
                     stop_at_first_fail: bool = True) -> MoviRunResult:
        """One rotation: the base test with ``fast_bit`` toggling fastest."""
        sequencer = MarchSequencer(
            self.n_addresses, columns=self.columns,
            address_map=bit_rotation_map(self.address_bits, fast_bit))
        fault = fault if fault is not None else FaultFree()
        mem = MemoryState(self.n_addresses)
        fault.reset()
        log = FailLog(f"{test.name}[MOVI bit {fast_bit}]", self.n_addresses)
        for cop in sequencer.run(test, background):
            log.cycles_run = cop.cycle + 1
            if cop.op.is_write:
                fault.write(mem, cop.address, cop.value, cop.cycle)
                continue
            actual = fault.read(mem, cop.address, cop.cycle)
            if actual != cop.value:
                log.fails.append(FailRecord(
                    cycle=cop.cycle, element_index=cop.element_index,
                    op_index=cop.op_index, address=cop.address,
                    expected=cop.value, actual=actual))
                if stop_at_first_fail:
                    break
        return MoviRunResult(fast_bit, log)

    def run(self, test: MarchTest, fault: FunctionalFault | None = None,
            background: DataBackground = DataBackground.SOLID,
            stop_at_first_detection: bool = False) -> MoviResult:
        """The full procedure: one rotation per address bit."""
        result = MoviResult(test.name)
        for fast_bit in range(self.address_bits):
            run = self.run_rotation(test, fault, fast_bit, background)
            result.runs.append(run)
            if stop_at_first_detection and run.detected:
                break
        return result

    def linear_reference(self, test: MarchTest,
                         fault: FunctionalFault | None = None,
                         background: DataBackground = DataBackground.SOLID,
                         ) -> MoviRunResult:
        """The non-MOVI baseline: plain linear addressing (fast bit 0)."""
        return self.run_rotation(test, fault, 0, background)
