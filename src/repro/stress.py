"""Stress conditions: the (voltage, frequency, temperature) test corners.

The paper's whole argument is organised around *stress conditions* --
combinations of supply voltage and test frequency under which the same
march patterns are applied:

* **VLV** -- very-low voltage (1.0 V on the 0.18 um chip, i.e. 2..2.5 VT)
  at reduced frequency (10 MHz / 100 ns in the paper's Figure 3),
  targeting resistive *bridges*;
* **Vmin / Vnom / Vmax** -- the specified supply corners at production
  frequency; Vmax targets resistive *opens*;
* **at-speed** -- the highest usable frequency (15 ns on the paper's
  tester) at Vmax, targeting timing-related (dynamic) faults.

:class:`StressCondition` is the shared value object; the module also
builds the paper's five-condition production suite for any technology.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.technology import Technology


@dataclass(frozen=True)
class StressCondition:
    """One test corner.

    Attributes:
        name: Identifier used in reports ("VLV", "Vmax", "at-speed", ...).
        vdd: Supply voltage (V).
        period: Clock period (s).
        temperature: Junction temperature (Celsius).
    """

    name: str
    vdd: float
    period: float
    temperature: float = 25.0

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        if self.period <= 0:
            raise ValueError("period must be positive")

    @property
    def frequency(self) -> float:
        """Clock frequency in Hz."""
        return 1.0 / self.period

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.vdd:.2f} V @ {self.period * 1e9:.0f} ns"
            f" ({self.frequency / 1e6:.0f} MHz)"
        )


#: Clock periods used by the paper's experiment: 100 ns (10 MHz) for the
#: slow/VLV conditions and 15 ns for "at-speed" (the tester's limit).
SLOW_PERIOD = 100e-9
ATSPEED_PERIOD = 15e-9


def production_conditions(tech: Technology,
                          slow_period: float = SLOW_PERIOD,
                          atspeed_period: float = ATSPEED_PERIOD,
                          ) -> dict[str, StressCondition]:
    """The paper's five-condition stress suite for a technology.

    VLV runs at the slow period (the device must still meet timing at
    low voltage -- Section 4.1); Vmin/Vnom/Vmax run at the slow period as
    the *standard* test; "at-speed" runs the same patterns at the fast
    period and nominal supply.  (The paper *characterised* the at-speed
    period on fault-free samples at Vmax but reports the at-speed fail
    class as disjoint from the Vmax-only class in Figure 11, which
    implies the production at-speed pass/fail ran at nominal supply;
    we follow that reading.)
    """
    return {
        "VLV": StressCondition("VLV", tech.vdd_vlv, slow_period),
        "Vmin": StressCondition("Vmin", tech.vdd_min, slow_period),
        "Vnom": StressCondition("Vnom", tech.vdd_nominal, slow_period),
        "Vmax": StressCondition("Vmax", tech.vdd_max, slow_period),
        "at-speed": StressCondition("at-speed", tech.vdd_nominal,
                                    atspeed_period),
    }


def standard_conditions(tech: Technology,
                        slow_period: float = SLOW_PERIOD,
                        ) -> dict[str, StressCondition]:
    """The non-stress baseline: Vmin/Vnom/Vmax at the standard period.

    A device passing all three is "good" by the conventional flow; the
    paper's interesting devices pass these and fail only under stress.
    """
    all_conditions = production_conditions(tech, slow_period)
    return {k: all_conditions[k] for k in ("Vmin", "Vnom", "Vmax")}
