"""Fault primitive notation <S/F/R>.

Memory-test literature describes functional faults with fault primitives
(FPs): ``<S/F/R>`` where

* ``S`` is the sensitising sequence -- the state or operation(s) needed
  to activate the fault, written like ``0w1`` (from state 0, write 1) or
  just ``1`` (state 1 alone sensitises);
* ``F`` is the faulty value the victim cell assumes (0, 1);
* ``R`` is the value a sensitising *read* returns (0, 1, or ``-`` when
  the sensitising sequence is not a read).

Two-cell primitives prefix the victim part with the aggressor condition,
``<Sa; Sv/F/R>``.  This module implements the notation as data (parse and
format), and the classical fault models in :mod:`repro.faults.models` are
each defined by their FP set -- matching the taxonomy of van de Goor and
of the dynamic-fault work the paper cites [Borri 03].
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.march.ops import Op


@dataclass(frozen=True)
class SensitisingSequence:
    """The S part of a fault primitive for one cell.

    Attributes:
        initial_state: Required cell state before the operations (or None
            when any state sensitises).
        operations: The operations (possibly empty: a *state* fault).
    """

    initial_state: int | None
    operations: tuple[Op, ...] = ()

    def __post_init__(self) -> None:
        if self.initial_state not in (None, 0, 1):
            raise ValueError("initial_state must be None, 0 or 1")

    @property
    def is_state_only(self) -> bool:
        return not self.operations

    @property
    def notation(self) -> str:
        state = "" if self.initial_state is None else str(self.initial_state)
        ops = "".join(op.notation for op in self.operations)
        return state + ops or "-"

    def __str__(self) -> str:
        return self.notation

    @staticmethod
    def parse(text: str) -> "SensitisingSequence":
        """Parse e.g. ``'0w1'``, ``'1'``, ``'0r0r0'`` or ``'-'``."""
        text = text.strip().lower()
        if text in ("", "-"):
            return SensitisingSequence(None)
        m = re.fullmatch(r"([01])?((?:[rw][01])*)", text)
        if not m:
            raise ValueError(f"cannot parse sensitising sequence: {text!r}")
        state = int(m.group(1)) if m.group(1) else None
        body = m.group(2)
        ops = tuple(Op.parse(body[i:i + 2]) for i in range(0, len(body), 2))
        return SensitisingSequence(state, ops)


@dataclass(frozen=True)
class FaultPrimitive:
    """A complete fault primitive ``<Sa; Sv / F / R>``.

    Single-cell primitives have ``aggressor=None``.

    Attributes:
        victim: Sensitising condition on the victim cell.
        faulty_value: Value the victim holds after sensitisation.
        read_output: Output of the sensitising read, ``None`` when S does
            not end in a read.
        aggressor: Optional sensitising condition on the aggressor cell.
    """

    victim: SensitisingSequence
    faulty_value: int
    read_output: int | None = None
    aggressor: SensitisingSequence | None = None

    def __post_init__(self) -> None:
        if self.faulty_value not in (0, 1):
            raise ValueError("faulty_value must be 0 or 1")
        if self.read_output not in (None, 0, 1):
            raise ValueError("read_output must be None, 0 or 1")
        ends_in_read = (
            self.victim.operations and self.victim.operations[-1].is_read
        )
        if self.read_output is not None and not ends_in_read:
            raise ValueError(
                "read_output given but the victim sequence does not end in a read"
            )

    @property
    def is_coupling(self) -> bool:
        return self.aggressor is not None

    @property
    def operation_count(self) -> int:
        """Number of operations in S -- static faults have <=1, dynamic
        faults (the paper's 'soft defect' behaviours) have >=2."""
        count = len(self.victim.operations)
        if self.aggressor is not None:
            count += len(self.aggressor.operations)
        return count

    @property
    def is_dynamic(self) -> bool:
        return self.operation_count >= 2

    @property
    def notation(self) -> str:
        r = "-" if self.read_output is None else str(self.read_output)
        if self.aggressor is not None:
            return f"<{self.aggressor}; {self.victim}/{self.faulty_value}/{r}>"
        return f"<{self.victim}/{self.faulty_value}/{r}>"

    def __str__(self) -> str:
        return self.notation

    @staticmethod
    def parse(text: str) -> "FaultPrimitive":
        """Parse ``'<0w1/0/->'`` or ``'<1; 0/1/->'`` style notation."""
        text = text.strip()
        if not (text.startswith("<") and text.endswith(">")):
            raise ValueError(f"fault primitive must be <...>: {text!r}")
        body = text[1:-1]
        parts = body.rsplit("/", 2)
        if len(parts) != 3:
            raise ValueError(f"fault primitive needs S/F/R: {text!r}")
        s_part, f_part, r_part = (p.strip() for p in parts)
        aggressor = None
        if ";" in s_part:
            a_text, v_text = s_part.split(";", 1)
            aggressor = SensitisingSequence.parse(a_text)
            victim = SensitisingSequence.parse(v_text)
        else:
            victim = SensitisingSequence.parse(s_part)
        faulty = int(f_part)
        read_out = None if r_part == "-" else int(r_part)
        return FaultPrimitive(victim, faulty, read_out, aggressor)
