"""Dynamic faults and the generic fault-primitive engine.

Dynamic faults need *more than one* operation to be sensitised -- the
fault class the paper (and its reference [Borri 03]) ties to resistive
defects in deep sub-micron SRAMs.  Classic example: ``<0w1r1/0/1>`` -- a
write-1 immediately followed by a read flips the cell back, but only when
the two operations are back-to-back (at speed).

:class:`PrimitiveFault` interprets any single- or two-cell
:class:`~repro.faults.primitives.FaultPrimitive` directly, by matching
the operation history of the victim (and the state/operations of the
aggressor) against the sensitising sequence.  All static primitives work
too, so this engine doubles as a cross-check of the hand-written
classical models in :mod:`repro.faults.models` (the test suite exploits
that).

:class:`AtSpeedDynamicFault` adds the timing dimension: the primitive
only triggers when consecutive sensitising operations happen within a
maximum number of *clock cycles* of each other, modelling the
slack-dependence of resistive-open delay faults (paper Section 4.3 -- a
defect detected at 100 MHz escapes at 50 MHz).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.models import FunctionalFault, MemoryState
from repro.faults.primitives import FaultPrimitive
from repro.march.ops import Op, OpKind


@dataclass(frozen=True)
class _HistoryEntry:
    """One operation applied to a watched cell."""

    cycle: int
    op: Op
    state_before: int


@dataclass
class PrimitiveFault(FunctionalFault):
    """Interpret a fault primitive behaviourally.

    Supported shapes (covering all standard static and dynamic single-
    and two-cell FPs):

    * victim-only: ``<S_v/F/R>`` with S_v = optional initial state plus
      zero or more operations on the victim;
    * state-coupled: ``<s_a; S_v/F/R>`` -- aggressor must *hold* state
      ``s_a`` while the victim sequence completes;
    * operation-coupled: ``<s_a op_a; s_v/F/->`` -- an operation on the
      aggressor (with optional pre-state) hits a victim holding ``s_v``.

    Args:
        primitive: The ``<S/F/R>`` description.
        cell: Victim cell address.
        aggressor_cell: Aggressor address for two-cell primitives.
    """

    primitive: FaultPrimitive
    cell: int
    aggressor_cell: int | None = None
    mnemonic: str = field(default="FP", init=False)
    _history: list[_HistoryEntry] = field(default_factory=list, init=False)

    def __post_init__(self):
        if self.primitive.is_coupling and self.aggressor_cell is None:
            raise ValueError("coupling primitive needs an aggressor_cell")
        if self.aggressor_cell == self.cell:
            raise ValueError("aggressor and victim must differ")

    def reset(self):
        self._history.clear()

    # ------------------------------------------------------------------
    # Matching helpers
    # ------------------------------------------------------------------
    def _aggressor_state_ok(self, mem: MemoryState) -> bool:
        """State-only aggressor condition (operation-less S_a)."""
        agg = self.primitive.aggressor
        if agg is None or agg.operations:
            return True
        if agg.initial_state is None:
            return True
        return mem.get(self.aggressor_cell) == agg.initial_state

    def _victim_sequence_fires(self) -> bool:
        """Does the victim history end with a full sensitising window?"""
        seq = self.primitive.victim.operations
        if not seq or len(self._history) < len(seq):
            return False
        tail = self._history[-len(seq):]
        if any(h.op != want for h, want in zip(tail, seq)):
            return False
        want_state = self.primitive.victim.initial_state
        if want_state is not None and tail[0].state_before != want_state:
            return False
        return self._timing_ok(tail)

    def _timing_ok(self, tail: list[_HistoryEntry]) -> bool:
        """Hook for timing-constrained subclasses; unlimited by default."""
        return True

    def _record(self, op: Op, cycle: int, state_before: int) -> None:
        self._history.append(_HistoryEntry(cycle, op, state_before))
        if len(self._history) > 8:
            del self._history[0]

    # ------------------------------------------------------------------
    # Memory-operation hooks
    # ------------------------------------------------------------------
    def write(self, mem, address, value, cycle):
        if address == self.cell:
            state_before = mem.get(address)
            super().write(mem, address, value, cycle)
            self._record(Op(OpKind.WRITE, value), cycle, state_before)
            if self._victim_sequence_fires() and self._aggressor_state_ok(mem):
                mem.set(self.cell, self.primitive.faulty_value)
            return
        if address == self.aggressor_cell:
            state_before = mem.get(address)
            super().write(mem, address, value, cycle)
            self._aggressor_op_fires(mem, Op(OpKind.WRITE, value), state_before)
            return
        super().write(mem, address, value, cycle)

    def read(self, mem, address, cycle):
        if address == self.cell:
            state_before = mem.get(address)
            true_value = super().read(mem, address, cycle)
            observed = true_value if true_value in (0, 1) else 0
            self._record(Op(OpKind.READ, observed), cycle, state_before)
            if self._victim_sequence_fires() and self._aggressor_state_ok(mem):
                mem.set(self.cell, self.primitive.faulty_value)
                if self.primitive.read_output is not None:
                    return self.primitive.read_output
            return true_value
        if address == self.aggressor_cell:
            state_before = mem.get(address)
            value = super().read(mem, address, cycle)
            observed = value if value in (0, 1) else 0
            self._aggressor_op_fires(mem, Op(OpKind.READ, observed), state_before)
            return value
        return super().read(mem, address, cycle)

    def _aggressor_op_fires(self, mem: MemoryState, op: Op,
                            state_before: int) -> None:
        """Operation-coupled primitives: aggressor op hits the victim."""
        agg = self.primitive.aggressor
        if agg is None or not agg.operations:
            return
        # Standard two-cell FPs use a single aggressor operation.
        trigger = agg.operations[-1]
        if op != trigger:
            return
        if agg.initial_state is not None and state_before != agg.initial_state:
            return
        victim_state = self.primitive.victim.initial_state
        if victim_state is not None and mem.get(self.cell) != victim_state:
            return
        if self.primitive.victim.operations:
            # Mixed op-op two-cell dynamics are outside the standard FP
            # space; require the victim window too.
            if not self._victim_sequence_fires():
                return
        mem.set(self.cell, self.primitive.faulty_value)

    def primitives(self):
        return (self.primitive.notation,)


@dataclass
class AtSpeedDynamicFault(PrimitiveFault):
    """A dynamic primitive that only fires back-to-back within a cycle
    window -- the functional image of a resistive-open delay fault.

    Args:
        max_gap_cycles: Maximum distance (in clock cycles) between
            consecutive sensitising operations for the fault to trigger.
            A window of 1 means strictly back-to-back at-speed operation.
    """

    max_gap_cycles: int = 1
    mnemonic: str = field(default="dynFP", init=False)

    def __post_init__(self):
        super().__post_init__()
        if self.max_gap_cycles < 1:
            raise ValueError("max_gap_cycles must be >= 1")

    def _timing_ok(self, tail):
        return all(
            tail[i + 1].cycle - tail[i].cycle <= self.max_gap_cycles
            for i in range(len(tail) - 1)
        )


def make_dynamic_rdf(cell: int, state: int = 0) -> AtSpeedDynamicFault:
    """dRDF: a write immediately followed by a read flips the cell.

    ``<0w1r1/0/1>`` for ``state=0`` (and the dual for state=1): the read
    after the write still returns the written value but the cell flips
    back -- detectable only by a *second* read, and only when the w/r
    pair runs at speed.
    """
    notation = f"<{state}w{1 - state}r{1 - state}/{state}/{1 - state}>"
    return AtSpeedDynamicFault(
        primitive=FaultPrimitive.parse(notation), cell=cell,
    )


def make_double_read_fault(cell: int, state: int = 0) -> AtSpeedDynamicFault:
    """dRDF variant sensitised by two consecutive reads:
    ``<0r0r0/1/1>`` -- the second back-to-back read disturbs the cell."""
    notation = f"<{state}r{state}r{state}/{1 - state}/{1 - state}>"
    return AtSpeedDynamicFault(
        primitive=FaultPrimitive.parse(notation), cell=cell,
    )
