"""Address-transition delay faults (decoder delay faults).

The paper's reference [Azimane 04] ("New Test Methodology for Resistive
Open Defect Detection in Memory Address Decoders") targets resistive
opens in decoder address paths whose effect is a *delay* on one address
bit.  :class:`AddressTransitionDelayFault` models the two hazard shapes
such an open produces between back-to-back accesses:

* **single-bit transition** (only the defective bit toggles, in the
  sensitising polarity): the decode lingers on the previous word line --
  the access lands fully on the *previous address* (strong wrong-access
  behaviour);
* **multi-bit transition** (the defective bit toggles together with
  others): the previous word line is actively deselected by the healthy
  bits while the new one waits for the lagging bit -- the selection is
  merely *delayed*, completing correctly within the cycle: no
  observable fault.

Why this motivates MOVI: in a linear march only bit 0 ever toggles
alone; every higher bit toggles exclusively on carry transitions, which
are multi-bit and therefore harmless -- the fault escapes *any* march
test in linear order.  The MOVI procedure rotates each bit into the
fastest-toggling position, giving dense single-bit transitions in both
polarities: the wrong-access behaviour is exercised and caught.
``benchmarks/test_movi_decoder_opens.py`` measures the gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.models import FunctionalFault, MemoryState


@dataclass
class AddressTransitionDelayFault(FunctionalFault):
    """Delay fault on one address-decoder input bit.

    Args:
        bit: The lagging address bit.
        rising: Sensitising polarity -- ``True`` when the defect delays
            the 0->1 transition of the bit (e.g. an open in the true
            phase driver), ``False`` for 1->0.
        address_bits: Width of the address space.
        max_gap_cycles: Maximum cycle distance between the two accesses
            for the stale decode to matter (1 = strictly back-to-back:
            the fault is invisible below the at-speed condition).
    """

    bit: int
    rising: bool
    address_bits: int
    max_gap_cycles: int = 1
    mnemonic: str = field(default="AFdly", init=False)
    _last_address: int | None = field(default=None, init=False)
    _last_cycle: int = field(default=-(10 ** 9), init=False)

    def __post_init__(self):
        if not 0 <= self.bit < self.address_bits:
            raise ValueError(
                f"bit {self.bit} out of range for {self.address_bits} "
                "address bits")
        if self.max_gap_cycles < 1:
            raise ValueError("max_gap_cycles must be >= 1")

    def reset(self):
        self._last_address = None
        self._last_cycle = -(10 ** 9)

    # ------------------------------------------------------------------
    def _hazard(self, address: int, cycle: int) -> str:
        """Classify this access: 'none' or 'wrong' (previous address).

        Only a single-bit toggle of the lagging bit leaves the previous
        word line selected; multi-bit transitions deselect it through
        the healthy bits and merely delay the new selection.
        """
        prev = self._last_address
        if prev is None or cycle - self._last_cycle > self.max_gap_cycles:
            return "none"
        mask = 1 << self.bit
        diff = prev ^ address
        if diff != mask:
            return "none"
        new_bit = address & mask
        polarity_ok = (new_bit and self.rising) or \
            (not new_bit and not self.rising)
        return "wrong" if polarity_ok else "none"

    def _note_access(self, address: int, cycle: int) -> None:
        self._last_address = address
        self._last_cycle = cycle

    def write(self, mem: MemoryState, address: int, value: int,
              cycle: int) -> None:
        hazard = self._hazard(address, cycle)
        self._note_access(address, cycle)
        if hazard == "wrong":
            prev = address ^ (1 << self.bit)
            mem.set(prev, value)
            mem.touch(prev, cycle)
            return
        mem.set(address, value)
        mem.touch(address, cycle)

    def read(self, mem: MemoryState, address: int, cycle: int) -> int:
        hazard = self._hazard(address, cycle)
        self._note_access(address, cycle)
        if hazard == "wrong":
            prev = address ^ (1 << self.bit)
            value = mem.get(prev)
        else:
            value = mem.get(address)
        return value


def generate_address_delay_faults(address_bits: int,
                                  max_gap_cycles: int = 1,
                                  ) -> list[AddressTransitionDelayFault]:
    """The complete fault universe: both polarities of every address bit."""
    out = []
    for bit in range(address_bits):
        for rising in (True, False):
            out.append(AddressTransitionDelayFault(
                bit=bit, rising=rising, address_bits=address_bits,
                max_gap_cycles=max_gap_cycles))
    return out
