"""Functional fault models, fault-primitive engine and fault simulator.

Implements the classical memory fault taxonomy (stuck-at, transition,
coupling, address-decoder, read-disturb families, data retention), the
``<S/F/R>`` fault-primitive notation including dynamic (multi-operation)
faults, a functional fault simulator driven by the march sequencer, and
coverage analysis over enumerated fault-class universes.
"""

from repro.faults.address_delay import (
    AddressTransitionDelayFault,
    generate_address_delay_faults,
)
from repro.faults.coverage import (
    FAULT_CLASS_GENERATORS,
    CoverageResult,
    class_coverage,
    coverage_matrix,
)
from repro.faults.dynamic import (
    AtSpeedDynamicFault,
    PrimitiveFault,
    make_double_read_fault,
    make_dynamic_rdf,
)
from repro.faults.models import (
    DataRetentionFault,
    DeceptiveReadDestructiveFault,
    DisturbCouplingFault,
    FaultFree,
    FunctionalFault,
    IdempotentCouplingFault,
    IncorrectReadFault,
    InversionCouplingFault,
    MemoryState,
    MultipleAccessFault,
    NoAccessFault,
    ReadDestructiveFault,
    StateCouplingFault,
    StuckAtFault,
    StuckOpenFault,
    TransitionFault,
    WriteDisturbFault,
    WrongAccessFault,
)
from repro.faults.primitives import FaultPrimitive, SensitisingSequence
from repro.faults.simulator import FailLog, FailRecord, FunctionalFaultSimulator

__all__ = [
    "AddressTransitionDelayFault",
    "AtSpeedDynamicFault",
    "CoverageResult",
    "DataRetentionFault",
    "DeceptiveReadDestructiveFault",
    "DisturbCouplingFault",
    "FAULT_CLASS_GENERATORS",
    "FailLog",
    "FailRecord",
    "FaultFree",
    "FaultPrimitive",
    "FunctionalFault",
    "FunctionalFaultSimulator",
    "IdempotentCouplingFault",
    "IncorrectReadFault",
    "InversionCouplingFault",
    "MemoryState",
    "MultipleAccessFault",
    "NoAccessFault",
    "PrimitiveFault",
    "ReadDestructiveFault",
    "SensitisingSequence",
    "StateCouplingFault",
    "StuckAtFault",
    "StuckOpenFault",
    "TransitionFault",
    "WriteDisturbFault",
    "WrongAccessFault",
    "class_coverage",
    "coverage_matrix",
    "generate_address_delay_faults",
    "make_double_read_fault",
    "make_dynamic_rdf",
]
