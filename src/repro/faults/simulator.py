"""Functional fault simulator.

Runs a march test (as a cycle stream from the sequencer) against a
memory with one injected functional fault -- the behavioural counterpart
of the paper's one-defect-at-a-time analogue simulation.  The output is a
:class:`FailLog` listing every cycle where a read returned a value other
than expected; the virtual tester and bitmap-diagnosis modules consume
the same structure, so simulation and "silicon" results are directly
comparable, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.models import FaultFree, FunctionalFault, MemoryState
from repro.march.sequencer import CycleOp, DataBackground, MarchSequencer
from repro.march.test import MarchTest


@dataclass(frozen=True)
class FailRecord:
    """One failing read.

    Attributes:
        cycle: Clock cycle of the failing read.
        element_index: March element the read belongs to.
        op_index: Op position within the element.
        address: Logical address read.
        expected: Expected data value.
        actual: Value the memory returned.
    """

    cycle: int
    element_index: int
    op_index: int
    address: int
    expected: int
    actual: int


@dataclass
class FailLog:
    """All failing reads of one test run, plus run metadata."""

    test_name: str
    n_addresses: int
    fails: list[FailRecord] = field(default_factory=list)
    cycles_run: int = 0

    @property
    def detected(self) -> bool:
        return bool(self.fails)

    @property
    def first_fail(self) -> FailRecord | None:
        return self.fails[0] if self.fails else None

    def failing_addresses(self) -> set[int]:
        return {f.address for f in self.fails}

    def failing_elements(self) -> set[int]:
        return {f.element_index for f in self.fails}

    def __len__(self) -> int:
        return len(self.fails)


class FunctionalFaultSimulator:
    """Simulate march tests over a memory with an injected fault.

    Args:
        n_addresses: Memory size in cells (bit-oriented model).
        columns: Cells per topological row (for data backgrounds).
    """

    def __init__(self, n_addresses: int, columns: int | None = None) -> None:
        self.n_addresses = n_addresses
        self.columns = columns
        self.sequencer = MarchSequencer(n_addresses, columns=columns)

    def run(
        self,
        test: MarchTest,
        fault: FunctionalFault | None = None,
        background: DataBackground = DataBackground.SOLID,
        stop_at_first_fail: bool = False,
        initial_bits: int | None = None,
    ) -> FailLog:
        """Apply ``test`` to a memory carrying ``fault``.

        Args:
            test: The march test.
            fault: Injected fault (``None`` -> fault-free reference run).
            background: Data background resolved by the sequencer.
            stop_at_first_fail: Early-out for coverage campaigns.
            initial_bits: Power-up cell value (``None`` keeps cells
                unknown, the realistic choice; march tests must
                initialise before reading).

        Returns:
            The :class:`FailLog` of the run.
        """
        fault = fault if fault is not None else FaultFree()
        mem = MemoryState(self.n_addresses)
        if initial_bits is not None:
            mem.bits.fill(initial_bits)
        fault.reset()

        log = FailLog(test.name, self.n_addresses)
        for cop in self.sequencer.run(test, background):
            log.cycles_run = cop.cycle + 1
            if cop.op.is_write:
                fault.write(mem, cop.address, cop.value, cop.cycle)
                continue
            actual = fault.read(mem, cop.address, cop.cycle)
            if actual != cop.value:
                log.fails.append(FailRecord(
                    cycle=cop.cycle,
                    element_index=cop.element_index,
                    op_index=cop.op_index,
                    address=cop.address,
                    expected=cop.value,
                    actual=actual,
                ))
                if stop_at_first_fail:
                    return log
        return log

    def detects(self, test: MarchTest, fault: FunctionalFault,
                background: DataBackground = DataBackground.SOLID) -> bool:
        """Convenience: does the test detect the fault?"""
        return self.run(test, fault, background, stop_at_first_fail=True).detected
