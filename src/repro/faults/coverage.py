"""Fault-class coverage of march tests (the classical coverage tables).

For each classical fault model the generator enumerates every instance
over a (small) memory -- every cell for single-cell faults, every ordered
aggressor/victim pair for coupling faults -- and the analyser runs the
functional fault simulator to compute the detected fraction.  This is the
"fault coverage" baseline that the paper contrasts with defect-oriented
coverage: a test can score 100 % on SAF/TF/CF yet miss resistive defects
that need stress conditions.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass

from repro.faults.dynamic import make_double_read_fault, make_dynamic_rdf
from repro.faults.models import (
    DeceptiveReadDestructiveFault,
    DisturbCouplingFault,
    FunctionalFault,
    IdempotentCouplingFault,
    IncorrectReadFault,
    InversionCouplingFault,
    MultipleAccessFault,
    NoAccessFault,
    ReadDestructiveFault,
    StateCouplingFault,
    StuckAtFault,
    StuckOpenFault,
    TransitionFault,
    WriteDisturbFault,
    WrongAccessFault,
)
from repro.faults.simulator import FunctionalFaultSimulator
from repro.march.sequencer import DataBackground
from repro.march.test import MarchTest

#: Name -> generator(n_cells) for every supported fault class.
FAULT_CLASS_GENERATORS: dict[str, Callable[[int], Iterator[FunctionalFault]]] = {}


def _register(name: str):
    def deco(fn: Callable[[int], Iterator[FunctionalFault]]):
        FAULT_CLASS_GENERATORS[name] = fn
        return fn
    return deco


@_register("SAF")
def gen_saf(n: int) -> Iterator[FunctionalFault]:
    """All stuck-at faults: 2 per cell."""
    for cell in range(n):
        yield StuckAtFault(cell, 0)
        yield StuckAtFault(cell, 1)


@_register("TF")
def gen_tf(n: int) -> Iterator[FunctionalFault]:
    """All transition faults: 2 per cell."""
    for cell in range(n):
        yield TransitionFault(cell, rising=True)
        yield TransitionFault(cell, rising=False)


@_register("SOF")
def gen_sof(n: int) -> Iterator[FunctionalFault]:
    """All stuck-open faults: 1 per cell."""
    for cell in range(n):
        yield StuckOpenFault(cell)


@_register("RDF")
def gen_rdf(n: int) -> Iterator[FunctionalFault]:
    for cell in range(n):
        yield ReadDestructiveFault(cell)


@_register("DRDF")
def gen_drdf(n: int) -> Iterator[FunctionalFault]:
    for cell in range(n):
        yield DeceptiveReadDestructiveFault(cell)


@_register("IRF")
def gen_irf(n: int) -> Iterator[FunctionalFault]:
    for cell in range(n):
        yield IncorrectReadFault(cell)


@_register("WDF")
def gen_wdf(n: int) -> Iterator[FunctionalFault]:
    for cell in range(n):
        yield WriteDisturbFault(cell)


@_register("CFin")
def gen_cfin(n: int) -> Iterator[FunctionalFault]:
    """Inversion coupling: both transition polarities, all ordered pairs."""
    for agg in range(n):
        for vic in range(n):
            if agg == vic:
                continue
            yield InversionCouplingFault(agg, vic, rising=True)
            yield InversionCouplingFault(agg, vic, rising=False)


@_register("CFid")
def gen_cfid(n: int) -> Iterator[FunctionalFault]:
    """Idempotent coupling: 4 per ordered pair."""
    for agg in range(n):
        for vic in range(n):
            if agg == vic:
                continue
            for rising in (True, False):
                for forced in (0, 1):
                    yield IdempotentCouplingFault(agg, vic, rising, forced)


@_register("CFst")
def gen_cfst(n: int) -> Iterator[FunctionalFault]:
    """State coupling: 4 per ordered pair."""
    for agg in range(n):
        for vic in range(n):
            if agg == vic:
                continue
            for state in (0, 1):
                for forced in (0, 1):
                    yield StateCouplingFault(agg, vic, state, forced)


@_register("CFdst")
def gen_cfdst(n: int) -> Iterator[FunctionalFault]:
    for agg in range(n):
        for vic in range(n):
            if agg == vic:
                continue
            for forced in (0, 1):
                yield DisturbCouplingFault(agg, vic, forced)


@_register("AF")
def gen_af(n: int) -> Iterator[FunctionalFault]:
    """Address-decoder faults: no-access (both float polarities),
    wrong-access and multiple-access in both neighbour directions."""
    for addr in range(n):
        yield NoAccessFault(addr, float_value=1)
        yield NoAccessFault(addr, float_value=0)
        for other in ((addr + 1) % n, (addr - 1) % n):
            yield WrongAccessFault(addr, other)
            yield MultipleAccessFault(addr, (other,))


@_register("dRDF")
def gen_dynamic_rdf(n: int) -> Iterator[FunctionalFault]:
    """Dynamic faults: w-r and r-r back-to-back sensitisation."""
    for cell in range(n):
        yield make_dynamic_rdf(cell, 0)
        yield make_dynamic_rdf(cell, 1)
        yield make_double_read_fault(cell, 0)
        yield make_double_read_fault(cell, 1)


@dataclass(frozen=True)
class CoverageResult:
    """Coverage of one test over one fault class."""

    test_name: str
    fault_class: str
    detected: int
    total: int

    @property
    def coverage(self) -> float:
        """Detected fraction in [0, 1]."""
        return self.detected / self.total if self.total else 1.0

    @property
    def percent(self) -> float:
        return 100.0 * self.coverage

    def __str__(self) -> str:
        return (
            f"{self.test_name} vs {self.fault_class}: "
            f"{self.detected}/{self.total} = {self.percent:.1f}%"
        )


def class_coverage(
    test: MarchTest,
    fault_class: str,
    n_cells: int = 16,
    background: DataBackground = DataBackground.SOLID,
) -> CoverageResult:
    """Coverage of ``test`` over every instance of one fault class.

    ``n_cells`` trades accuracy for runtime; 16 cells is enough for the
    classical models because their detectability does not depend on the
    array size (the standard theoretical results are location-independent
    except for address boundary cases, which 16 cells already includes).
    """
    try:
        generator = FAULT_CLASS_GENERATORS[fault_class]
    except KeyError:
        raise KeyError(
            f"unknown fault class {fault_class!r}; available: "
            f"{sorted(FAULT_CLASS_GENERATORS)}"
        ) from None
    sim = FunctionalFaultSimulator(n_cells)
    detected = 0
    total = 0
    for fault in generator(n_cells):
        total += 1
        if sim.detects(test, fault, background):
            detected += 1
    return CoverageResult(test.name, fault_class, detected, total)


def coverage_matrix(
    tests: Iterable[MarchTest],
    fault_classes: Iterable[str] | None = None,
    n_cells: int = 16,
) -> dict[str, dict[str, CoverageResult]]:
    """Full test x fault-class coverage matrix.

    Returns ``matrix[test_name][fault_class] -> CoverageResult``; the
    ablation benchmark renders this as the classical march-test
    comparison table.
    """
    classes = list(fault_classes) if fault_classes else sorted(
        FAULT_CLASS_GENERATORS
    )
    matrix: dict[str, dict[str, CoverageResult]] = {}
    for test in tests:
        row = {}
        for fc in classes:
            row[fc] = class_coverage(test, fc, n_cells)
        matrix[test.name] = row
    return matrix
