"""Classical functional fault models.

The paper's starting point (Section 1) is that classical functional fault
models -- stuck-at, transition and coupling faults -- are *insufficient*
for the resistive (soft) defects of deep sub-micron memories.  To make
that comparison, the library implements the classical models faithfully;
:mod:`repro.defects.behavior` then adds the resistive-defect behaviours
that only manifest under stress conditions.

Every model is a :class:`FunctionalFault` with behavioural hooks called
by the simulator on each memory operation.  Models carry their fault-
primitive description (``<S/F/R>`` notation, see
:mod:`repro.faults.primitives`) for reporting.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np


class MemoryState:
    """Bit-array state of a memory under functional fault simulation.

    Cells hold 0/1; value -1 marks "unknown" (power-up, or a cell whose
    content a fault destroyed in an unmodelled way).
    """

    UNKNOWN = -1

    def __init__(self, n_cells: int) -> None:
        if n_cells <= 0:
            raise ValueError("n_cells must be positive")
        self.n_cells = n_cells
        self.bits = np.full(n_cells, self.UNKNOWN, dtype=np.int8)
        self.last_access_cycle = np.zeros(n_cells, dtype=np.int64)

    def __len__(self) -> int:
        return self.n_cells

    def get(self, address: int) -> int:
        return int(self.bits[address])

    def set(self, address: int, value: int) -> None:
        self.bits[address] = value

    def touch(self, address: int, cycle: int) -> None:
        self.last_access_cycle[address] = cycle

    def reset(self) -> None:
        self.bits.fill(self.UNKNOWN)
        self.last_access_cycle.fill(0)


class FunctionalFault(abc.ABC):
    """Base class: fault-free behaviour, to be overridden per model.

    Subclasses override :meth:`write` and/or :meth:`read`.  The simulator
    guarantees ``reset`` is called before each test run.
    """

    #: Human-readable fault class mnemonic (SAF, TF, CFin, ...).
    mnemonic: str = "NONE"

    def reset(self) -> None:
        """Clear any per-run internal state."""

    def write(self, mem: MemoryState, address: int, value: int,
              cycle: int) -> None:
        mem.set(address, value)
        mem.touch(address, cycle)

    def read(self, mem: MemoryState, address: int, cycle: int) -> int:
        mem.touch(address, cycle)
        return mem.get(address)

    def primitives(self) -> tuple[str, ...]:
        """Fault-primitive notation strings describing this fault."""
        return ()

    def describe(self) -> str:
        prims = ", ".join(self.primitives())
        return f"{self.mnemonic}({prims})" if prims else self.mnemonic


class FaultFree(FunctionalFault):
    """The golden model (used for reference runs)."""

    mnemonic = "GOOD"


@dataclass
class StuckAtFault(FunctionalFault):
    """SAF: the cell permanently holds ``value``.  FP: <0/1/-> or <1/0/->."""

    cell: int
    value: int
    mnemonic: str = field(default="SAF", init=False)

    def write(self, mem, address, value, cycle):
        super().write(mem, address, value, cycle)
        if address == self.cell:
            mem.set(address, self.value)

    def read(self, mem, address, cycle):
        if address == self.cell:
            mem.touch(address, cycle)
            mem.set(address, self.value)
            return self.value
        return super().read(mem, address, cycle)

    def primitives(self):
        s = 1 - self.value
        return (f"<{s}/{self.value}/->",)


@dataclass
class TransitionFault(FunctionalFault):
    """TF: the cell cannot make one of its transitions.

    ``rising=True`` blocks 0->1 (<0w1/0/->); ``rising=False`` blocks 1->0
    (<1w0/1/->).
    """

    cell: int
    rising: bool
    mnemonic: str = field(default="TF", init=False)

    def write(self, mem, address, value, cycle):
        if address == self.cell:
            old = mem.get(address)
            blocked = (
                (self.rising and old == 0 and value == 1)
                or (not self.rising and old == 1 and value == 0)
            )
            if blocked:
                mem.touch(address, cycle)
                return
        super().write(mem, address, value, cycle)

    def primitives(self):
        return ("<0w1/0/->",) if self.rising else ("<1w0/1/->",)


@dataclass
class StuckOpenFault(FunctionalFault):
    """SOF: the cell is disconnected (e.g. broken access path).

    Writes are lost; reads return the value left on the *cell's own*
    sense amplifier by the previous read on the same bit line (the
    classical "previous read" behaviour).  ``column_stride`` defines the
    bit-line sharing: cells whose flat indices are congruent modulo the
    stride share a sense amplifier (1 = single-column bit-level model;
    word-level models pass the array's bit-line count so sibling bits of
    a word do not refresh the victim's amplifier).  FP has no static
    <S/F/R>; SOF needs r-r sequences.
    """

    cell: int
    column_stride: int = 1
    mnemonic: str = field(default="SOF", init=False)
    _last_sensed: int = field(default=0, init=False)

    def __post_init__(self):
        if self.column_stride < 1:
            raise ValueError("column_stride must be positive")

    def _same_bitline(self, address: int) -> bool:
        return address % self.column_stride == self.cell % self.column_stride

    def reset(self):
        self._last_sensed = 0

    def write(self, mem, address, value, cycle):
        if address == self.cell:
            mem.touch(address, cycle)
            return
        super().write(mem, address, value, cycle)

    def read(self, mem, address, cycle):
        if address == self.cell:
            mem.touch(address, cycle)
            return self._last_sensed
        value = super().read(mem, address, cycle)
        if self._same_bitline(address) and value in (0, 1):
            self._last_sensed = value
        return value


@dataclass
class ReadDestructiveFault(FunctionalFault):
    """RDF: a read flips the cell and returns the flipped value.

    FPs: <0r0/1/1>, <1r1/0/0>.  One of the "soft defect" behaviours the
    paper associates with resistive bridges in the cell.
    """

    cell: int
    mnemonic: str = field(default="RDF", init=False)

    def read(self, mem, address, cycle):
        if address == self.cell:
            mem.touch(address, cycle)
            flipped = 1 - mem.get(address)
            mem.set(address, flipped)
            return flipped
        return super().read(mem, address, cycle)

    def primitives(self):
        return ("<0r0/1/1>", "<1r1/0/0>")


@dataclass
class DeceptiveReadDestructiveFault(FunctionalFault):
    """DRDF: a read returns the correct value but flips the cell.

    FPs: <0r0/1/0>, <1r1/0/1>.  Needs a second read to detect -- which is
    why tests like March SS repeat reads.
    """

    cell: int
    mnemonic: str = field(default="DRDF", init=False)

    def read(self, mem, address, cycle):
        if address == self.cell:
            mem.touch(address, cycle)
            correct = mem.get(address)
            if correct in (0, 1):
                mem.set(address, 1 - correct)
            return correct
        return super().read(mem, address, cycle)

    def primitives(self):
        return ("<0r0/1/0>", "<1r1/0/1>")


@dataclass
class IncorrectReadFault(FunctionalFault):
    """IRF: a read returns the complement; the cell keeps its value.

    FPs: <0r0/0/1>, <1r1/1/0>.
    """

    cell: int
    mnemonic: str = field(default="IRF", init=False)

    def read(self, mem, address, cycle):
        value = super().read(mem, address, cycle)
        if address == self.cell and value in (0, 1):
            return 1 - value
        return value

    def primitives(self):
        return ("<0r0/0/1>", "<1r1/1/0>")


@dataclass
class WriteDisturbFault(FunctionalFault):
    """WDF: a non-transition write flips the cell.

    FPs: <0w0/1/->, <1w1/0/->.
    """

    cell: int
    mnemonic: str = field(default="WDF", init=False)

    def write(self, mem, address, value, cycle):
        if address == self.cell and mem.get(address) == value:
            mem.set(address, 1 - value)
            mem.touch(address, cycle)
            return
        super().write(mem, address, value, cycle)

    def primitives(self):
        return ("<0w0/1/->", "<1w1/0/->")


@dataclass
class InversionCouplingFault(FunctionalFault):
    """CFin: a write transition on the aggressor inverts the victim.

    ``rising=True`` couples on aggressor 0->1.  FP: <0w1; x/~x/-> style.
    """

    aggressor: int
    victim: int
    rising: bool
    mnemonic: str = field(default="CFin", init=False)

    def __post_init__(self):
        if self.aggressor == self.victim:
            raise ValueError("aggressor and victim must differ")

    def write(self, mem, address, value, cycle):
        if address == self.aggressor:
            old = mem.get(address)
            transition = (
                (self.rising and old == 0 and value == 1)
                or (not self.rising and old == 1 and value == 0)
            )
            super().write(mem, address, value, cycle)
            if transition:
                v = mem.get(self.victim)
                if v in (0, 1):
                    mem.set(self.victim, 1 - v)
            return
        super().write(mem, address, value, cycle)

    def primitives(self):
        s = "0w1" if self.rising else "1w0"
        return (f"<{s}; 0/1/->", f"<{s}; 1/0/->")


@dataclass
class IdempotentCouplingFault(FunctionalFault):
    """CFid: a write transition on the aggressor forces the victim to a
    fixed value.  FP: e.g. <0w1; -/forced/->."""

    aggressor: int
    victim: int
    rising: bool
    forced_value: int
    mnemonic: str = field(default="CFid", init=False)

    def __post_init__(self):
        if self.aggressor == self.victim:
            raise ValueError("aggressor and victim must differ")
        if self.forced_value not in (0, 1):
            raise ValueError("forced_value must be 0 or 1")

    def write(self, mem, address, value, cycle):
        if address == self.aggressor:
            old = mem.get(address)
            transition = (
                (self.rising and old == 0 and value == 1)
                or (not self.rising and old == 1 and value == 0)
            )
            super().write(mem, address, value, cycle)
            if transition:
                mem.set(self.victim, self.forced_value)
            return
        super().write(mem, address, value, cycle)

    def primitives(self):
        s = "0w1" if self.rising else "1w0"
        v = 1 - self.forced_value
        return (f"<{s}; {v}/{self.forced_value}/->",)


@dataclass
class StateCouplingFault(FunctionalFault):
    """CFst: while the aggressor holds ``aggressor_state`` the victim is
    forced to ``forced_value``.  FP: <state; ~forced/forced/->."""

    aggressor: int
    victim: int
    aggressor_state: int
    forced_value: int
    mnemonic: str = field(default="CFst", init=False)

    def __post_init__(self):
        if self.aggressor == self.victim:
            raise ValueError("aggressor and victim must differ")

    def _apply_state(self, mem: MemoryState) -> None:
        if mem.get(self.aggressor) == self.aggressor_state:
            mem.set(self.victim, self.forced_value)

    def write(self, mem, address, value, cycle):
        super().write(mem, address, value, cycle)
        self._apply_state(mem)

    def read(self, mem, address, cycle):
        self._apply_state(mem)
        return super().read(mem, address, cycle)

    def primitives(self):
        v = 1 - self.forced_value
        return (f"<{self.aggressor_state}; {v}/{self.forced_value}/->",)


@dataclass
class DisturbCouplingFault(FunctionalFault):
    """CFdst: any read or write applied to the aggressor flips/forces the
    victim.  Models wordline/bitline disturb coupling."""

    aggressor: int
    victim: int
    forced_value: int
    on_read: bool = True
    on_write: bool = True
    mnemonic: str = field(default="CFdst", init=False)

    def __post_init__(self):
        if self.aggressor == self.victim:
            raise ValueError("aggressor and victim must differ")

    def write(self, mem, address, value, cycle):
        super().write(mem, address, value, cycle)
        if self.on_write and address == self.aggressor:
            mem.set(self.victim, self.forced_value)

    def read(self, mem, address, cycle):
        value = super().read(mem, address, cycle)
        if self.on_read and address == self.aggressor:
            mem.set(self.victim, self.forced_value)
        return value

    def primitives(self):
        v = 1 - self.forced_value
        ops = []
        if self.on_read:
            ops.append(f"<r; {v}/{self.forced_value}/->")
        if self.on_write:
            ops.append(f"<w; {v}/{self.forced_value}/->")
        return tuple(ops)


@dataclass
class DataRetentionFault(FunctionalFault):
    """DRF: the cell leaks to ``decay_value`` when untouched for
    ``retention_cycles`` clock cycles.

    Classical DRF detection needs pause elements; march tests without
    delays miss it (relevant to the paper's "soft defect" discussion).
    """

    cell: int
    decay_value: int
    retention_cycles: int
    mnemonic: str = field(default="DRF", init=False)

    def __post_init__(self):
        if self.retention_cycles <= 0:
            raise ValueError("retention_cycles must be positive")

    def _decay(self, mem: MemoryState, cycle: int) -> None:
        idle = cycle - int(mem.last_access_cycle[self.cell])
        if idle >= self.retention_cycles and mem.get(self.cell) != -1:
            mem.set(self.cell, self.decay_value)

    def write(self, mem, address, value, cycle):
        if address != self.cell:
            self._decay(mem, cycle)
        super().write(mem, address, value, cycle)

    def read(self, mem, address, cycle):
        if address == self.cell:
            self._decay(mem, cycle)
        return super().read(mem, address, cycle)


# ----------------------------------------------------------------------
# Address decoder faults (AFs)
# ----------------------------------------------------------------------
@dataclass
class NoAccessFault(FunctionalFault):
    """AF type 1: the address reaches no cell.

    Writes are lost; reads return a floating-bitline value (modelled as a
    constant, typically the precharge polarity).
    """

    address: int
    float_value: int = 1
    mnemonic: str = field(default="AFna", init=False)

    def write(self, mem, address, value, cycle):
        if address == self.address:
            return
        super().write(mem, address, value, cycle)

    def read(self, mem, address, cycle):
        if address == self.address:
            return self.float_value
        return super().read(mem, address, cycle)


@dataclass
class WrongAccessFault(FunctionalFault):
    """AF type 2/3: ``address`` accesses ``actual_cell`` instead of its
    own cell (and the own cell is never accessed)."""

    address: int
    actual_cell: int
    mnemonic: str = field(default="AFwa", init=False)

    def __post_init__(self):
        if self.address == self.actual_cell:
            raise ValueError("wrong-access fault must redirect to a different cell")

    def _map(self, address: int) -> int:
        return self.actual_cell if address == self.address else address

    def write(self, mem, address, value, cycle):
        super().write(mem, self._map(address), value, cycle)

    def read(self, mem, address, cycle):
        return super().read(mem, self._map(address), cycle)


@dataclass
class MultipleAccessFault(FunctionalFault):
    """AF type 4: ``address`` additionally accesses ``extra_cells``.

    Writes go to all cells; a read wire-ANDs the values (typical of
    NMOS-pulldown bitlines where any accessed 0-cell discharges the line).
    """

    address: int
    extra_cells: tuple[int, ...]
    mnemonic: str = field(default="AFma", init=False)

    def __post_init__(self):
        if not self.extra_cells:
            raise ValueError("multiple-access fault needs at least one extra cell")
        if self.address in self.extra_cells:
            raise ValueError("extra cells must differ from the faulty address")

    def write(self, mem, address, value, cycle):
        super().write(mem, address, value, cycle)
        if address == self.address:
            for cell in self.extra_cells:
                mem.set(cell, value)
                mem.touch(cell, cycle)

    def read(self, mem, address, cycle):
        value = super().read(mem, address, cycle)
        if address == self.address:
            for cell in self.extra_cells:
                value &= super().read(mem, cell, cycle)
        return value
