"""Content-addressed LRU response cache of the estimator service.

Entries are keyed by the SHA-256 of ``(database fingerprint digest,
canonical request body)`` -- the same refuse-to-guess identity scheme as
:mod:`repro.perf.cache`: every input that could change a response is in
the key, so correctness never depends on explicit invalidation.  A
database hot-reload changes the digest, which makes every entry cached
under the old snapshot *unreachable*; the LRU bound then retires them
as new traffic fills the cache.  Stale responses are impossible by
construction, not flushed by a race-prone purge.

The cache is process-local and unsynchronised: the service runs a
single asyncio event loop (one request mutates the cache at a time),
mirroring how one campaign parent owns the evaluation cache.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any

__all__ = ["ResponseCache", "response_cache_key"]


def response_cache_key(etag: str, canonical_body: str) -> str:
    """The content address of one (database snapshot, request) pair.

    Args:
        etag: Fingerprint digest of the serving database snapshot
            (:attr:`repro.service.state.DatabaseSnapshot.etag`).
        canonical_body: Normalised canonical request body
            (:meth:`repro.service.schema.BatchRequest.canonical_body`).

    Returns:
        A SHA-256 hex digest; equal inputs -> equal key, any change to
        either half -> a different, never-colliding-by-accident key.
    """
    payload = f"{etag}\n{canonical_body}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


class ResponseCache:
    """Bounded LRU map from content address to rendered response bytes.

    Args:
        max_entries: Capacity; the least-recently-*used* entry is
            evicted at overflow.  Zero disables caching (every lookup
            misses, nothing is stored).

    Attributes:
        hits: Lookups served from the cache.
        misses: Lookups that fell through to the estimator.
        evictions: Entries retired by the LRU bound.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 0:
            raise ValueError(
                f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[str, bytes] = OrderedDict()

    def __len__(self) -> int:
        """Number of live entries."""
        return len(self._entries)

    def get(self, key: str) -> bytes | None:
        """The cached response for ``key``, refreshing its recency.

        Returns:
            The rendered response bytes, or ``None`` on a miss.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, value: bytes) -> None:
        """Store a rendered response, evicting LRU entries at capacity."""
        if self.max_entries == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> dict[str, Any]:
        """A JSON-serialisable counter snapshot (for ``/v1/health``)."""
        probes = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": (self.hits / probes) if probes else None,
        }
