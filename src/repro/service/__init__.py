"""repro.service -- the estimator as an async HTTP/JSON service.

The paper's deployment model is one expensive IFA campaign amortised
across every later query: "using a database with precalculated
simulation results makes the fault coverage estimation an easy job"
(Section 3).  This package is that model productised for heavy read
traffic: an asyncio stdlib HTTP server in front of
:class:`~repro.core.estimator.FaultCoverageEstimator` /
:class:`~repro.core.database.CoverageDatabase`, with

* **batch queries** -- many (geometry, kind, condition-set) estimates
  per ``POST /v1/estimate``, validated against a typed request schema
  with named 400-level error codes (:mod:`repro.service.schema`);
* a **content-addressed LRU response cache** keyed by (database
  fingerprint digest, canonical request body), so swapping the
  database implicitly invalidates every cached response
  (:mod:`repro.service.cache`);
* **hot reload** -- ``POST /v1/reload`` atomically swaps in a freshly
  loaded database snapshot; in-flight requests finish on the snapshot
  they started with, and a corrupt candidate is rejected via
  :class:`~repro.core.database.DatabaseCorruptError` without downtime
  (:mod:`repro.service.state`);
* **observability** -- ``service.request`` / ``service.cache_hit`` /
  ``service.reload`` journal events, metrics counters, and a
  ``repro report`` section (:mod:`repro.obs`).

Front doors: ``python -m repro serve`` (see :mod:`repro.cli`) and the
load-generator benchmark ``benchmarks/perf/bench_service.py``
(``BENCH_service.json``).  Protocol reference: ``docs/service.md``.
"""

from repro.service.app import EstimatorService, ServiceResponse, serve
from repro.service.cache import ResponseCache
from repro.service.schema import (
    RequestError,
    batch_response_document,
    parse_request,
    report_document,
)
from repro.service.state import DatabaseSnapshot, ReloadResult, ServiceState

__all__ = [
    "DatabaseSnapshot",
    "EstimatorService",
    "ReloadResult",
    "RequestError",
    "ResponseCache",
    "ServiceResponse",
    "ServiceState",
    "batch_response_document",
    "parse_request",
    "report_document",
    "serve",
]
