"""Versioned database snapshots and the atomic hot-reload swap.

A :class:`DatabaseSnapshot` is one immutable generation of the serving
state: the loaded :class:`~repro.core.database.CoverageDatabase`, the
:class:`~repro.core.estimator.FaultCoverageEstimator` built over it,
and the snapshot's identity -- the :func:`repro.perf.fingerprint.
fingerprint_digest` of its records, doubling as the HTTP ``ETag`` and
as the database half of every response-cache key.

:class:`ServiceState` owns the *current* snapshot reference.  Hot
reload is a load-validate-swap sequence: the candidate file goes
through the full :meth:`CoverageDatabase.load` validation (checksummed
envelope, per-row schema, the positive-resistance guard) *before* the
swap, so a corrupt candidate is rejected with the old snapshot still
serving -- no downtime, no half-loaded state.  The swap itself is one
attribute assignment (atomic under the interpreter); request handlers
capture the snapshot reference once at entry and finish on it even if
a reload lands mid-request.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.database import CoverageDatabase, DatabaseCorruptError
from repro.core.estimator import FaultCoverageEstimator
from repro.perf.fingerprint import fingerprint_digest

__all__ = ["DatabaseSnapshot", "ReloadResult", "ServiceState"]


@dataclass(frozen=True)
class DatabaseSnapshot:
    """One immutable generation of the serving state.

    Attributes:
        database: The loaded coverage database.
        estimator: The estimator wrapping it (default fab
            distributions and defect density, as in the paper's tool).
        etag: Fingerprint digest of the database's records -- the
            snapshot's content identity.
        generation: 1-based swap counter (diagnostic only; identity is
            ``etag``).
    """

    database: CoverageDatabase
    estimator: FaultCoverageEstimator
    etag: str
    generation: int

    @classmethod
    def from_database(cls, database: CoverageDatabase,
                      generation: int = 1) -> "DatabaseSnapshot":
        """Wrap an already-loaded database into a snapshot."""
        return cls(
            database=database,
            estimator=FaultCoverageEstimator(database),
            etag=fingerprint_digest(database.records),
            generation=generation,
        )

    @classmethod
    def load(cls, path: str | Path,
             generation: int = 1) -> "DatabaseSnapshot":
        """Load and fingerprint a database file into a snapshot.

        Raises:
            FileNotFoundError: no database at ``path``.
            DatabaseCorruptError: the file fails validation.
        """
        return cls.from_database(CoverageDatabase.load(path), generation)


@dataclass(frozen=True)
class ReloadResult:
    """Outcome of one reload attempt.

    Attributes:
        outcome: ``"reloaded"`` (new snapshot swapped in),
            ``"unchanged"`` (candidate fingerprints identically; no
            swap) or ``"rejected"`` (candidate missing/corrupt; old
            snapshot retained).
        etag: The *serving* snapshot's etag after the attempt.
        error: The rejection reason (``None`` unless rejected).
    """

    outcome: str
    etag: str
    error: str | None = None


class ServiceState:
    """The mutable cell holding the current snapshot.

    Args:
        snapshot: The initial generation.
        path: File the reload endpoint re-reads.  ``None`` disables
            reloading (e.g. serving an in-memory database).

    Attributes:
        snapshot: The current generation.  Handlers must read this
            exactly once per request and use the captured reference
            throughout.
        path: The reload source.
    """

    def __init__(self, snapshot: DatabaseSnapshot,
                 path: str | Path | None = None) -> None:
        self.snapshot = snapshot
        self.path = Path(path) if path is not None else None

    def reload(self) -> ReloadResult:
        """Validate the candidate file and atomically swap it in.

        The old snapshot serves until (and unless) the candidate
        passes every load-time check; in-flight requests keep their
        captured reference either way.

        Returns:
            A :class:`ReloadResult`; never raises for a bad candidate
            (rejection is an expected operational outcome, reported in
            ``error``).
        """
        current = self.snapshot
        if self.path is None:
            return ReloadResult("rejected", current.etag,
                                "service has no reloadable database path")
        try:
            candidate = DatabaseSnapshot.load(
                self.path, generation=current.generation + 1)
        except (FileNotFoundError, DatabaseCorruptError) as exc:
            return ReloadResult("rejected", current.etag, str(exc))
        if candidate.etag == current.etag:
            return ReloadResult("unchanged", current.etag)
        self.snapshot = candidate
        return ReloadResult("reloaded", candidate.etag)
