"""Typed request/response schema of the estimator service.

One module owns every byte that crosses the wire:

* :func:`parse_request` turns a ``POST /v1/estimate`` body into a
  validated :class:`BatchRequest` -- every defect is rejected with a
  :class:`RequestError` carrying a stable kebab-case ``code`` (the
  service maps it to a 400-level response whose body names the code
  and the offending field);
* :func:`report_document` is the canonical JSON projection of an
  in-process :class:`~repro.core.estimator.EstimatorReport` -- the
  service's acceptance contract is that a batch response is
  *byte-identical* to :func:`repro.runner.atomic.canonical_json` of
  these documents, so a client can verify any response against a local
  :class:`~repro.core.estimator.FaultCoverageEstimator`;
* :meth:`BatchRequest.canonical_body` is the normalised canonical
  request body -- defaults filled in, keys sorted -- that keys the
  response cache together with the database fingerprint, so two
  requests differing only in JSON key order or float spelling share a
  cache entry.

Wire reference with examples: ``docs/service.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.core.estimator import EstimatorReport
from repro.memory.geometry import MemoryGeometry
from repro.runner.atomic import canonical_json

__all__ = [
    "MAX_QUERIES",
    "RESPONSE_SCHEMA",
    "RESPONSE_VERSION",
    "BatchRequest",
    "EstimateQuery",
    "RequestError",
    "batch_response_document",
    "error_document",
    "parse_request",
    "report_document",
]

#: Identity of the batch-response document.
RESPONSE_SCHEMA = "repro.service-response"
RESPONSE_VERSION = 1

#: Upper bound on queries per batch request: a request is one unit of
#: admission control, and an unbounded batch would let a single POST
#: monopolise the single-threaded event loop.
MAX_QUERIES = 256

#: Defect kinds the estimator accepts (mirrors
#: :meth:`FaultCoverageEstimator.estimate`).
_KINDS = ("bridge", "open")

#: The complete field set of one query object.  Anything else is a
#: typo the client should hear about, not silently ignore.
_QUERY_FIELDS = frozenset(
    {"geometry", "kind", "conditions", "yield_fraction"})
_GEOMETRY_FIELDS = frozenset(
    {"rows", "columns", "bits_per_word", "blocks"})


class RequestError(ValueError):
    """A request failed schema validation (a named 400-level error).

    Attributes:
        code: Stable kebab-case error identifier (e.g. ``bad-json``,
            ``bad-geometry``, ``unknown-kind``).  Part of the wire
            contract -- clients may branch on it.
        detail: Human-readable description naming the offending field.
        status: HTTP status the service responds with (400 for schema
            defects, 404 for names absent from the database).
    """

    def __init__(self, code: str, detail: str, status: int = 400) -> None:
        self.code = code
        self.detail = detail
        self.status = status
        super().__init__(f"{code}: {detail}")


@dataclass(frozen=True)
class EstimateQuery:
    """One validated estimator query of a batch request.

    Attributes:
        geometry: The queried memory organisation.
        kind: Defect kind ("bridge" or "open").
        conditions: Optional condition-name filter; ``None`` reports
            the database's full suite.  Filtering happens *after*
            estimation, so ``dpm_normalised`` stays normalised against
            the whole suite's best condition (the paper's "1x").
        yield_fraction: Optional yield override in ``(0, 1]``; derived
            from area x D0 when ``None``.
    """

    geometry: MemoryGeometry
    kind: str = "bridge"
    conditions: tuple[str, ...] | None = None
    yield_fraction: float | None = None

    def as_document(self) -> dict[str, Any]:
        """The normalised JSON form (defaults made explicit)."""
        return {
            "geometry": {
                "rows": self.geometry.rows,
                "columns": self.geometry.columns,
                "bits_per_word": self.geometry.bits_per_word,
                "blocks": self.geometry.blocks,
            },
            "kind": self.kind,
            "conditions": (list(self.conditions)
                           if self.conditions is not None else None),
            "yield_fraction": self.yield_fraction,
        }


@dataclass(frozen=True)
class BatchRequest:
    """A validated batch of estimator queries.

    Attributes:
        queries: The queries, in request order (responses preserve it).
    """

    queries: tuple[EstimateQuery, ...]

    def canonical_body(self) -> str:
        """The normalised request as canonical JSON.

        This -- not the raw wire bytes -- is the request half of the
        response-cache key: key order, whitespace and ``1`` vs ``1.0``
        spellings all collapse onto one entry.
        """
        return canonical_json(
            {"queries": [q.as_document() for q in self.queries]})


def _require_int(doc: dict[str, Any], field: str, where: str) -> int:
    """A positive-int geometry field or a ``bad-geometry`` error."""
    value = doc.get(field)
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise RequestError(
            "bad-geometry",
            f"{where}: geometry field {field!r} must be a positive "
            f"integer, got {value!r}")
    return value


def _parse_geometry(doc: Any, where: str) -> MemoryGeometry:
    """Validate one query's ``geometry`` object."""
    if not isinstance(doc, dict):
        raise RequestError(
            "bad-geometry",
            f"{where}: 'geometry' must be an object with rows/columns/"
            f"bits_per_word[/blocks], got {type(doc).__name__}")
    unknown = sorted(set(doc) - _GEOMETRY_FIELDS)
    if unknown:
        raise RequestError(
            "bad-geometry",
            f"{where}: unknown geometry field(s) "
            f"{', '.join(repr(f) for f in unknown)}")
    rows = _require_int(doc, "rows", where)
    columns = _require_int(doc, "columns", where)
    bits = _require_int(doc, "bits_per_word", where)
    blocks = _require_int(doc, "blocks", where) if "blocks" in doc else 1
    return MemoryGeometry(rows, columns, bits, blocks)


def _parse_conditions(value: Any, where: str) -> tuple[str, ...] | None:
    """Validate one query's optional ``conditions`` filter."""
    if value is None:
        return None
    if (not isinstance(value, list) or not value
            or not all(isinstance(c, str) and c for c in value)):
        raise RequestError(
            "bad-conditions",
            f"{where}: 'conditions' must be a non-empty list of "
            f"condition names (or omitted), got {value!r}")
    return tuple(value)


def _parse_yield(value: Any, where: str) -> float | None:
    """Validate one query's optional ``yield_fraction`` override."""
    if value is None:
        return None
    if (not isinstance(value, (int, float)) or isinstance(value, bool)
            or not 0.0 < value <= 1.0):
        raise RequestError(
            "bad-yield",
            f"{where}: 'yield_fraction' must be a number in (0, 1], "
            f"got {value!r}")
    return float(value)


def _parse_query(doc: Any, index: int) -> EstimateQuery:
    """Validate one entry of the ``queries`` array."""
    where = f"queries[{index}]"
    if not isinstance(doc, dict):
        raise RequestError(
            "bad-query",
            f"{where}: must be an object, got {type(doc).__name__}")
    unknown = sorted(set(doc) - _QUERY_FIELDS)
    if unknown:
        raise RequestError(
            "bad-query",
            f"{where}: unknown field(s) "
            f"{', '.join(repr(f) for f in unknown)}; "
            f"allowed: {', '.join(sorted(_QUERY_FIELDS))}")
    if "geometry" not in doc:
        raise RequestError(
            "bad-geometry", f"{where}: missing required field 'geometry'")
    kind = doc.get("kind", "bridge")
    if kind not in _KINDS:
        raise RequestError(
            "bad-kind",
            f"{where}: 'kind' must be one of {list(_KINDS)}, "
            f"got {kind!r}")
    return EstimateQuery(
        geometry=_parse_geometry(doc["geometry"], where),
        kind=kind,
        conditions=_parse_conditions(doc.get("conditions"), where),
        yield_fraction=_parse_yield(doc.get("yield_fraction"), where),
    )


def parse_request(body: bytes | str) -> BatchRequest:
    """Validate a ``POST /v1/estimate`` body into a :class:`BatchRequest`.

    Args:
        body: Raw request body (UTF-8 bytes or text).

    Returns:
        The validated batch, query order preserved.

    Raises:
        RequestError: any schema defect, with a stable ``code`` --
            ``bad-json``, ``not-an-object``, ``missing-queries``,
            ``empty-queries``, ``too-many-queries``, ``bad-query``,
            ``bad-geometry``, ``bad-kind``, ``bad-conditions`` or
            ``bad-yield``.
    """
    if isinstance(body, bytes):
        try:
            body = body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise RequestError(
                "bad-json", f"body is not valid UTF-8 ({exc})") from exc
    try:
        doc = json.loads(body)
    except json.JSONDecodeError as exc:
        raise RequestError(
            "bad-json", f"body is not valid JSON ({exc})") from exc
    if not isinstance(doc, dict):
        raise RequestError(
            "not-an-object",
            f"body must be a JSON object, got {type(doc).__name__}")
    if "queries" not in doc:
        raise RequestError(
            "missing-queries", "body is missing the 'queries' array")
    queries = doc["queries"]
    if not isinstance(queries, list):
        raise RequestError(
            "missing-queries",
            f"'queries' must be an array, got {type(queries).__name__}")
    if not queries:
        raise RequestError("empty-queries", "'queries' is empty")
    if len(queries) > MAX_QUERIES:
        raise RequestError(
            "too-many-queries",
            f"'queries' has {len(queries)} entries; the batch limit "
            f"is {MAX_QUERIES}")
    unknown = sorted(set(doc) - {"queries"})
    if unknown:
        raise RequestError(
            "not-an-object",
            f"unknown top-level field(s) "
            f"{', '.join(repr(f) for f in unknown)}")
    return BatchRequest(tuple(_parse_query(q, i)
                              for i, q in enumerate(queries)))


def report_document(report: EstimatorReport,
                    conditions: tuple[str, ...] | None = None,
                    ) -> dict[str, Any]:
    """The canonical JSON projection of one estimator report.

    This is the byte-identity contract: the service's per-query result
    equals this function applied to the equivalent in-process
    :meth:`FaultCoverageEstimator.estimate` call.

    Args:
        report: The in-process estimator output.
        conditions: Optional filter; estimates are re-ordered to the
            requested names.  Normalisation is untouched (it was
            computed against the full suite).

    Returns:
        A JSON-serialisable document; ``fault_coverage`` maps become
        sorted ``[resistance, coverage]`` pair lists (JSON object keys
        must be strings).

    Raises:
        RequestError: a requested condition is absent from the report
            (code ``unknown-condition``, status 404).
    """
    if conditions is None:
        estimates = list(report.estimates)
    else:
        by_name = {e.condition: e for e in report.estimates}
        missing = [c for c in conditions if c not in by_name]
        if missing:
            raise RequestError(
                "unknown-condition",
                f"condition(s) {', '.join(repr(c) for c in missing)} "
                f"not in the database suite "
                f"{sorted(by_name)} for kind={report.kind!r}",
                status=404)
        estimates = [by_name[c] for c in conditions]
    return {
        "kind": report.kind,
        "geometry": {
            "rows": report.geometry.rows,
            "columns": report.geometry.columns,
            "bits_per_word": report.geometry.bits_per_word,
            "blocks": report.geometry.blocks,
        },
        "yield_fraction": report.yield_fraction,
        "estimates": [
            {
                "condition": e.condition,
                "fault_coverage": [[r, e.fault_coverage[r]]
                                   for r in sorted(e.fault_coverage)],
                "defect_coverage": e.defect_coverage,
                "dpm": e.dpm,
                "dpm_normalised": e.dpm_normalised,
                "relative_coverage": e.relative_coverage,
            }
            for e in estimates
        ],
    }


def batch_response_document(etag: str,
                            results: list[dict[str, Any]],
                            ) -> dict[str, Any]:
    """Assemble the full batch-response document.

    Args:
        etag: Fingerprint digest of the serving database snapshot
            (also sent as the ``ETag`` header).
        results: Per-query :func:`report_document` outputs, in request
            order.
    """
    return {
        "schema": RESPONSE_SCHEMA,
        "version": RESPONSE_VERSION,
        "etag": etag,
        "results": results,
    }


def error_document(code: str, detail: str) -> dict[str, Any]:
    """The error-response body: ``{"error": {"code", "detail"}}``."""
    return {"error": {"code": code, "detail": detail}}
