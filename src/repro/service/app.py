"""The estimator service: dispatch core plus asyncio HTTP front end.

Layering mirrors the rest of the library -- pure logic first, I/O at
the edge:

* :class:`EstimatorService` is the transport-free core: one
  synchronous :meth:`~EstimatorService.dispatch` call maps (method,
  path, body) to a :class:`ServiceResponse`.  Tests drive it directly
  and compare bytes without opening a socket.
* :func:`serve` mounts the core on ``asyncio.start_server`` with a
  small hand-rolled HTTP/1.1 reader (stdlib only -- ``http.server``
  is threaded, not asyncio): request line, headers, ``Content-Length``
  body, keep-alive connections.

Consistency under hot reload: a handler captures
``state.snapshot`` exactly once and computes the whole response from
that reference, so a ``/v1/reload`` landing mid-request can never mix
two database generations in one response.  The service is
single-process and single-loop; one event-loop turn owns the cache and
the journal bus, the same exactly-one-writer discipline as the
campaign parent (``docs/observability.md``).
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
from dataclasses import dataclass, field
from typing import Any

from repro.obs.bus import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.runner.atomic import canonical_json
from repro.service.cache import ResponseCache, response_cache_key
from repro.service.schema import (
    RequestError,
    batch_response_document,
    error_document,
    parse_request,
    report_document,
)
from repro.service.state import ServiceState

__all__ = ["EstimatorService", "ServiceResponse", "serve"]

#: Reason phrases for the status codes the service emits.
_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict",
            500: "Internal Server Error"}

#: Upper bound on request bodies (1 MiB): a batch of
#: :data:`~repro.service.schema.MAX_QUERIES` full queries fits with
#: room to spare, and an unbounded read would let one client exhaust
#: the process.
MAX_BODY_BYTES = 1 << 20


def _render(doc: Any) -> bytes:
    """Canonical JSON + trailing newline -- every response body."""
    return canonical_json(doc).encode("utf-8") + b"\n"


@dataclass(frozen=True)
class ServiceResponse:
    """One fully rendered response, transport-independent.

    Attributes:
        status: HTTP status code.
        body: Rendered body bytes (canonical JSON + newline).
        headers: Extra headers (``Content-Type``/``Content-Length``
            are added by the HTTP writer).
    """

    status: int
    body: bytes
    headers: dict[str, str] = field(default_factory=dict)


class EstimatorService:
    """Transport-free request dispatcher over a :class:`ServiceState`.

    Args:
        state: The snapshot cell (database + estimator + etag).
        cache_size: Response-cache capacity (0 disables caching).
        bus: Optional :class:`~repro.obs.bus.EventBus`; when bound to
            a journal path it is flushed after every request, so the
            journal is current even if the process is killed.
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`
            receiving ``service.*`` counters.

    Attributes:
        state: The snapshot cell.
        cache: The content-addressed LRU response cache.
    """

    def __init__(self, state: ServiceState, cache_size: int = 1024,
                 bus: EventBus | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.state = state
        self.cache = ResponseCache(cache_size)
        self.bus = bus
        self.metrics = metrics

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(self, method: str, path: str,
                 body: bytes) -> ServiceResponse:
        """Route one request and record its observability facts.

        Args:
            method: HTTP method (upper-case).
            path: Request path (query string already stripped).
            body: Raw request body.

        Returns:
            The rendered response; errors become named JSON error
            bodies, never raises.
        """
        queries = 0
        cached = False
        if path == "/v1/estimate" and method == "POST":
            response, queries, cached = self._estimate(body)
        elif path == "/v1/reload" and method == "POST":
            response = self._reload()
        elif path == "/v1/health" and method == "GET":
            response = self._health()
        elif path in ("/v1/estimate", "/v1/reload", "/v1/health"):
            allow = "GET" if path == "/v1/health" else "POST"
            response = ServiceResponse(
                405, _render(error_document(
                    "method-not-allowed",
                    f"{path} only accepts {allow}")),
                {"Allow": allow})
        else:
            response = ServiceResponse(
                404, _render(error_document(
                    "not-found",
                    f"unknown path {path!r}; endpoints: /v1/estimate, "
                    "/v1/reload, /v1/health")))
        if self.metrics is not None:
            self.metrics.inc("service.request")
        if self.bus is not None:
            self.bus.emit("service.request", method=method, path=path,
                          status=response.status, queries=queries,
                          cached=cached)
            self.bus.flush()
        return response

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _estimate(self, body: bytes,
                  ) -> tuple[ServiceResponse, int, bool]:
        """``POST /v1/estimate``: the batch query endpoint.

        Returns:
            ``(response, n_queries, served_from_cache)``.
        """
        snapshot = self.state.snapshot
        try:
            request = parse_request(body)
        except RequestError as exc:
            return self._request_error(exc), 0, False
        key = response_cache_key(snapshot.etag, request.canonical_body())
        headers = {"ETag": f'"{snapshot.etag}"'}
        entry = self.cache.get(key)
        if entry is not None:
            if self.metrics is not None:
                self.metrics.inc("service.cache_hit")
            if self.bus is not None:
                self.bus.emit("service.cache_hit", key=key)
            headers["X-Cache"] = "hit"
            return (ServiceResponse(200, entry, headers),
                    len(request.queries), True)
        if self.metrics is not None:
            self.metrics.inc("service.cache_miss")
        try:
            results = []
            for query in request.queries:
                try:
                    report = snapshot.estimator.estimate(
                        query.geometry, query.kind,
                        yield_fraction=query.yield_fraction)
                except KeyError as exc:
                    raise RequestError(
                        "unknown-kind", str(exc.args[0]),
                        status=404) from exc
                results.append(report_document(report, query.conditions))
        except RequestError as exc:
            return self._request_error(exc), len(request.queries), False
        rendered = _render(batch_response_document(snapshot.etag, results))
        self.cache.put(key, rendered)
        headers["X-Cache"] = "miss"
        return (ServiceResponse(200, rendered, headers),
                len(request.queries), False)

    def _reload(self) -> ServiceResponse:
        """``POST /v1/reload``: validate-then-swap the database."""
        result = self.state.reload()
        if self.metrics is not None:
            self.metrics.inc(f"service.reload.{result.outcome}")
        if self.bus is not None:
            data: dict[str, Any] = {"outcome": result.outcome,
                                    "etag": result.etag}
            if result.error is not None:
                data["error"] = result.error
            self.bus.emit("service.reload", **data)
        doc: dict[str, Any] = {"outcome": result.outcome,
                               "etag": result.etag}
        status = 200
        if result.outcome == "rejected":
            doc["error"] = result.error
            status = 409
        return ServiceResponse(status, _render(doc),
                               {"ETag": f'"{result.etag}"'})

    def _health(self) -> ServiceResponse:
        """``GET /v1/health``: liveness, identity and cache counters."""
        snapshot = self.state.snapshot
        doc = {
            "status": "ok",
            "etag": snapshot.etag,
            "generation": snapshot.generation,
            "records": len(snapshot.database),
            "kinds": snapshot.database.kinds(),
            "cache": self.cache.stats(),
        }
        return ServiceResponse(200, _render(doc),
                               {"ETag": f'"{snapshot.etag}"'})

    @staticmethod
    def _request_error(exc: RequestError) -> ServiceResponse:
        """Render a :class:`RequestError` as its named error response."""
        return ServiceResponse(
            exc.status, _render(error_document(exc.code, exc.detail)))


# ----------------------------------------------------------------------
# The asyncio HTTP/1.1 front end
# ----------------------------------------------------------------------
async def _read_request(reader: asyncio.StreamReader,
                        ) -> tuple[str, str, dict[str, str], bytes] | None:
    """Read one HTTP request; ``None`` at clean end-of-stream.

    Raises:
        ValueError: malformed request line, header, or a body larger
            than :data:`MAX_BODY_BYTES` (the connection handler turns
            this into a 400 and closes).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ValueError("truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise ValueError("request head too large") from exc
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ValueError(f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ValueError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise ValueError(
            f"bad Content-Length {length_text!r}") from exc
    if not 0 <= length <= MAX_BODY_BYTES:
        raise ValueError(
            f"Content-Length {length} outside [0, {MAX_BODY_BYTES}]")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


async def _write_response(writer: asyncio.StreamWriter,
                          response: ServiceResponse,
                          close: bool) -> None:
    """Serialise one response (Content-Length framing, keep-alive)."""
    reason = _REASONS.get(response.status, "Unknown")
    head = [f"HTTP/1.1 {response.status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(response.body)}",
            f"Connection: {'close' if close else 'keep-alive'}"]
    head.extend(f"{name}: {value}"
                for name, value in response.headers.items())
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    writer.write(response.body)
    await writer.drain()


async def _handle_connection(service: EstimatorService,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
    """Serve one keep-alive connection until EOF, error or close."""
    try:
        while True:
            try:
                request = await _read_request(reader)
            except ValueError as exc:
                bad = ServiceResponse(
                    400, _render(error_document("bad-request", str(exc))))
                await _write_response(writer, bad, close=True)
                break
            if request is None:
                break
            method, target, headers, body = request
            path = target.partition("?")[0]
            response = service.dispatch(method, path, body)
            close = headers.get("connection", "").lower() == "close"
            await _write_response(writer, response, close)
            if close:
                break
    except (ConnectionError, asyncio.IncompleteReadError):
        pass  # client went away mid-exchange; nothing to answer
    except asyncio.CancelledError:
        pass  # server shutdown while idle-reading; close the socket
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


async def serve(service: EstimatorService, host: str = "127.0.0.1",
                port: int = 0) -> asyncio.AbstractServer:
    """Bind the service to a listening socket.

    Args:
        service: The dispatch core.
        host: Bind address (loopback by default -- the service is an
            internal tool, not an internet face).
        port: TCP port; 0 picks an ephemeral one (read it back from
            ``server.sockets[0].getsockname()[1]``).

    Returns:
        The started :class:`asyncio.AbstractServer`; the caller owns
        its lifecycle (``serve_forever`` / ``close``).
    """
    return await asyncio.start_server(
        functools.partial(_handle_connection, service), host, port)
