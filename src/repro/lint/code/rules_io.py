"""Atomic-write discipline rule pack (``IO0xx``) over Python source.

:mod:`repro.runner.atomic` is the single sanctioned path for durable
artefacts: write-temp, fsync, atomic rename, checksummed envelope.  A
bare ``open(path, "w")`` elsewhere re-introduces exactly the failure
the paper's deployment model cannot afford -- a truncated
pre-calculated database silently poisoning every later estimate.  These
rules keep every persisted-state write inside the helpers.

Test modules are exempt from the whole pack: fabricating truncated,
corrupt and torn files is what the robustness tests are *for*.

Context object: :class:`repro.lint.code.context.CodeLintContext`.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.code.context import CodeLintContext
from repro.lint.core import Finding, Severity, rule

#: Rename primitives that make a file visible to readers.
_RENAMES = frozenset({"os.rename", "os.replace", "shutil.move"})


def _calls(node: ast.AST) -> Iterator[ast.Call]:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def _write_mode_of(call: ast.Call) -> str | None:
    """The write-ish mode string of an ``open`` call, if statically known.

    Returns the mode when it contains ``w``/``a``/``x``/``+``; ``None``
    for read modes, non-literal modes and mode-less calls.
    """
    mode: ast.expr | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None or not isinstance(mode, ast.Constant):
        return None
    value = mode.value
    if isinstance(value, str) and any(c in value for c in "wax+"):
        return value
    return None


@rule("IO001", "code", "bare write-mode open()",
      severity=Severity.ERROR,
      rationale="open(path, 'w') truncates the destination before the "
                "new content is durable; a crash mid-write leaves a "
                "torn file that checksums cannot save you from because "
                "the old version is already gone.  Route durable writes "
                "through repro.runner.atomic.atomic_write_text (build "
                "the payload in memory first -- io.StringIO for csv).")
def check_bare_open_write(ctx: CodeLintContext) -> Iterator[Finding]:
    """Flag write-mode ``open`` calls outside ``repro.runner.atomic``."""
    if ctx.is_test or ctx.is_atomic_module:
        return
    for call in _calls(ctx.tree):
        if ctx.resolve_call(call) != "open":
            continue
        mode = _write_mode_of(call)
        if mode is not None:
            yield Finding(
                f"open(..., {mode!r}) outside repro.runner.atomic; "
                "durable writes go through atomic_write_text "
                "(write-temp, fsync, rename)",
                location=ctx.where(call), index=call.lineno)


@rule("IO002", "code", "bare Path.write_text/write_bytes",
      severity=Severity.ERROR,
      rationale="Path.write_text truncates in place with no temp file, "
                "no fsync and no rename: the narrowest possible crash "
                "window is still a destroyed artefact.  Approximation: "
                "flags any .write_text/.write_bytes attribute call in "
                "library code; a receiver that is genuinely not a "
                "persisted-state path earns a justified suppression.")
def check_bare_path_write(ctx: CodeLintContext) -> Iterator[Finding]:
    """Flag ``.write_text``/``.write_bytes`` outside the atomic module."""
    if ctx.is_test or ctx.is_atomic_module:
        return
    for call in _calls(ctx.tree):
        func = call.func
        if (isinstance(func, ast.Attribute)
                and func.attr in ("write_text", "write_bytes")):
            yield Finding(
                f".{func.attr}(...) bypasses the atomic write-temp/"
                "fsync/rename discipline; use atomic_write_text",
                location=ctx.where(call), index=call.lineno)


@rule("IO003", "code", "bare rename/replace",
      severity=Severity.ERROR,
      rationale="os.replace outside the atomic helper is almost always "
                "half of a hand-rolled write-rename that forgot the "
                "fsync (the data can still be in the page cache when "
                "the rename commits) and the directory fsync (the "
                "rename itself can be lost).")
def check_bare_rename(ctx: CodeLintContext) -> Iterator[Finding]:
    """Flag rename primitives outside ``repro.runner.atomic``."""
    if ctx.is_test or ctx.is_atomic_module:
        return
    for call in _calls(ctx.tree):
        name = ctx.resolve_call(call)
        if name in _RENAMES:
            yield Finding(
                f"{name}() outside repro.runner.atomic; the sanctioned "
                "write-temp/fsync/rename lives there",
                location=ctx.where(call), index=call.lineno)


@rule("IO004", "code", "write+rename scope without fsync",
      severity=Severity.WARNING,
      rationale="A function that writes a file and renames it into "
                "place without an os.fsync in between has the classic "
                "non-durable commit: after a power cut the rename can "
                "be visible while the data is not.  Fires per enclosing "
                "function (module scope counts as one), wherever the "
                "pattern appears -- including inside the atomic module "
                "itself, where it would mean the helper regressed.")
def check_rename_without_fsync(ctx: CodeLintContext) -> Iterator[Finding]:
    """Flag write+rename functions that never fsync."""
    if ctx.is_test:
        return
    for scope in ast.walk(ctx.tree):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        renames: list[ast.Call] = []
        writes = fsyncs = 0
        for call in _calls(scope):
            name = ctx.resolve_call(call)
            if name in _RENAMES:
                renames.append(call)
            elif name == "os.fsync":
                fsyncs += 1
            elif name == "open" and _write_mode_of(call) is not None:
                writes += 1
            elif (isinstance(call.func, ast.Attribute)
                  and call.func.attr in ("write_text", "write_bytes",
                                         "write")):
                writes += 1
        if renames and writes and not fsyncs:
            yield Finding(
                "this function writes a file and renames it into place "
                "but never calls os.fsync; the commit is not durable",
                location=ctx.where(renames[0]), index=renames[0].lineno)
