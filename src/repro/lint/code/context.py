"""Per-file analysis context for the ``code`` rule pack.

One :class:`CodeLintContext` wraps one parsed Python source file with
everything the DET/IO/OBS rules need to stay cheap and honest:

* the AST plus a parent map (for "is this comprehension fed straight
  into ``sorted``" style questions);
* an import map resolving local names back to dotted module paths, so
  ``import numpy as np; np.random.rand()`` and
  ``from random import randint; randint()`` both resolve;
* the per-line suppression table parsed from
  ``# repro: lint-disable=ID[,ID...]`` comments (the PR 1 suppression
  mechanism, applied at line granularity);
* role classification -- library vs test vs benchmark module, the
  atomic-write module, worker-side modules -- because the same syntax
  is a defect in one role and the whole point of the file in another
  (tests *deliberately* write corrupt files).

Everything here is pure syntax + name resolution: no imports of the
analysed code are ever executed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

#: Modules whose code runs inside worker processes.  The journal
#: process model (docs/observability.md) is "exactly one process -- the
#: campaign parent -- writes a journal"; an ``emit`` from these modules
#: would fork the event stream and break byte-identical journals.
WORKER_MODULES = frozenset({
    "repro.runner.evaluate",
    "repro.perf.executor",
    "repro.experiment.streaming.engine",
})

#: The one module allowed to use bare write/rename primitives: it *is*
#: the durable-write implementation everything else must go through.
ATOMIC_MODULE = "repro.runner.atomic"

#: Suppression directive inside a comment token, e.g.
#: ``# repro: lint-disable=<ID[,ID...]> -- why this is fine``.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*lint-disable=([A-Z][A-Z0-9]*(?:\s*,\s*[A-Z][A-Z0-9]*)*)")


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Per-line suppression table from ``# repro: lint-disable=`` comments.

    Only genuine COMMENT tokens count (the directive spelled inside a
    docstring or string literal is inert), so the analyzer can document
    its own escape hatch without tripping over it.

    A trailing comment suppresses findings anchored to its own line
    (for a multi-line statement, the statement's first line).  A
    comment-only line suppresses the next code line instead, so the
    justification can sit above the statement it excuses; consecutive
    comment lines all bind to that same statement.

    Returns:
        1-based line number -> rule IDs suppressed on that line.
    """
    table: dict[int, frozenset[str]] = {}
    lines = source.splitlines()

    def attach_line(lineno: int) -> int:
        """Where a directive on ``lineno`` binds: here, or the code below."""
        if lineno <= len(lines) and lines[lineno - 1].lstrip().startswith(
                "#"):
            for offset, line in enumerate(lines[lineno:], start=lineno + 1):
                stripped = line.strip()
                if stripped and not stripped.startswith("#"):
                    return offset
        return lineno

    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        return table  # unparsable tails have no reachable comments
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match:
            ids = frozenset(tok.strip() for tok in match.group(1).split(",")
                            if tok.strip())
            if ids:
                lineno = attach_line(token.start[0])
                table[lineno] = table.get(lineno, frozenset()) | ids
    return table


def module_name_for(path: Path) -> str:
    """Best-effort dotted module name for a source path.

    ``src/repro/runner/atomic.py`` -> ``repro.runner.atomic``;
    ``tests/obs/test_bus.py`` -> ``tests.obs.test_bus``; paths outside
    any recognised root fall back to the bare stem.
    """
    parts = list(path.parts)
    for root in ("src", "tests", "benchmarks", "scripts"):
        if root in parts:
            tail = parts[parts.index(root):]
            if root == "src":
                tail = tail[1:]  # src/ is a layout dir, not a package
            break
    else:
        tail = [parts[-1]] if parts else []
    if not tail:
        return path.stem
    tail = list(tail)
    tail[-1] = Path(tail[-1]).stem
    if tail[-1] == "__init__":
        tail = tail[:-1]
    return ".".join(tail) or path.stem


@dataclass
class CodeLintContext:
    """Input to the ``code`` pack: one parsed source file.

    Attributes:
        path: Source path as given (used for display labels).
        module: Dotted module name (see :func:`module_name_for`).
        source: Full source text.
        tree: Parsed ``ast.Module``.
        suppressions: Line -> suppressed rule IDs
            (:func:`parse_suppressions`).
        module_aliases: Local name -> dotted module it is bound to
            (``np`` -> ``numpy``, ``random`` -> ``random``).
        from_imports: Local name -> fully dotted origin for
            ``from m import n [as alias]`` bindings
            (``randint`` -> ``random.randint``).
    """

    path: Path
    module: str
    source: str
    tree: ast.Module
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)
    module_aliases: dict[str, str] = field(default_factory=dict)
    from_imports: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str,
                    path: str | Path = "<string>") -> "CodeLintContext":
        """Build a context from source text (raises ``SyntaxError``)."""
        path = Path(path)
        tree = ast.parse(source, filename=str(path))
        ctx = cls(path=path, module=module_name_for(path), source=source,
                  tree=tree, suppressions=parse_suppressions(source))
        ctx._index_imports()
        return ctx

    @classmethod
    def from_file(cls, path: str | Path) -> "CodeLintContext":
        """Build a context by reading and parsing ``path``."""
        path = Path(path)
        return cls.from_source(path.read_text(encoding="utf-8"), path)

    # ------------------------------------------------------------------
    # Role classification
    # ------------------------------------------------------------------
    @property
    def is_test(self) -> bool:
        """Test module: under ``tests/`` or named ``test_*``/``conftest``."""
        name = self.path.stem
        return ("tests" in self.path.parts or name.startswith("test_")
                or name == "conftest")

    @property
    def is_bench(self) -> bool:
        """Benchmark module: wall-clock timers are its business."""
        return ("benchmarks" in self.path.parts
                or "bench" in self.module.rsplit(".", 1)[-1])

    @property
    def is_atomic_module(self) -> bool:
        """Whether this file *is* the sanctioned durable-write module."""
        return self.module == ATOMIC_MODULE

    @property
    def is_worker_module(self) -> bool:
        """Whether this file's code runs inside worker processes."""
        return self.module in WORKER_MODULES

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def _index_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.module_aliases[alias.asname] = alias.name
                    else:
                        # ``import a.b.c`` binds ``a``; attribute chains
                        # through it resolve to their full dotted path.
                        root = alias.name.split(".")[0]
                        self.module_aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import: origin unknowable here
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}")

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted origin of a Name/Attribute chain, if resolvable.

        ``np.random.rand`` -> ``"numpy.random.rand"``; ``randint``
        (after ``from random import randint``) -> ``"random.randint"``;
        anything rooted in a local object (``self.rng.random``) ->
        ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        parts.reverse()
        if root in self.module_aliases:
            return ".".join([self.module_aliases[root], *parts])
        if root in self.from_imports:
            return ".".join([self.from_imports[root], *parts])
        if not parts:
            # A bare name that is not an import: only meaningful for
            # builtins (``open``, ``sorted``); report it as itself.
            return root
        return None

    def resolve_call(self, call: ast.Call) -> str | None:
        """:meth:`resolve` applied to a call's function expression."""
        return self.resolve(call.func)

    def parent_map(self) -> dict[ast.AST, ast.AST]:
        """Child -> parent for every node (built lazily, then cached)."""
        cached = getattr(self, "_parents", None)
        if cached is None:
            cached = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    cached[child] = parent
            self._parents = cached  # type: ignore[attr-defined]
        return cached

    def where(self, node: ast.AST) -> str:
        """Display location ``path:lineno`` for a finding anchor."""
        return f"{self.path}:{getattr(node, 'lineno', 0)}"
