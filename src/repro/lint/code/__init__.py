"""``repro.lint.code``: determinism & I/O-discipline analysis of source.

The fourth rule pack (``code``) turns the reproduction's execution
contracts -- byte-identical records across worker counts, atomic
checksummed writes, journal events drawn from a fixed catalog -- into
an AST-level gate over the Python source itself, so a new behaviour
model or scenario pack cannot quietly call unseeded ``random``, write
state with a bare ``open(..., "w")`` or emit an uncatalogued event.

Three thematic rule families plus pack hygiene, all registered in the
shared :mod:`repro.lint.core` engine (stable IDs, severities,
``LintConfig`` suppression, text/JSON reporters):

* ``DET0xx`` (:mod:`~repro.lint.code.rules_det`) -- unseeded
  ``random``/``numpy.random``, wall-clock reads, hash-ordered
  iteration, non-canonical ``json.dumps`` reaching disk;
* ``IO0xx`` (:mod:`~repro.lint.code.rules_io`) -- writes/renames
  outside :mod:`repro.runner.atomic`, write+rename without fsync;
* ``OBS0xx`` (:mod:`~repro.lint.code.rules_obs`) -- ``emit`` call
  sites cross-checked against
  :data:`repro.obs.events.EVENT_CATALOG`;
* ``CODE0xx`` (:mod:`~repro.lint.code.rules_meta`) -- suppression
  hygiene and parse failures.

Findings are suppressed per line with ``# repro: lint-disable=ID``
(comma-separate several IDs; follow with a justification).  Front
doors: :func:`lint_code_file`, :func:`lint_code_source`,
:func:`lint_code_paths`, and ``repro lint code [paths]`` on the
command line.  The catalog is documented in
``docs/static_analysis.md``; the whole pack is self-applied --
``repro lint code src/repro`` exits 0 -- and gated in
``scripts/check.sh``.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint.code.context import CodeLintContext

# Importing the rule modules registers the pack.
from repro.lint.code import rules_det as _rules_det  # noqa: F401
from repro.lint.code import rules_io as _rules_io  # noqa: F401
from repro.lint.code import rules_meta as _rules_meta  # noqa: F401
from repro.lint.code import rules_obs as _rules_obs  # noqa: F401
from repro.lint.core import (
    LintConfig,
    LintIssue,
    LintReport,
    get_rule,
    run_pack,
)

__all__ = [
    "CodeLintContext",
    "lint_code_file",
    "lint_code_paths",
    "lint_code_source",
]


def _synthetic_issue(rule_id: str, message: str, location: str,
                     index: int, config: LintConfig) -> LintIssue | None:
    """A front-door-synthesised issue, respecting the config filters."""
    if not config.runs(rule_id):
        return None
    r = get_rule(rule_id)
    severity = config.severity_overrides.get(rule_id, r.default_severity)
    if severity.rank < config.min_severity.rank:
        return None
    return LintIssue(rule_id, severity, message, r.pack, location, index)


def lint_code_source(source: str, path: str | Path = "<string>",
                     config: LintConfig | None = None) -> LintReport:
    """Run the ``code`` pack over source text.

    Args:
        source: Python source.
        path: Display path; also drives role classification (test /
            bench / atomic / worker module) -- see
            :class:`~repro.lint.code.context.CodeLintContext`.
        config: Suppression/severity/selection configuration.

    Returns:
        A per-file :class:`LintReport` (target = the path).  Findings
        on lines carrying a matching ``# repro: lint-disable=ID``
        comment are dropped; suppressions that matched nothing are
        reported as ``CODE002``; a ``SyntaxError`` becomes a single
        ``CODE003`` error finding.
    """
    cfg = config if config is not None else LintConfig()
    target = str(path)
    try:
        ctx = CodeLintContext.from_source(source, path)
    except SyntaxError as exc:
        issue = _synthetic_issue(
            "CODE003",
            f"file does not parse: {exc.msg} (line {exc.lineno})",
            f"{path}:{exc.lineno or 0}", exc.lineno or 0, cfg)
        return LintReport(target, "code", [issue] if issue else [], 1)
    report = run_pack("code", ctx, cfg, target)

    used: set[tuple[int, str]] = set()
    kept: list[LintIssue] = []
    for issue in report.issues:
        line = issue.index
        if (line is not None and issue.rule_id
                in ctx.suppressions.get(line, frozenset())):
            used.add((line, issue.rule_id))
            continue
        kept.append(issue)

    # CODE002: suppressions whose rule ran here yet matched no finding.
    for lineno in sorted(ctx.suppressions):
        for rid in sorted(ctx.suppressions[lineno]):
            if rid == "CODE002" or (lineno, rid) in used:
                continue
            if not cfg.runs(rid):
                continue  # the rule never ran: absence proves nothing
            try:
                if get_rule(rid).pack != "code":
                    continue  # CODE001's finding, not an unused one
            except KeyError:
                continue  # likewise
            issue = _synthetic_issue(
                "CODE002",
                f"suppression of {rid} matched no finding on this line; "
                "delete the stale lint-disable",
                f"{path}:{lineno}", lineno, cfg)
            if issue is not None and "CODE002" not in ctx.suppressions.get(
                    lineno, frozenset()):
                kept.append(issue)

    return LintReport(target, "code", kept, report.rules_run)


def lint_code_file(path: str | Path,
                   config: LintConfig | None = None) -> LintReport:
    """Run the ``code`` pack over one source file."""
    path = Path(path)
    return lint_code_source(path.read_text(encoding="utf-8"), path, config)


def _iter_sources(paths: list[str | Path] | list[Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated file list."""
    out: set[Path] = set()
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for found in entry.rglob("*.py"):
                if not any(part == "__pycache__" or part.startswith(".")
                           or part.endswith(".egg-info")
                           for part in found.parts):
                    out.add(found)
        else:
            out.add(entry)
    return sorted(out)


def lint_code_paths(paths, config: LintConfig | None = None
                    ) -> list[LintReport]:
    """Run the ``code`` pack over files and/or directory trees.

    Args:
        paths: Files and directories; directories are walked for
            ``*.py`` (skipping ``__pycache__``, hidden and
            ``.egg-info`` components).
        config: Suppression/severity/selection configuration.

    Returns:
        One report per file, in sorted path order.

    Raises:
        FileNotFoundError: an explicit file path does not exist.
    """
    return [lint_code_file(path, config) for path in _iter_sources(paths)]
