"""Determinism rule pack (``DET0xx``) over Python source.

The reproduction's hard contracts -- byte-identical records across
worker counts, byte-identical journals, content-addressed cache keys --
only hold while no code path consults ambient nondeterminism: the
shared ``random`` module state, wall clocks, hash-ordered containers.
These rules flag the syntactic forms through which that nondeterminism
leaks.  They are deliberately *syntactic*: each rationale states the
approximation, and every false positive has a one-line out
(``# repro: lint-disable=ID`` plus a justification).

Context object: :class:`repro.lint.code.context.CodeLintContext`.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.code.context import CodeLintContext
from repro.lint.core import Finding, Severity, rule

#: ``numpy.random`` constructors that are deterministic *when given a
#: seed argument* (positional or keyword).  Called bare, they pull OS
#: entropy and every run diverges.
_NP_SEEDABLE = frozenset({
    "default_rng", "Generator", "SeedSequence", "RandomState",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
})

#: Wall-clock reads: never acceptable in library code (journals and
#: records must be pure functions of the computation).
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.localtime", "time.gmtime",
    "time.ctime", "time.strftime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Monotonic timers: meaningless in persisted output but legitimate in
#: benchmark harnesses, so they are only allowed in ``*bench*`` modules.
_MONOTONIC = frozenset({
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
})

#: Sinks whose argument is persisted verbatim (DET005): a non-canonical
#: ``json.dumps`` reaching one of these produces artefacts whose bytes
#: depend on dict construction order.
_PERSIST_SINKS = frozenset({"write_text", "write_bytes", "write"})
_PERSIST_SINK_CALLS = frozenset({
    "repro.runner.atomic.atomic_write_text",
    "atomic_write_text",
})


def _calls(ctx: CodeLintContext) -> Iterator[ast.Call]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            yield node


@rule("DET001", "code", "unseeded stdlib random",
      severity=Severity.ERROR,
      rationale="Module-level random.* calls share one process-global "
                "RNG; any import-order or worker-count change reshuffles "
                "every draw, breaking byte-identical records.  Thread a "
                "random.Random(seed) instance instead.  Approximation: "
                "flags every call through the random module except "
                "random.Random(...) with an explicit seed.")
def check_unseeded_random(ctx: CodeLintContext) -> Iterator[Finding]:
    """Flag ``random.X()`` module-level calls (the shared global RNG)."""
    for call in _calls(ctx):
        name = ctx.resolve_call(call)
        if name is None or not name.startswith("random."):
            continue
        tail = name[len("random."):]
        if "." in tail:  # method on an instance-typed attribute chain
            continue
        if tail == "Random" and (call.args or call.keywords):
            continue  # seeded instance: the sanctioned pattern
        if tail == "Random":
            message = ("random.Random() without a seed draws from OS "
                       "entropy; pass an explicit seed")
        elif tail == "SystemRandom":
            message = ("random.SystemRandom is OS entropy by design and "
                       "can never reproduce")
        else:
            message = (f"random.{tail}() uses the shared unseeded "
                       "module RNG; use a seeded random.Random instance")
        yield Finding(message, location=ctx.where(call), index=call.lineno)


@rule("DET002", "code", "unseeded numpy random",
      severity=Severity.ERROR,
      rationale="numpy.random module-level calls (np.random.rand, "
                ".seed, ...) mutate legacy global state; seedable "
                "constructors called without a seed pull OS entropy.  "
                "Use np.random.default_rng(seed) / SeedSequence(entropy="
                "...) and pass Generators down explicitly.")
def check_unseeded_numpy_random(ctx: CodeLintContext) -> Iterator[Finding]:
    """Flag global/unseeded ``numpy.random`` calls."""
    for call in _calls(ctx):
        name = ctx.resolve_call(call)
        if name is None or not name.startswith("numpy.random."):
            continue
        tail = name[len("numpy.random."):]
        if "." in tail:
            continue
        if tail in _NP_SEEDABLE:
            if call.args or call.keywords:
                continue  # explicitly seeded: fine
            message = (f"numpy.random.{tail}() without a seed pulls OS "
                       "entropy; pass an explicit seed")
        else:
            message = (f"numpy.random.{tail}() goes through numpy's "
                       "global RNG state; use a seeded "
                       "numpy.random.default_rng(...) Generator")
        yield Finding(message, location=ctx.where(call), index=call.lineno)


@rule("DET003", "code", "wall-clock read in library code",
      severity=Severity.ERROR,
      rationale="Journals, records and cache keys are pure functions of "
                "what the campaign computed (docs/observability.md); a "
                "wall-clock read anywhere in library code eventually "
                "leaks into one of them.  Monotonic timers "
                "(perf_counter/monotonic) are additionally allowed in "
                "*bench* modules, whose whole output is timing.")
def check_wall_clock(ctx: CodeLintContext) -> Iterator[Finding]:
    """Flag wall-clock reads; monotonic timers outside bench modules."""
    if ctx.is_test:
        return
    for call in _calls(ctx):
        name = ctx.resolve_call(call)
        if name is None:
            continue
        if name in _WALL_CLOCK:
            yield Finding(
                f"{name}() is a wall-clock read; persisted artefacts "
                "must not depend on when the run happened",
                location=ctx.where(call), index=call.lineno)
        elif name in _MONOTONIC and not ctx.is_bench:
            yield Finding(
                f"{name}() outside a benchmark module; timing belongs "
                "in repro.perf bench harnesses, not library paths",
                location=ctx.where(call), index=call.lineno)


def _is_set_producing(node: ast.expr, ctx: CodeLintContext) -> bool:
    """Whether ``node`` syntactically evaluates to a set/frozenset."""
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        name = ctx.resolve_call(node)
        if name in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_set_producing(node.left, ctx)
                or _is_set_producing(node.right, ctx))
    return False


def _sorted_wraps(node: ast.AST, ctx: CodeLintContext) -> bool:
    """Whether the iteration result feeds straight into ``sorted(...)``."""
    parent = ctx.parent_map().get(node)
    return (isinstance(parent, ast.Call)
            and ctx.resolve_call(parent) == "sorted")


@rule("DET004", "code", "iteration order from set/environ",
      severity=Severity.WARNING,
      rationale="set/frozenset iteration order follows PYTHONHASHSEED "
                "and os.environ order follows the parent process; both "
                "reshuffle across runs and machines.  Wrap the iterable "
                "in sorted(...) when the loop's order can reach "
                "persisted output.  Approximation: flags direct "
                "iteration over set-producing expressions and "
                "os.environ; a comprehension passed straight to "
                "sorted(...) is exempt.")
def check_unordered_iteration(ctx: CodeLintContext) -> Iterator[Finding]:
    """Flag ``for``/comprehension iteration over hash-ordered sources."""
    if ctx.is_test:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters = [node.iter]
            exempt = False
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters = [gen.iter for gen in node.generators]
            exempt = _sorted_wraps(node, ctx)
        else:
            continue
        if exempt:
            continue
        for it in iters:
            if _is_set_producing(it, ctx):
                yield Finding(
                    "iterating a set/frozenset: order follows "
                    "PYTHONHASHSEED; sort it (or iterate a list) when "
                    "order can reach output",
                    location=ctx.where(node), index=node.lineno)
            elif ctx.resolve(it) == "os.environ":
                yield Finding(
                    "iterating os.environ: order is inherited from the "
                    "parent process; sort the keys",
                    location=ctx.where(node), index=node.lineno)


def _dumps_without_sort_keys(node: ast.AST,
                             ctx: CodeLintContext) -> Iterator[ast.Call]:
    for call in ast.walk(node):
        if not isinstance(call, ast.Call):
            continue
        if ctx.resolve_call(call) != "json.dumps":
            continue
        sort_keys = next((kw.value for kw in call.keywords
                          if kw.arg == "sort_keys"), None)
        if sort_keys is None or (isinstance(sort_keys, ast.Constant)
                                 and not sort_keys.value):
            yield call


@rule("DET005", "code", "non-canonical JSON reaches a persistence sink",
      severity=Severity.ERROR,
      rationale="json.dumps without sort_keys=True serialises dicts in "
                "construction order, so two semantically identical "
                "payloads can differ byte-wise -- poison for checksums, "
                "content-addressed caches and byte-identical artefact "
                "diffs.  Approximation: flags dumps(...) nested "
                "directly inside a write sink (write_text/write_bytes/"
                ".write/atomic_write_text); prefer "
                "repro.runner.atomic.canonical_json.")
def check_noncanonical_json(ctx: CodeLintContext) -> Iterator[Finding]:
    """Flag ``json.dumps`` without ``sort_keys=True`` feeding a sink."""
    if ctx.is_test:
        return
    for call in _calls(ctx):
        func = call.func
        is_sink = (isinstance(func, ast.Attribute)
                   and func.attr in _PERSIST_SINKS)
        if not is_sink:
            name = ctx.resolve_call(call)
            is_sink = name in _PERSIST_SINK_CALLS
        if not is_sink:
            continue
        for arg in [*call.args, *[kw.value for kw in call.keywords]]:
            for dumps in _dumps_without_sort_keys(arg, ctx):
                yield Finding(
                    "json.dumps(...) without sort_keys=True is written "
                    "to disk; key order is dict construction order -- "
                    "use sort_keys=True or canonical_json",
                    location=ctx.where(dumps), index=dumps.lineno)
