"""Suppression-hygiene rules (``CODE0xx``) for the ``code`` pack.

Per-line ``# repro: lint-disable=ID`` suppressions are the pack's
escape hatch; these rules keep the hatch itself from rotting:

* ``CODE001`` -- a suppression naming a rule that does not exist (or
  belongs to a non-code pack) suppresses nothing and usually means a
  typo'd ID silently letting the original finding through... except the
  finding *does* fire, so the author is left confused.  Flag the comment.
* ``CODE002`` -- a suppression whose rule produced no finding on that
  line.  Stale suppressions accumulate as the code under them changes;
  each one is a license to reintroduce the defect unnoticed.  This rule
  is *synthesised* by :func:`repro.lint.code.lint_code_file` after the
  pack runs (a rule function cannot know which findings fired); it is
  registered here so it has a stable ID, severity, catalog entry and a
  working ``--select`` / ``--ignore`` / ``LintConfig`` story.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.lint.code.context import CodeLintContext
from repro.lint.core import Finding, Severity, get_rule, is_known_rule, rule


@rule("CODE001", "code", "suppression of unknown rule ID",
      severity=Severity.WARNING,
      rationale="A lint-disable comment naming an unknown (or non-code-"
                "pack) rule ID suppresses nothing; it is almost always "
                "a typo that leaves the author believing a finding is "
                "handled.")
def check_unknown_suppression(ctx: CodeLintContext) -> Iterator[Finding]:
    """Flag ``lint-disable`` comments naming unknown rule IDs."""
    for lineno in sorted(ctx.suppressions):
        for rid in sorted(ctx.suppressions[lineno]):
            if not is_known_rule(rid) or get_rule(rid).pack != "code":
                yield Finding(
                    f"lint-disable names {rid!r}, which is not a "
                    "code-pack rule; the suppression has no effect",
                    location=f"{ctx.path}:{lineno}", index=lineno)


@rule("CODE002", "code", "unused suppression",
      severity=Severity.WARNING,
      rationale="A lint-disable comment whose rule no longer fires on "
                "that line is a standing license to silently "
                "reintroduce the defect; delete it when the code it "
                "excused goes away.  (Synthesised after the pack runs; "
                "see repro.lint.code.lint_code_file.)")
def check_unused_suppression(ctx: CodeLintContext) -> Iterator[Finding]:
    """Placeholder: findings are synthesised by ``lint_code_file``."""
    return iter(())


@rule("CODE003", "code", "file does not parse",
      severity=Severity.ERROR,
      rationale="A file the analyzer cannot parse is a file none of the "
                "determinism/IO/event guarantees are checked on; the "
                "gate must fail loudly, not skip it.  (Synthesised by "
                "the front door when ast.parse raises.)")
def check_parses(ctx: CodeLintContext) -> Iterator[Finding]:
    """Placeholder: a context only exists for files that parsed."""
    return iter(())
