"""Event-conformance rule pack (``OBS0xx``) over Python source.

:data:`repro.obs.events.EVENT_CATALOG` pins the journal vocabulary at
runtime -- :meth:`~repro.obs.bus.EventBus.emit` raises on an unknown
name or missing key.  But runtime validation only fires on the paths a
test happens to execute; these rules cross-check every ``emit(...)``
call site statically, so a drifting event name or payload is caught at
review time even on a cold branch.

Only call sites with a *literal* event name are checked (a forwarding
wrapper like ``CountingEventBus.emit(name, **data)`` is invisible to
static analysis, by design), and payload-key checking skips calls that
splat ``**payload`` -- the catalog floor cannot be established there.

Context object: :class:`repro.lint.code.context.CodeLintContext`.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.code.context import CodeLintContext
from repro.lint.core import Finding, Severity, rule
from repro.obs.events import EVENT_CATALOG


def _emit_calls(ctx: CodeLintContext) -> Iterator[tuple[ast.Call, str]]:
    """Every ``*.emit("literal", ...)`` call site in the file."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
            continue
        if not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            yield node, first.value


@rule("OBS001", "code", "emit of unknown event name",
      severity=Severity.ERROR,
      rationale="Event names are part of the journal schema; an unknown "
                "name raises JournalError at runtime -- on whatever "
                "rare path finally reaches the call site, usually in "
                "production.  Catching it statically costs nothing.  "
                "Adding a genuinely new event means extending "
                "EVENT_CATALOG (a schema decision), not this "
                "suppression table.")
def check_unknown_event(ctx: CodeLintContext) -> Iterator[Finding]:
    """Flag ``emit`` calls whose literal name is not in the catalog."""
    for call, name in _emit_calls(ctx):
        if name not in EVENT_CATALOG:
            yield Finding(
                f"emit({name!r}): not a catalogued event name; "
                f"stable names: {', '.join(sorted(EVENT_CATALOG))}",
                location=ctx.where(call), index=call.lineno)


@rule("OBS002", "code", "emit missing required payload keys",
      severity=Severity.ERROR,
      rationale="The catalog pins a payload floor per event so journals "
                "written today stay machine-readable tomorrow; a "
                "missing key raises at runtime on the emitting path.  "
                "Checked only when every payload key is a literal "
                "keyword (calls that splat **payload are skipped).")
def check_missing_keys(ctx: CodeLintContext) -> Iterator[Finding]:
    """Flag literal ``emit`` calls lacking catalogued payload keys."""
    for call, name in _emit_calls(ctx):
        required = EVENT_CATALOG.get(name)
        if required is None:
            continue  # OBS001's finding; don't double-report
        if any(kw.arg is None for kw in call.keywords):
            continue  # **payload: keys not statically knowable
        provided = {kw.arg for kw in call.keywords}
        missing = [key for key in required if key not in provided]
        if missing:
            yield Finding(
                f"emit({name!r}) is missing required payload key(s) "
                f"{', '.join(repr(k) for k in missing)}",
                location=ctx.where(call), index=call.lineno)


@rule("OBS003", "code", "emit from a worker-side module",
      severity=Severity.ERROR,
      rationale="Exactly one process -- the campaign parent -- writes a "
                "journal (docs/observability.md).  Worker-side modules "
                "(repro.runner.evaluate, repro.perf.executor) must ship "
                "facts back inside UnitOutcome for the parent to replay "
                "at the in-order effect point; a direct emit there "
                "forks the event stream and breaks byte-identical "
                "journals across worker counts.")
def check_worker_emit(ctx: CodeLintContext) -> Iterator[Finding]:
    """Flag any ``emit`` attribute call inside worker-side modules."""
    if not ctx.is_worker_module:
        return
    for node in ast.walk(ctx.tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"):
            yield Finding(
                f"emit(...) in worker-side module {ctx.module}; return "
                "facts via UnitOutcome and let the parent replay them",
                location=ctx.where(node), index=node.lineno)
