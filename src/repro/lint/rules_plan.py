"""Test-plan / stress-suite rule pack (``PLAN0xx``).

Checks over a suite of :class:`repro.stress.StressCondition` corners and
(optionally) the evaluated :class:`repro.core.testplan.TestPlan` subsets
of a :class:`~repro.core.testplan.TestPlanOptimizer` run.  The paper's
closing recommendation -- combine the best algorithms with *specific*
stress conditions -- presumes the condition suite itself is sound: no
duplicated corners burning test time, a very-low-voltage leg for
bridges, a fast leg for timing faults, and a DPM target that some
condition subset can actually reach.

Context object: :class:`PlanLintContext`.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.circuit.technology import Technology
from repro.core.testplan import TestPlan
from repro.lint.core import Finding, Severity, rule
from repro.stress import StressCondition

#: A suite "has an at-speed leg" when its fastest corner runs at no more
#: than this fraction of the slowest corner's period (the paper's suite:
#: 15 ns at-speed vs 100 ns standard, ratio 0.15).
ATSPEED_PERIOD_RATIO = 0.5

#: The paper's VLV guideline: stress voltage at most 2.5 x VT.
VLV_VT_RATIO = 2.5


@dataclass(frozen=True)
class PlanLintContext:
    """Input to the plan pack.

    Attributes:
        conditions: Name -> stress condition suite under check.
        tech: Technology corner for voltage-window rules (PLAN004/005);
            when ``None`` those rules are skipped.
        plans: Evaluated condition subsets (``optimizer.all_plans()``),
            enabling the reachability rule PLAN003.
        target_dpm: DPM target the plan must meet (PLAN003).
    """

    conditions: dict[str, StressCondition]
    tech: Technology | None = None
    plans: list[TestPlan] | None = None
    target_dpm: float | None = None


@rule("PLAN001", "plan", "duplicate stress conditions",
      severity=Severity.WARNING,
      rationale="Two corners with identical (Vdd, period, temperature) "
                "catch identical defects; the second one is pure test "
                "time (the paper's Section 5 is about *removing* "
                "redundant corners).")
def check_duplicate_conditions(ctx: PlanLintContext) -> Iterator[Finding]:
    seen: dict[tuple[float, float, float], str] = {}
    for name, cond in ctx.conditions.items():
        key = (cond.vdd, cond.period, cond.temperature)
        if key in seen:
            yield Finding(
                f"condition {name!r} duplicates {seen[key]!r} "
                f"({cond.vdd:g} V, {cond.period * 1e9:g} ns, "
                f"{cond.temperature:g} C)", location=name)
        else:
            seen[key] = name


@rule("PLAN002", "plan", "no at-speed leg",
      severity=Severity.WARNING,
      rationale="Resistive opens and other timing-related defects only "
                "manifest at high frequency (paper Section 4.3); a suite "
                "whose corners all run at the slow production period "
                "cannot catch them.")
def check_atspeed_leg(ctx: PlanLintContext) -> Iterator[Finding]:
    if not ctx.conditions:
        return
    periods = [c.period for c in ctx.conditions.values()]
    fastest, slowest = min(periods), max(periods)
    if fastest > ATSPEED_PERIOD_RATIO * slowest:
        yield Finding(
            f"no at-speed leg: the fastest corner ({fastest * 1e9:g} ns) "
            f"is within {ATSPEED_PERIOD_RATIO:g}x of the slowest "
            f"({slowest * 1e9:g} ns); timing-related defects escape")


@rule("PLAN003", "plan", "DPM target unreachable",
      severity=Severity.ERROR,
      rationale="If no condition subset reaches the quality target, the "
                "plan search will silently return 'unreachable' in "
                "production; better to fail the plan review up front.")
def check_dpm_reachable(ctx: PlanLintContext) -> Iterator[Finding]:
    if ctx.plans is None or ctx.target_dpm is None or not ctx.plans:
        return
    best = min(ctx.plans, key=lambda p: p.dpm)
    if best.dpm > ctx.target_dpm:
        yield Finding(
            f"target of {ctx.target_dpm:g} DPM is unreachable: the best "
            f"subset ({'+'.join(best.conditions)}) only achieves "
            f"{best.dpm:.0f} DPM")


@rule("PLAN004", "plan", "no very-low-voltage leg",
      severity=Severity.WARNING,
      rationale="Resistive bridges hide at nominal voltage and are "
                "exposed at VLV (paper Section 4.1, guideline "
                "2..2.5 x VT); a suite without a VLV corner ships "
                "bridge escapes.")
def check_vlv_leg(ctx: PlanLintContext) -> Iterator[Finding]:
    if ctx.tech is None or not ctx.conditions:
        return
    ceiling = VLV_VT_RATIO * ctx.tech.vth_n
    if not any(c.vdd <= ceiling for c in ctx.conditions.values()):
        yield Finding(
            f"no very-low-voltage leg: no corner at or below "
            f"{VLV_VT_RATIO:g} x VT ({ceiling:.2f} V); resistive "
            "bridges escape")


@rule("PLAN005", "plan", "condition outside technology window",
      severity=Severity.ERROR,
      rationale="A corner above the technology's maximum supply "
                "overstresses (and can damage) good devices; one below "
                "threshold cannot operate the array at all -- both "
                "invalidate every measurement taken there.")
def check_supply_window(ctx: PlanLintContext) -> Iterator[Finding]:
    if ctx.tech is None:
        return
    for name, cond in ctx.conditions.items():
        if cond.vdd > ctx.tech.vdd_max + 1e-9:
            yield Finding(
                f"condition {name!r} at {cond.vdd:g} V exceeds the "
                f"technology maximum supply ({ctx.tech.vdd_max:g} V)",
                location=name)
        elif cond.vdd < ctx.tech.vth_n:
            yield Finding(
                f"condition {name!r} at {cond.vdd:g} V is below the "
                f"NMOS threshold ({ctx.tech.vth_n:g} V); the array "
                "cannot operate", location=name)


@rule("PLAN006", "plan", "empty condition suite",
      severity=Severity.ERROR,
      rationale="A plan with no stress conditions tests nothing.")
def check_nonempty(ctx: PlanLintContext) -> Iterator[Finding]:
    if not ctx.conditions:
        yield Finding("the condition suite is empty")
