"""Rule engine for the ``repro.lint`` static-analysis subsystem.

The industrial flow of the paper works because malformed inputs are
rejected *before* the expensive steps: a broken test program never
reaches the ATE and a broken extracted netlist never reaches the
analogue simulator.  This module is the framework half of that guard:

* :class:`Rule` -- one named check with a stable ID (``NET001``,
  ``MARCH003``, ``PLAN002``, ...), a default :class:`Severity`, a title
  and a rationale.  Rules are plain generator functions registered with
  the :func:`rule` decorator and grouped into *packs* (``netlist``,
  ``march``, ``plan``).
* :class:`LintConfig` -- per-run configuration: rule suppression,
  severity overrides and a minimum reported severity.
* :func:`run_pack` -- apply every registered rule of a pack to a
  context object, producing a :class:`LintReport`.

The rule packs themselves live in :mod:`repro.lint.rules_netlist`,
:mod:`repro.lint.rules_march` and :mod:`repro.lint.rules_plan`;
reporters (text/JSON, CI exit codes) in :mod:`repro.lint.report`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

#: CI exit codes contract of ``repro lint`` (see docs/static_analysis.md):
#: 0 clean, 1 warnings remain under ``--strict`` (warnings-as-errors),
#: 2 error-severity findings.
EXIT_CLEAN = 0
EXIT_WARNINGS = 1
EXIT_ERRORS = 2


class Severity(Enum):
    """Severity of a finding; ordering is INFO < WARNING < ERROR."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """What a rule function yields: a message plus optional anchors.

    Attributes:
        message: Human-readable description of the problem.
        location: Where in the linted object the problem sits (a node
            name, ``"element 3"``, a condition name, ...).
        index: Numeric position when the object is a sequence; used by
            compatibility shims that must reproduce legacy issue order.
    """

    message: str
    location: str | None = None
    index: int | None = None


@dataclass(frozen=True)
class LintIssue:
    """One finding, bound to the rule that produced it."""

    rule_id: str
    severity: Severity
    message: str
    pack: str
    location: str | None = None
    index: int | None = None

    def __str__(self) -> str:
        where = f" ({self.location})" if self.location else ""
        return f"[{self.severity}] {self.rule_id}: {self.message}{where}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "pack": self.pack,
            "location": self.location,
        }


CheckFn = Callable[[Any], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """A registered static-analysis rule.

    Attributes:
        rule_id: Stable identifier (``NET001`` ...); never reused once
            published, even if the rule is retired.
        pack: Rule-pack name (``netlist`` / ``march`` / ``plan``).
        title: One-line summary for ``repro lint --list-rules``.
        default_severity: Severity unless overridden by config.
        rationale: Why the rule exists (shown in the catalog docs).
        check: Generator of :class:`Finding` for a pack context object.
    """

    rule_id: str
    pack: str
    title: str
    default_severity: Severity
    rationale: str
    check: CheckFn


_REGISTRY: dict[str, Rule] = {}
_PACKS: dict[str, list[Rule]] = {}


def rule(rule_id: str, pack: str, title: str,
         severity: Severity = Severity.ERROR,
         rationale: str = "") -> Callable[[CheckFn], CheckFn]:
    """Decorator registering a check function as a :class:`Rule`."""

    def register(fn: CheckFn) -> CheckFn:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id: {rule_id}")
        r = Rule(rule_id, pack, title, severity, rationale, fn)
        _REGISTRY[rule_id] = r
        _PACKS.setdefault(pack, []).append(r)
        return fn

    return register


def get_rule(rule_id: str) -> Rule:
    """Look up a rule by ID (``KeyError`` with choices when unknown)."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def is_known_rule(rule_id: str) -> bool:
    """Whether ``rule_id`` names a registered rule."""
    return rule_id in _REGISTRY


def expand_rule_selectors(tokens: Iterable[str]) -> frozenset[str]:
    """Expand ``--select`` / ``--ignore`` tokens into concrete rule IDs.

    A token is either an exact rule ID (``DET003``) or a prefix matching
    one or more registered rules (``DET`` selects every determinism
    rule; ``MARCH00`` selects MARCH001..MARCH009).

    Raises:
        KeyError: a token matches no registered rule at all -- typo'd
            filters silently selecting nothing are how gates rot.
    """
    ids: set[str] = set()
    for token in tokens:
        if token in _REGISTRY:
            ids.add(token)
            continue
        matches = [rid for rid in _REGISTRY if rid.startswith(token)]
        if not matches:
            raise KeyError(
                f"unknown rule or rule prefix {token!r}; "
                f"known: {sorted(_REGISTRY)}")
        ids.update(matches)
    return frozenset(ids)


def all_rules() -> list[Rule]:
    """Every registered rule in registration order."""
    return [r for rules in _PACKS.values() for r in rules]


def rules_for_pack(pack: str) -> list[Rule]:
    """The rules of one pack, in registration order."""
    return list(_PACKS.get(pack, []))


def pack_names() -> list[str]:
    return list(_PACKS)


@dataclass(frozen=True)
class LintConfig:
    """Per-run configuration.

    Attributes:
        disabled: Rule IDs to suppress entirely.
        severity_overrides: Rule ID -> severity replacing the default
            (e.g. promote a warning to error for a strict CI lane).
        min_severity: Findings below this severity are dropped.
        selected: When not ``None``, only these rule IDs run at all
            (``--select``); ``disabled`` still subtracts from the
            selection (``--ignore`` wins over ``--select``).
    """

    disabled: frozenset[str] = frozenset()
    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)
    min_severity: Severity = Severity.INFO
    selected: frozenset[str] | None = None

    def disable(self, *rule_ids: str) -> "LintConfig":
        """A copy with additional rules suppressed."""
        for rid in rule_ids:
            get_rule(rid)  # validate early: typo'd suppressions are bugs
        return LintConfig(self.disabled | frozenset(rule_ids),
                          dict(self.severity_overrides), self.min_severity,
                          self.selected)

    def select(self, *rule_ids: str) -> "LintConfig":
        """A copy restricted to these rules (added to any selection)."""
        for rid in rule_ids:
            get_rule(rid)
        selected = (self.selected or frozenset()) | frozenset(rule_ids)
        return LintConfig(self.disabled, dict(self.severity_overrides),
                          self.min_severity, selected)

    def override(self, rule_id: str, severity: Severity) -> "LintConfig":
        """A copy with one rule's severity replaced."""
        get_rule(rule_id)
        overrides = dict(self.severity_overrides)
        overrides[rule_id] = severity
        return LintConfig(self.disabled, overrides, self.min_severity,
                          self.selected)

    def runs(self, rule_id: str) -> bool:
        """Whether a rule survives the selection/suppression filters."""
        if rule_id in self.disabled:
            return False
        return self.selected is None or rule_id in self.selected


@dataclass
class LintReport:
    """The outcome of running one rule pack over one target.

    Attributes:
        target: Label of the linted object (``"march:MATS"``, ...).
        pack: Rule pack that ran.
        issues: Findings in rule-registration order.
        rules_run: Number of rules executed (after suppression).
    """

    target: str
    pack: str
    issues: list[LintIssue]
    rules_run: int

    def count(self, severity: Severity) -> int:
        return sum(1 for i in self.issues if i.severity is severity)

    @property
    def errors(self) -> list[LintIssue]:
        return [i for i in self.issues if i.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[LintIssue]:
        return [i for i in self.issues if i.severity is Severity.WARNING]

    @property
    def clean(self) -> bool:
        return not self.issues

    def exit_code(self, strict: bool = False) -> int:
        """CI exit code: 0 clean, 1 warnings under ``strict``, 2 errors."""
        if self.errors:
            return EXIT_ERRORS
        if strict and self.warnings:
            return EXIT_WARNINGS
        return EXIT_CLEAN


def combined_exit_code(reports: Iterable[LintReport],
                       strict: bool = False) -> int:
    """The worst exit code across several reports."""
    return max((r.exit_code(strict) for r in reports), default=EXIT_CLEAN)


class LintError(ValueError):
    """Raised by ``assert_*_clean`` helpers when errors are present."""

    def __init__(self, report: LintReport) -> None:
        self.report = report
        details = "; ".join(str(i) for i in report.errors)
        super().__init__(
            f"{report.pack} lint of {report.target or 'target'} found "
            f"{len(report.errors)} error(s): {details}"
        )


def run_pack(pack: str, context: Any, config: LintConfig | None = None,
             target: str = "") -> LintReport:
    """Apply every rule of ``pack`` to ``context``.

    Args:
        pack: Registered pack name.
        context: The pack's context object (see each ``rules_*`` module).
        config: Suppression/severity configuration.
        target: Label recorded in the report.
    """
    cfg = config if config is not None else LintConfig()
    rules = rules_for_pack(pack)
    if not rules:
        raise KeyError(f"unknown rule pack {pack!r}; known: {pack_names()}")
    issues: list[LintIssue] = []
    rules_run = 0
    for r in rules:
        if not cfg.runs(r.rule_id):
            continue
        rules_run += 1
        severity = cfg.severity_overrides.get(r.rule_id, r.default_severity)
        if severity.rank < cfg.min_severity.rank:
            continue
        for finding in r.check(context):
            issues.append(LintIssue(r.rule_id, severity, finding.message,
                                    r.pack, finding.location, finding.index))
    return LintReport(target, pack, issues, rules_run)
