"""``repro.lint``: unified static analysis for the reproduction's inputs.

A pluggable rule engine (:mod:`repro.lint.core`) with three shipped rule
packs, mirroring the pre-ATE / pre-simulator input validation the
paper's industrial flow relies on:

* ``netlist`` (``NET0xx``) -- ERC over :class:`repro.circuit.netlist.Netlist`
  before it reaches the Newton solver;
* ``march`` (``MARCH0xx``) -- march-test lint; the engine behind
  :mod:`repro.march.validation`'s compatible ``validate`` API;
* ``plan`` (``PLAN0xx``) -- stress-suite / test-plan review.

Front doors: :func:`lint_netlist`, :func:`lint_march`, :func:`lint_plan`
(each returns a :class:`LintReport`), :func:`assert_netlist_clean`
(raises :class:`LintError` on error-severity findings; used by
:mod:`repro.defects.injection`), and ``python -m repro lint`` on the
command line.  The rule catalog is documented in
``docs/static_analysis.md``.
"""

from __future__ import annotations

from repro.lint.core import (
    EXIT_CLEAN,
    EXIT_ERRORS,
    EXIT_WARNINGS,
    Finding,
    LintConfig,
    LintError,
    LintIssue,
    LintReport,
    Rule,
    Severity,
    all_rules,
    combined_exit_code,
    expand_rule_selectors,
    get_rule,
    is_known_rule,
    pack_names,
    rule,
    rules_for_pack,
    run_pack,
)

# Importing the rule modules registers the shipped packs.  The ``code``
# pack (repro.lint.code) registers itself the same way but is imported
# lazily by lint_code: it pulls in repro.obs for the event catalog,
# which lightweight consumers of the input packs should not pay for.
from repro.lint import rules_march as _rules_march  # noqa: F401
from repro.lint import rules_netlist as _rules_netlist  # noqa: F401
from repro.lint import rules_plan as _rules_plan  # noqa: F401
from repro.lint.report import as_json_document, render_json, render_text
from repro.lint.rules_netlist import NetlistLintContext
from repro.lint.rules_plan import PlanLintContext

__all__ = [
    "EXIT_CLEAN",
    "EXIT_ERRORS",
    "EXIT_WARNINGS",
    "Finding",
    "LintConfig",
    "LintError",
    "LintIssue",
    "LintReport",
    "NetlistLintContext",
    "PlanLintContext",
    "Rule",
    "Severity",
    "all_rules",
    "as_json_document",
    "assert_netlist_clean",
    "combined_exit_code",
    "expand_rule_selectors",
    "get_rule",
    "is_known_rule",
    "lint_march",
    "lint_netlist",
    "lint_plan",
    "pack_names",
    "render_json",
    "render_text",
    "rule",
    "rules_for_pack",
    "run_pack",
]


def lint_netlist(netlist, tech=None, config: LintConfig | None = None,
                 target: str = "") -> LintReport:
    """Run the netlist ERC pack (``NET0xx``).

    Args:
        netlist: A :class:`repro.circuit.netlist.Netlist`.
        tech: Optional :class:`~repro.circuit.technology.Technology` for
            parameter-bound rules.
        config: Suppression/severity configuration.
        target: Label recorded in the report (defaults to the netlist
            title).
    """
    context = NetlistLintContext(netlist, tech)
    label = target or f"netlist:{netlist.title or '<untitled>'}"
    return run_pack("netlist", context, config, label)


def lint_march(test, config: LintConfig | None = None,
               target: str = "") -> LintReport:
    """Run the march-test pack (``MARCH0xx``) on a ``MarchTest``."""
    label = target or f"march:{getattr(test, 'name', '<anonymous>')}"
    return run_pack("march", test, config, label)


def lint_plan(conditions, tech=None, plans=None, target_dpm=None,
              config: LintConfig | None = None,
              target: str = "plan") -> LintReport:
    """Run the plan pack (``PLAN0xx``) on a stress-condition suite.

    Args:
        conditions: Name -> :class:`repro.stress.StressCondition`.
        tech: Optional technology for the voltage-window rules.
        plans: Optional evaluated subsets
            (:meth:`repro.core.testplan.TestPlanOptimizer.all_plans`).
        target_dpm: Optional DPM target for the reachability rule.
        config: Suppression/severity configuration.
        target: Label recorded in the report.
    """
    context = PlanLintContext(dict(conditions), tech,
                              list(plans) if plans is not None else None,
                              target_dpm)
    return run_pack("plan", context, config, target)


def assert_netlist_clean(netlist, tech=None,
                         config: LintConfig | None = None,
                         target: str = "") -> LintReport:
    """ERC gate: raise :class:`LintError` on error-severity findings.

    Warnings and info findings are tolerated (they are present in the
    returned report).  This is the check :mod:`repro.defects.injection`
    applies to every injected-defect netlist before simulation.
    """
    report = lint_netlist(netlist, tech, config, target)
    if report.errors:
        raise LintError(report)
    return report
