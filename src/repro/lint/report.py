"""Reporters for lint results: human text and CI-friendly JSON.

The JSON schema (version 1), asserted by ``tests/lint/test_engine.py``::

    {
      "version": 1,
      "tool": "repro.lint",
      "summary": {
        "targets": <int>, "rules_run": <int>,
        "errors": <int>, "warnings": <int>, "info": <int>,
        "exit_code": <0|1|2>
      },
      "issues": [
        {
          "target": <str>, "pack": <str>, "rule": <str>,
          "severity": "error"|"warning"|"info",
          "message": <str>, "location": <str|null>
        }, ...
      ]
    }

Exit-code contract (also exposed as ``EXIT_*`` in
:mod:`repro.lint.core`): 0 = clean, 1 = warnings present and
warnings-as-errors requested (``--strict``), 2 = errors present.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from typing import Any

from repro.lint.core import LintReport, Severity, combined_exit_code


def render_text(reports: Iterable[LintReport], verbose: bool = False) -> str:
    """Render reports as readable text, one section per dirty target."""
    reports = list(reports)
    lines: list[str] = []
    for report in reports:
        if report.clean:
            if verbose:
                lines.append(f"{report.target or report.pack}: ok")
            continue
        lines.append(f"== {report.target or report.pack} ==")
        lines.extend(f"  {issue}" for issue in report.issues)
    lines.append(_summary_line(reports))
    return "\n".join(lines)


def render_json(reports: Iterable[LintReport], strict: bool = False,
                indent: int | None = 2) -> str:
    """Render reports as the version-1 JSON document."""
    return json.dumps(as_json_document(list(reports), strict), indent=indent)


def as_json_document(reports: Sequence[LintReport],
                     strict: bool = False) -> dict[str, Any]:
    issues = [
        dict(issue.to_dict(), target=report.target)
        for report in reports for issue in report.issues
    ]
    return {
        "version": 1,
        "tool": "repro.lint",
        "summary": {
            "targets": len(reports),
            "rules_run": sum(r.rules_run for r in reports),
            "errors": _count(reports, Severity.ERROR),
            "warnings": _count(reports, Severity.WARNING),
            "info": _count(reports, Severity.INFO),
            "exit_code": combined_exit_code(reports, strict),
        },
        "issues": issues,
    }


def _count(reports: Sequence[LintReport], severity: Severity) -> int:
    return sum(r.count(severity) for r in reports)


def _summary_line(reports: Sequence[LintReport]) -> str:
    return (
        f"{_count(reports, Severity.ERROR)} error(s), "
        f"{_count(reports, Severity.WARNING)} warning(s), "
        f"{_count(reports, Severity.INFO)} info across "
        f"{len(reports)} target(s)"
    )
