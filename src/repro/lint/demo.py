"""Deliberately broken inputs for demos, docs and CI smoke tests.

``python -m repro lint netlist:demo-broken`` lints
:func:`demo_broken_netlist` and must exit 2 with NET001 and NET003
findings -- the canary asserting the ERC path stays wired end to end.
"""

from __future__ import annotations

from repro.circuit.devices import Mosfet, MosType, Resistor
from repro.circuit.netlist import Netlist
from repro.circuit.technology import CMOS018, Technology
from repro.memory.cell import SixTCell


def demo_broken_netlist(tech: Technology = CMOS018) -> Netlist:
    """A 6T-cell netlist with two classic construction bugs.

    * ``Mstray`` has its gate on ``floating_gate``, a node nothing
      drives (NET001 floating node, NET002 dangling net);
    * ``Rbridge_bad`` bridges the storage node to ``no_such_net``, a
      net that exists nowhere in the base circuit (NET003).
    """
    cell = SixTCell(tech)
    nl = cell.standalone_netlist(tech.vdd_nominal, 1)
    nl.title = "demo-broken"
    nl.add(Mosfet("Mstray", MosType.NMOS, cell.node("t"), "floating_gate",
                  "0", 1.0, tech))
    nl.add(Resistor("Rbridge_bad", cell.node("t"), "no_such_net", 1e3))
    return nl


def demo_broken_march_notation() -> str:
    """Notation of a march test tripping MARCH004 and MARCH011."""
    return "*(w0); ^(r1,w0); v(r0,r1,w0)"
