"""March-test rule pack (``MARCH0xx``).

The framework migration of :mod:`repro.march.validation` plus new
checks.  Rules MARCH001..MARCH009 are the original validator's checks
(same messages, same severities); :func:`repro.march.validation.validate`
remains the backwards-compatible front door and maps these rules back to
the legacy issue codes.  MARCH010..MARCH012 are new.

Context object: a :class:`repro.march.test.MarchTest` (any object with
the same ``elements`` protocol works, including ones bypassing the
constructor -- a test with zero elements is reported as an error, not
silently accepted).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.lint.core import Finding, Severity, rule
from repro.march.element import AddressOrder
from repro.march.pause import PauseElement
from repro.march.test import MarchTest

#: Legacy ``repro.march.validation`` issue code for each migrated rule.
LEGACY_CODES: dict[str, str] = {
    "MARCH001": "no-operations",
    "MARCH002": "uninitialised-read",
    "MARCH003": "element-inconsistent",
    "MARCH004": "entry-state-mismatch",
    "MARCH005": "no-reads",
    "MARCH006": "no-read0",
    "MARCH007": "no-read1",
    "MARCH008": "weak-transitions",
    "MARCH009": "single-direction",
}


def _operational_elements(test: MarchTest) -> list:
    return [el for el in test.elements if not isinstance(el, PauseElement)]


@rule("MARCH001", "march", "test performs no operations",
      severity=Severity.ERROR,
      rationale="A test with no march elements (or only pause elements) "
                "applies nothing to the array; running it on the ATE "
                "burns test time and detects nothing.")
def check_has_operations(test: MarchTest) -> Iterator[Finding]:
    if not test.elements:
        yield Finding("test contains no elements")
    elif not _operational_elements(test):
        yield Finding("test contains only pause elements")


@rule("MARCH002", "march", "read before initialisation",
      severity=Severity.ERROR,
      rationale="Array content is undefined at power-up; a leading read "
                "compares against garbage and fails good devices.")
def check_initialisation(test: MarchTest) -> Iterator[Finding]:
    first = next(iter(_operational_elements(test)), None)
    if first is not None and first.ops[0].is_read:
        yield Finding(
            f"first element {first.notation} reads before any write; the "
            "array content is undefined at power-up",
            location="element 0", index=0)


@rule("MARCH003", "march", "element internally inconsistent",
      severity=Severity.ERROR,
      rationale="A read expecting a value other than the element's own "
                "preceding write fails on every fault-free device.")
def check_element_consistency(test: MarchTest) -> Iterator[Finding]:
    for idx, element in enumerate(test.elements):
        if not element.is_consistent():
            yield Finding(
                f"element {idx} {element.notation} reads a value that "
                "contradicts its own preceding write",
                location=f"element {idx}", index=idx)


@rule("MARCH004", "march", "entry state mismatch",
      severity=Severity.ERROR,
      rationale="Each element's first read must match the state the "
                "previous elements leave behind, or the test fails on "
                "fault-free silicon.")
def check_entry_states(test: MarchTest) -> Iterator[Finding]:
    state: int | None = None
    for idx, element in enumerate(test.elements):
        entry = element.entry_state()
        if entry is not None and state is not None and entry != state:
            yield Finding(
                f"element {idx} {element.notation} expects cells = {entry} "
                f"but the previous elements leave cells = {state}",
                location=f"element {idx}", index=idx)
        final = element.final_write_value()
        if final is not None:
            state = final


@rule("MARCH005", "march", "test performs no reads",
      severity=Severity.ERROR,
      rationale="Reads are the only observation mechanism; a test "
                "without them cannot detect any fault.")
def check_has_reads(test: MarchTest) -> Iterator[Finding]:
    if _read_count(test) == 0:
        yield Finding(
            "test performs no reads and therefore cannot detect anything")


@rule("MARCH006", "march", "never reads 0",
      severity=Severity.WARNING,
      rationale="Without a 0-read, stuck-at-1 cells escape.")
def check_reads_zero(test: MarchTest) -> Iterator[Finding]:
    if _read_count(test) and 0 not in _read_values(test):
        yield Finding("test never reads 0: stuck-at-1 cells escape")


@rule("MARCH007", "march", "never reads 1",
      severity=Severity.WARNING,
      rationale="Without a 1-read, stuck-at-0 cells escape.")
def check_reads_one(test: MarchTest) -> Iterator[Finding]:
    if _read_count(test) and 1 not in _read_values(test):
        yield Finding("test never reads 1: stuck-at-0 cells escape")


@rule("MARCH008", "march", "fewer than two write transitions",
      severity=Severity.WARNING,
      rationale="Transition faults need both an up- and a down-"
                "transition per cell to be sensitised.")
def check_transitions(test: MarchTest) -> Iterator[Finding]:
    if _read_count(test) and _transition_count(test) < 2:
        yield Finding(
            "test exercises fewer than two write transitions per cell; "
            "transition faults may escape")


@rule("MARCH009", "march", "single address direction",
      severity=Severity.WARNING,
      rationale="Address-decoder and inter-cell coupling faults need "
                "both ascending and descending passes.")
def check_directions(test: MarchTest) -> Iterator[Finding]:
    if _read_count(test) == 0:
        return
    orders = {el.order for el in _operational_elements(test)}
    if AddressOrder.UP not in orders or AddressOrder.DOWN not in orders:
        yield Finding(
            "test marches in only one address direction; address-decoder "
            "and inter-cell coupling coverage is reduced")


@rule("MARCH010", "march", "redundant march element",
      severity=Severity.INFO,
      rationale="A write-free element identical to its predecessor "
                "re-observes exactly the same state; it adds N cycles "
                "of test time with no new detection (deliberate "
                "back-to-back reads *within* one element, as in March "
                "SS/RAW, are not flagged).")
def check_redundant_elements(test: MarchTest) -> Iterator[Finding]:
    previous = None
    for idx, element in enumerate(test.elements):
        if (previous is not None
                and not isinstance(element, PauseElement)
                and element == previous
                and not element.writes):
            yield Finding(
                f"element {idx} {element.notation} repeats element "
                f"{idx - 1} without any intervening write; the second "
                "pass cannot observe anything new",
                location=f"element {idx}", index=idx)
        previous = element


@rule("MARCH011", "march", "unreachable read expectation",
      severity=Severity.ERROR,
      rationale="Two pre-write reads of opposite values inside one "
                "element can never both succeed on a fault-free device; "
                "the element-level consistency walk only cross-checks "
                "reads after the first write, so this slips past "
                "MARCH003/MARCH004.")
def check_unreachable_reads(test: MarchTest) -> Iterator[Finding]:
    for idx, element in enumerate(test.elements):
        if isinstance(element, PauseElement):
            continue
        expected: int | None = None
        for op in element.ops:
            if op.is_write:
                break
            if expected is not None and op.value != expected:
                yield Finding(
                    f"element {idx} {element.notation} reads "
                    f"{op.value} after already requiring {expected} with "
                    "no intervening write; the expectation is "
                    "unreachable", location=f"element {idx}", index=idx)
                break
            expected = op.value


@rule("MARCH012", "march", "ineffective pause placement",
      severity=Severity.WARNING,
      rationale="A retention pause only matters if written data exists "
                "before it and a read observes the decay after it; "
                "pauses placed elsewhere add wall-clock time without "
                "adding coverage (March G's published delay placement "
                "is the positive example).")
def check_pause_placement(test: MarchTest) -> Iterator[Finding]:
    elements = list(test.elements)
    any_write_before = False
    for idx, element in enumerate(elements):
        if not isinstance(element, PauseElement):
            any_write_before = any_write_before or bool(element.writes)
            continue
        if not any_write_before:
            yield Finding(
                f"pause element {idx} {element.notation} precedes any "
                "write; there is no stored data to decay",
                location=f"element {idx}", index=idx)
        elif not any(len(later.reads) > 0 for later in elements[idx + 1:]
                     if not isinstance(later, PauseElement)):
            yield Finding(
                f"pause element {idx} {element.notation} is never "
                "followed by a read; retention loss cannot be observed",
                location=f"element {idx}", index=idx)
        if idx and isinstance(elements[idx - 1], PauseElement):
            yield Finding(
                f"pause elements {idx - 1} and {idx} are adjacent; merge "
                "them into one interval",
                location=f"element {idx}", index=idx)


# ----------------------------------------------------------------------
# Helpers tolerant of zero-element test objects (MarchTest's constructor
# forbids them, but lint must not crash on hand-built or corrupted ones).
# ----------------------------------------------------------------------
def _read_count(test: MarchTest) -> int:
    return sum(len(el.reads) for el in test.elements)


def _read_values(test: MarchTest) -> set[int]:
    return {op.value for el in test.elements for op in el.reads}


def _transition_count(test: MarchTest) -> int:
    state: int | None = None
    transitions = 0
    for element in test.elements:
        for op in element.ops:
            if op.is_write:
                if state is not None and op.value != state:
                    transitions += 1
                state = op.value
    return transitions
