"""Netlist ERC rule pack (``NET0xx``).

Electrical rule checks over :class:`repro.circuit.netlist.Netlist`,
run before a netlist reaches the Newton solver -- a floating node or a
bridge spliced onto a nonexistent net otherwise surfaces as a cryptic
convergence failure deep inside :mod:`repro.circuit.solver`.

Context object: :class:`NetlistLintContext` (the netlist plus an
optional :class:`~repro.circuit.technology.Technology` for parameter
bounds).  DC reachability treats MOSFET channels (drain--source),
resistors and sources as conductive; gates and capacitors are not.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator
from dataclasses import dataclass

from repro.circuit.devices import (
    Capacitor,
    CurrentSource,
    Device,
    Mosfet,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import GROUND, Netlist
from repro.circuit.technology import Technology
from repro.lint.core import Finding, Severity, rule

#: Resistances below this are treated as hard shorts by NET005.
SHORT_RESISTANCE = 10.0

#: Resistances above this are effectively opens (NET006).
OPEN_RESISTANCE = 1e12

#: Sane MOSFET width-multiplier window (NET006); the library's largest
#: drivers are ~20x minimum size.
WIDTH_BOUNDS = (0.05, 200.0)

#: Sane two-terminal capacitor window in farads (NET006): below an aF it
#: is numerically invisible, above a nF it is not an on-chip node load.
CAPACITANCE_BOUNDS = (1e-18, 1e-9)

#: Prefixes of injected-defect elements (``Netlist.with_bridge`` /
#: ``with_open`` defaults); NET003/NET004 key on these conventions.
BRIDGE_PREFIX = "Rbridge"
OPEN_NODE_PREFIX = "_open"


@dataclass(frozen=True)
class NetlistLintContext:
    """Input to the netlist pack.

    Attributes:
        netlist: The netlist under check.
        tech: Technology corner for parameter-sanity bounds (NET006);
            when ``None`` the technology-relative checks are skipped.
    """

    netlist: Netlist
    tech: Technology | None = None


def _conductive_adjacency(nl: Netlist) -> dict[str, set[str]]:
    """Node adjacency through DC-conducting elements."""
    adj: dict[str, set[str]] = {}

    def link(a: str, b: str) -> None:
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set()).add(a)

    for dev in nl.devices():
        if isinstance(dev, Mosfet):
            link(dev.drain, dev.source)
        elif isinstance(dev, Resistor):
            link(dev.node_a, dev.node_b)
        elif isinstance(dev, (VoltageSource, CurrentSource)):
            link(dev.node_pos, dev.node_neg)
    return adj


def _driven_nodes(nl: Netlist) -> set[str]:
    """Nodes with a DC path to ground or to a voltage-source terminal."""
    roots = {GROUND}
    for src in nl.devices_of_type(VoltageSource):
        roots.add(src.node_pos)
        roots.add(src.node_neg)
    adj = _conductive_adjacency(nl)
    seen = set(roots)
    frontier = deque(roots)
    while frontier:
        node = frontier.popleft()
        for neighbour in adj.get(node, ()):
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return seen


@rule("NET001", "netlist", "floating (undriven) node",
      severity=Severity.ERROR,
      rationale="A node with no DC path to any rail or source has no "
                "defined operating point; the Newton solver fails on it "
                "with an opaque singular-matrix/convergence error.")
def check_floating_nodes(ctx: NetlistLintContext) -> Iterator[Finding]:
    driven = _driven_nodes(ctx.netlist)
    for node in ctx.netlist.nodes:
        if node not in driven:
            yield Finding(
                f"node {node!r} has no DC path to any source or rail "
                "(only gate/capacitor connections)", location=node)


@rule("NET002", "netlist", "single-terminal (dangling) node",
      severity=Severity.WARNING,
      rationale="A net touched by exactly one device terminal connects "
                "nothing to nothing -- almost always a typo'd node name "
                "left over from construction or injection.")
def check_dangling_nodes(ctx: NetlistLintContext) -> Iterator[Finding]:
    for node, devices in ctx.netlist.connectivity().items():
        if node != GROUND and len(devices) == 1:
            yield Finding(
                f"node {node!r} touches only {devices[0]!r}; the net is "
                "dangling", location=node)


@rule("NET003", "netlist", "bridge endpoint does not exist",
      severity=Severity.ERROR,
      rationale="An injected bridge must land on two nets of the base "
                "circuit; a bridge whose endpoint exists only on the "
                "bridge itself shorts to nothing and silently wastes the "
                "whole defect-simulation run.")
def check_bridge_endpoints(ctx: NetlistLintContext) -> Iterator[Finding]:
    connectivity = ctx.netlist.connectivity()
    for res in ctx.netlist.devices_of_type(Resistor):
        if not res.name.startswith(BRIDGE_PREFIX):
            continue
        for endpoint in (res.node_a, res.node_b):
            if endpoint != GROUND and connectivity.get(endpoint) == [res.name]:
                yield Finding(
                    f"bridge {res.name!r} endpoint {endpoint!r} exists "
                    "nowhere else in the netlist (bridge to a "
                    "nonexistent net)", location=endpoint)


@rule("NET004", "netlist", "malformed open splice",
      severity=Severity.ERROR,
      rationale="with_open() rewires a terminal onto an internal node "
                "and splices a resistor back to the original net; an "
                "internal node missing either side models no defect at "
                "all (the terminal simply floats).")
def check_open_splices(ctx: NetlistLintContext) -> Iterator[Finding]:
    connectivity = ctx.netlist.connectivity()
    for node, devices in connectivity.items():
        if not node.startswith(OPEN_NODE_PREFIX):
            continue
        resistors = [d for d in devices
                     if isinstance(ctx.netlist[d], Resistor)]
        if len(devices) < 2:
            yield Finding(
                f"open-splice node {node!r} touches only "
                f"{len(devices)} device(s); the rewired terminal or the "
                "splice resistor is missing", location=node)
        elif len(resistors) != 1:
            yield Finding(
                f"open-splice node {node!r} should carry exactly one "
                f"splice resistor, found {len(resistors)}", location=node)


@rule("NET005", "netlist", "direct supply-to-ground short",
      severity=Severity.ERROR,
      rationale="A hard short across a supply is a construction bug, "
                "not a resistive defect: the operating point degenerates "
                "and every downstream measurement is meaningless.")
def check_rail_shorts(ctx: NetlistLintContext) -> Iterator[Finding]:
    sources = list(ctx.netlist.devices_of_type(VoltageSource))
    for src in sources:
        if src.node_pos == src.node_neg:
            yield Finding(
                f"voltage source {src.name!r} has both terminals on "
                f"node {src.node_pos!r}", location=src.name)
    rails = {s.node_pos: s for s in sources if s.value != 0.0}
    for res in ctx.netlist.devices_of_type(Resistor):
        if res.resistance >= SHORT_RESISTANCE:
            continue
        for a, b in ((res.node_a, res.node_b), (res.node_b, res.node_a)):
            src = rails.get(a)
            if src is not None and b in (GROUND, src.node_neg):
                yield Finding(
                    f"resistor {res.name!r} ({res.resistance:g} ohm) "
                    f"shorts supply {src.name!r} node {a!r} to "
                    f"{b!r}", location=res.name)
                break


@rule("NET006", "netlist", "device parameter outside sane bounds",
      severity=Severity.WARNING,
      rationale="Widths, resistances and capacitances far outside the "
                "technology's plausible window usually mean a unit "
                "mix-up (ohms vs kilo-ohms, farads vs femtofarads) that "
                "the solver will happily -- and wrongly -- accept.")
def check_device_parameters(ctx: NetlistLintContext) -> Iterator[Finding]:
    tech = ctx.tech
    for dev in ctx.netlist.devices():
        yield from _device_parameter_findings(dev, tech)


def _device_parameter_findings(dev: Device,
                               tech: Technology | None) -> Iterator[Finding]:
    if isinstance(dev, Mosfet):
        lo, hi = WIDTH_BOUNDS
        if not lo <= dev.width <= hi:
            yield Finding(
                f"MOSFET {dev.name!r} width multiplier {dev.width:g} is "
                f"outside the sane window [{lo:g}, {hi:g}]",
                location=dev.name)
        if tech is not None and dev.tech.name != tech.name:
            yield Finding(
                f"MOSFET {dev.name!r} is bound to technology "
                f"{dev.tech.name!r} but the netlist is checked against "
                f"{tech.name!r} (mixed-technology netlist)",
                location=dev.name)
    elif isinstance(dev, Resistor):
        if dev.resistance > OPEN_RESISTANCE:
            yield Finding(
                f"resistor {dev.name!r} ({dev.resistance:g} ohm) is "
                "effectively an open circuit", location=dev.name)
    elif isinstance(dev, Capacitor):
        lo, hi = CAPACITANCE_BOUNDS
        if not lo <= dev.capacitance <= hi:
            yield Finding(
                f"capacitor {dev.name!r} ({dev.capacitance:g} F) is "
                f"outside the on-chip window [{lo:g}, {hi:g}]",
                location=dev.name)
    elif isinstance(dev, VoltageSource):
        if tech is not None and abs(dev.value) > 1.25 * tech.vdd_max:
            yield Finding(
                f"source {dev.name!r} drives {dev.value:g} V, beyond "
                f"1.25x the technology maximum supply "
                f"({tech.vdd_max:g} V)", location=dev.name)
