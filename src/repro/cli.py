"""Command-line interface: the estimator and friends without Python.

The paper's estimator was a tool handed to customers; this CLI is the
equivalent front door::

    python -m repro estimate --rows 512 --columns 16 --bits 32
    python -m repro shmoo --defect rail-bridge --resistance 240e3
    python -m repro venn --devices 11000 --seed 1105
    python -m repro plan --target-dpm 50
    python -m repro report
    python -m repro lint --format json netlist:demo-broken
    python -m repro campaign run --checkpoint ck.json --sites 2000
    python -m repro campaign run --workers 4 --cache cache.json
    python -m repro campaign resume ck.json --workers 4
    python -m repro campaign status ck.json
    python -m repro serve --db coverage.json --port 8765

Every subcommand prints the same text artefacts the library's
benchmarks assert on.
"""

from __future__ import annotations

import argparse
import sys

from repro.circuit.technology import CMOS018
from repro.memory.geometry import VEQTOR4_INSTANCE, MemoryGeometry


def _cmd_estimate(args: argparse.Namespace) -> int:
    from repro.analysis.tables import render_table1
    from repro.core.flow import MemoryTestFlow

    geometry = MemoryGeometry(args.rows, args.columns, args.bits,
                              args.blocks)
    result = MemoryTestFlow(geometry, n_sites=args.sites).run()
    report = result.bridge_report
    print(f"memory: {geometry}")
    print(f"yield:  {100 * report.yield_fraction:.2f} %\n")
    print(render_table1(report, compare_paper=not args.no_paper))
    print(f"\nDPM ratio Vmax/VLV: {report.dpm_ratio('Vmax', 'VLV'):.1f}x")
    if args.save_db:
        result.database.save(args.save_db)
        print(f"coverage database written to {args.save_db}")
    return 0


_DEFECT_PRESETS = {
    "rail-bridge": ("bridge", "cell_node_rail"),
    "node-bridge": ("bridge", "cell_node_node"),
    "bitline-bridge": ("bridge", "bitline_bitline"),
    "decoder-open": ("open", "decoder_input"),
    "bitline-open": ("open", "bitline_segment"),
    "periphery-open": ("open", "periphery_path"),
    "pullup-open": ("open", "cell_pullup"),
}


def _cmd_shmoo(args: argparse.Namespace) -> int:
    from repro.defects.behavior import DefectBehaviorModel
    from repro.defects.models import BridgeSite, Defect, DefectKind, OpenSite
    from repro.march.library import get_test
    from repro.memory.sram import Sram
    from repro.tester.ate import VirtualTester
    from repro.tester.shmoo import (
        ShmooRunner,
        default_period_axis,
        default_voltage_axis,
    )

    bus = None
    if args.journal:
        from repro.obs.bus import EventBus

        bus = EventBus(args.journal,
                       meta={"tool": "shmoo", "test": args.test,
                             "defect": args.defect or "fault-free"})
    defects = []
    if args.defect:
        if args.defect not in _DEFECT_PRESETS:
            print(f"unknown defect preset {args.defect!r}; choices: "
                  f"{sorted(_DEFECT_PRESETS)}", file=sys.stderr)
            return 2
        kind_name, site_name = _DEFECT_PRESETS[args.defect]
        kind = DefectKind(kind_name)
        site = (BridgeSite(site_name) if kind is DefectKind.BRIDGE
                else OpenSite(site_name))
        defects.append(Defect(kind, site, args.resistance, polarity=1))

    sram = Sram(MemoryGeometry(8, 2, 4), CMOS018)
    runner = ShmooRunner(VirtualTester(DefectBehaviorModel(CMOS018)),
                         get_test(args.test))
    title = (f"{args.defect} R={args.resistance:g} ohm" if args.defect
             else "fault-free")
    plot = runner.run(sram, defects, default_voltage_axis(),
                      default_period_axis(), title,
                      strategy=args.strategy, bus=bus)
    print(plot.render())
    if bus is not None:
        print(f"run journal: {args.journal} ({len(bus.events)} events)")
    stats = runner.last_stats
    if stats is not None and args.strategy == "boundary":
        print(f"boundary trace: {stats.tester_invocations} tester "
              f"invocations for {stats.grid_cells} cells "
              f"({stats.crosscheck_invocations} on the consistency "
              "sample"
              + (", exact refill triggered" if stats.fallback else "")
              + ")")
    return 0


def _cmd_venn(args: argparse.Namespace) -> int:
    from repro.analysis.figures import render_venn_comparison
    from repro.experiment.classify import StressClassifier
    from repro.experiment.population import PopulationGenerator, PopulationSpec
    from repro.experiment.venn import PAPER_VENN, VennCounts

    spec = PopulationSpec(n_devices=args.devices, seed=args.seed)
    chips = PopulationGenerator(spec).generate()
    result = StressClassifier().classify(chips)
    venn = VennCounts.from_experiment(result)
    print(f"lot: {args.devices} devices (seed {args.seed}); "
          f"standard fails {result.n_standard_fails}")
    print(render_venn_comparison(venn, PAPER_VENN))
    if args.diagnose:
        from repro.experiment.diagnosis import LotDiagnostician

        print()
        print(LotDiagnostician().diagnose(result).render())
    return 0


def _experiment_injector(args: argparse.Namespace, plan):
    """Parse ``--chaos-worker-* SHARD[:TIMES]`` into a fault injector."""
    tables: dict[str, dict[str, int]] = {}
    flags = (("worker.exit", getattr(args, "chaos_worker_exit", [])),
             ("worker.hang", getattr(args, "chaos_worker_hang", [])))
    if not any(values for _, values in flags):
        return None
    shards = plan.shards()
    for site, values in flags:
        for value in values:
            index_text, _, times_text = value.partition(":")
            try:
                index = int(index_text)
                times = int(times_text) if times_text else 1
            except ValueError:
                raise SystemExit(
                    f"--chaos-worker-*: expected SHARD[:TIMES] with "
                    f"integers, got {value!r}") from None
            if not 0 <= index < len(shards):
                raise SystemExit(
                    f"--chaos-worker-*: shard index {index} out of "
                    f"range (plan has {len(shards)} shards)")
            tables.setdefault(site, {})[shards[index].unit_id] = times
    from repro.runner.chaos import FaultInjector

    return FaultInjector(seed=args.chaos_seed, rates={},
                         worker_faults=tables)


def _cmd_experiment_run(args: argparse.Namespace) -> int:
    from repro.defects.distribution import DefectDensity
    from repro.experiment.streaming import (
        ShardPlan,
        StreamingExperiment,
        StreamingRunner,
    )

    plan_kwargs = {}
    if args.shard_devices is not None:
        plan_kwargs["shard_devices"] = args.shard_devices
    if args.block_devices is not None:
        plan_kwargs["block_devices"] = args.block_devices
    plan = ShardPlan(n_devices=args.devices, seed=args.seed,
                     scheme=args.scheme, **plan_kwargs)
    injector = _experiment_injector(args, plan)
    behavior = None
    if injector is not None:
        from repro.circuit.technology import CMOS018
        from repro.defects.behavior import DefectBehaviorModel
        from repro.runner.chaos import ChaosBehaviorModel

        behavior = ChaosBehaviorModel(DefectBehaviorModel(CMOS018),
                                      injector)
    engine = StreamingExperiment(
        n_devices=args.devices, seed=args.seed,
        density=DefectDensity(d0_per_cm2=args.d0,
                              bridge_fraction=args.bridge_fraction),
        shard_devices=args.shard_devices,
        block_devices=args.block_devices,
        scheme=args.scheme, behavior=behavior,
        diagnose=args.diagnose)
    runner = StreamingRunner(
        engine, checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        unit_deadline=args.unit_deadline, workers=args.workers,
        max_pool_rebuilds=args.max_pool_rebuilds,
        journal=args.journal,
        fault_hook=injector.check if injector is not None else None)
    result = runner.run()
    shards = len(engine.plan.shards())
    print(f"experiment complete: {args.devices} devices across "
          f"{shards} shard(s) ({result.resumed_shards} resumed from "
          f"checkpoint, {result.executed_shards} executed"
          + (f" across {args.workers} workers" if args.workers > 1 else "")
          + ")")
    print(result.render())
    if result.quarantine:
        print(f"poisoned shards: {len(result.quarantine)}")
    stats = result.supervisor_stats
    if stats is not None and any(stats.values()):
        print("pool supervision: "
              f"worker losses {stats['worker_losses']}, "
              f"rebuilds {stats['rebuilds']}, "
              f"redispatched {stats['redispatched_units']}, "
              f"poison units {stats['poison_units']}")
    if args.journal:
        print(f"run journal: {args.journal}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.core.testplan import JointCoverageTable, TestPlanOptimizer
    from repro.march.library import get_test
    from repro.stress import production_conditions

    table = JointCoverageTable(VEQTOR4_INSTANCE, CMOS018,
                               production_conditions(CMOS018),
                               n_samples=args.samples)
    optimizer = TestPlanOptimizer(table, get_test(args.test))
    print("time/DPM Pareto front:")
    for plan in optimizer.pareto_front():
        print(f"  {plan}")
    if args.target_dpm is not None:
        plan = optimizer.cheapest_meeting(args.target_dpm)
        verdict = plan if plan else "unreachable with this suite"
        print(f"\ncheapest plan meeting {args.target_dpm:g} DPM: {verdict}")
    return 0


#: Default ``repro lint`` targets: every library march test, the two
#: transistor-level netlist builders and the paper's production suite.
_DEFAULT_LINT_TARGETS = ("march:all", "netlist:cell", "netlist:decoder",
                         "plan:production")


def _lint_netlist_target(kind: str, config):
    from repro.lint import lint_netlist
    from repro.memory.cell import SixTCell
    from repro.memory.decoder import build_decoder_netlist

    vdd = CMOS018.vdd_nominal
    if kind == "cell":
        netlist = SixTCell(CMOS018).standalone_netlist(vdd, 1)
    elif kind == "decoder":
        netlist = build_decoder_netlist(CMOS018, vdd)
    elif kind == "demo-broken":
        from repro.lint.demo import demo_broken_netlist

        netlist = demo_broken_netlist(CMOS018)
    else:
        raise ValueError(
            f"unknown netlist target {kind!r}; "
            "choices: cell, decoder, demo-broken")
    return [lint_netlist(netlist, CMOS018, config, f"netlist:{kind}")]


def _lint_march_target(name: str, config):
    from repro.lint import lint_march
    from repro.march.library import STANDARD_TESTS, get_test

    if name == "all":
        return [lint_march(t, config, f"march:{n}")
                for n, t in STANDARD_TESTS.items()]
    return [lint_march(get_test(name), config, f"march:{name}")]


def _lint_code_target(paths, config):
    from repro.lint.code import lint_code_paths

    return lint_code_paths(list(paths) or ["src/repro"], config)


def _lint_plan_target(suite: str, config, args):
    from repro.lint import lint_plan
    from repro.stress import production_conditions, standard_conditions

    if suite == "production":
        conditions = production_conditions(CMOS018)
    elif suite == "standard":
        conditions = standard_conditions(CMOS018)
    else:
        raise ValueError(f"unknown plan target {suite!r}; "
                         "choices: production, standard")
    plans = None
    if args.target_dpm is not None:
        import itertools

        from repro.core.testplan import JointCoverageTable, TestPlanOptimizer
        from repro.march.library import get_test

        # Coverage is measured against the full production suite's
        # detectable-defect universe, so a reduced suite (plan:standard)
        # honestly shows the defects its subsets can never catch.
        table = JointCoverageTable(VEQTOR4_INSTANCE, CMOS018,
                                   production_conditions(CMOS018),
                                   n_samples=args.samples)
        optimizer = TestPlanOptimizer(table, get_test(args.test))
        names = list(conditions)
        plans = [optimizer.evaluate(subset)
                 for r in range(1, len(names) + 1)
                 for subset in itertools.combinations(names, r)]
    return [lint_plan(conditions, CMOS018, plans, args.target_dpm, config,
                      f"plan:{suite}")]


def _split_rule_tokens(chunks) -> list[str]:
    """Flatten repeatable comma-separated rule-ID option values."""
    return [token.strip() for chunk in chunks for token in chunk.split(",")
            if token.strip()]


def _cmd_lint(args: argparse.Namespace) -> int:
    import repro.lint.code  # noqa: F401  (registers the ``code`` pack)
    from repro.lint import (
        LintConfig,
        all_rules,
        combined_exit_code,
        render_json,
        render_text,
    )
    from repro.lint.core import expand_rule_selectors

    if args.list_rules:
        for r in all_rules():
            print(f"{r.rule_id}  [{r.default_severity}]  {r.title}")
        return 0

    config = LintConfig()
    try:
        for chunk in args.disable:
            config = config.disable(*[s.strip() for s in chunk.split(",")
                                      if s.strip()])
        ignore = _split_rule_tokens(args.ignore)
        if ignore:
            config = config.disable(*expand_rule_selectors(ignore))
        select = _split_rule_tokens(args.select)
        if select:
            config = config.select(*expand_rule_selectors(select))
    except KeyError as exc:
        print(f"repro lint: {exc.args[0]}", file=sys.stderr)
        return 2

    reports = []
    targets = args.targets or list(_DEFAULT_LINT_TARGETS)
    index = 0
    while index < len(targets):
        target = targets[index]
        index += 1
        scheme, _, rest = target.partition(":")
        try:
            if scheme == "march":
                reports.extend(_lint_march_target(rest or "all", config))
            elif scheme == "netlist":
                reports.extend(_lint_netlist_target(rest, config))
            elif scheme == "plan":
                reports.extend(_lint_plan_target(rest or "production",
                                                 config, args))
            elif scheme == "code":
                # ``code:PATH`` is a single target; a bare ``code``
                # consumes every remaining argument as a path.
                paths = [rest] if rest else targets[index:]
                if not rest:
                    index = len(targets)
                reports.extend(_lint_code_target(paths, config))
            else:
                raise ValueError(
                    f"unknown lint target {target!r}; use march:<name|all>, "
                    "netlist:<cell|decoder|demo-broken>, "
                    "plan:<production|standard> or code [PATH ...]")
        except (KeyError, ValueError, OSError) as exc:
            print(exc, file=sys.stderr)
            return 2

    if args.format == "json":
        print(render_json(reports, strict=args.strict))
    else:
        print(render_text(reports, verbose=args.verbose))
    return combined_exit_code(reports, strict=args.strict)


# ----------------------------------------------------------------------
# repro campaign -- the resilient runner front door
# ----------------------------------------------------------------------
def _campaign_tech(name: str):
    from repro.circuit.technology import CMOS013, CMOS018

    techs = {"cmos018": CMOS018, "cmos013": CMOS013}
    if name not in techs:
        raise ValueError(f"unknown technology {name!r} in checkpoint; "
                         f"choices: {sorted(techs)}")
    return techs[name]


def _campaign_flow_from_meta(meta: dict):
    """Rebuild the flow and sweep plan a checkpoint fingerprint names."""
    from repro.core.flow import MemoryTestFlow
    from repro.defects.models import DefectKind
    from repro.memory.geometry import MemoryGeometry
    from repro.runner.campaign import SweepSpec
    from repro.stress import StressCondition

    geometry = MemoryGeometry(*meta["geometry"])
    flow = MemoryTestFlow(geometry, _campaign_tech(meta["tech"]),
                          n_sites=meta["n_sites"], seed=meta["seed"])
    specs = [
        SweepSpec.of(
            DefectKind(sweep["kind"]), sweep["resistances"],
            [StressCondition(name, vdd, period, temperature)
             for name, vdd, period, temperature in sweep["conditions"]])
        for sweep in meta["sweeps"]
    ]
    return flow, specs


def _campaign_worker_faults(args: argparse.Namespace, specs):
    """Parse ``--chaos-worker-exit/-hang UNIT[:TIMES]`` into unit ids."""
    from repro.runner.units import plan_units

    tables: dict[str, dict[str, int]] = {}
    flags = (("worker.exit", getattr(args, "chaos_worker_exit", [])),
             ("worker.hang", getattr(args, "chaos_worker_hang", [])))
    if not any(values for _, values in flags):
        return tables
    units = []
    for spec in specs:
        units.extend(plan_units(spec.kind, spec.resistances,
                                spec.conditions, start_index=len(units)))
    for site, values in flags:
        for value in values:
            index_text, _, times_text = value.partition(":")
            try:
                index = int(index_text)
                times = int(times_text) if times_text else 1
            except ValueError:
                raise SystemExit(
                    f"--chaos-worker-*: expected UNIT[:TIMES] with "
                    f"integers, got {value!r}") from None
            if not 0 <= index < len(units):
                raise SystemExit(
                    f"--chaos-worker-*: unit index {index} out of "
                    f"range (plan has {len(units)} units)")
            tables.setdefault(site, {})[units[index].unit_id] = times
    return tables


def _campaign_injector(args: argparse.Namespace, specs):
    worker_faults = _campaign_worker_faults(args, specs)
    if not getattr(args, "chaos_rate", 0.0) and not worker_faults:
        return None
    from repro.runner.chaos import FaultInjector

    rates = ({"behavior.evaluate": args.chaos_rate}
             if args.chaos_rate else {})
    return FaultInjector(seed=args.chaos_seed, rates=rates,
                         worker_faults=worker_faults)


def _campaign_execute(flow, specs, args: argparse.Namespace) -> int:
    from repro.core.database import CoverageDatabase
    from repro.runner.chaos import ChaosBehaviorModel
    from repro.runner.retry import RetryPolicy

    injector = _campaign_injector(args, specs)
    if injector is not None:
        flow.campaign.behavior = ChaosBehaviorModel(
            flow.campaign.behavior, injector)
    strategy = getattr(args, "strategy", "exact")
    if strategy in ("frontier", "batch") and args.workers > 1:
        print(f"--strategy {strategy} is serial; drop --workers "
              "(its group tables already shrink the work the pool "
              "would parallelise)", file=sys.stderr)
        return 2
    runner = flow.make_runner(
        args.checkpoint,
        retry=RetryPolicy(max_attempts=args.max_attempts,
                          base_delay=0.0, jitter=0.0),
        workers=args.workers, cache=args.cache, strategy=strategy,
        unit_deadline=args.unit_deadline,
        max_pool_rebuilds=args.max_pool_rebuilds,
        chunk_deadline_factor=args.chunk_deadline_factor,
        journal=args.journal,
        fault_hook=injector.check if injector is not None else None)
    result = runner.run(specs)
    database = CoverageDatabase(result.records)
    print(f"campaign complete: {len(result.records)} records "
          f"({result.resumed_units} units resumed from checkpoint, "
          f"{result.cached_units} served from cache, "
          f"{result.executed_units} executed"
          + (f" across {args.workers} workers" if args.workers > 1 else "")
          + ")")
    print(f"quarantined sites: {len(result.quarantine)} "
          f"(site-evaluation retries: {result.retry_stats.retries})")
    if injector is not None:
        stats = injector.stats().get("behavior.evaluate",
                                     {"calls": 0, "injected": 0})
        print(f"chaos: {stats['injected']} faults injected over "
              f"{stats['calls']} evaluations "
              f"(rate {args.chaos_rate:g}, seed {args.chaos_seed})")
    ss = result.supervisor_stats
    if ss is not None and any(ss.values()):
        print(f"pool supervision: {ss['worker_losses']} worker "
              f"loss(es) ({ss['deadline_losses']} by chunk deadline), "
              f"{ss['rebuilds']} rebuild(s), "
              f"{ss['redispatched_units']} unit(s) redispatched, "
              f"{ss['poison_units']} poison unit(s) quarantined"
              + (f", {ss['degraded_units']} unit(s) DEGRADED to "
                 "serial" if ss["degraded_units"] else ""))
    if result.frontier_stats is not None:
        fs = result.frontier_stats
        print(f"frontier: {fs['model_invocations']} model invocations "
              f"over {fs['groups']} derived groups "
              f"({fs['cached_groups']} cached, "
              f"{fs['batch_sites']} batch / "
              f"{fs['analytic_sites']} analytic / "
              f"{fs['bisection_sites']} bisected / "
              f"{fs['exact_sites'] + fs['demoted_sites']} exact sites, "
              f"{fs['crosscheck_mismatches']} cross-check mismatches)")
    if result.batch_stats is not None:
        bs = result.batch_stats
        print(f"batch: {bs['model_invocations']} model invocations "
              f"over {bs['groups']} derived groups "
              f"({bs['cached_groups']} cached, "
              f"{bs['batch_sites']} batch / "
              f"{bs['fallback_sites'] + bs['demoted_sites']} fallback "
              f"sites, "
              f"{bs['crosscheck_mismatches']} cross-check mismatches)")
    if result.cache_stats is not None:
        cs = result.cache_stats
        print(f"cache: {cs['entries']} entries, "
              f"{cs['hits']} hits / {cs['misses']} misses "
              f"(hit rate {100 * cs['hit_rate']:.0f} %) -- {args.cache}")
    if args.checkpoint:
        print(f"checkpoint: {args.checkpoint}")
    if args.journal:
        print(f"run journal: {args.journal} "
              f"(inspect with: repro report {args.journal})")
    if args.save_db:
        database.save(args.save_db)
        print(f"coverage database written to {args.save_db}")
    return 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.core.flow import MemoryTestFlow
    from repro.memory.geometry import MemoryGeometry

    geometry = MemoryGeometry(args.rows, args.columns, args.bits,
                              args.blocks)
    flow = MemoryTestFlow(geometry, n_sites=args.sites, seed=args.seed)
    specs = flow.sweep_specs()
    return _campaign_execute(flow, specs, args)


def _cmd_campaign_resume(args: argparse.Namespace) -> int:
    from repro.runner.checkpoint import CampaignCheckpoint

    ckpt = CampaignCheckpoint.load(args.checkpoint)
    if ckpt.recovered_from_temp:
        print("note: checkpoint recovered from its .tmp sibling "
              "(crash between write and rename)")
    flow, specs = _campaign_flow_from_meta(ckpt.meta)
    return _campaign_execute(flow, specs, args)


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.runner.checkpoint import CampaignCheckpoint
    from repro.runner.units import plan_units

    ckpt = CampaignCheckpoint.load(args.checkpoint)
    _, specs = _campaign_flow_from_meta(ckpt.meta)
    total = 0
    for spec in specs:
        total += len(plan_units(spec.kind, spec.resistances,
                                spec.conditions, start_index=total))
    status = ckpt.status(total_units=total)
    meta = status["meta"]
    rows, columns, bits, blocks = meta["geometry"]
    print(f"checkpoint: {args.checkpoint}")
    print(f"campaign:   {rows}x{columns}x{bits}x{blocks} {meta['tech']} "
          f"sites={meta['n_sites']} seed={meta['seed']}")
    print(f"progress:   {status['completed_units']}/{status['total_units']} "
          f"units complete ({status['remaining_units']} remaining)")
    # Whole-unit (poison) quarantines carry the sentinel site_index -1
    # -- see repro.perf.supervisor.
    poison = sum(1 for entry in ckpt.quarantine
                 if entry.get("site_index", 0) < 0)
    print(f"quarantine: {status['quarantined_sites']} site(s)"
          + (f" ({poison} whole-unit poison quarantine(s))"
             if poison else ""))
    if status["recovered_from_temp"]:
        print("note: recovered from the .tmp sibling")
    if args.cache:
        from repro.perf.cache import EvaluationCache

        cache = EvaluationCache.load(args.cache)
        print(f"cache:      {args.cache} ({len(cache)} entries)")
        if cache.discarded_corrupt:
            print("cache:      CORRUPT file(s) discarded:")
            for entry in cache.corrupt_detail:
                print(f"cache:        {entry['path']}: {entry['error']}")
        if cache.recovered_from_temp:
            print("cache:      recovered from the .tmp sibling")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from repro.core.database import DatabaseCorruptError
    from repro.obs.metrics import MetricsRegistry
    from repro.service import (
        DatabaseSnapshot,
        EstimatorService,
        ServiceState,
        serve,
    )

    if args.db:
        db_path = Path(args.db)
    else:
        from repro.core.database import default_database_path

        db_path = default_database_path()
    try:
        snapshot = DatabaseSnapshot.load(db_path)
    except (FileNotFoundError, DatabaseCorruptError) as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    bus = None
    if args.journal:
        from repro.obs.bus import EventBus

        bus = EventBus(args.journal,
                       meta={"tool": "serve", "etag": snapshot.etag})
    service = EstimatorService(ServiceState(snapshot, db_path),
                               cache_size=args.cache_size, bus=bus,
                               metrics=MetricsRegistry())

    async def _run() -> None:
        server = await serve(service, args.host, args.port)
        port = server.sockets[0].getsockname()[1]
        print(f"serving on http://{args.host}:{port}", flush=True)
        print(f"database: {db_path} ({len(snapshot.database)} records, "
              f"etag {snapshot.etag[:12]}...)", flush=True)
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    finally:
        if bus is not None:
            bus.flush()
            print(f"run journal: {args.journal}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.journal:
        from repro.obs.bus import JournalError, read_journal
        from repro.obs.report import build_report, render_json, render_text

        try:
            meta, events = read_journal(args.journal)
        except (FileNotFoundError, JournalError) as exc:
            print(f"repro report: {exc}", file=sys.stderr)
            return 2
        report = build_report(meta, events)
        output = (render_json(report) if args.format == "json"
                  else render_text(report))
        print(output, end="")
        return 0
    from repro.analysis.report import full_report

    print(full_report(n_sites=args.sites, n_devices=args.devices))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memory testing under different stress conditions "
                    "(DATE 2005) -- reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("estimate",
                       help="fault coverage / DPM for a memory geometry")
    p.add_argument("--rows", type=int, default=512, help="#X rows")
    p.add_argument("--columns", type=int, default=16, help="#Y words/row")
    p.add_argument("--bits", type=int, default=32, help="#B bits/word")
    p.add_argument("--blocks", type=int, default=1, help="#Z blocks")
    p.add_argument("--sites", type=int, default=3000,
                   help="IFA site-population size")
    p.add_argument("--no-paper", action="store_true",
                   help="omit the paper's reference numbers")
    p.add_argument("--save-db", metavar="PATH",
                   help="write the coverage database as JSON")
    p.set_defaults(func=_cmd_estimate)

    p = sub.add_parser("shmoo", help="render a (Vdd, period) shmoo plot")
    p.add_argument("--defect", choices=sorted(_DEFECT_PRESETS),
                   help="defect preset (omit for fault-free)")
    p.add_argument("--resistance", type=float, default=240e3,
                   help="defect resistance in ohms")
    p.add_argument("--test", default="11N", help="march test name")
    p.add_argument("--strategy", choices=("exact", "boundary"),
                   default="exact",
                   help="grid fill: test every cell, or trace the "
                        "pass/fail boundary by bisection (identical "
                        "plot, far fewer tester invocations; see "
                        "docs/performance.md)")
    p.add_argument("--journal", metavar="PATH", default=None,
                   help="write a JSONL run journal of the sweep "
                        "(inspect with `repro report PATH`; see "
                        "docs/observability.md)")
    p.set_defaults(func=_cmd_shmoo)

    p = sub.add_parser("venn",
                       help="run the silicon-experiment simulation")
    p.add_argument("--devices", type=int, default=11000)
    p.add_argument("--seed", type=int, default=1105)
    p.add_argument("--diagnose", action="store_true",
                   help="bitmap-diagnose every interesting device")
    p.set_defaults(func=_cmd_venn)

    p = sub.add_parser(
        "experiment",
        help="streaming sharded experiment at 10^6-10^7 devices",
        description="Map-reduce the Veqtor4 virtual-silicon experiment "
                    "over block-substreamed shards: O(classes) memory, "
                    "checkpoint/resume, worker pools.  See "
                    "docs/performance.md.")
    esub = p.add_subparsers(dest="experiment_command", required=True)
    ep = esub.add_parser("run",
                         help="run (or resume) a streaming experiment")
    ep.add_argument("--devices", type=int, default=1_000_000,
                    help="population size")
    ep.add_argument("--seed", type=int, default=1105, help="root RNG seed")
    ep.add_argument("--shard-devices", type=int, default=None,
                    help="devices per shard (dispatch/checkpoint unit; "
                         "results are shard-layout invariant)")
    ep.add_argument("--block-devices", type=int, default=None,
                    help="devices per RNG block (changing it changes "
                         "the drawn population)")
    ep.add_argument("--scheme", choices=("spawn", "legacy"),
                    default="spawn",
                    help="spawn = sharded block substreams; legacy = "
                         "original single-stream draw order "
                         "(single-shard, byte-identical to `repro venn`)")
    ep.add_argument("--workers", type=int, default=1,
                    help="evaluation processes (1 = serial; results "
                         "are identical either way)")
    ep.add_argument("--checkpoint", metavar="PATH", default=None,
                    help="checkpoint file (enables kill/resume)")
    ep.add_argument("--checkpoint-every", type=int, default=8,
                    help="completed shards per checkpoint write")
    ep.add_argument("--unit-deadline", type=float, default=None,
                    metavar="SECONDS",
                    help="wall-clock budget per shard; with --workers "
                         "> 1 it also sizes the supervisor's "
                         "hung-worker chunk deadline")
    ep.add_argument("--max-pool-rebuilds", type=int, default=8,
                    help="worker-pool rebuilds before degrading to "
                         "serial in-parent evaluation")
    ep.add_argument("--journal", metavar="PATH", default=None,
                    help="write a JSONL run journal (inspect with "
                         "`repro report PATH`)")
    ep.add_argument("--diagnose", action="store_true",
                    help="bitmap-diagnose interesting devices into "
                         "hint histograms")
    ep.add_argument("--d0", type=float, default=3.5,
                    help="defect density per cm^2")
    ep.add_argument("--bridge-fraction", type=float, default=0.8,
                    help="fraction of defects that are bridges")
    ep.add_argument("--chaos-seed", type=int, default=0,
                    help="fault-injection seed")
    ep.add_argument("--chaos-worker-exit", action="append", default=[],
                    metavar="SHARD[:TIMES]",
                    help="kill the worker on the given shard index's "
                         "first TIMES dispatches (repeatable; "
                         "rehearses the pool supervisor)")
    ep.add_argument("--chaos-worker-hang", action="append", default=[],
                    metavar="SHARD[:TIMES]",
                    help="hang the worker on the given shard index's "
                         "first TIMES dispatches (needs "
                         "--unit-deadline)")
    ep.set_defaults(func=_cmd_experiment_run)

    p = sub.add_parser("plan", help="optimise the stress-condition plan")
    p.add_argument("--test", default="11N", help="march test name")
    p.add_argument("--samples", type=int, default=3000)
    p.add_argument("--target-dpm", type=float, default=None)
    p.set_defaults(func=_cmd_plan)

    p = sub.add_parser(
        "lint",
        help="static analysis of netlists, march tests and test plans",
        description="Run the repro.lint rule packs.  Exit codes: 0 clean, "
                    "1 warnings remain under --strict, 2 errors.")
    p.add_argument("targets", nargs="*", metavar="TARGET",
                   help="march:<name|all>, netlist:<cell|decoder|demo-"
                        "broken>, plan:<production|standard>, or "
                        "`code [PATH ...]` for the source-code "
                        "determinism/IO analyzer (paths default to "
                        "src/repro) "
                        f"(default: {' '.join(_DEFAULT_LINT_TARGETS)})")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="report format")
    p.add_argument("--strict", action="store_true",
                   help="treat warnings as errors (exit 1)")
    p.add_argument("--disable", action="append", default=[],
                   metavar="RULES",
                   help="comma-separated rule IDs to suppress "
                        "(repeatable)")
    p.add_argument("--select", action="append", default=[],
                   metavar="RULES",
                   help="run only these rules: comma-separated IDs or "
                        "prefixes, e.g. DET003 or DET,IO (repeatable; "
                        "applies to every pack)")
    p.add_argument("--ignore", action="append", default=[],
                   metavar="RULES",
                   help="skip these rules: comma-separated IDs or "
                        "prefixes (repeatable; wins over --select)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    p.add_argument("--verbose", action="store_true",
                   help="also list clean targets in text output")
    p.add_argument("--target-dpm", type=float, default=None,
                   help="enable the PLAN003 reachability rule against "
                        "this DPM target")
    p.add_argument("--samples", type=int, default=400,
                   help="Monte-Carlo samples for the PLAN003 coverage "
                        "table")
    p.add_argument("--test", default="11N",
                   help="march test used by the PLAN003 time/coverage "
                        "model")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "campaign",
        help="resilient coverage campaigns: run / resume / status",
        description="Run IFA coverage campaigns through the resilient "
                    "runner: crash-safe checkpoints, retry with "
                    "backoff, per-site quarantine.  See "
                    "docs/robustness.md.")
    csub = p.add_subparsers(dest="campaign_command", required=True)

    def _campaign_common(cp, with_checkpoint_flag: bool) -> None:
        if with_checkpoint_flag:
            cp.add_argument("--checkpoint", metavar="PATH", default=None,
                            help="checkpoint file (enables kill/resume)")
        else:
            cp.add_argument("checkpoint", metavar="CHECKPOINT",
                            help="checkpoint file of the campaign")
        cp.add_argument("--save-db", metavar="PATH",
                        help="write the coverage database as JSON")
        cp.add_argument("--workers", type=int, default=1,
                        help="evaluation processes (1 = serial; results "
                             "are byte-identical either way)")
        cp.add_argument("--cache", metavar="PATH", default=None,
                        help="content-addressed evaluation cache file "
                             "(skips already-simulated points; see "
                             "docs/performance.md)")
        cp.add_argument("--strategy",
                        choices=("exact", "frontier", "batch"),
                        default="exact",
                        help="unit evaluation: exact per-site sweep, "
                             "the monotone-frontier threshold solver, "
                             "or the vectorised batch kernel "
                             "(both byte-identical to exact, far "
                             "fewer model invocations; serial only)")
        cp.add_argument("--max-attempts", type=int, default=3,
                        help="retry attempts per site evaluation")
        cp.add_argument("--unit-deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget per work unit; with "
                             "--workers > 1 it also sizes the "
                             "supervisor's parent-side chunk deadline "
                             "that detects hung workers")
        cp.add_argument("--max-pool-rebuilds", type=int, default=8,
                        help="worker-pool rebuilds after worker "
                             "losses before degrading to serial "
                             "in-parent evaluation")
        cp.add_argument("--chunk-deadline-factor", type=float,
                        default=4.0,
                        help="slack multiplier of the parent-side "
                             "chunk deadline (unit-deadline x chunk "
                             "length x factor)")
        cp.add_argument("--chaos-rate", type=float, default=0.0,
                        help="inject behavioural faults at this rate "
                             "(soak testing; see scripts/soak.sh)")
        cp.add_argument("--chaos-seed", type=int, default=0,
                        help="fault-injection seed")
        cp.add_argument("--chaos-worker-exit", action="append",
                        default=[], metavar="UNIT[:TIMES]",
                        help="kill the worker (os._exit) on the given "
                             "plan-unit index's first TIMES dispatches "
                             "(default 1; repeatable; rehearses the "
                             "pool supervisor)")
        cp.add_argument("--chaos-worker-hang", action="append",
                        default=[], metavar="UNIT[:TIMES]",
                        help="hang the worker on the given plan-unit "
                             "index's first TIMES dispatches (detected "
                             "via --unit-deadline's chunk deadline; "
                             "repeatable)")
        cp.add_argument("--journal", metavar="PATH", default=None,
                        help="write a JSONL run journal of every unit, "
                             "retry, quarantine and cache event "
                             "(default off = zero overhead; inspect "
                             "with `repro report PATH`; see "
                             "docs/observability.md)")

    cp = csub.add_parser("run", help="start a (checkpointed) campaign")
    cp.add_argument("--rows", type=int, default=512, help="#X rows")
    cp.add_argument("--columns", type=int, default=16, help="#Y words/row")
    cp.add_argument("--bits", type=int, default=32, help="#B bits/word")
    cp.add_argument("--blocks", type=int, default=1, help="#Z blocks")
    cp.add_argument("--sites", type=int, default=2000,
                    help="IFA site-population size")
    cp.add_argument("--seed", type=int, default=2005, help="campaign seed")
    _campaign_common(cp, with_checkpoint_flag=True)
    cp.set_defaults(func=_cmd_campaign_run)

    cp = csub.add_parser("resume",
                         help="continue a killed campaign from its "
                              "checkpoint")
    _campaign_common(cp, with_checkpoint_flag=False)
    cp.set_defaults(func=_cmd_campaign_resume)

    cp = csub.add_parser("status", help="inspect a campaign checkpoint")
    cp.add_argument("checkpoint", metavar="CHECKPOINT",
                    help="checkpoint file of the campaign")
    cp.add_argument("--cache", metavar="PATH", default=None,
                    help="also inspect this evaluation-cache file "
                         "(entry count, discarded-corrupt forensics)")
    cp.set_defaults(func=_cmd_campaign_status)

    p = sub.add_parser(
        "serve",
        help="run the estimator as an async HTTP/JSON service",
        description="Serve batch fault-coverage/DPM queries over a "
                    "pre-calculated coverage database: POST "
                    "/v1/estimate (batched geometries x kinds x "
                    "condition sets), POST /v1/reload (validated "
                    "hot-swap of the database file), GET /v1/health.  "
                    "Responses are byte-identical to in-process "
                    "estimator calls and cached under a "
                    "(database-fingerprint, canonical-request) key.  "
                    "See docs/service.md.")
    p.add_argument("--db", metavar="PATH", default=None,
                   help="coverage database to serve (default: the "
                        "shipped CMOS 0.18 um database); /v1/reload "
                        "re-reads this file")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (loopback by default)")
    p.add_argument("--port", type=int, default=8765,
                   help="TCP port (0 = pick an ephemeral port and "
                        "print it)")
    p.add_argument("--cache-size", type=int, default=1024,
                   help="response-cache capacity in entries "
                        "(0 disables caching)")
    p.add_argument("--journal", metavar="PATH", default=None,
                   help="write a JSONL run journal of every request, "
                        "cache hit and reload (inspect with `repro "
                        "report PATH`)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "report",
        help="full paper-vs-measured report, or render a run journal",
        description="Without arguments: the paper-vs-measured summary "
                    "report.  With a journal file (written by "
                    "`repro campaign run --journal` or `repro shmoo "
                    "--journal`): the run summary -- per-condition "
                    "units, retry/quarantine/demotion tables, cache "
                    "hit rate.  See docs/observability.md.")
    p.add_argument("journal", nargs="?", metavar="JOURNAL", default=None,
                   help="JSONL run-journal file to summarise (omit for "
                        "the paper-vs-measured report)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="journal-report format (ignored without a "
                        "journal)")
    p.add_argument("--sites", type=int, default=4000)
    p.add_argument("--devices", type=int, default=11000)
    p.set_defaults(func=_cmd_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
