"""Waveform container and measurement helpers.

Transient results from :mod:`repro.circuit.solver` come back as
:class:`Waveform` objects.  The measurement helpers implement the checks
the paper's simulation figures rely on: logic-level sampling at read
strobes (Figures 5/6 show the decoder-open defect producing a wrong value
at outputs q1/q2 during one unique clock cycle) and threshold-crossing
delay extraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Waveform:
    """A sampled voltage-versus-time trace for one node.

    Attributes:
        node: Node name.
        time: Monotonically increasing sample times in seconds.
        voltage: Sample values in volts, same length as ``time``.
    """

    node: str
    time: np.ndarray
    voltage: np.ndarray

    def __post_init__(self) -> None:
        self.time = np.asarray(self.time, dtype=float)
        self.voltage = np.asarray(self.voltage, dtype=float)
        if self.time.shape != self.voltage.shape:
            raise ValueError("time and voltage arrays must have equal length")
        if self.time.size < 1:
            raise ValueError("waveform must contain at least one sample")
        if np.any(np.diff(self.time) < 0):
            raise ValueError("time axis must be non-decreasing")

    def __len__(self) -> int:
        return int(self.time.size)

    def at(self, t: float) -> float:
        """Linearly interpolated voltage at time ``t`` (clamped to range)."""
        return float(np.interp(t, self.time, self.voltage))

    def logic_at(self, t: float, vdd: float, threshold: float = 0.5) -> int:
        """Sample the waveform as a logic value at time ``t``.

        A node above ``threshold * vdd`` reads as 1, otherwise 0 -- the
        same convention a tester comparator applies at the strobe point.
        """
        return 1 if self.at(t) >= threshold * vdd else 0

    def crossing_time(self, level: float, rising: bool = True,
                      after: float = 0.0) -> float | None:
        """First time the trace crosses ``level`` in the given direction.

        Returns ``None`` when the crossing never happens -- which is
        itself the detection signature for severe resistive opens (the
        delayed edge never arrives within the observation window).
        """
        v = self.voltage
        t = self.time
        for i in range(1, len(v)):
            if t[i] < after:
                continue
            if rising and v[i - 1] < level <= v[i]:
                return _interp_cross(t[i - 1], t[i], v[i - 1], v[i], level)
            if not rising and v[i - 1] > level >= v[i]:
                return _interp_cross(t[i - 1], t[i], v[i - 1], v[i], level)
        return None

    def delay_to(self, other: "Waveform", level: float) -> float | None:
        """Delay from this trace's crossing of ``level`` to ``other``'s."""
        t0 = self.crossing_time(level)
        t1 = other.crossing_time(level)
        if t0 is None or t1 is None:
            return None
        return t1 - t0

    def min(self) -> float:
        return float(self.voltage.min())

    def max(self) -> float:
        return float(self.voltage.max())

    def settle_value(self, fraction: float = 0.05) -> float:
        """Mean of the last ``fraction`` of samples (steady-state value)."""
        n = max(1, int(len(self.voltage) * fraction))
        return float(self.voltage[-n:].mean())


def pulse(v_low: float, v_high: float, t_start: float, t_width: float,
          t_edge: float = 1e-10):
    """Build a single-pulse stimulus callable for a ``VoltageSource``.

    The pulse rises at ``t_start``, stays high for ``t_width`` and falls
    back; edges are linear ramps of ``t_edge`` seconds.
    """
    if t_width <= 0 or t_edge <= 0:
        raise ValueError("t_width and t_edge must be positive")

    def f(t: float) -> float:
        if t < t_start:
            return v_low
        if t < t_start + t_edge:
            return v_low + (v_high - v_low) * (t - t_start) / t_edge
        if t < t_start + t_edge + t_width:
            return v_high
        if t < t_start + 2 * t_edge + t_width:
            return v_high - (v_high - v_low) * (
                t - t_start - t_edge - t_width) / t_edge
        return v_low

    return f


def clock(v_low: float, v_high: float, period: float, duty: float = 0.5,
          t_edge: float = 1e-10):
    """Build a periodic clock stimulus callable."""
    if period <= 0 or not 0.0 < duty < 1.0:
        raise ValueError("period must be positive and 0 < duty < 1")
    high_time = period * duty

    def f(t: float) -> float:
        phase = t % period
        if phase < t_edge:
            return v_low + (v_high - v_low) * phase / t_edge
        if phase < high_time:
            return v_high
        if phase < high_time + t_edge:
            return v_high - (v_high - v_low) * (phase - high_time) / t_edge
        return v_low

    return f


def piecewise_linear(points: list[tuple[float, float]]):
    """Build a PWL stimulus from ``(time, voltage)`` breakpoints."""
    if len(points) < 2:
        raise ValueError("PWL stimulus needs at least two points")
    times = np.asarray([p[0] for p in points])
    volts = np.asarray([p[1] for p in points])
    if np.any(np.diff(times) < 0):
        raise ValueError("PWL breakpoints must be time-ordered")

    def f(t: float) -> float:
        return float(np.interp(t, times, volts))

    return f


def _interp_cross(t0: float, t1: float, v0: float, v1: float,
                  level: float) -> float:
    if v1 == v0:
        return t1
    return t0 + (t1 - t0) * (level - v0) / (v1 - v0)
