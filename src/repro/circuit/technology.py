"""Technology description for the simulated CMOS process.

The paper's silicon work targets a Philips CMOS 0.18 um process (the
Veqtor4 test chip).  We obviously do not have the foundry SPICE decks, so
this module defines a compact, first-order technology model that carries
the parameters the rest of the library needs:

* threshold voltages and alpha-power-law exponents for the MOSFET model
  (:mod:`repro.circuit.devices`),
* per-layer sheet resistances and capacitances used by the synthetic
  layout/IFA flow (:mod:`repro.ifa`),
* the supply-voltage corners used as stress conditions in the paper
  (VLV = 1.0 V, Vmin = 1.65 V, Vnom = 1.8 V, Vmax = 1.95 V).

All values are representative textbook numbers for a 0.18 um generation
and are documented inline; they are *calibration inputs*, not foundry
data.  DESIGN.md records this substitution.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


@dataclass(frozen=True)
class LayerInfo:
    """Electrical properties of one interconnect layer.

    Attributes:
        name: Layer identifier used by the synthetic layout.
        sheet_resistance: Sheet resistance in ohm/square.
        area_capacitance: Capacitance to substrate in F/um^2.
        fringe_capacitance: Fringe/coupling capacitance in F/um (per edge).
        min_width: Minimum drawn width in um.
        min_spacing: Minimum spacing to a neighbour on the same layer in um.
    """

    name: str
    sheet_resistance: float
    area_capacitance: float
    fringe_capacitance: float
    min_width: float
    min_spacing: float


@dataclass(frozen=True)
class Technology:
    """Compact description of a CMOS process corner.

    The default constructor values model a generic 0.18 um process at the
    typical corner and room temperature.  The alpha-power-law parameters
    (``vth_n``, ``vth_p``, ``alpha``) drive every voltage-dependent
    behaviour in the library: transistor saturation current, gate delay,
    bridge critical resistance and shmoo boundaries.

    Attributes:
        name: Human-readable identifier.
        feature_size: Drawn channel length in um.
        vdd_nominal: Nominal supply voltage in volts.
        vdd_min: Minimum specified supply (Vnom - 10%).
        vdd_max: Maximum specified supply (Vnom + 10%).
        vdd_vlv: Very-low-voltage stress level used by the paper (1.0 V,
            i.e. 2..2.5 x VT as recommended by [Chang 96, Kruseman 02]).
        vth_n: NMOS threshold voltage in volts.
        vth_p: PMOS threshold voltage magnitude in volts.
        alpha: Alpha-power-law velocity-saturation exponent
            (1 = fully velocity saturated, 2 = long channel; 0.18 um is
            typically around 1.3).
        k_n: NMOS transconductance coefficient in A/V^alpha for a
            minimum-size device (I_dsat = k * (Vgs - Vth)^alpha).
        k_p: PMOS transconductance coefficient in A/V^alpha for a
            minimum-size device.
        gate_capacitance: Gate capacitance of a minimum-size device in F.
        junction_capacitance: Drain junction capacitance of a minimum-size
            device in F.
        temperature: Simulation temperature in Celsius.
        layers: Interconnect layer table keyed by layer name.
    """

    name: str = "cmos018"
    feature_size: float = 0.18
    vdd_nominal: float = 1.8
    vdd_min: float = 1.65
    vdd_max: float = 1.95
    vdd_vlv: float = 1.0
    vth_n: float = 0.45
    vth_p: float = 0.45
    alpha: float = 1.3
    k_n: float = 3.2e-4
    k_p: float = 1.4e-4
    gate_capacitance: float = 1.0e-15
    junction_capacitance: float = 0.8e-15
    temperature: float = 25.0
    layers: dict[str, LayerInfo] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.layers:
            object.__setattr__(self, "layers", _default_layers())
        self.validate()

    def validate(self) -> None:
        """Raise ``ValueError`` when the corner is physically inconsistent."""
        if not 0.0 < self.vdd_vlv < self.vdd_min < self.vdd_nominal < self.vdd_max:
            raise ValueError(
                "supply corners must satisfy 0 < VLV < Vmin < Vnom < Vmax, got "
                f"{self.vdd_vlv}, {self.vdd_min}, {self.vdd_nominal}, {self.vdd_max}"
            )
        if self.vth_n <= 0 or self.vth_p <= 0:
            raise ValueError("threshold voltages must be positive")
        if self.vdd_vlv <= self.vth_n:
            raise ValueError(
                f"VLV ({self.vdd_vlv} V) must stay above VT ({self.vth_n} V); "
                "the paper recommends 2..2.5 x VT"
            )
        if not 1.0 <= self.alpha <= 2.0:
            raise ValueError(f"alpha-power exponent out of range [1, 2]: {self.alpha}")
        if self.k_n <= 0 or self.k_p <= 0:
            raise ValueError("transconductance coefficients must be positive")

    @property
    def supply_corners(self) -> dict[str, float]:
        """The four supply conditions evaluated in the paper's Table 1."""
        return {
            "VLV": self.vdd_vlv,
            "Vmin": self.vdd_min,
            "Vnom": self.vdd_nominal,
            "Vmax": self.vdd_max,
        }

    def vlv_in_recommended_window(self) -> bool:
        """Check the paper's VLV guideline: 2 VT <= VLV <= 2.5 VT."""
        return 2.0 * self.vth_n <= self.vdd_vlv <= 2.5 * self.vth_n

    def scaled(self, **overrides: float) -> "Technology":
        """Return a copy with some parameters replaced.

        Convenience for corner/ablation studies, e.g.
        ``tech.scaled(vth_n=0.5, alpha=1.5)``.
        """
        return dataclasses.replace(self, **overrides)


def _default_layers() -> dict[str, LayerInfo]:
    """Representative 0.18 um interconnect stack (aluminium).

    Sheet resistances and capacitances are typical published values for an
    aluminium 0.18 um back-end; the IFA flow only uses their relative
    magnitudes (critical-area weighting and RC estimates).
    """
    return {
        "poly": LayerInfo("poly", 8.0, 1.0e-16, 0.6e-16, 0.18, 0.24),
        "diff": LayerInfo("diff", 6.0, 1.2e-16, 0.5e-16, 0.22, 0.28),
        "metal1": LayerInfo("metal1", 0.08, 0.4e-16, 0.8e-16, 0.24, 0.24),
        "metal2": LayerInfo("metal2", 0.08, 0.3e-16, 0.8e-16, 0.28, 0.28),
        "metal3": LayerInfo("metal3", 0.05, 0.2e-16, 0.7e-16, 0.32, 0.32),
        "via": LayerInfo("via", 4.0, 0.0, 0.0, 0.26, 0.26),
        "contact": LayerInfo("contact", 8.0, 0.0, 0.0, 0.22, 0.25),
    }


#: The default technology instance used throughout the library: a generic
#: CMOS 0.18 um corner matching the paper's test chip process generation.
CMOS018 = Technology()

#: A representative 0.13 um copper-interconnect corner.  The paper notes
#: that opens become dominant at 0.13 um and below; this corner is used by
#: ablation studies that shift the bridge/open mix.
CMOS013 = Technology(
    name="cmos013",
    feature_size=0.13,
    vdd_nominal=1.2,
    vdd_min=1.08,
    vdd_max=1.32,
    vdd_vlv=0.8,
    vth_n=0.35,
    vth_p=0.35,
    alpha=1.25,
    k_n=4.1e-4,
    k_p=1.8e-4,
    gate_capacitance=0.7e-15,
    junction_capacitance=0.55e-15,
)
