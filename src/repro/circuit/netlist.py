"""Flat transistor-level netlist representation.

The IFA flow of the paper extracts a flat fault-free netlist from the
layout (their internal PIA tool) and injects one extracted defect at a
time.  :class:`Netlist` is our equivalent container: devices plus node
bookkeeping, with defect-injection helpers that return *modified copies*
so the fault-free netlist is never mutated (one-defect-at-a-time
semantics, exactly as in the paper's Figure 2 flow).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator

from repro.circuit.devices import (
    Capacitor,
    CurrentSource,
    Device,
    Mosfet,
    Resistor,
    VoltageSource,
)

GROUND = "0"


class Netlist:
    """A flat circuit netlist.

    Nodes are identified by strings; node ``"0"`` is ground.  Devices are
    added via :meth:`add` and must carry unique names.
    """

    def __init__(self, title: str = "") -> None:
        self.title = title
        self._devices: dict[str, Device] = {}
        self._splice_counter = itertools.count()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, device: Device) -> Device:
        """Add a device; raises ``ValueError`` on duplicate names."""
        if device.name in self._devices:
            raise ValueError(f"duplicate device name: {device.name}")
        self._devices[device.name] = device
        return device

    def extend(self, devices: Iterable[Device]) -> None:
        for dev in devices:
            self.add(dev)

    def remove(self, name: str) -> Device:
        """Remove and return a device by name; ``KeyError`` if absent."""
        return self._devices.pop(name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._devices)

    def __contains__(self, name: str) -> bool:
        return name in self._devices

    def __getitem__(self, name: str) -> Device:
        return self._devices[name]

    def devices(self) -> Iterator[Device]:
        return iter(self._devices.values())

    def devices_of_type(self, cls: type) -> Iterator[Device]:
        return (d for d in self._devices.values() if isinstance(d, cls))

    @property
    def nodes(self) -> list[str]:
        """All node names (excluding ground), in deterministic order."""
        seen: dict[str, None] = {}
        for dev in self._devices.values():
            for node in _terminals(dev):
                if node != GROUND:
                    seen.setdefault(node)
        return list(seen)

    def nodes_touching(self, device_name: str) -> tuple[str, ...]:
        return _terminals(self._devices[device_name])

    def connectivity(self) -> dict[str, list[str]]:
        """Node -> device-name adjacency map (for diagnosis and IFA)."""
        adj: dict[str, list[str]] = {}
        for dev in self._devices.values():
            for node in _terminals(dev):
                adj.setdefault(node, []).append(dev.name)
        return adj

    # ------------------------------------------------------------------
    # Defect injection (pure: returns a modified copy)
    # ------------------------------------------------------------------
    def copy(self, title: str | None = None) -> "Netlist":
        clone = Netlist(title if title is not None else self.title)
        clone._devices = dict(self._devices)
        return clone

    def with_bridge(self, node_a: str, node_b: str, resistance: float,
                    name: str = "Rbridge") -> "Netlist":
        """Return a copy with a resistive bridge between two nodes."""
        if node_a == node_b:
            raise ValueError("bridge endpoints must differ")
        faulty = self.copy(f"{self.title}+bridge({node_a},{node_b},{resistance:g})")
        faulty.add(Resistor(name, node_a, node_b, resistance))
        return faulty

    def with_open(self, device_name: str, terminal: str, resistance: float,
                  name: str = "Ropen") -> "Netlist":
        """Return a copy with a resistive open in series with a terminal.

        The chosen terminal of ``device_name`` is re-wired to a fresh
        internal node and a resistor of the given value is spliced between
        the internal node and the original net -- the standard way of
        modelling a resistive via/contact open.
        """
        dev = self._devices[device_name]
        terms = _terminal_fields(dev)
        if terminal not in terms:
            raise ValueError(
                f"device {device_name} has no terminal {terminal!r}; "
                f"choices: {sorted(terms)}"
            )
        original_net = getattr(dev, terminal)
        internal = f"_open{next(self._splice_counter)}_{device_name}_{terminal}"
        faulty = self.copy(
            f"{self.title}+open({device_name}.{terminal},{resistance:g})"
        )
        # Replace the device with a rewired clone.
        import dataclasses

        rewired = dataclasses.replace(dev, **{terminal: internal})
        faulty._devices[device_name] = rewired
        faulty.add(Resistor(name, internal, original_net, resistance))
        return faulty

    # ------------------------------------------------------------------
    # Static analysis
    # ------------------------------------------------------------------
    def lint(self, tech=None, config=None):
        """Run the ``NET0xx`` ERC pack on this netlist.

        Returns a :class:`repro.lint.LintReport`; see
        ``docs/static_analysis.md`` for the rule catalog.  (Imported
        lazily: :mod:`repro.lint` depends on this module.)
        """
        from repro.lint import lint_netlist

        return lint_netlist(self, tech=tech, config=config)

    def __repr__(self) -> str:
        return (
            f"Netlist({self.title!r}, {len(self._devices)} devices, "
            f"{len(self.nodes)} nodes)"
        )


def _terminal_fields(device: Device) -> tuple[str, ...]:
    if isinstance(device, Mosfet):
        return ("drain", "gate", "source")
    if isinstance(device, (Resistor, Capacitor)):
        return ("node_a", "node_b")
    if isinstance(device, (VoltageSource, CurrentSource)):
        return ("node_pos", "node_neg")
    raise TypeError(f"unknown device type: {type(device).__name__}")


def _terminals(device: Device) -> tuple[str, ...]:
    return tuple(getattr(device, f) for f in _terminal_fields(device))
