"""Circuit substrate: technology, compact devices, netlist and solver.

This package is the library's "Spice-like simulator" (paper Section 2):
alpha-power-law MOSFETs, linear R/C elements, a flat netlist container
with one-defect-at-a-time injection, and a damped-Newton MNA solver with
backward-Euler transient analysis.
"""

from repro.circuit.devices import (
    Capacitor,
    CurrentSource,
    Mosfet,
    MosType,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import GROUND, Netlist
from repro.circuit.solver import (
    ConvergenceError,
    dc_operating_point,
    gate_delay,
    transient,
)
from repro.circuit.technology import CMOS013, CMOS018, LayerInfo, Technology
from repro.circuit.waveform import Waveform, clock, piecewise_linear, pulse

__all__ = [
    "CMOS013",
    "CMOS018",
    "Capacitor",
    "ConvergenceError",
    "CurrentSource",
    "GROUND",
    "LayerInfo",
    "Mosfet",
    "MosType",
    "Netlist",
    "Resistor",
    "Technology",
    "VoltageSource",
    "Waveform",
    "clock",
    "dc_operating_point",
    "gate_delay",
    "piecewise_linear",
    "pulse",
    "transient",
]
