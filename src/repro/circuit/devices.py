"""Compact device models for the Spice-like simulator.

The paper's IFA flow injects extracted defects into a flat transistor
netlist and simulates it with an analogue simulator.  We reproduce that
flow with compact first-order models:

* :class:`Mosfet` -- the alpha-power-law model [Sakurai & Newton 1990],
  which captures the two voltage effects the paper's conclusions rest on:
  drive current collapsing as Vdd approaches VT (the VLV mechanism for
  resistive bridges) and gate delay shrinking with overdrive (the
  at-speed/Vmax mechanisms for resistive opens).
* :class:`Resistor` -- linear resistor; also used for injected bridge and
  open defects.
* :class:`Capacitor` -- linear capacitor for node loading.
* :class:`VoltageSource` / :class:`CurrentSource` -- stimulus elements.

Every device evaluates a current and a conductance (di/dv) so the Newton
solver in :mod:`repro.circuit.solver` can stamp it into the system matrix.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

from repro.circuit.technology import Technology


class MosType(Enum):
    """Channel type of a MOSFET."""

    NMOS = "nmos"
    PMOS = "pmos"


# Smoothing width (in volts) used to blend the cutoff/triode/saturation
# regions so the device current is continuously differentiable; Newton
# iteration needs smooth derivatives to converge on bistable circuits like
# the 6T cell.  The width trades model sharpness near VT for solver
# robustness; 50 mV keeps I-V errors below a few percent of I_dsat while
# eliminating the derivative kinks that cause Newton limit cycles.
_SMOOTH = 0.05


def _softplus(x: float, width: float = _SMOOTH) -> float:
    """Numerically-stable smooth max(x, 0)."""
    if x > 30.0 * width:
        return x
    if x < -30.0 * width:
        return 0.0
    return width * math.log1p(math.exp(x / width))


def _softplus_deriv(x: float, width: float = _SMOOTH) -> float:
    """Derivative of :func:`_softplus` (a smooth step function)."""
    if x > 30.0 * width:
        return 1.0
    if x < -30.0 * width:
        return 0.0
    return 1.0 / (1.0 + math.exp(-x / width))


@dataclass
class Mosfet:
    """Alpha-power-law MOSFET.

    The drain current in saturation is ``I = k * w * (Vgs - Vth)^alpha``
    and in triode it is scaled by ``Vds / Vdsat`` (linearised triode
    region, adequate for the read/write contention and delay questions the
    library asks).  A small off-leakage keeps the Jacobian non-singular.

    Attributes:
        name: Instance name.
        mtype: NMOS or PMOS.
        drain, gate, source: Node names.
        width: Width multiplier relative to a minimum-size device.
        tech: Technology supplying ``k``, ``Vth`` and ``alpha``.
    """

    name: str
    mtype: MosType
    drain: str
    gate: str
    source: str
    width: float = 1.0
    tech: Technology = field(default_factory=Technology)

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"MOSFET {self.name}: width must be positive")

    @property
    def vth(self) -> float:
        return self.tech.vth_n if self.mtype is MosType.NMOS else self.tech.vth_p

    @property
    def k(self) -> float:
        base = self.tech.k_n if self.mtype is MosType.NMOS else self.tech.k_p
        return base * self.width

    def saturation_current(self, vgs: float) -> float:
        """Drain saturation current for a given gate-source drive."""
        vov = self._overdrive(vgs)
        if vov <= 0.0:
            return 0.0
        return self.k * vov**self.tech.alpha

    def _overdrive(self, vgs: float) -> float:
        if self.mtype is MosType.NMOS:
            return vgs - self.vth
        return -vgs - self.vth

    def ids(self, vgs: float, vds: float) -> float:
        """Drain-source current (positive into the drain for NMOS)."""
        i, _, _ = self.ids_and_conductances(vgs, vds)
        return i

    def ids_and_conductances(self, vgs: float,
                             vds: float) -> tuple[float, float, float]:
        """Current plus small-signal gm (dI/dVgs) and gds (dI/dVds).

        For PMOS the terminal convention is the same (current positive
        into the drain node when conducting would be negative); internally
        we mirror voltages so a single body of math serves both types.
        """
        sign = 1.0
        if self.mtype is MosType.PMOS:
            vgs, vds, sign = -vgs, -vds, -1.0

        vov_raw = vgs - self.vth
        vov = _softplus(vov_raw)
        dvov = _softplus_deriv(vov_raw)
        # Minimum off conductance keeps the Newton matrix well conditioned
        # and stands in for subthreshold leakage.
        gleak = 1e-9
        if vov <= 1e-12:
            return sign * gleak * vds, 0.0, gleak

        alpha = self.tech.alpha
        isat = self.k * vov**alpha
        disat_dvgs = self.k * alpha * vov ** (alpha - 1.0) * dvov
        # Saturation voltage from the alpha-power model: Vdsat ~ vov
        # (Sakurai uses K*vov^(alpha/2); the linear form keeps derivatives
        # simple and preserves the trends we need).
        vdsat = max(vov, 1e-6)

        if vds >= vdsat:
            # Saturation, with a mild channel-length-modulation slope.
            lam = 0.05
            i = isat * (1.0 + lam * (vds - vdsat))
            gds = isat * lam + gleak
            gm = disat_dvgs * (1.0 + lam * (vds - vdsat))
        elif vds >= 0.0:
            # Linearised triode region: I = Isat * Vds / Vdsat, i.e.
            # I = k * vov^(alpha-1) * Vds, continuous with saturation at
            # Vds = Vdsat.
            i = self.k * vov ** (alpha - 1.0) * vds
            gm = self.k * (alpha - 1.0) * vov ** (alpha - 2.0) * vds * dvov
            gds = self.k * vov ** (alpha - 1.0) + gleak
        else:
            # Reverse-biased: treat as leakage only (the library never
            # relies on reverse conduction).
            i = gleak * vds
            gm = 0.0
            gds = gleak

        return sign * i, gm, gds

    def on_resistance(self, vdd: float) -> float:
        """Effective on-resistance when fully driven at supply ``vdd``.

        Defined as ``(vdd / 2) / I(vgs=vdd, vds=vdd/2)`` -- the large-signal
        resistance seen by a resistive divider fighting this transistor,
        which is the quantity that sets bridge critical resistance.
        """
        if vdd <= self.vth:
            # Subthreshold: no usable drive (the smoothing tail is a
            # solver aid, not a physical on-state).
            return math.inf
        i = self.ids(vdd, vdd / 2.0) if self.mtype is MosType.NMOS else abs(
            self.ids(-vdd, -vdd / 2.0)
        )
        if i <= 0.0:
            return math.inf
        return (vdd / 2.0) / i


@dataclass
class Resistor:
    """Linear two-terminal resistor.

    Injected bridge defects are resistors between two signal nodes;
    injected open defects are resistors spliced into a net.
    """

    name: str
    node_a: str
    node_b: str
    resistance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ValueError(f"resistor {self.name}: resistance must be positive")

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance


@dataclass
class Capacitor:
    """Linear two-terminal capacitor (node loading for transient sims)."""

    name: str
    node_a: str
    node_b: str
    capacitance: float

    def __post_init__(self) -> None:
        if self.capacitance <= 0:
            raise ValueError(f"capacitor {self.name}: capacitance must be positive")


@dataclass
class VoltageSource:
    """Ideal voltage source, optionally time-varying.

    ``waveform`` maps time (s) to volts; when omitted the source is DC at
    ``value``.
    """

    name: str
    node_pos: str
    node_neg: str
    value: float
    waveform: object | None = None

    def voltage_at(self, t: float) -> float:
        if self.waveform is None:
            return self.value
        return float(self.waveform(t))


@dataclass
class CurrentSource:
    """Ideal current source flowing from ``node_pos`` to ``node_neg``."""

    name: str
    node_pos: str
    node_neg: str
    value: float


Device = Mosfet | Resistor | Capacitor | VoltageSource | CurrentSource
