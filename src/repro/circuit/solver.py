"""Nonlinear DC and transient solver (the "Spice-like simulator").

The paper simulates each faulty netlist with an analogue simulator.  Our
equivalent is a small modified-nodal-analysis (MNA) engine:

* :func:`dc_operating_point` -- damped Newton-Raphson with GMIN stepping
  and source ramping, robust enough for the bistable 6T cell circuits the
  library builds.
* :func:`transient` -- backward-Euler integration over piecewise-linear
  stimulus, sufficient for the decoder-open waveform experiments
  (paper Figures 5 and 6) where we care about *whether* a degraded level
  or delayed edge crosses a logic threshold, not about picosecond
  accuracy.

The solver works on :class:`repro.circuit.netlist.Netlist` objects and
returns plain ``dict[node] -> voltage`` maps or
:class:`repro.circuit.waveform.Waveform` traces.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuit.devices import (
    Capacitor,
    CurrentSource,
    Mosfet,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import GROUND, Netlist
from repro.circuit.waveform import Waveform


class ConvergenceError(RuntimeError):
    """Raised when Newton iteration fails to converge."""


class _System:
    """Node indexing and MNA stamping for one netlist."""

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self.nodes = netlist.nodes
        self.index = {n: i for i, n in enumerate(self.nodes)}
        self.n = len(self.nodes)
        self.vsources = list(netlist.devices_of_type(VoltageSource))
        # Voltage sources get auxiliary current unknowns (MNA).
        self.m = len(self.vsources)
        # Nodeset: GMIN conductances pull toward these voltages rather
        # than toward ground, so seeded states (e.g. an SRAM cell's
        # stored value) survive GMIN stepping instead of being erased.
        self.nodeset = np.zeros(self.n)

    def idx(self, node: str) -> int:
        """Matrix index of a node; -1 denotes ground."""
        if node == GROUND:
            return -1
        return self.index[node]

    def voltages(self, x: np.ndarray) -> dict[str, float]:
        out = {GROUND: 0.0}
        for node, i in self.index.items():
            out[node] = float(x[i])
        return out

    # ------------------------------------------------------------------
    def build(
        self,
        x: np.ndarray,
        t: float,
        gmin: float,
        prev_x: np.ndarray | None = None,
        dt: float | None = None,
        source_scale: float = 1.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Assemble the Newton Jacobian J and residual f at state ``x``.

        When ``prev_x``/``dt`` are given, capacitors are stamped with a
        backward-Euler companion model; otherwise they are open (DC).
        """
        size = self.n + self.m
        jac = np.zeros((size, size))
        res = np.zeros(size)

        def v(node_i: int) -> float:
            return 0.0 if node_i < 0 else float(x[node_i])

        def stamp_g(a: int, b: int, g: float) -> None:
            if a >= 0:
                jac[a, a] += g
            if b >= 0:
                jac[b, b] += g
            if a >= 0 and b >= 0:
                jac[a, b] -= g
                jac[b, a] -= g

        def stamp_i(a: int, b: int, i: float) -> None:
            """Current i flowing from node a to node b."""
            if a >= 0:
                res[a] += i
            if b >= 0:
                res[b] -= i

        # GMIN from every node toward its nodeset voltage: conditions the
        # matrix like classic GMIN-to-ground but preserves seeded states
        # of bistable circuits during GMIN stepping.
        for i in range(self.n):
            jac[i, i] += gmin
            res[i] += gmin * (x[i] - self.nodeset[i])

        for dev in self.netlist.devices():
            if isinstance(dev, Resistor):
                a, b = self.idx(dev.node_a), self.idx(dev.node_b)
                g = dev.conductance
                stamp_g(a, b, g)
                stamp_i(a, b, g * (v(a) - v(b)))
            elif isinstance(dev, Capacitor):
                a, b = self.idx(dev.node_a), self.idx(dev.node_b)
                if prev_x is not None and dt is not None:
                    geq = dev.capacitance / dt

                    def pv(node_i: int) -> float:
                        return 0.0 if node_i < 0 else float(prev_x[node_i])

                    ieq = geq * ((v(a) - v(b)) - (pv(a) - pv(b)))
                    stamp_g(a, b, geq)
                    stamp_i(a, b, ieq)
            elif isinstance(dev, CurrentSource):
                a, b = self.idx(dev.node_pos), self.idx(dev.node_neg)
                stamp_i(a, b, dev.value * source_scale)
            elif isinstance(dev, Mosfet):
                d, g_, s = self.idx(dev.drain), self.idx(dev.gate), self.idx(dev.source)
                vgs = v(g_) - v(s)
                vds = v(d) - v(s)
                ids, gm, gds = dev.ids_and_conductances(vgs, vds)
                # Current flows drain -> source for NMOS-positive ids.
                stamp_i(d, s, ids)
                # Jacobian: dI/dVd, dI/dVg, dI/dVs.
                for node_i, dcur in ((d, gds), (g_, gm), (s, -(gds + gm))):
                    if node_i < 0:
                        continue
                    if d >= 0:
                        jac[d, node_i] += dcur
                    if s >= 0:
                        jac[s, node_i] -= dcur

        # Voltage sources: auxiliary current rows.
        for k, src in enumerate(self.vsources):
            row = self.n + k
            p, q = self.idx(src.node_pos), self.idx(src.node_neg)
            target = src.voltage_at(t) * source_scale
            if p >= 0:
                jac[p, row] += 1.0
                jac[row, p] += 1.0
                res[p] += x[row]
            if q >= 0:
                jac[q, row] -= 1.0
                jac[row, q] -= 1.0
                res[q] -= x[row]
            res[row] += (v(p) - v(q)) - target

        return jac, res


def _newton(
    system: _System,
    x0: np.ndarray,
    t: float,
    gmin: float,
    prev_x: np.ndarray | None = None,
    dt: float | None = None,
    source_scale: float = 1.0,
    max_iter: int = 120,
    tol: float = 1e-7,
) -> np.ndarray:
    x = x0.copy()
    max_step = math.inf
    for iteration in range(max_iter):
        jac, res = system.build(x, t, gmin, prev_x, dt, source_scale)
        try:
            delta = np.linalg.solve(jac, -res)
        except np.linalg.LinAlgError as exc:
            raise ConvergenceError(f"singular Jacobian: {exc}") from exc
        max_step = float(np.max(np.abs(delta))) if delta.size else 0.0
        if max_step < tol:
            return x
        # Damping: limit per-iteration voltage movement to 0.5 V, and
        # after the first iterations progressively shrink steps.  The
        # shrinking turns the period-2 limit cycles Newton falls into
        # near bistability saddles (derivative kinks of the compact
        # models) into contractions while leaving easy solves untouched.
        scale = 1.0
        if max_step > 0.5:
            scale = 0.5 / max_step
        if iteration >= 12:
            scale *= 0.5
        if iteration >= 40:
            scale *= 0.5
        x = x + scale * delta
        if max_step * scale < tol:
            return x
    raise ConvergenceError(
        f"Newton failed after {max_iter} iterations (last step {max_step:.3g})"
    )


def dc_operating_point(
    netlist: Netlist,
    initial: dict[str, float] | None = None,
    tol: float = 1e-7,
    relaxed_tol: float | None = 1e-5,
) -> dict[str, float]:
    """Solve the DC operating point of a netlist.

    Uses GMIN stepping (1e-3 down to 1e-12) and, as a fallback, source
    ramping, mirroring the continuation strategies of production SPICE
    engines.  ``initial`` seeds node voltages -- essential for bistable
    circuits such as SRAM cells, where the seed selects the stored state.

    Campaign-facing degradation: when every strategy fails at the
    requested ``tol``, the whole ladder is retried once at
    ``relaxed_tol`` before surfacing :class:`ConvergenceError`.  A long
    coverage campaign prefers a slightly less precise operating point
    on one pathological faulty netlist over aborting the sweep -- the
    detection thresholds the campaign compares against are orders of
    magnitude coarser than either tolerance.  Pass ``relaxed_tol=None``
    for strict single-tolerance behaviour.

    Returns:
        Mapping of node name to voltage (includes ground = 0.0).

    Raises:
        ConvergenceError: if no strategy converges at any tolerance.
    """
    try:
        return _dc_solve(netlist, initial, tol)
    except ConvergenceError:
        if relaxed_tol is None or relaxed_tol <= tol:
            raise
        return _dc_solve(netlist, initial, relaxed_tol)


def _dc_solve(
    netlist: Netlist,
    initial: dict[str, float] | None,
    tol: float,
) -> dict[str, float]:
    """One pass of the DC strategy ladder at a fixed tolerance."""
    system = _System(netlist)
    size = system.n + system.m
    x = np.zeros(size)
    if initial:
        for node, volt in initial.items():
            if node in system.index:
                x[system.index[node]] = volt
                system.nodeset[system.index[node]] = volt

    last_error: ConvergenceError | None = None
    best_x = x.copy()
    # Strategy 1: GMIN stepping (finer ladder than production SPICE since
    # the compact models are cheap to evaluate).
    try:
        for gmin in (1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-9, 1e-12):
            x = _newton(system, x, t=0.0, gmin=gmin, tol=tol)
            best_x = x.copy()
        return system.voltages(x)
    except ConvergenceError as exc:
        last_error = exc

    # Strategy 2: source ramping from 10% to 100%.
    x = np.zeros(size)
    if initial:
        for node, volt in initial.items():
            if node in system.index:
                x[system.index[node]] = volt
    try:
        for scale in np.linspace(0.1, 1.0, 10):
            x = _newton(system, x, t=0.0, gmin=1e-9,
                        source_scale=float(scale), tol=tol)
        return system.voltages(x)
    except ConvergenceError as exc:
        last_error = exc

    # Strategy 3: hand the residual to scipy's root finders, starting
    # from the furthest point the GMIN ladder reached.
    from scipy import optimize

    def fun(xv: np.ndarray) -> np.ndarray:
        _, res = system.build(xv, 0.0, 1e-9)
        return res

    def jacf(xv: np.ndarray) -> np.ndarray:
        jac, _ = system.build(xv, 0.0, 1e-9)
        return jac

    residual_ok = max(1e-8, 0.1 * tol)
    for method in ("hybr", "lm"):
        sol = optimize.root(fun, best_x, jac=jacf, method=method)
        if float(np.linalg.norm(fun(sol.x))) < residual_ok:
            return system.voltages(sol.x)
    raise ConvergenceError(
        f"DC solution failed at tol={tol:g} "
        f"(newton strategies: {last_error}; "
        f"scipy residual {float(np.linalg.norm(fun(sol.x))):.3g})"
    )


def _timestep(system: _System, x: np.ndarray, t_from: float, dt: float,
              depth: int = 0) -> np.ndarray:
    """One backward-Euler step with recursive halving on non-convergence.

    GMIN is raised slightly on the retry levels; combined with the
    smaller dt (larger capacitor companion conductance) this resolves the
    stiff crossings near bistability saddles.
    """
    try:
        return _newton(system, x, t=t_from + dt, gmin=1e-12, prev_x=x, dt=dt)
    except ConvergenceError:
        if depth >= 8:
            raise
        half = dt / 2.0
        x_mid = _timestep(system, x, t_from, half, depth + 1)
        return _timestep(system, x_mid, t_from + half, half, depth + 1)


def transient(
    netlist: Netlist,
    t_stop: float,
    dt: float,
    initial: dict[str, float] | None = None,
    record: list[str] | None = None,
    uic: bool = False,
) -> dict[str, Waveform]:
    """Backward-Euler transient analysis.

    Args:
        netlist: Circuit to simulate; time-varying ``VoltageSource``
            waveforms provide the stimulus.
        t_stop: End time in seconds.
        dt: Fixed timestep in seconds.
        initial: Seed voltages for the initial DC solve (or, with
            ``uic``, the literal initial condition).
        record: Node names to record (default: all nodes).
        uic: Use initial conditions directly (SPICE ``.tran ... uic``):
            skip the t=0 DC solve and start integrating from ``initial``.
            The robust choice when the DC problem itself is near a
            bistability saddle.

    Returns:
        Mapping node -> :class:`Waveform` sampled every ``dt``.
    """
    if t_stop <= 0 or dt <= 0:
        raise ValueError("t_stop and dt must be positive")
    system = _System(netlist)
    record = record if record is not None else system.nodes

    if uic:
        op = dict(initial or {})
        op.setdefault(GROUND, 0.0)
    else:
        op = dc_operating_point(netlist, initial=initial)
    x = np.zeros(system.n + system.m)
    for node, i in system.index.items():
        x[i] = op.get(node, 0.0)

    times = [0.0]
    samples: dict[str, list[float]] = {n: [op.get(n, 0.0)] for n in record}

    steps = int(round(t_stop / dt))
    for step in range(1, steps + 1):
        t = step * dt
        x = _timestep(system, x, t - dt, dt)
        volts = system.voltages(x)
        times.append(t)
        for node in record:
            samples[node].append(volts.get(node, 0.0))

    time_arr = np.asarray(times)
    return {
        node: Waveform(node, time_arr, np.asarray(vals))
        for node, vals in samples.items()
    }


def gate_delay(tech, fanout: float = 1.0, vdd: float | None = None) -> float:
    """First-order inverter delay at a supply voltage.

    ``t_d = C * Vdd / I_dsat(Vdd)`` with the alpha-power-law drive --
    the canonical delay model whose Vdd dependence produces every shmoo
    boundary shape in the paper (delay grows steeply as Vdd drops toward
    VT).

    Args:
        tech: :class:`repro.circuit.technology.Technology`.
        fanout: Load multiplier in units of min-size gate capacitance.
        vdd: Supply voltage; defaults to the technology's nominal.
    """
    vdd = tech.vdd_nominal if vdd is None else vdd
    overdrive = vdd - tech.vth_n
    if overdrive <= 0:
        return math.inf
    idsat = tech.k_n * overdrive**tech.alpha
    return fanout * tech.gate_capacitance * vdd / idsat
