"""Defect injection: behavioural and netlist-level.

Two injection paths, mirroring the paper's flow (Figure 2):

* **Behavioural** -- :func:`to_functional_fault` renders a
  :class:`~repro.defects.behavior.Manifestation` into a
  :class:`~repro.faults.models.FunctionalFault` that the march/tester
  machinery simulates cycle-accurately.  This is how a defect's
  stress-dependent electrical behaviour becomes observable march-element
  fails (and hence bitmap signatures like the paper's Chip-1/Chip-2).
* **Netlist-level** -- :func:`inject_bridge_into_cell` /
  :func:`inject_open_into_decoder` splice the defect into a
  transistor-level netlist for the Spice-like solver, used by the
  Figure 5/6 waveform reproduction and by calibration cross-checks.

Every netlist-level injection is ERC-checked (:mod:`repro.lint`'s
``NET0xx`` pack) before it is handed to the solver, so a malformed
injection fails loudly at the injection site instead of as a cryptic
Newton-convergence error; pass ``erc=False`` to skip the check inside
hot sweep loops.
"""

from __future__ import annotations

from repro.circuit.netlist import Netlist
from repro.defects.behavior import FaultMode, Manifestation
from repro.defects.models import Defect
from repro.faults.dynamic import AtSpeedDynamicFault
from repro.faults.models import (
    DataRetentionFault,
    FunctionalFault,
    MultipleAccessFault,
    ReadDestructiveFault,
    StuckAtFault,
    StuckOpenFault,
    TransitionFault,
)
from repro.faults.primitives import FaultPrimitive
from repro.memory.cell import SixTCell
from repro.memory.decoder import build_decoder_netlist
from repro.memory.geometry import MemoryGeometry


def to_functional_fault(manifestation: Manifestation,
                        geometry: MemoryGeometry | None = None,
                        n_cells: int | None = None) -> FunctionalFault:
    """Render a manifestation into a behavioural fault instance.

    Args:
        manifestation: The stress-condition-specific behaviour.
        geometry: Memory organisation, used to find the coupled cell of
            address-hazard modes; optional when ``n_cells`` is given.
        n_cells: Address-space size fallback for the hazard neighbour.

    Returns:
        A :class:`FunctionalFault` operating on flat cell indices.
    """
    cell = manifestation.cell
    mode = manifestation.mode
    if n_cells is None:
        n_cells = geometry.bits if geometry is not None else cell + 2

    if mode is FaultMode.CELL_STUCK:
        return StuckAtFault(cell, manifestation.stuck_value)
    if mode is FaultMode.CELL_FLIP:
        # Read-disturb upset: the read itself flips the cell.
        return ReadDestructiveFault(cell)
    if mode is FaultMode.READ_DELAY:
        # The read misses its window: at the failing condition the
        # sensed data lags the cell -- behaviourally a stuck-open-like
        # stale read of the victim.  The column stride keeps the stale
        # value per bit line in word-organised arrays.
        stride = geometry.bitlines_per_block if geometry is not None else 1
        return StuckOpenFault(cell, column_stride=stride)
    if mode is FaultMode.ADDRESS_HAZARD:
        # Dual-select disturb: accessing the victim also touches the
        # hazard neighbour (the paper's decoder-open signature: a unique
        # wrong read on specific march elements).
        other = (cell + 1) % n_cells
        if other == cell:
            other = (cell - 1) % n_cells
        return MultipleAccessFault(cell, (other,))
    if mode is FaultMode.WRITE_FAIL:
        return TransitionFault(cell, rising=manifestation.stuck_value == 0)
    if mode is FaultMode.RETENTION:
        # The decay window must elapse between successive touches of the
        # victim.  At word granularity a cell is re-touched roughly every
        # `words` cycles (once per march element), so scale the window to
        # the word count when the geometry is known; the flat cell count
        # is only correct for bit-level simulation.
        horizon = geometry.words if geometry is not None else n_cells
        return DataRetentionFault(cell, manifestation.stuck_value,
                                  retention_cycles=max(2, horizon // 2))
    raise ValueError(f"unknown fault mode {mode}")


def decoder_open_to_delay_fault(defect, condition, address_bits: int,
                                behavior) -> "object | None":
    """Render a decoder-input open's at-speed lag as an
    :class:`~repro.faults.address_delay.AddressTransitionDelayFault`.

    Returns ``None`` when the lag fits the period's address-settle
    budget.  The affected address bit is derived from the defect's
    location; the polarity from its sign convention.  Feed the result to
    :class:`repro.tester.movi.MoviExecutor` -- linear marching cannot
    sensitise bits above 0 ([Azimane 04]).
    """
    from repro.faults.address_delay import AddressTransitionDelayFault

    if not behavior.decoder_open_delay_manifests(defect, condition):
        return None
    return AddressTransitionDelayFault(
        bit=defect.cell % address_bits,
        rising=defect.polarity > 0,
        address_bits=address_bits,
    )


def make_atspeed_fault(cell: int, state: int = 0,
                       max_gap_cycles: int = 1) -> AtSpeedDynamicFault:
    """An at-speed dynamic fault for a delay-type defect.

    ``<0w1r1/0/1>``-style: the back-to-back write/read pair misses
    timing; used when a delay defect should only fire on consecutive
    cycles (the strict at-speed sensitisation of Section 4.3).
    """
    notation = f"<{state}w{1 - state}r{1 - state}/{state}/{1 - state}>"
    return AtSpeedDynamicFault(primitive=FaultPrimitive.parse(notation),
                               cell=cell, max_gap_cycles=max_gap_cycles)


# ----------------------------------------------------------------------
# Netlist-level injection (Spice-like path)
# ----------------------------------------------------------------------
def inject_bridge_into_cell(cell: SixTCell, vdd: float, state: int,
                            defect: Defect,
                            to_rail: str | None = None,
                            erc: bool = True) -> Netlist:
    """Standalone 6T-cell netlist with the bridge spliced in.

    Args:
        cell: The cell template.
        vdd: Supply voltage.
        state: Stored value under attack.
        defect: Bridge defect (its resistance is used).
        to_rail: ``"gnd"``/``"vdd"``; default chosen from the defect
            polarity (-1 -> gnd).
        erc: Run the netlist ERC pack on the result and raise
            :class:`repro.lint.LintError` on error findings; disable
            inside hot sweep loops.

    Returns:
        The faulty netlist, ready for
        :meth:`repro.memory.cell.SixTCell.solve_state`.
    """
    rail = to_rail if to_rail is not None else ("gnd" if defect.polarity < 0
                                                else "vdd")
    base = cell.standalone_netlist(vdd, state)
    high_node = cell.node("t") if state else cell.node("c")
    low_node = cell.node("c") if state else cell.node("t")
    if rail == "gnd":
        faulty = base.with_bridge(high_node, "0", defect.resistance)
    else:
        faulty = base.with_bridge(low_node, "vdd", defect.resistance)
    if erc:
        _erc_check(faulty, cell.tech)
    return faulty


def _erc_check(netlist: Netlist, tech) -> None:
    """Gate an injected netlist on the ``NET0xx`` ERC pack (errors only)."""
    from repro.lint import assert_netlist_clean

    assert_netlist_clean(netlist, tech=tech,
                         target=f"injection:{netlist.title}")


def inject_open_into_decoder(tech, vdd: float, defect: Defect,
                             address_bits: int = 2,
                             erc: bool = True) -> Netlist:
    """Decoder netlist with a resistive open at the LSB input inverter.

    Reproduces the paper's Figure 5/6 setup: "an open defect injected at
    the least significant bit of the row address decoder".  The open is
    spliced in series with the gate of the LSB phase inverter, so the
    complement phase ``a0b`` lags the true phase -- the select/deselect
    hazard.  ``erc=False`` skips the post-injection ERC gate.
    """
    base = build_decoder_netlist(tech, vdd, address_bits=address_bits)
    faulty = base.with_open("INVA0_P", "gate", defect.resistance,
                            name="Ropen_a0_p")
    # The same break feeds both devices of the inverter (one physical
    # via): splice the NMOS gate onto the same floating node.
    import dataclasses

    from repro.circuit.devices import Capacitor

    nmos = faulty["INVA0_N"]
    pmos = faulty["INVA0_P"]
    faulty._devices["INVA0_N"] = dataclasses.replace(nmos, gate=pmos.gate)
    # Gate capacitance of the inverter pair: together with the open's
    # resistance this forms the RC that delays the complement phase --
    # the select/deselect hazard of the paper's Figures 5/6.
    faulty.add(Capacitor("Cgate_open", pmos.gate, "0",
                         3.0 * tech.gate_capacitance))
    if erc:
        _erc_check(faulty, tech)
    return faulty
