"""Fab defect statistics: resistance distributions, density and yield.

The paper's defect coverage (Table 1) weights per-resistance fault
coverage with "the distribution of the defect resistance obtained from
the fab".  We do not have Philips fab data; these parametric stand-ins
follow the published shape knowledge (e.g. [Rodriguez-Montanes et al.],
the VLV literature the paper cites): bridge resistances are dominated by
low-ohmic hard shorts with a long log-tail into the 100 kOhm range;
open/via resistances spread over a much wider range, reaching many
megohms.  All parameters are exposed so ablation benches can vary them.

Also here: defect density / Poisson yield (``Y = exp(-A * D0)``,
paper equation (2)) used by the DPM estimator and by the silicon-
experiment population generator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LognormalComponent:
    """One lognormal mixture component.

    Attributes:
        weight: Mixture weight (normalised by the container).
        median: Median resistance in ohms.
        sigma: Log-space standard deviation.
    """

    weight: float
    median: float
    sigma: float

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("weight must be non-negative")
        if self.median <= 0 or self.sigma <= 0:
            raise ValueError("median and sigma must be positive")


class ResistanceDistribution:
    """A lognormal-mixture resistance distribution.

    Provides pdf/cdf/sampling plus the band-probability queries the
    defect-coverage integrator needs.
    """

    def __init__(self, components: list[LognormalComponent], name: str = "") -> None:
        if not components:
            raise ValueError("need at least one component")
        total = sum(c.weight for c in components)
        if total <= 0:
            raise ValueError("total weight must be positive")
        self.components = [
            LognormalComponent(c.weight / total, c.median, c.sigma)
            for c in components
        ]
        self.name = name

    def cdf(self, r: float) -> float:
        """P(R <= r)."""
        if r <= 0:
            return 0.0
        total = 0.0
        for c in self.components:
            z = (math.log(r) - math.log(c.median)) / c.sigma
            total += c.weight * _phi(z)
        return total

    def pdf(self, r: float) -> float:
        if r <= 0:
            return 0.0
        total = 0.0
        for c in self.components:
            z = (math.log(r) - math.log(c.median)) / c.sigma
            total += (
                c.weight
                * math.exp(-0.5 * z * z)
                / (r * c.sigma * math.sqrt(2.0 * math.pi))
            )
        return total

    def band_probability(self, r_lo: float, r_hi: float) -> float:
        """P(r_lo < R <= r_hi)."""
        if r_hi < r_lo:
            raise ValueError("r_hi must be >= r_lo")
        return self.cdf(r_hi) - self.cdf(r_lo)

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw resistances (ohms)."""
        weights = np.array([c.weight for c in self.components])
        choice = rng.choice(len(self.components), size=size, p=weights)
        out = np.empty(size)
        for i, c in enumerate(self.components):
            mask = choice == i
            n = int(mask.sum())
            if n:
                out[mask] = np.exp(
                    rng.normal(math.log(c.median), c.sigma, size=n)
                )
        return out

    def quantile_grid(self, n: int = 64, lo_q: float = 0.001,
                      hi_q: float = 0.999) -> np.ndarray:
        """Log-spaced resistance grid covering the distribution's bulk,
        used by the coverage integrator."""
        lo = self._quantile(lo_q)
        hi = self._quantile(hi_q)
        return np.logspace(math.log10(lo), math.log10(hi), n)

    def _quantile(self, q: float) -> float:
        lo, hi = 1e-3, 1e12
        for _ in range(80):
            mid = math.sqrt(lo * hi)
            if self.cdf(mid) < q:
                lo = mid
            else:
                hi = mid
        return math.sqrt(lo * hi)


def _phi(z: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


def default_bridge_distribution() -> ResistanceDistribution:
    """Bridge resistance: ~75 % hard/low-ohmic shorts (median 50 ohm)
    plus a soft-bridge tail (median 8 kOhm, broad) reaching past
    100 kOhm -- the shape behind Table 1's defect-coverage weighting and
    the dominance of the VLV-only class in the Figure 11 Venn."""
    return ResistanceDistribution(
        [
            LognormalComponent(0.75, 50.0, 1.2),
            LognormalComponent(0.25, 8.0e3, 2.0),
        ],
        name="bridge-R (fab stand-in)",
    )


def default_open_distribution() -> ResistanceDistribution:
    """Open/via resistance: broad lognormal (median 200 kOhm) with a
    resistive-via tail into the tens of megohms, matching the range the
    paper's Figure 8 sweeps (1.5 .. >4 MOhm)."""
    return ResistanceDistribution(
        [
            LognormalComponent(0.90, 1.0e5, 1.8),
            LognormalComponent(0.10, 2.0e6, 1.5),
        ],
        name="open-R (fab stand-in)",
    )


@dataclass(frozen=True)
class DefectDensity:
    """Defect density and kind mix for a process.

    Attributes:
        d0_per_cm2: Total electrically-relevant defect density
            (defects/cm^2), the D0 of ``Y = exp(-A * D0)``.
        bridge_fraction: Fraction of defects that are bridges (the paper
            notes bridges dominate at 0.18 um; opens take over at
            0.13 um and below).
    """

    d0_per_cm2: float = 0.4
    bridge_fraction: float = 0.7

    def __post_init__(self) -> None:
        if self.d0_per_cm2 <= 0:
            raise ValueError("d0_per_cm2 must be positive")
        if not 0.0 <= self.bridge_fraction <= 1.0:
            raise ValueError("bridge_fraction must be in [0, 1]")

    def defects_per_chip(self, area_um2: float) -> float:
        """Poisson mean defect count for a chip area (lambda = A * D0)."""
        if area_um2 < 0:
            raise ValueError("area must be non-negative")
        area_cm2 = area_um2 * 1e-8
        return area_cm2 * self.d0_per_cm2

    def yield_fraction(self, area_um2: float) -> float:
        """Poisson yield ``Y = exp(-A * D0)`` (paper equation (2))."""
        return math.exp(-self.defects_per_chip(area_um2))


#: Default process corner densities.  0.4 defects/cm^2 with a 2 um^2
#: 256 Kbit-instance array gives Y ~ 99.7 % per instance -- a mature
#: process, consistent with ~36 subtle escapes in 11k parts.
DEFAULT_DENSITY = DefectDensity()
