"""Resistive defect models: bridges and opens with site taxonomy.

The paper's subject is *soft defects*: resistive shorts (bridges) and
resistive opens whose visibility depends on stress conditions.  A defect
instance couples

* a **site class** -- where in the SRAM the defect sits, which fixes the
  electrical mechanism (a storage-node-to-rail bridge behaves as a
  voltage divider; a decoder-input open creates a select/deselect timing
  hazard; ...);
* a **resistance** -- sampled from the fab distribution
  (:mod:`repro.defects.distribution`);
* a **strength factor** -- per-site lognormal spread capturing layout
  context (driver sizing, wire lengths, neighbour activity) that the IFA
  extraction assigns from critical-area analysis;
* a **location** -- the flat cell index (or row/address) used when the
  defect is rendered into a functional fault.

The site-class fractions used by the synthetic IFA extractor are chosen
from the structural composition of an SRAM layout (rail adjacency
dominates the bridge critical area) and calibrated against the paper's
Table 1; see DESIGN.md section 6 and
:data:`repro.ifa.extraction.BRIDGE_SITE_MIX`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class DefectKind(Enum):
    """Top-level defect type."""

    BRIDGE = "bridge"
    OPEN = "open"


class BridgeSite(Enum):
    """Where a resistive bridge sits, determining its detection physics.

    Members:
        CELL_NODE_RAIL: Storage node shorted to VDD or GND rail.  The
            dominant class by critical area (rails surround every cell).
            Voltage-divider mechanism against the restoring transistor:
            critical resistance rises steeply as Vdd drops -- the main
            VLV target (paper Section 4.1).
        CELL_NODE_NODE: Storage node to an adjacent cell's node or to the
            complement node.  Detection rides on read-disturb noise
            margin, which collapses at VLV; at nominal and above only
            near-hard shorts are visible.
        WORDLINE_CELL: Deselected (low) word line to a storage node.  The
            leak fights only the weak pull-up; at VLV the pull-up barely
            restores, so the class is detectable over a huge resistance
            range -- but only at VLV.
        BITLINE_BITLINE: Between a precharged bit-line pair.  Fights the
            differential development; stronger precharge and faster
            development mask it at high supply, so detection requires
            low-to-nominal voltage (and it also slows sensing: the class
            carries an at-speed detection band).
        DECODER_LOGIC: Inside static decode gates; contention between
            full drivers, weakly voltage dependent, detected only below a
            mid-range resistance.
        PERIPHERY_METAL: Between strongly driven periphery wires; needs a
            near-hard short at any voltage.
        EQUIVALENT_NODE: Between electrically equivalent nodes (same
            net's parallel branches); never detectable by voltage/timing
            stress -- the irreducible escape floor.
    """

    CELL_NODE_RAIL = "cell_node_rail"
    CELL_NODE_NODE = "cell_node_node"
    WORDLINE_CELL = "wordline_cell"
    BITLINE_BITLINE = "bitline_bitline"
    DECODER_LOGIC = "decoder_logic"
    PERIPHERY_METAL = "periphery_metal"
    EQUIVALENT_NODE = "equivalent_node"


class OpenSite(Enum):
    """Where a resistive open sits.

    Members:
        BITLINE_SEGMENT: Series resistance in a bit line or its via
            chain.  Pure RC delay, essentially voltage independent
            (Chip-3 of the paper: vertical shmoo boundary); at-speed
            target.
        CELL_ACCESS: In series with a cell's access transistor; the
            read develops slowly -- delay-type, with mild voltage
            dependence.
        CELL_PULLUP: Broken/resistive via to the cell pull-up PMOS.  At
            VLV the weakened restore loses against leakage (retention
            class); at Vmax the elevated gate/junction leakage through
            the defect also becomes visible -- the site class that
            produces the paper's VLV-and-Vmax overlap devices.
        DECODER_INPUT: Open at an address-decoder input (the Figure 5/6
            defect).  Creates a select/deselect hazard whose disturb
            current grows superlinearly with Vdd while margins grow
            linearly: detected only *above* a critical supply -- the
            Vmax-only class (Chip-2), frequency independent.
        PERIPHERY_PATH: In a periphery logic/clock path; delay that
            scales with gate delay, so the pass-fail boundary moves with
            voltage (Chip-4's voltage-dependent timing failure).
    """

    BITLINE_SEGMENT = "bitline_segment"
    CELL_ACCESS = "cell_access"
    CELL_PULLUP = "cell_pullup"
    DECODER_INPUT = "decoder_input"
    PERIPHERY_PATH = "periphery_path"


@dataclass(frozen=True)
class Defect:
    """One resistive defect instance.

    Attributes:
        kind: Bridge or open.
        site: A :class:`BridgeSite` or :class:`OpenSite` member.
        resistance: Defect resistance in ohms.
        strength: Per-site lognormal strength factor (multiplies the
            class's critical resistance / delay scale); 1.0 = the class
            median site.
        cell: Flat cell index of the affected cell (or, for decoder /
            periphery sites, of a representative victim cell).
        weight: Relative likelihood from critical-area extraction
            (arbitrary units; normalised by consumers).
        polarity: For rail bridges: +1 = to VDD, -1 = to GND; unused
            otherwise.
    """

    kind: DefectKind
    site: BridgeSite | OpenSite
    resistance: float
    strength: float = 1.0
    cell: int = 0
    weight: float = 1.0
    polarity: int = -1

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ValueError("resistance must be positive")
        if self.strength <= 0:
            raise ValueError("strength must be positive")
        if self.weight < 0:
            raise ValueError("weight must be non-negative")
        if self.kind is DefectKind.BRIDGE and not isinstance(self.site, BridgeSite):
            raise TypeError("bridge defect needs a BridgeSite")
        if self.kind is DefectKind.OPEN and not isinstance(self.site, OpenSite):
            raise TypeError("open defect needs an OpenSite")
        if self.polarity not in (-1, 1):
            raise ValueError("polarity must be -1 or +1")

    def with_resistance(self, resistance: float) -> "Defect":
        """Copy with a different resistance (for R sweeps).

        Raises:
            ValueError: non-positive (or NaN) resistance -- a sweep
                grid built from a bad axis fails here, at the source,
                instead of deep inside the behaviour model.
        """
        if not resistance > 0:
            raise ValueError(
                f"resistance must be positive, got {resistance!r}")
        # Direct construction, not dataclasses.replace(): this runs
        # once per (site, R) in every sweep, and replace()'s field
        # introspection costs several times the constructor it wraps.
        return Defect(self.kind, self.site, float(resistance),
                      self.strength, self.cell, self.weight,
                      self.polarity)

    def __str__(self) -> str:
        return (
            f"{self.kind.value}/{self.site.value} R={self.resistance:,.0f}ohm "
            f"k={self.strength:.2f} cell={self.cell}"
        )


def bridge(site: BridgeSite, resistance: float, **kwargs) -> Defect:
    """Convenience constructor for a bridge defect."""
    return Defect(DefectKind.BRIDGE, site, resistance, **kwargs)


def open_defect(site: OpenSite, resistance: float, **kwargs) -> Defect:
    """Convenience constructor for an open defect."""
    return Defect(DefectKind.OPEN, site, resistance, **kwargs)
