"""Resistive defect models, fab statistics and stress-dependent behaviour.

The paper's soft defects: resistive bridges and opens with a site
taxonomy tied to SRAM structure, lognormal-mixture resistance
distributions standing in for fab data, Poisson defect density/yield,
and the calibrated :class:`~repro.defects.behavior.DefectBehaviorModel`
that decides how each defect manifests at each stress condition.
"""

from repro.defects.behavior import (
    DEFAULT_PARAMS,
    BehaviorParams,
    DefectBehaviorModel,
    FaultMode,
    Manifestation,
)
from repro.defects.distribution import (
    DEFAULT_DENSITY,
    DefectDensity,
    LognormalComponent,
    ResistanceDistribution,
    default_bridge_distribution,
    default_open_distribution,
)
from repro.defects.injection import (
    decoder_open_to_delay_fault,
    inject_bridge_into_cell,
    inject_open_into_decoder,
    make_atspeed_fault,
    to_functional_fault,
)
from repro.defects.models import (
    BridgeSite,
    Defect,
    DefectKind,
    OpenSite,
    bridge,
    open_defect,
)

__all__ = [
    "BehaviorParams",
    "BridgeSite",
    "DEFAULT_DENSITY",
    "DEFAULT_PARAMS",
    "Defect",
    "DefectBehaviorModel",
    "DefectDensity",
    "DefectKind",
    "FaultMode",
    "LognormalComponent",
    "Manifestation",
    "OpenSite",
    "ResistanceDistribution",
    "bridge",
    "decoder_open_to_delay_fault",
    "default_bridge_distribution",
    "default_open_distribution",
    "inject_bridge_into_cell",
    "inject_open_into_decoder",
    "make_atspeed_fault",
    "open_defect",
    "to_functional_fault",
]
