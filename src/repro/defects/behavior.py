"""Defect behaviour under stress: the electrical manifestation engine.

This module answers the library's central question: *given a resistive
defect and a stress condition (Vdd, clock period), does the defect
produce observable faulty behaviour -- and of what kind?*

It is the behavioural ("pre-calculated") counterpart of the paper's
per-defect analogue simulations: the closed-form detection criteria below
are first-order electrical models whose parameters were calibrated
against (a) the transistor-level 6T-cell analysis in
:mod:`repro.memory.cell` for qualitative trends and (b) the paper's
published numbers for quantitative anchors (Table 1 coverage pattern,
Figure 8's 4 MOhm @ 50 MHz / 1.5 MOhm @ 100 MHz thresholds, the Chip-1..4
shmoo signatures).  Every constant lives in :class:`BehaviorParams` so
ablation studies can move it.

Mechanisms implemented (paper cross-references):

* **Bridge = voltage divider** (Section 4.1): a storage-node bridge
  fights the restoring transistor, whose effective strength scales as
  ``(Vdd - VT_eff)^alpha / Vdd``; the critical (largest detectable)
  resistance therefore *rises steeply* as Vdd approaches VT_eff -- VLV
  detects high-ohmic bridges that all other corners miss.
* **Read-SNM collapse at VLV**: node-to-node bridges only upset the cell
  when the read noise margin is already marginal, i.e. below a supply
  threshold around 1.2 V.
* **Decoder-open select hazard** (Section 4.2, Figures 5/6): disturb
  current through the hazard grows superlinearly with Vdd while margins
  grow linearly -- detection only *above* a critical supply (Vmax-only
  class, frequency independent).
* **Open = RC delay** (Section 4.3, Figure 8): a resistive open adds
  ``R * C`` to a path; it is detected only when the added delay exceeds
  the slack at the test period, hence the detectable-resistance floor
  drops as frequency rises.
* **Retention weakening** (pull-up opens): the restore loses to leakage
  at VLV; at strongly elevated supply the defect's leakage path becomes
  visible again -- producing devices that fail both VLV *and* Vmax, the
  overlap classes of the paper's Figure 11 Venn diagram.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

import numpy as np

from repro.circuit.technology import Technology
from repro.defects.models import BridgeSite, Defect, DefectKind, OpenSite
from repro.memory.sram import TimingModel
from repro.stress import StressCondition


class FaultMode(Enum):
    """How a manifested defect misbehaves functionally."""

    CELL_STUCK = "cell_stuck"          # cell reads/holds a fixed value
    CELL_FLIP = "cell_flip"            # stored value upset (read disturb)
    READ_DELAY = "read_delay"          # reads of the victim return stale data
    ADDRESS_HAZARD = "address_hazard"  # decoder dual-select disturb
    WRITE_FAIL = "write_fail"          # writes to the victim do not land
    RETENTION = "retention"            # cell leaks its state


@dataclass(frozen=True)
class Manifestation:
    """Observable faulty behaviour of a defect at one stress condition.

    Attributes:
        mode: Functional fault mode.
        cell: Victim flat cell index.
        stuck_value: For CELL_STUCK/CELL_FLIP: the value the cell tends
            to (the paper's Chip-1 shows stuck-at-1-like behaviour at
            VLV only).
        severity: Margin ratio (how far past the detection threshold the
            condition sits); >= 1 means manifest.  Reported for
            diagnosis and shmoo sharpness.
    """

    mode: FaultMode
    cell: int
    stuck_value: int = 0
    severity: float = 1.0


@dataclass(frozen=True)
class ResistanceFrontier:
    """A site's detection frontier along the resistance axis.

    The paper's evaluation is monotone in R (Section 4.1, Figure 8): a
    bridge is detected at or below a critical resistance, an open at or
    above a threshold.  A frontier captures that structure for one
    (site, condition) pair as an O(1) predicate, letting the sweep
    solver (:mod:`repro.perf.frontier`) answer every resistance point
    of a sweep without re-running the full behavioural evaluation.

    The predicate must replicate the exact model's float arithmetic --
    same operand order, same comparison operators -- so that frontier
    answers are *byte-identical* to :meth:`DefectBehaviorModel.
    fails_condition`, not merely approximately equal.

    Attributes:
        orientation: ``"detected_below"`` when the detected set is a
            down-set in R (bridges), ``"detected_above"`` when it is an
            up-set (opens).
        detects: ``resistance -> bool``; True when a defect of this
            site/strength at this resistance is detected under the
            frontier's condition.
    """

    orientation: str
    detects: Callable[[float], bool]

    def __post_init__(self) -> None:
        if self.orientation not in ("detected_below", "detected_above"):
            raise ValueError(
                f"orientation must be 'detected_below' or "
                f"'detected_above', got {self.orientation!r}")


@dataclass(frozen=True)
class BehaviorParams:
    """Calibration constants of the behavioural defect models.

    Bridge classes (critical resistance = strength * base(V)):

    Attributes:
        rail_c: CELL_NODE_RAIL scale (ohms) -- base R_crit at the shape
            function's unity point; calibrated so R_crit(1.8 V) is
            ~87 kOhm, which reproduces Table 1's 90 kOhm column.
        rail_vt_eff: Effective threshold of the restoring path (V);
            above a single-device VT because of stacking/body effect.
            Controls how fast R_crit rises at VLV.
        rail_alpha: Exponent of the restoring-drive collapse.
        snm_r_hi: CELL_NODE_NODE critical resistance when the read noise
            margin has collapsed (VLV regime).
        snm_r_lo: Same, in the stable regime (Vmin and above).
        snm_v_mid: Supply at which the read-SNM collapse transition sits.
        snm_v_width: Width of that transition.
        wordline_r: WORDLINE_CELL critical resistance in the VLV regime.
        wordline_v_mid: Supply below which the weak restore loses.
        bitline_r: BITLINE_BITLINE critical resistance.
        bitline_v_mask: Supply above which stronger precharge/development
            masks the bridge (mean; site spread applies).
        bitline_v_sigma: Site spread of the masking voltage.
        bitline_atspeed_r: Below this resistance the bridge also slows
            differential development enough to fail at-speed.
        decoder_r: DECODER_LOGIC critical resistance (weak V dependence).
        periphery_r: PERIPHERY_METAL critical resistance.

    Open classes:

    Attributes:
        seg_c: BITLINE_SEGMENT effective capacitance (F) -- R*C is the
            added delay; 4 fF reproduces Figure 8's frequency thresholds.
        seg_t0: Fault-free segment path delay at nominal supply (s).
        access_c: CELL_ACCESS effective capacitance (F).
        access_t0: Fault-free develop time at nominal supply (s).
        access_vlv_blowup: Extra develop-time factor at VLV (read current
            collapse) -- creates the VLV+at-speed overlap class.
        pullup_r_vlv: CELL_PULLUP resistance above which retention fails
            at VLV.
        pullup_r_vmax: Resistance above which the leakage path shows at
            Vmax (>= pullup_r_vlv: such devices fail both).
        dec_v_base: DECODER_INPUT median detection voltage at the
            reference resistance.
        dec_v_slope: Detection-voltage decrease per decade of R.
        dec_r_ref: Reference resistance of the decoder-open model.
        dec_v_spread: Site spread of the detection voltage.
        dec_flip_c: Scale of the disturbed cell's flip time (s) in the
            dual-select hazard; calibrated against the transistor-level
            decoder simulation (Figures 5/6 bench).
        dec_flip_vt: Effective threshold of the disturb path (V).
        periphery_c: PERIPHERY_PATH effective capacitance (F); the delay
            scales with gate delay (voltage dependent, Chip-4).
        periphery_t0: Fault-free periphery path delay at nominal (s).

    Temperature stress (relative to the 25 C calibration point):

    Attributes:
        temp_vt_coeff: Threshold-voltage decrease per Kelvin (V/K).
            Cold test -> higher VT -> steeper VLV advantage; hot ->
            stronger restore at low supply.
        temp_delay_coeff: Fractional delay increase per Kelvin
            (mobility degradation); hot testing tightens timing slack,
            helping at-speed detection.
        temp_retention_doubling: Temperature step (K) that doubles cell
            leakage; hot testing halves the pull-up-open resistance
            needed to fail retention.
    """

    # Bridges ---------------------------------------------------------
    rail_c: float = 58.5e3
    rail_vt_eff: float = 0.70
    rail_alpha: float = 2.0
    snm_r_hi: float = 220e3
    snm_r_lo: float = 250.0
    snm_v_mid: float = 1.25
    snm_v_width: float = 0.05
    wordline_r: float = 1.0e6
    wordline_v_mid: float = 1.20
    wordline_v_width: float = 0.03
    bitline_r: float = 40e3
    bitline_v_mask: float = 1.875
    bitline_v_sigma: float = 0.05
    bitline_atspeed_r: float = 5e3
    decoder_r: float = 25e3
    periphery_r: float = 120.0
    # Opens -----------------------------------------------------------
    seg_c: float = 4e-15
    seg_t0: float = 4e-9
    access_c: float = 1e-15
    access_t0: float = 3e-9
    access_vlv_blowup: float = 4.0
    pullup_r_vlv: float = 1.5e6
    pullup_r_vmax: float = 6.0e6
    dec_v_base: float = 1.80
    dec_v_slope: float = 0.35
    dec_r_ref: float = 1.0e6
    dec_v_spread: float = 0.40
    dec_flip_c: float = 0.68e-9
    dec_flip_vt: float = 0.80
    periphery_c: float = 2e-15
    periphery_t0: float = 4e-9
    # Temperature (relative to the 25 C calibration point) ------------
    temp_vt_coeff: float = 1.0e-3
    temp_delay_coeff: float = 2.0e-3
    temp_retention_doubling: float = 20.0


#: Default calibration (CMOS 0.18 um; see class docstring).
DEFAULT_PARAMS = BehaviorParams()


def _sigmoid(x: float) -> float:
    if x > 40.0:
        return 1.0
    if x < -40.0:
        return 0.0
    return 1.0 / (1.0 + math.exp(-x))


class DefectBehaviorModel:
    """Evaluate defect manifestation under stress conditions.

    Args:
        tech: Technology corner (supplies the VLV/Vnom/... anchors and
            the alpha-power scaling of fault-free delays).
        timing: The SRAM's calibrated critical-path model, used to scale
            fault-free path delays with supply voltage.
        params: Calibration constants (defaults reproduce the paper).
    """

    def __init__(self, tech: Technology,
                 timing: TimingModel | None = None,
                 params: BehaviorParams | None = None) -> None:
        self.tech = tech
        self.timing = timing if timing is not None else TimingModel()
        self.params = params if params is not None else DEFAULT_PARAMS

    # ------------------------------------------------------------------
    # Voltage scaling helpers
    # ------------------------------------------------------------------
    def _delay_scale(self, vdd: float, temperature: float = 25.0) -> float:
        """Fault-free path-delay multiplier relative to the nominal
        supply at 25 C (temperature degrades mobility)."""
        scale = self.timing.logic_scale(vdd, self.tech.vdd_nominal)
        return scale * self._temp_delay_factor(temperature)

    def _temp_delay_factor(self, temperature: float) -> float:
        return 1.0 + self.params.temp_delay_coeff * (temperature - 25.0)

    def _temp_vt_shift(self, temperature: float) -> float:
        """Threshold reduction at elevated temperature (V)."""
        return self.params.temp_vt_coeff * (temperature - 25.0)

    def _temp_leak_factor(self, temperature: float) -> float:
        return 2.0 ** ((temperature - 25.0)
                       / self.params.temp_retention_doubling)

    def _site_z(self, defect: Defect, sigma: float) -> float:
        """Normalised site deviation from the defect's strength factor."""
        return math.log(defect.strength) / sigma if sigma > 0 else 0.0

    # ------------------------------------------------------------------
    # Bridge critical resistance
    # ------------------------------------------------------------------
    def bridge_critical_resistance(self, site: BridgeSite, vdd: float,
                                   strength: float = 1.0,
                                   temperature: float = 25.0) -> float:
        """Largest detectable bridge resistance at a supply voltage.

        The per-class base curves below are the "database" distilled
        from defect simulation; ``strength`` shifts a specific site
        around its class median; ``temperature`` shifts the restoring
        path's effective threshold (cold testing widens the VLV reach,
        [Schanstra 99]'s stress-combination axis).
        """
        p = self.params
        if site is BridgeSite.CELL_NODE_RAIL:
            vt_eff = p.rail_vt_eff - self._temp_vt_shift(temperature)
            if vdd <= vt_eff:
                return math.inf
            shape = vdd / (vdd - vt_eff) ** p.rail_alpha
            return strength * p.rail_c * shape
        if site is BridgeSite.CELL_NODE_NODE:
            frac = _sigmoid((p.snm_v_mid - vdd) / p.snm_v_width)
            return strength * (p.snm_r_lo + (p.snm_r_hi - p.snm_r_lo) * frac)
        if site is BridgeSite.WORDLINE_CELL:
            frac = _sigmoid((p.wordline_v_mid - vdd) / p.wordline_v_width)
            return strength * p.wordline_r * frac
        if site is BridgeSite.BITLINE_BITLINE:
            return strength * p.bitline_r
        if site is BridgeSite.DECODER_LOGIC:
            # Contention between full static drivers: weak V dependence.
            return strength * p.decoder_r * (1.0 + 0.1 * (self.tech.vdd_nominal - vdd))
        if site is BridgeSite.PERIPHERY_METAL:
            return strength * p.periphery_r
        if site is BridgeSite.EQUIVALENT_NODE:
            return 0.0
        raise ValueError(f"unknown bridge site {site}")

    # ------------------------------------------------------------------
    # Manifestation
    # ------------------------------------------------------------------
    def manifestation(self, defect: Defect,
                      condition: StressCondition) -> Manifestation | None:
        """Observable behaviour of ``defect`` at ``condition``.

        Returns ``None`` when the defect stays silent (a test escape at
        this condition).
        """
        if defect.kind is DefectKind.BRIDGE:
            return self._bridge_manifestation(defect, condition)
        return self._open_manifestation(defect, condition)

    def _bridge_manifestation(self, defect: Defect,
                              condition: StressCondition) -> Manifestation | None:
        p = self.params
        site = defect.site
        vdd = condition.vdd

        if site is BridgeSite.BITLINE_BITLINE:
            # Voltage mechanism: masked above a site-specific supply.
            v_mask = (p.bitline_v_mask
                      + p.bitline_v_sigma * self._site_z(defect, 0.5))
            r_crit = self.bridge_critical_resistance(
                site, vdd, defect.strength, condition.temperature)
            if vdd <= v_mask and defect.resistance <= r_crit:
                return Manifestation(
                    FaultMode.CELL_FLIP, defect.cell,
                    stuck_value=0 if defect.polarity < 0 else 1,
                    severity=r_crit / defect.resistance,
                )
            # Timing mechanism: the shunt slows differential development.
            r_as = p.bitline_atspeed_r * defect.strength
            develop_need = self._delay_scale(vdd, condition.temperature)
            if (defect.resistance <= r_as
                    and condition.period < 25e-9 * develop_need):
                return Manifestation(
                    FaultMode.READ_DELAY, defect.cell,
                    severity=r_as / defect.resistance,
                )
            return None

        r_crit = self.bridge_critical_resistance(
            site, vdd, defect.strength, condition.temperature)
        if defect.resistance > r_crit:
            return None
        stuck = 1 if defect.polarity > 0 else 0
        if site in (BridgeSite.DECODER_LOGIC, BridgeSite.PERIPHERY_METAL):
            return Manifestation(FaultMode.ADDRESS_HAZARD, defect.cell,
                                 stuck_value=stuck,
                                 severity=r_crit / defect.resistance)
        return Manifestation(FaultMode.CELL_STUCK, defect.cell,
                             stuck_value=stuck,
                             severity=r_crit / defect.resistance)

    def _open_manifestation(self, defect: Defect,
                            condition: StressCondition) -> Manifestation | None:
        p = self.params
        site = defect.site
        vdd, period = condition.vdd, condition.period
        scale = self._delay_scale(vdd, condition.temperature)
        if math.isinf(scale):
            # Below the path threshold the whole chip fails anyway; the
            # ATE's fault-free timing check covers this region.
            return None

        if site is OpenSite.BITLINE_SEGMENT:
            # Added delay R*C vs slack; the fault-free segment delay is
            # wire-RC dominated and therefore voltage independent --
            # which is exactly why Chip-3's shmoo boundary is vertical.
            added = defect.resistance * p.seg_c * defect.strength
            path = p.seg_t0
            if path + added > period:
                return Manifestation(FaultMode.READ_DELAY, defect.cell,
                                     severity=(path + added) / period)
            return None

        if site is OpenSite.CELL_ACCESS:
            added = defect.resistance * p.access_c * defect.strength
            develop = p.access_t0 * scale
            # Read-current collapse at VLV blows up the develop time.
            if vdd <= self.tech.vdd_vlv + 0.15:
                develop *= p.access_vlv_blowup
            window = 0.35 * period
            if develop + added > window:
                return Manifestation(FaultMode.READ_DELAY, defect.cell,
                                     severity=(develop + added) / window)
            return None

        if site is OpenSite.CELL_PULLUP:
            # Hot testing: leakage doubles every temp_retention_doubling
            # Kelvin, so weaker (lower-R) pull-up opens already fail.
            leak = self._temp_leak_factor(condition.temperature)
            r_vlv = p.pullup_r_vlv * defect.strength / leak
            r_vmax = p.pullup_r_vmax * defect.strength / leak
            if vdd <= self.tech.vdd_vlv + 0.1 and defect.resistance >= r_vlv:
                return Manifestation(FaultMode.RETENTION, defect.cell,
                                     stuck_value=0,
                                     severity=defect.resistance / r_vlv)
            if vdd >= self.tech.vdd_max - 1e-9 and defect.resistance >= r_vmax:
                return Manifestation(FaultMode.CELL_STUCK, defect.cell,
                                     stuck_value=0,
                                     severity=defect.resistance / r_vmax)
            return None

        if site is OpenSite.DECODER_INPUT:
            v_detect = self.decoder_open_detection_voltage(defect)
            if vdd >= v_detect:
                return Manifestation(FaultMode.ADDRESS_HAZARD, defect.cell,
                                     severity=vdd / v_detect)
            return None

        if site is OpenSite.PERIPHERY_PATH:
            # Gate-delay-scaled added delay: the boundary moves with
            # voltage (Chip-4).
            added = defect.resistance * p.periphery_c * defect.strength * scale
            path = p.periphery_t0 * scale
            if path + added > period:
                return Manifestation(FaultMode.READ_DELAY, defect.cell,
                                     severity=(path + added) / period)
            return None

        raise ValueError(f"unknown open site {site}")

    def decoder_disturb_flip_time(self, vdd: float) -> float:
        """Time a dual-select hazard must persist to flip a victim cell.

        The disturb current grows superlinearly with supply while the
        charge needed grows only linearly, so the flip time *falls* with
        Vdd -- the reason the decoder-open hazard is detected at Vmax but
        escapes at Vnom and VLV (paper Figures 5/6).  Compare against the
        hazard window measured by the transistor-level decoder
        simulation.
        """
        p = self.params
        if vdd <= p.dec_flip_vt:
            return math.inf
        return p.dec_flip_c * vdd / (vdd - p.dec_flip_vt) ** 2

    def decoder_open_delay_manifests(self, defect: Defect,
                                     condition: StressCondition) -> bool:
        """At-speed delay mechanism of a decoder-input open.

        Beyond the voltage hazard (detection above ``v_detect``), the
        open's RC lag on its address bit creates an *address-transition
        delay fault* when the lag eats the address-settle budget of the
        clock period.  Detection additionally requires single-bit
        transition sensitisation -- i.e. the MOVI procedure
        ([Azimane 04]); a linear march misses every bit above 0, so this
        mechanism is intentionally NOT part of :meth:`fails_condition`
        (the production flow of the paper ran linear patterns).
        """
        if defect.site is not OpenSite.DECODER_INPUT:
            raise ValueError("defect is not a decoder-input open")
        lag = (defect.resistance * 3.0 * self.tech.gate_capacitance
               * defect.strength)
        budget = 0.3 * condition.period
        return lag > budget

    def decoder_open_detection_voltage(self, defect: Defect) -> float:
        """Supply voltage above which a decoder-input open is detected.

        Falls with log-resistance (a more resistive open produces a wider
        hazard window) and varies per site; clamped below so that a
        fully broken input (R -> inf) is detected at any usable supply.
        """
        if defect.site is not OpenSite.DECODER_INPUT:
            raise ValueError("defect is not a decoder-input open")
        p = self.params
        v = (p.dec_v_base
             + p.dec_v_spread * self._site_z(defect, 0.5)
             - p.dec_v_slope * math.log10(defect.resistance / p.dec_r_ref))
        return max(v, 0.5 * self.tech.vdd_vlv)

    # ------------------------------------------------------------------
    # Fast detection predicate
    # ------------------------------------------------------------------
    def fails_condition(self, defect: Defect,
                        condition: StressCondition) -> bool:
        """Does the defect make the device fail a (both-polarity-reading,
        both-direction-marching) test at this condition?

        This is the population fast path: every manifested mode is
        detectable by the paper's 11N test, so manifestation implies
        detection.  Cycle-accurate confirmation is available through
        :func:`repro.defects.injection.to_functional_fault` plus the
        virtual tester.
        """
        return self.manifestation(defect, condition) is not None

    def open_detection_threshold(self, period: float,
                                 vdd: float | None = None,
                                 site: OpenSite = OpenSite.BITLINE_SEGMENT,
                                 strength: float = 1.0) -> float:
        """Smallest detectable open resistance at a test period.

        The quantity plotted in the paper's Figure 8: at 50 MHz only
        opens above ~4 MOhm are caught; at 100 MHz the floor drops to
        ~1.5 MOhm.
        """
        p = self.params
        vdd = self.tech.vdd_nominal if vdd is None else vdd
        scale = self._delay_scale(vdd)
        if site is OpenSite.BITLINE_SEGMENT:
            slack = period - p.seg_t0
            cap = p.seg_c * strength
        elif site is OpenSite.CELL_ACCESS:
            slack = 0.35 * period - p.access_t0 * scale
            cap = p.access_c * strength
        elif site is OpenSite.PERIPHERY_PATH:
            slack = period - p.periphery_t0 * scale
            cap = p.periphery_c * strength * scale
        else:
            raise ValueError(f"{site} is not a delay-type open class")
        if slack <= 0.0:
            return 0.0
        return slack / cap

    # ------------------------------------------------------------------
    # Monotone-frontier declarations (repro.perf.frontier fast path)
    # ------------------------------------------------------------------
    def resistance_monotonicity(self, defect: Defect,
                                condition: StressCondition) -> str | None:
        """Direction in which detection is monotone in resistance.

        Every stock mechanism is monotone along R at a fixed condition:
        bridges are detected at or below a critical resistance (the
        voltage-divider loses to the restoring path above it), opens at
        or above a threshold (R*C delay, retention weakening and the
        decoder hazard all grow with R).  Note this says nothing about
        monotonicity in Vdd -- Table 1's Vmax collapse is non-monotone
        there -- only about the R axis the sweep solver bisects.

        Subclasses adding a non-monotone mechanism must override this
        to return ``None`` for the affected (defect, condition) pairs;
        the sweep solver then falls back to exact per-point evaluation.

        Args:
            defect: The site (resistance ignored).
            condition: The stress condition of the sweep.

        Returns:
            ``"detected_below"`` for bridges, ``"detected_above"`` for
            opens; ``None`` would mean "not monotone, evaluate exactly".
        """
        if defect.kind is DefectKind.BRIDGE:
            return "detected_below"
        return "detected_above"

    def resistance_frontier(self, defect: Defect,
                            condition: StressCondition,
                            ) -> ResistanceFrontier | None:
        """Closed-form detection frontier of one site at one condition.

        Returns a :class:`ResistanceFrontier` whose predicate replays
        the *exact* arithmetic of :meth:`manifestation` with the
        resistance as the only free variable -- identical operand
        order, identical comparisons -- so the sweep solver's answers
        are byte-identical to the exact path (this is asserted by
        ``tests/perf/test_frontier.py``).  Returns ``None`` when no
        closed form exists for the site class, in which case the solver
        bisects :meth:`fails_condition` or falls back to exact
        evaluation.

        Args:
            defect: The site whose frontier is wanted (its
                ``resistance`` field is ignored; ``strength``,
                ``polarity`` and the site class matter).
            condition: The stress condition of the sweep.

        Returns:
            The site's frontier, or ``None`` when unavailable.
        """
        if defect.kind is DefectKind.BRIDGE:
            return self._bridge_frontier(defect, condition)
        return self._open_frontier(defect, condition)

    def _bridge_frontier(self, defect: Defect,
                         condition: StressCondition) -> ResistanceFrontier:
        """Bridge frontier: detected at or below the critical resistance."""
        p = self.params
        site = defect.site
        vdd = condition.vdd

        if site is BridgeSite.BITLINE_BITLINE:
            # Union of the voltage and timing mechanisms of
            # _bridge_manifestation; both are down-sets in R.
            v_mask = (p.bitline_v_mask
                      + p.bitline_v_sigma * self._site_z(defect, 0.5))
            r_crit = self.bridge_critical_resistance(
                site, vdd, defect.strength, condition.temperature)
            r_as = p.bitline_atspeed_r * defect.strength
            develop_need = self._delay_scale(vdd, condition.temperature)
            voltage_armed = vdd <= v_mask
            timing_armed = condition.period < 25e-9 * develop_need

            def detects(resistance: float) -> bool:
                return ((voltage_armed and resistance <= r_crit)
                        or (timing_armed and resistance <= r_as))

            return ResistanceFrontier("detected_below", detects)

        r_crit = self.bridge_critical_resistance(
            site, vdd, defect.strength, condition.temperature)

        def detects(resistance: float) -> bool:
            # Mirrors "if defect.resistance > r_crit: return None".
            return not resistance > r_crit

        return ResistanceFrontier("detected_below", detects)

    def _open_frontier(self, defect: Defect,
                       condition: StressCondition) -> ResistanceFrontier:
        """Open frontier: detected at or above a resistance threshold."""
        p = self.params
        site = defect.site
        vdd, period = condition.vdd, condition.period
        scale = self._delay_scale(vdd, condition.temperature)
        if math.isinf(scale):
            # Below the path threshold every open is silent (the ATE's
            # fault-free timing check owns this region).
            return ResistanceFrontier("detected_above",
                                      lambda resistance: False)

        if site is OpenSite.BITLINE_SEGMENT:
            def detects(resistance: float) -> bool:
                added = resistance * p.seg_c * defect.strength
                path = p.seg_t0
                return path + added > period

            return ResistanceFrontier("detected_above", detects)

        if site is OpenSite.CELL_ACCESS:
            develop0 = p.access_t0 * scale
            blowup = vdd <= self.tech.vdd_vlv + 0.15
            window = 0.35 * period

            def detects(resistance: float) -> bool:
                added = resistance * p.access_c * defect.strength
                develop = develop0
                if blowup:
                    develop *= p.access_vlv_blowup
                return develop + added > window

            return ResistanceFrontier("detected_above", detects)

        if site is OpenSite.CELL_PULLUP:
            leak = self._temp_leak_factor(condition.temperature)
            r_vlv = p.pullup_r_vlv * defect.strength / leak
            r_vmax = p.pullup_r_vmax * defect.strength / leak
            vlv_armed = vdd <= self.tech.vdd_vlv + 0.1
            vmax_armed = vdd >= self.tech.vdd_max - 1e-9

            def detects(resistance: float) -> bool:
                return ((vlv_armed and resistance >= r_vlv)
                        or (vmax_armed and resistance >= r_vmax))

            return ResistanceFrontier("detected_above", detects)

        if site is OpenSite.DECODER_INPUT:
            def detects(resistance: float) -> bool:
                v_detect = self.decoder_open_detection_voltage(
                    defect.with_resistance(resistance))
                return vdd >= v_detect

            return ResistanceFrontier("detected_above", detects)

        if site is OpenSite.PERIPHERY_PATH:
            path = p.periphery_t0 * scale

            def detects(resistance: float) -> bool:
                added = (resistance * p.periphery_c * defect.strength
                         * scale)
                return path + added > period

            return ResistanceFrontier("detected_above", detects)

        raise ValueError(f"unknown open site {site}")

    # ------------------------------------------------------------------
    # Vectorised batch evaluation (repro.perf.batch fast path)
    # ------------------------------------------------------------------
    def evaluate_batch(self, sites: Sequence[Defect],
                       resistances: Sequence[float],
                       condition: StressCondition) -> np.ndarray:
        """Vectorised :meth:`fails_condition` over a site x R grid.

        Answers one whole (kind, condition) sweep group in a single
        call: element ``[i, j]`` is exactly
        ``fails_condition(sites[i].with_resistance(resistances[j]),
        condition)``.  *Exactly* means bit-identical, not approximately
        equal: the closed forms below replay the scalar arithmetic of
        :meth:`manifestation` with the same operand grouping and the
        same comparison operators, restricted to IEEE-754-exact
        elementwise numpy operations (``+ - * /``, comparisons,
        ``maximum``).  Transcendentals (``log``, ``log10``, ``exp``,
        ``**``) are never vectorised -- numpy's implementations may
        differ from :mod:`math` by an ulp, enough to flip a boundary
        cell -- and are instead computed per site or per grid point
        through the identical :mod:`math` calls the scalar path makes.
        See ``docs/batch_kernel.md`` for the full contract.

        The hook is optional capability, never obligation: consumers
        (:class:`~repro.perf.batch.BatchEvaluator`, the frontier
        solver) probe for it with ``getattr`` and fall back to the
        scalar path when it is absent, ``None`` or raising -- and
        cross-check a seeded cell sample against ``fails_condition``
        either way, so a lying implementation is demoted rather than
        believed.

        Args:
            sites: Site population (each defect's ``resistance`` field
                is ignored; site class, ``strength`` and ``polarity``
                matter).
            resistances: Resistance grid of the sweep group (ohms).
            condition: The stress condition shared by the whole group.

        Returns:
            Boolean array of shape ``(len(sites), len(resistances))``.

        Raises:
            ValueError: a site's class is unknown to the model (the
                scalar path raises identically, per site).
        """
        r = np.asarray(resistances, dtype=float)
        out = np.zeros((len(sites), r.size), dtype=bool)
        all_strengths = np.fromiter((d.strength for d in sites),
                                    dtype=float, count=len(sites))
        by_class: dict[Any, list[int]] = {}
        for i, defect in enumerate(sites):
            by_class.setdefault(defect.site, []).append(i)
        for site_class, indices in by_class.items():
            strengths = all_strengths[indices]
            if isinstance(site_class, BridgeSite):
                rows = self._bridge_batch(site_class, strengths, r,
                                          condition)
            elif isinstance(site_class, OpenSite):
                rows = self._open_batch(site_class, strengths, r,
                                        condition)
            else:
                raise ValueError(f"unknown defect site {site_class}")
            out[indices] = rows
        return out

    def _bridge_batch(self, site: BridgeSite, strengths: np.ndarray,
                      r: np.ndarray,
                      condition: StressCondition) -> np.ndarray:
        """Detection rows of one bridge class (op-order-exact)."""
        p = self.params
        vdd = condition.vdd

        if site is BridgeSite.BITLINE_BITLINE:
            # Union of the voltage and timing mechanisms of
            # _bridge_manifestation.  The site spread goes through the
            # identical math.log call, per site (tolist() hands back
            # the exact doubles, so this mirrors _site_z(d, 0.5)
            # bit-for-bit).
            z = np.array([math.log(s) / 0.5 for s in strengths.tolist()],
                         dtype=float)
            v_mask = p.bitline_v_mask + p.bitline_v_sigma * z
            r_crit = strengths * p.bitline_r
            r_as = p.bitline_atspeed_r * strengths
            develop_need = self._delay_scale(vdd, condition.temperature)
            timing_armed = condition.period < 25e-9 * develop_need
            voltage = ((vdd <= v_mask)[:, None]
                       & (r[None, :] <= r_crit[:, None]))
            timing = (r[None, :] <= r_as[:, None]) & timing_armed
            return voltage | timing

        r_crit = self._bridge_batch_critical(site, strengths, vdd,
                                             condition.temperature)
        # Mirrors "if defect.resistance > r_crit: return None".
        return ~(r[None, :] > r_crit[:, None])

    def _bridge_batch_critical(self, site: BridgeSite,
                               strengths: np.ndarray, vdd: float,
                               temperature: float) -> np.ndarray:
        """Per-site critical resistances, exactly as the scalar path.

        Every class keeps :meth:`bridge_critical_resistance`'s operand
        grouping: ``strength * p.rail_c * shape`` is computed as
        ``(strengths * p.rail_c) * shape``, never re-associated --
        float multiplication is commutative but not associative, and
        regrouping could flip a boundary comparison.
        """
        p = self.params
        if site is BridgeSite.CELL_NODE_RAIL:
            vt_eff = p.rail_vt_eff - self._temp_vt_shift(temperature)
            if vdd <= vt_eff:
                return np.full(strengths.shape, math.inf)
            shape = vdd / (vdd - vt_eff) ** p.rail_alpha
            return (strengths * p.rail_c) * shape
        if site is BridgeSite.CELL_NODE_NODE:
            frac = _sigmoid((p.snm_v_mid - vdd) / p.snm_v_width)
            return strengths * (p.snm_r_lo
                                + (p.snm_r_hi - p.snm_r_lo) * frac)
        if site is BridgeSite.WORDLINE_CELL:
            frac = _sigmoid((p.wordline_v_mid - vdd) / p.wordline_v_width)
            return (strengths * p.wordline_r) * frac
        if site is BridgeSite.DECODER_LOGIC:
            return (strengths * p.decoder_r) * (
                1.0 + 0.1 * (self.tech.vdd_nominal - vdd))
        if site is BridgeSite.PERIPHERY_METAL:
            return strengths * p.periphery_r
        if site is BridgeSite.EQUIVALENT_NODE:
            return np.zeros(strengths.shape)
        raise ValueError(f"unknown bridge site {site}")

    def _open_batch(self, site: OpenSite, strengths: np.ndarray,
                    r: np.ndarray,
                    condition: StressCondition) -> np.ndarray:
        """Detection rows of one open class (op-order-exact)."""
        p = self.params
        vdd, period = condition.vdd, condition.period
        scale = self._delay_scale(vdd, condition.temperature)
        if math.isinf(scale):
            # Below the path threshold every open is silent.
            return np.zeros((strengths.size, r.size), dtype=bool)

        if site is OpenSite.BITLINE_SEGMENT:
            # added = (resistance * seg_c) * strength, grouped exactly
            # as the scalar left-associative product.
            added = (r * p.seg_c)[None, :] * strengths[:, None]
            return p.seg_t0 + added > period

        if site is OpenSite.CELL_ACCESS:
            added = (r * p.access_c)[None, :] * strengths[:, None]
            develop = p.access_t0 * scale
            if vdd <= self.tech.vdd_vlv + 0.15:
                develop *= p.access_vlv_blowup
            window = 0.35 * period
            return develop + added > window

        if site is OpenSite.CELL_PULLUP:
            leak = self._temp_leak_factor(condition.temperature)
            r_vlv = (p.pullup_r_vlv * strengths) / leak
            r_vmax = (p.pullup_r_vmax * strengths) / leak
            out = np.zeros((strengths.size, r.size), dtype=bool)
            if vdd <= self.tech.vdd_vlv + 0.1:
                out |= r[None, :] >= r_vlv[:, None]
            if vdd >= self.tech.vdd_max - 1e-9:
                out |= r[None, :] >= r_vmax[:, None]
            return out

        if site is OpenSite.DECODER_INPUT:
            # v_detect per (site, R) cell; both transcendental factors
            # go through the identical math calls the scalar path
            # makes -- per site for the spread, per grid point for the
            # log-resistance term.
            # Mirrors _site_z(d, 0.5) bit-for-bit (tolist() returns
            # the exact doubles).
            z = np.array([math.log(s) / 0.5 for s in strengths.tolist()],
                         dtype=float)
            l10 = np.array(
                [math.log10(rj / p.dec_r_ref) for rj in r.tolist()],
                dtype=float)
            v = ((p.dec_v_base + p.dec_v_spread * z)[:, None]
                 - (p.dec_v_slope * l10)[None, :])
            v_detect = np.maximum(v, 0.5 * self.tech.vdd_vlv)
            return vdd >= v_detect

        if site is OpenSite.PERIPHERY_PATH:
            added = ((r * p.periphery_c)[None, :]
                     * strengths[:, None]) * scale
            path = p.periphery_t0 * scale
            return path + added > period

        raise ValueError(f"unknown open site {site}")
