"""Crash-safe file writes: write-temp, fsync, atomic rename.

The paper's deployment model ships a "database with pre-calculated
simulation results" to customers; a truncated JSON produced by a crash
mid-``write_text`` silently poisons every later estimate.  This module
is the single place the library writes durable artefacts:

1. serialise into ``<path>.tmp`` (same directory, so the rename below
   stays on one filesystem);
2. ``flush`` + ``os.fsync`` the temp file (data reaches the platter
   before the rename makes it visible);
3. ``os.replace`` onto the destination (atomic on POSIX and Windows);
4. best-effort ``fsync`` of the directory entry.

A crash before step 3 leaves the previous file intact; a crash after
leaves the new file complete.  Readers therefore never observe a
half-written artefact -- at worst a stale one plus a ``.tmp`` sibling,
which :mod:`repro.runner.checkpoint` and
:mod:`repro.core.database` know how to recover from.

Every durable payload is wrapped in an envelope carrying a schema
version and a SHA-256 checksum of the canonicalised body, so corruption
that *does* slip through (bit rot, hand edits, partial copies) is
detected at load time instead of surfacing as a baffling ``KeyError``
three layers up.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Callable

#: Suffix of the intermediate file; also the recovery source when the
#: destination is corrupt but the temp survived a crash-after-write.
TMP_SUFFIX = ".tmp"

FaultHook = Callable[[str], None]


def temp_path_for(path: str | Path) -> Path:
    """The sibling temp file used by :func:`atomic_write_text`."""
    path = Path(path)
    return path.with_name(path.name + TMP_SUFFIX)


def atomic_write_text(path: str | Path, text: str,
                      fault_hook: FaultHook | None = None) -> None:
    """Durably replace ``path`` with ``text`` (write-fsync-rename).

    Args:
        path: Destination file.
        text: Full new content.
        fault_hook: Optional chaos hook (see :mod:`repro.runner.chaos`)
            called at the labelled crash points ``io.write``,
            ``io.fsync`` and ``io.replace``; a hook that raises
            simulates a crash at exactly that point.
    """
    path = Path(path)
    tmp = temp_path_for(path)
    if fault_hook is not None:
        fault_hook("io.write")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        if fault_hook is not None:
            fault_hook("io.fsync")
        os.fsync(fh.fileno())
    if fault_hook is not None:
        fault_hook("io.replace")
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def _fsync_dir(directory: Path) -> None:
    """Best-effort directory fsync (persists the rename itself)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# Versioned + checksummed JSON envelopes
# ----------------------------------------------------------------------
def canonical_json(body: Any) -> str:
    """Deterministic serialisation used for checksums and payloads."""
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def body_checksum(body: Any) -> str:
    """SHA-256 hex digest of the canonicalised body."""
    return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()


def wrap_envelope(schema: str, version: int, body: Any) -> dict[str, Any]:
    """Wrap a JSON body with schema identity and integrity checksum."""
    return {
        "schema": schema,
        "version": version,
        "checksum": body_checksum(body),
        "body": body,
    }


class EnvelopeError(ValueError):
    """A JSON envelope failed structural or integrity validation."""


def unwrap_envelope(payload: Any, schema: str,
                    max_version: int) -> tuple[int, Any]:
    """Validate an envelope and return ``(version, body)``.

    Raises:
        EnvelopeError: wrong shape, wrong schema name, unsupported
            version, or checksum mismatch.  The message states the
            specific defect; callers prepend the file path.
    """
    if not isinstance(payload, dict):
        raise EnvelopeError(
            f"expected an envelope object, got {type(payload).__name__}")
    for key in ("schema", "version", "checksum", "body"):
        if key not in payload:
            raise EnvelopeError(f"envelope is missing the {key!r} key")
    if payload["schema"] != schema:
        raise EnvelopeError(
            f"schema mismatch: expected {schema!r}, "
            f"found {payload['schema']!r}")
    version = payload["version"]
    if not isinstance(version, int) or not 1 <= version <= max_version:
        raise EnvelopeError(
            f"unsupported schema version {version!r} "
            f"(this build reads versions 1..{max_version})")
    actual = body_checksum(payload["body"])
    if actual != payload["checksum"]:
        raise EnvelopeError(
            "checksum mismatch: payload is corrupt "
            f"(stored {str(payload['checksum'])[:12]}..., "
            f"computed {actual[:12]}...)")
    return version, payload["body"]


def atomic_write_envelope(path: str | Path, schema: str, version: int,
                          body: Any,
                          fault_hook: FaultHook | None = None) -> None:
    """Checksum, wrap and durably write a JSON body in one call."""
    envelope = wrap_envelope(schema, version, body)
    atomic_write_text(path, json.dumps(envelope, indent=1, sort_keys=True),
                      fault_hook=fault_hook)
