"""The resilient campaign runner: interruptible, resumable, fault-tolerant.

Ties the subsystem together.  A campaign -- the paper's long
one-defect-at-a-time simulation sweep that builds the "database with
pre-calculated simulation results" (Section 3) -- becomes:

1. **decompose** (:mod:`repro.runner.units`): the R x condition sweep
   flattens into an ordered list of independent work units;
2. **evaluate** (:mod:`repro.runner.retry`): each site's behavioural
   evaluation runs under a retry policy; sites that keep failing are
   *quarantined* into an error ledger and counted in the emitted
   record's ``errors`` field -- the campaign degrades gracefully
   instead of dying on one pathological site;
3. **persist** (:mod:`repro.runner.checkpoint`): after each completed
   unit the progress is checkpointed crash-safely, so ``kill -9`` costs
   at most the unit in flight;
4. **resume**: re-running against the same checkpoint skips completed
   units and re-emits their stored payloads, producing records
   byte-identical to an uninterrupted run (site populations are
   regenerated deterministically from the campaign seed).

The chaos harness (:mod:`repro.runner.chaos`) plugs into both the
behaviour model and the checkpoint I/O, so every one of those recovery
paths is exercised by tests rather than discovered in production.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.defects.models import Defect, DefectKind
from repro.ifa.flow import CoverageRecord
from repro.runner.checkpoint import CampaignCheckpoint
from repro.runner.retry import (
    DEFAULT_UNIT_POLICY,
    RetryExhaustedError,
    RetryPolicy,
    RetryStats,
    run_with_retry,
)
from repro.runner.units import WorkUnit, plan_units
from repro.stress import StressCondition

if TYPE_CHECKING:
    from repro.ifa.flow import IfaCampaign


class UnitDeadlineExceeded(RuntimeError):
    """A work unit overran the runner's per-unit wall-clock budget.

    Deliberately fatal rather than silently skipping sites: skipping
    would make the emitted records depend on machine speed.  The
    checkpoint keeps every completed unit, so the campaign is resumable
    after the stall's cause is fixed.
    """


@dataclass(frozen=True)
class SweepSpec:
    """One defect kind's share of a campaign (R grid x condition set)."""

    kind: DefectKind
    resistances: tuple[float, ...]
    conditions: tuple[StressCondition, ...]

    @classmethod
    def of(cls, kind: DefectKind, resistances: Sequence[float],
           conditions: Iterable[StressCondition]) -> "SweepSpec":
        return cls(kind, tuple(float(r) for r in resistances),
                   tuple(conditions))


@dataclass
class CampaignResult:
    """Everything a runner execution produced.

    Attributes:
        records: Coverage records in plan order (checkpoint-restored
            units and freshly evaluated ones interleave seamlessly).
        quarantine: Error-ledger entries accumulated across the whole
            campaign, including entries restored from the checkpoint.
        executed_units: Units evaluated in this process.
        resumed_units: Units restored from the checkpoint.
        retry_stats: Site-evaluation retry counters for this process.
    """

    records: list[CoverageRecord]
    quarantine: list[dict[str, Any]] = field(default_factory=list)
    executed_units: int = 0
    resumed_units: int = 0
    retry_stats: RetryStats = field(default_factory=RetryStats)

    @property
    def total_errors(self) -> int:
        return sum(r.errors for r in self.records)


def record_to_payload(record: CoverageRecord) -> dict[str, Any]:
    """JSON payload of a record (the checkpoint/database row format)."""
    return asdict(record)


def record_from_payload(payload: dict[str, Any]) -> CoverageRecord:
    return CoverageRecord(**payload)


def condition_fingerprint(cond: StressCondition) -> list[Any]:
    return [cond.name, cond.vdd, cond.period, cond.temperature]


def sweep_meta(specs: Sequence[SweepSpec]) -> list[dict[str, Any]]:
    """JSON fingerprint of a sweep plan (for checkpoint matching)."""
    return [
        {
            "kind": spec.kind.value,
            "resistances": list(spec.resistances),
            "conditions": [condition_fingerprint(c)
                           for c in spec.conditions],
        }
        for spec in specs
    ]


class CampaignRunner:
    """Run an :class:`~repro.ifa.flow.IfaCampaign` resiliently.

    Args:
        campaign: The campaign supplying site populations and the
            behaviour model.
        retry: Per-site retry policy (default: three fast attempts, no
            sleep -- evaluations are in-memory).
        checkpoint_path: Where to persist progress; ``None`` disables
            checkpointing (pure in-memory run, still fault-tolerant).
        checkpoint_every: Persist after every N completed units
            (1 = maximum durability; raise it to trade durability for
            checkpoint I/O on huge sweeps).
        unit_deadline: Optional wall-clock budget per work unit
            (seconds); exceeding it raises
            :class:`UnitDeadlineExceeded` after the in-flight site.
        meta: Extra campaign-fingerprint entries (geometry, CLI args,
            ...) stored in -- and matched against -- the checkpoint.
        fault_hook: Chaos probe threaded into checkpoint I/O
            (typically ``FaultInjector.check``).
        sleep, clock: Injectable time sources for the retry machinery
            (tests pass fakes; production uses the real ones).
    """

    def __init__(self, campaign: "IfaCampaign",
                 retry: RetryPolicy | None = None,
                 checkpoint_path: str | Path | None = None,
                 checkpoint_every: int = 1,
                 unit_deadline: float | None = None,
                 meta: dict[str, Any] | None = None,
                 fault_hook: Callable[[str], None] | None = None,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if unit_deadline is not None and unit_deadline <= 0:
            raise ValueError("unit_deadline must be positive")
        self.campaign = campaign
        self.retry = retry if retry is not None else DEFAULT_UNIT_POLICY
        self.checkpoint_path = (Path(checkpoint_path)
                                if checkpoint_path is not None else None)
        self.checkpoint_every = checkpoint_every
        self.unit_deadline = unit_deadline
        self.extra_meta = dict(meta or {})
        self.fault_hook = fault_hook
        self.sleep = sleep
        self.clock = clock
        self._populations: dict[DefectKind, list[Defect]] = {}

    # ------------------------------------------------------------------
    # Plan / fingerprint
    # ------------------------------------------------------------------
    def plan(self, specs: Sequence[SweepSpec]) -> list[WorkUnit]:
        units: list[WorkUnit] = []
        for spec in specs:
            units.extend(plan_units(spec.kind, spec.resistances,
                                    spec.conditions,
                                    start_index=len(units)))
        return units

    def meta_for(self, specs: Sequence[SweepSpec]) -> dict[str, Any]:
        meta: dict[str, Any] = {
            "n_sites": self.campaign.n_sites,
            "seed": self.campaign.seed,
            "sweeps": sweep_meta(specs),
        }
        meta.update(self.extra_meta)
        return meta

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _population(self, kind: DefectKind) -> list[Defect]:
        if kind not in self._populations:
            self._populations[kind] = (
                self.campaign.bridge_population()
                if kind is DefectKind.BRIDGE
                else self.campaign.open_population())
        return self._populations[kind]

    def _load_or_new_checkpoint(
            self, meta: dict[str, Any]) -> CampaignCheckpoint:
        if self.checkpoint_path is not None and self.checkpoint_path.exists():
            ckpt = CampaignCheckpoint.load(self.checkpoint_path)
            ckpt.ensure_matches(meta)
            return ckpt
        return CampaignCheckpoint(meta)

    def run(self, specs: Sequence[SweepSpec]) -> CampaignResult:
        """Execute (or resume) the campaign described by ``specs``."""
        units = self.plan(specs)
        ckpt = self._load_or_new_checkpoint(self.meta_for(specs))
        result = CampaignResult(records=[],
                                quarantine=list(ckpt.quarantine))
        variants_key: tuple[DefectKind, float] | None = None
        variants: list[Defect] = []
        dirty = 0
        for unit in units:
            if ckpt.is_complete(unit.unit_id):
                result.records.append(
                    record_from_payload(ckpt.result_for(unit.unit_id)))
                result.resumed_units += 1
                continue
            key = (unit.kind, unit.resistance)
            if key != variants_key:
                variants = [d.with_resistance(unit.resistance)
                            for d in self._population(unit.kind)]
                variants_key = key
            record, entries = self._evaluate_unit(unit, variants,
                                                  result.retry_stats)
            result.records.append(record)
            result.quarantine.extend(entries)
            result.executed_units += 1
            ckpt.record_unit(unit.unit_id, record_to_payload(record),
                             entries)
            dirty += 1
            if self.checkpoint_path is not None and (
                    dirty >= self.checkpoint_every):
                ckpt.save(self.checkpoint_path, fault_hook=self.fault_hook)
                dirty = 0
        if self.checkpoint_path is not None and dirty:
            ckpt.save(self.checkpoint_path, fault_hook=self.fault_hook)
        return result

    def _evaluate_unit(self, unit: WorkUnit, variants: Sequence[Defect],
                       stats: RetryStats,
                       ) -> tuple[CoverageRecord, list[dict[str, Any]]]:
        """Evaluate one unit; quarantine sites that keep raising."""
        behavior = self.campaign.behavior
        cond = unit.condition
        started = self.clock()
        detected = 0
        entries: list[dict[str, Any]] = []
        for site_index, defect in enumerate(variants):
            site_key = f"{unit.unit_id}#site{site_index}"
            try:
                if run_with_retry(
                        lambda d=defect: behavior.fails_condition(d, cond),
                        self.retry, site_key,
                        sleep=self.sleep, clock=self.clock, stats=stats):
                    detected += 1
            except RetryExhaustedError as exc:
                entries.append({
                    "unit_id": unit.unit_id,
                    "site_index": site_index,
                    "defect": str(defect),
                    "attempts": exc.attempts,
                    "error": f"{type(exc.causes[-1]).__name__}: "
                             f"{exc.causes[-1]}",
                    "deadline_hit": exc.deadline_hit,
                })
            if (self.unit_deadline is not None
                    and self.clock() - started > self.unit_deadline):
                raise UnitDeadlineExceeded(
                    f"{unit} exceeded its {self.unit_deadline:g}s budget "
                    f"after {site_index + 1}/{len(variants)} sites; "
                    "completed units are checkpointed -- fix the stall "
                    "and resume")
        record = CoverageRecord(
            kind=unit.kind.value,
            resistance=unit.resistance,
            condition=cond.name,
            vdd=cond.vdd,
            period=cond.period,
            detected=detected,
            total=len(variants),
            errors=len(entries),
        )
        return record, entries

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status(self, specs: Sequence[SweepSpec]) -> dict[str, Any]:
        """Checkpoint progress against this runner's plan."""
        units = self.plan(specs)
        if self.checkpoint_path is None or not self.checkpoint_path.exists():
            return {"completed_units": 0, "total_units": len(units),
                    "remaining_units": len(units), "quarantined_sites": 0,
                    "recovered_from_temp": False, "meta": {}}
        ckpt = CampaignCheckpoint.load(self.checkpoint_path)
        return ckpt.status(total_units=len(units))
