"""The resilient campaign runner: interruptible, resumable, fault-tolerant.

Ties the subsystem together.  A campaign -- the paper's long
one-defect-at-a-time simulation sweep that builds the "database with
pre-calculated simulation results" (Section 3) -- becomes:

1. **decompose** (:mod:`repro.runner.units`): the R x condition sweep
   flattens into an ordered list of independent work units;
2. **evaluate** (:mod:`repro.runner.evaluate`): each site's behavioural
   evaluation runs under a retry policy; sites that keep failing are
   *quarantined* into an error ledger and counted in the emitted
   record's ``errors`` field -- the campaign degrades gracefully
   instead of dying on one pathological site.  With ``workers > 1``
   the pending units fan out across a process pool
   (:mod:`repro.perf.executor`) with byte-identical results;
3. **skip** (:mod:`repro.perf.cache`): with an evaluation cache
   attached, units whose content-addressed key is already cached are
   served from the cache instead of re-evaluated;
4. **persist** (:mod:`repro.runner.checkpoint`): after each completed
   unit the progress is checkpointed crash-safely, so ``kill -9`` costs
   at most the unit (or chunk) in flight;
5. **resume**: re-running against the same checkpoint skips completed
   units and re-emits their stored payloads, producing records
   byte-identical to an uninterrupted run (site populations are
   regenerated deterministically from the campaign seed).

The chaos harness (:mod:`repro.runner.chaos`) plugs into both the
behaviour model and the checkpoint I/O, so every one of those recovery
paths is exercised by tests rather than discovered in production.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.defects.models import DefectKind
from repro.ifa.flow import CoverageRecord
from repro.runner.checkpoint import CampaignCheckpoint
from repro.runner.evaluate import (
    UnitDeadlineExceeded,
    UnitEvaluator,
    UnitOutcome,
)
from repro.runner.retry import RetryPolicy, RetryStats
from repro.runner.units import WorkUnit, plan_units
from repro.stress import StressCondition

if TYPE_CHECKING:
    from repro.ifa.flow import IfaCampaign
    from repro.perf.cache import EvaluationCache

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "SweepSpec",
    "UnitDeadlineExceeded",
    "condition_fingerprint",
    "record_from_payload",
    "record_to_payload",
    "sweep_meta",
]


@dataclass(frozen=True)
class SweepSpec:
    """One defect kind's share of a campaign (R grid x condition set).

    Attributes:
        kind: Defect kind of the sweep.
        resistances: Resistance grid (ohms).
        conditions: Stress conditions evaluated at every grid point.
    """

    kind: DefectKind
    resistances: tuple[float, ...]
    conditions: tuple[StressCondition, ...]

    @classmethod
    def of(cls, kind: DefectKind, resistances: Sequence[float],
           conditions: Iterable[StressCondition]) -> "SweepSpec":
        """Build a spec, coercing the grid to floats and tuples."""
        return cls(kind, tuple(float(r) for r in resistances),
                   tuple(conditions))


@dataclass
class CampaignResult:
    """Everything a runner execution produced.

    Attributes:
        records: Coverage records in plan order (checkpoint-restored,
            cache-served and freshly evaluated units interleave
            seamlessly).
        quarantine: Error-ledger entries accumulated across the whole
            campaign, including entries restored from the checkpoint.
        executed_units: Units evaluated in this process (or its worker
            pool).
        resumed_units: Units restored from the checkpoint.
        cached_units: Units served from the evaluation cache.
        retry_stats: Site-evaluation retry counters for this run.
        cache_stats: Hit/miss statistics of the evaluation cache
            (``None`` when no cache was attached).
        frontier_stats: Counters of the frontier sweep solver
            (:class:`~repro.perf.frontier.FrontierStats` as a dict;
            ``None`` unless ``strategy="frontier"`` evaluated units).
        batch_stats: Counters of the vectorised batch evaluator
            (:class:`~repro.perf.batch.BatchStats` as a dict;
            ``None`` unless ``strategy="batch"`` evaluated units).
        supervisor_stats: Counters of the supervised worker pool
            (:class:`~repro.perf.supervisor.SupervisorStats` as a
            dict; ``None`` unless ``workers > 1`` ran supervised).
            All zeros on an undisturbed run.
        metrics: Snapshot of the run's
            :class:`~repro.obs.metrics.MetricsRegistry` (``None``
            unless a journal was requested -- the registry only exists
            when observability is on, keeping the default path
            zero-overhead).
    """

    records: list[CoverageRecord]
    quarantine: list[dict[str, Any]] = field(default_factory=list)
    executed_units: int = 0
    resumed_units: int = 0
    cached_units: int = 0
    retry_stats: RetryStats = field(default_factory=RetryStats)
    cache_stats: dict[str, Any] | None = None
    frontier_stats: dict[str, Any] | None = None
    batch_stats: dict[str, Any] | None = None
    supervisor_stats: dict[str, Any] | None = None
    metrics: dict[str, Any] | None = None

    @property
    def total_errors(self) -> int:
        """Total quarantined sites across all emitted records."""
        return sum(r.errors for r in self.records)


def record_to_payload(record: CoverageRecord) -> dict[str, Any]:
    """JSON payload of a record (the checkpoint/database row format)."""
    return asdict(record)


def record_from_payload(payload: dict[str, Any]) -> CoverageRecord:
    """Rebuild a record from its checkpoint/cache payload."""
    return CoverageRecord(**payload)


def condition_fingerprint(cond: StressCondition) -> list[Any]:
    """JSON fingerprint of one stress condition (checkpoint matching)."""
    return [cond.name, cond.vdd, cond.period, cond.temperature]


def sweep_meta(specs: Sequence[SweepSpec]) -> list[dict[str, Any]]:
    """JSON fingerprint of a sweep plan (for checkpoint matching)."""
    return [
        {
            "kind": spec.kind.value,
            "resistances": list(spec.resistances),
            "conditions": [condition_fingerprint(c)
                           for c in spec.conditions],
        }
        for spec in specs
    ]


class CampaignRunner:
    """Run an :class:`~repro.ifa.flow.IfaCampaign` resiliently.

    Args:
        campaign: The campaign supplying site populations and the
            behaviour model.
        retry: Per-site retry policy (default: three fast attempts, no
            sleep -- evaluations are in-memory).
        checkpoint_path: Where to persist progress; ``None`` disables
            checkpointing (pure in-memory run, still fault-tolerant).
        checkpoint_every: Persist after every N completed units
            (1 = maximum durability; raise it to trade durability for
            checkpoint I/O on huge sweeps).
        unit_deadline: Optional wall-clock budget per work unit
            (seconds); exceeding it raises
            :class:`~repro.runner.evaluate.UnitDeadlineExceeded` after
            the in-flight site.
        workers: Evaluation processes.  1 (default) evaluates inline;
            N > 1 fans pending units out over a process pool
            (:mod:`repro.perf.executor`) with byte-identical records.
            The campaign must then be picklable, and the injectable
            ``sleep``/``clock`` only govern the parent process.
        chunksize: Units per pool task when ``workers > 1``
            (automatic when omitted).
        supervise: Wrap the pool in the supervision layer
            (:mod:`repro.perf.supervisor`) that heals worker death,
            hangs and poison units (default).  ``False`` restores the
            bare executor, where a dying worker aborts the run --
            kept for benchmarking the supervision overhead.
        max_pool_rebuilds: Pool rebuilds the supervisor may spend
            before degrading to serial in-parent evaluation.
        chunk_deadline_factor: Slack multiplier of the supervisor's
            parent-side chunk deadline (``unit_deadline x chunk
            length x factor``); only meaningful with a
            ``unit_deadline``.
        cache: Evaluation cache -- an
            :class:`~repro.perf.cache.EvaluationCache` instance, or a
            path whose cache file is loaded (created on save).  Units
            already cached for this campaign's exact fingerprint are
            served without evaluation; see ``docs/performance.md``.
        meta: Extra campaign-fingerprint entries (geometry, CLI args,
            ...) stored in -- and matched against -- the checkpoint.
        fault_hook: Chaos probe threaded into checkpoint/cache I/O
            (typically ``FaultInjector.check``).
        strategy: Unit-evaluation strategy.  ``"exact"`` (default)
            evaluates every (site, R) cell through the behaviour model;
            ``"frontier"`` derives per-site detection thresholds once
            per (kind, condition) group and answers the sweep by
            comparison (:mod:`repro.perf.frontier`), with guarded
            per-site fallback to exact -- records are byte-identical
            either way.  ``"batch"`` answers each (kind, condition)
            group's full site x R grid in one vectorised
            ``evaluate_batch`` call (:mod:`repro.perf.batch`), guarded
            by the same cross-check machinery, with whole-group scalar
            fallback for models without the hook -- records are again
            byte-identical.  Frontier and batch evaluation are serial
            by design (the group tables amortise across units, which a
            process pool would duplicate per worker), so both reject
            ``workers > 1``.
        frontier_policy: Cross-check knobs of the frontier and batch
            strategies (:class:`~repro.perf.frontier.FrontierPolicy`).
        journal: Observability sink (:mod:`repro.obs`).  ``None``
            (default) disables it entirely -- the hot path then makes
            zero event-bus invocations.  A path writes a JSONL run
            journal there (flushed atomically alongside every
            checkpoint save); an :class:`~repro.obs.bus.EventBus`-like
            instance is used as-is (tests pass counting wrappers).
            Every event is derived *in the parent* at the in-order
            effect point from the outcome objects workers send back,
            so journals are byte-identical across serial and
            multi-worker runs and never contain wall-clock reads.
        sleep, clock: Injectable time sources for the retry machinery
            (tests pass fakes; production uses the real ones).
    """

    def __init__(self, campaign: "IfaCampaign",
                 retry: RetryPolicy | None = None,
                 checkpoint_path: str | Path | None = None,
                 checkpoint_every: int = 1,
                 unit_deadline: float | None = None,
                 workers: int = 1,
                 chunksize: int | None = None,
                 supervise: bool = True,
                 max_pool_rebuilds: int = 8,
                 chunk_deadline_factor: float = 4.0,
                 cache: "EvaluationCache | str | Path | None" = None,
                 meta: dict[str, Any] | None = None,
                 fault_hook: Callable[[str], None] | None = None,
                 strategy: str = "exact",
                 frontier_policy: Any = None,
                 journal: Any = None,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if unit_deadline is not None and unit_deadline <= 0:
            raise ValueError("unit_deadline must be positive")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")
        if chunk_deadline_factor <= 0:
            raise ValueError("chunk_deadline_factor must be positive")
        if strategy not in ("exact", "frontier", "batch"):
            raise ValueError(
                f"strategy must be 'exact', 'frontier' or 'batch', "
                f"got {strategy!r}")
        if strategy in ("frontier", "batch") and workers > 1:
            raise ValueError(
                f"strategy={strategy!r} is serial (its group tables "
                "amortise across units); use workers=1, or "
                "strategy='exact' for the process pool")
        self.campaign = campaign
        self.retry = retry
        self.checkpoint_path = (Path(checkpoint_path)
                                if checkpoint_path is not None else None)
        self.checkpoint_every = checkpoint_every
        self.unit_deadline = unit_deadline
        self.workers = workers
        self.chunksize = chunksize
        self.supervise = supervise
        self.max_pool_rebuilds = max_pool_rebuilds
        self.chunk_deadline_factor = chunk_deadline_factor
        self.cache, self.cache_path = self._resolve_cache(cache)
        self.extra_meta = dict(meta or {})
        self.fault_hook = fault_hook
        self.strategy = strategy
        self.frontier_policy = frontier_policy
        self.journal = journal
        self.sleep = sleep
        self.clock = clock
        self._frontier_evaluator: Any = None
        self._batch_evaluator: Any = None
        self._supervisor: Any = None

    def _journal_bus(self) -> Any:
        """Resolve the ``journal`` argument to an event bus (or None)."""
        if self.journal is None:
            return None
        if isinstance(self.journal, (str, Path)):
            from repro.obs.bus import EventBus

            return EventBus(Path(self.journal))
        return self.journal

    @staticmethod
    def _resolve_cache(cache: "EvaluationCache | str | Path | None",
                       ) -> "tuple[EvaluationCache | None, Path | None]":
        """Normalise the ``cache`` argument to (instance, save path)."""
        if cache is None:
            return None, None
        if isinstance(cache, (str, Path)):
            from repro.perf.cache import EvaluationCache

            path = Path(cache)
            return EvaluationCache.load(path), path
        return cache, None

    # ------------------------------------------------------------------
    # Plan / fingerprint
    # ------------------------------------------------------------------
    def plan(self, specs: Sequence[SweepSpec]) -> list[WorkUnit]:
        """Flatten the sweep specs into the ordered unit plan."""
        units: list[WorkUnit] = []
        for spec in specs:
            units.extend(plan_units(spec.kind, spec.resistances,
                                    spec.conditions,
                                    start_index=len(units)))
        return units

    def meta_for(self, specs: Sequence[SweepSpec]) -> dict[str, Any]:
        """The campaign fingerprint stored in (and matched against) the
        checkpoint.

        Execution knobs (workers, chunk size, cache) are deliberately
        absent: they change how a campaign runs, never what it
        computes, so a parallel run may resume a serial checkpoint and
        vice versa.
        """
        meta: dict[str, Any] = {
            "n_sites": self.campaign.n_sites,
            "seed": self.campaign.seed,
            "sweeps": sweep_meta(specs),
        }
        meta.update(self.extra_meta)
        return meta

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _load_or_new_checkpoint(
            self, meta: dict[str, Any]) -> CampaignCheckpoint:
        """Load the checkpoint when present and matching, else start new."""
        if self.checkpoint_path is not None and self.checkpoint_path.exists():
            ckpt = CampaignCheckpoint.load(self.checkpoint_path)
            ckpt.ensure_matches(meta)
            return ckpt
        return CampaignCheckpoint(meta)

    def _cache_lookup(self, units: Sequence[WorkUnit],
                      ckpt: CampaignCheckpoint,
                      ) -> tuple[dict[str, str], dict[str, dict[str, Any]]]:
        """Compute cache keys and probe the cache for every open unit.

        Returns:
            ``(keys, hits)``: unit-id -> cache key for every unit not
            already in the checkpoint, and unit-id -> payload for the
            subset the cache already holds.
        """
        keys: dict[str, str] = {}
        hits: dict[str, dict[str, Any]] = {}
        if self.cache is None:
            return keys, hits
        from repro.perf.cache import unit_cache_key
        from repro.perf.fingerprint import (
            behavior_fingerprint,
            population_fingerprint,
        )

        behavior_doc = behavior_fingerprint(self.campaign.behavior)
        population_docs: dict[DefectKind, Any] = {}
        for unit in units:
            if ckpt.is_complete(unit.unit_id):
                continue
            if unit.kind not in population_docs:
                population_docs[unit.kind] = population_fingerprint(
                    self.campaign, unit.kind)
            key = unit_cache_key(behavior_doc, population_docs[unit.kind],
                                 unit.resistance, unit.condition)
            keys[unit.unit_id] = key
            payload = self.cache.get(key)
            if payload is not None:
                hits[unit.unit_id] = payload
        return keys, hits

    def _outcomes(self, units: Sequence[WorkUnit],
                  pending: Sequence[WorkUnit],
                  bus: Any = None, metrics: Any = None,
                  ) -> Iterator[UnitOutcome]:
        """Evaluate pending units lazily: exact serial, frontier, or pool.

        Args:
            units: The full plan (the frontier evaluator derives its
                group grids from it, so table cache keys do not depend
                on checkpoint/cache state).
            pending: The subset actually needing evaluation.
            bus: Event bus handed to the pool supervisor so its
                ``pool.*`` recovery events land in the journal
                (``None`` when observability is off).
            metrics: Metrics registry fed alongside the bus.
        """
        if self.strategy == "frontier":
            from repro.perf.frontier import FrontierUnitEvaluator

            evaluator = FrontierUnitEvaluator(
                self.campaign, plan=units, retry=self.retry,
                policy=self.frontier_policy, cache=self.cache,
                unit_deadline=self.unit_deadline,
                sleep=self.sleep, clock=self.clock)
            self._frontier_evaluator = evaluator
            return (evaluator.evaluate(unit) for unit in pending)
        if self.strategy == "batch":
            from repro.perf.batch import BatchEvaluator

            evaluator = BatchEvaluator(
                self.campaign, plan=units, retry=self.retry,
                policy=self.frontier_policy, cache=self.cache,
                unit_deadline=self.unit_deadline,
                sleep=self.sleep, clock=self.clock)
            self._batch_evaluator = evaluator
            return (evaluator.evaluate(unit) for unit in pending)
        if self.workers == 1:
            evaluator = UnitEvaluator(self.campaign, retry=self.retry,
                                      unit_deadline=self.unit_deadline,
                                      sleep=self.sleep, clock=self.clock)
            return (evaluator.evaluate(unit) for unit in pending)
        if self.supervise:
            from repro.perf.supervisor import SupervisedUnitExecutor

            supervisor = SupervisedUnitExecutor(
                self.campaign, retry=self.retry,
                unit_deadline=self.unit_deadline,
                workers=self.workers, chunksize=self.chunksize,
                max_pool_rebuilds=self.max_pool_rebuilds,
                chunk_deadline_factor=self.chunk_deadline_factor,
                bus=bus, metrics=metrics,
                sleep=self.sleep, clock=self.clock)
            self._supervisor = supervisor
            return supervisor.run(pending)
        from repro.perf.executor import ParallelUnitExecutor

        executor = ParallelUnitExecutor(self.campaign, retry=self.retry,
                                        unit_deadline=self.unit_deadline,
                                        workers=self.workers,
                                        chunksize=self.chunksize)
        return executor.run(pending)

    def _save_cache(self) -> None:
        """Persist the cache when it is path-backed and has new entries."""
        if (self.cache is not None and self.cache_path is not None
                and self.cache.dirty):
            self.cache.save(self.cache_path, fault_hook=self.fault_hook)

    def run(self, specs: Sequence[SweepSpec]) -> CampaignResult:
        """Execute (or resume) the campaign described by ``specs``.

        Units already in the checkpoint are re-emitted; open units are
        served from the evaluation cache when attached and keyed; the
        rest are evaluated -- inline, or across the worker pool when
        ``workers > 1``.  Records, quarantine entries and checkpoint
        writes always happen in plan order, so every combination of
        {serial, parallel} x {cold, warm cache} x {fresh, resumed}
        yields byte-identical records.

        Args:
            specs: The sweep plan (one spec per defect kind).

        Returns:
            The assembled :class:`CampaignResult`.
        """
        units = self.plan(specs)
        meta = self.meta_for(specs)
        resuming = (self.checkpoint_path is not None
                    and self.checkpoint_path.exists())
        ckpt = self._load_or_new_checkpoint(meta)
        result = CampaignResult(records=[],
                                quarantine=list(ckpt.quarantine))
        keys, hits = self._cache_lookup(units, ckpt)
        pending = [u for u in units
                   if not ckpt.is_complete(u.unit_id)
                   and u.unit_id not in hits]
        bus = self._journal_bus()
        metrics: Any = None
        if bus is not None:
            from repro.obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
            # Journal metadata is the campaign fingerprint minus the
            # bulky sweep table -- and, by the determinism contract,
            # minus every execution knob (workers, cache, strategy), so
            # serial and parallel journals stay byte-identical.
            bus.set_meta({k: v for k, v in meta.items()
                          if k != "sweeps"})
            bus.emit("run.start", plan_units=len(units))
            if self.cache is not None:
                for entry in self.cache.corrupt_detail:
                    bus.emit("cache.discard_corrupt",
                             path=entry["path"], error=entry["error"])
                    metrics.inc("cache.discarded_corrupt")
            if resuming:
                status = ckpt.status()
                bus.emit("checkpoint.resume",
                         completed_units=status["completed_units"],
                         recovered_from_temp=status[
                             "recovered_from_temp"])
        outcomes = self._outcomes(units, pending, bus, metrics)
        dirty = 0
        processed = 0
        for unit in units:
            unit_id = unit.unit_id
            if ckpt.is_complete(unit_id):
                record = record_from_payload(ckpt.result_for(unit_id))
                result.records.append(record)
                result.resumed_units += 1
                processed += 1
                if bus is not None:
                    bus.emit("unit.resumed", unit=unit_id)
                    self._emit_unit_done(bus, metrics, unit_id,
                                         "checkpoint", record)
                continue
            if unit_id in hits:
                payload = hits[unit_id]
                record = record_from_payload(payload)
                result.records.append(record)
                result.cached_units += 1
                ckpt.record_unit(unit_id, payload)
                if bus is not None:
                    bus.emit("cache.hit", unit=unit_id)
                    self._emit_unit_done(bus, metrics, unit_id,
                                         "cache", record)
            else:
                outcome = next(outcomes)
                payload = record_to_payload(outcome.record)
                result.records.append(outcome.record)
                result.quarantine.extend(outcome.quarantine)
                result.executed_units += 1
                result.retry_stats.merge(outcome.stats)
                ckpt.record_unit(unit_id, payload, outcome.quarantine)
                if (self.cache is not None
                        and outcome.record.errors == 0):
                    self.cache.put(keys[unit_id], payload)
                if bus is not None:
                    self._emit_executed(bus, metrics, unit, keys,
                                        outcome)
            dirty += 1
            processed += 1
            if self.checkpoint_path is not None and (
                    dirty >= self.checkpoint_every):
                ckpt.save(self.checkpoint_path, fault_hook=self.fault_hook)
                dirty = 0
                self._save_cache()
                if bus is not None:
                    bus.emit("checkpoint.save", completed_units=processed)
                    metrics.inc("checkpoint.saves")
                    bus.flush()
        if self.checkpoint_path is not None and dirty:
            ckpt.save(self.checkpoint_path, fault_hook=self.fault_hook)
            if bus is not None:
                bus.emit("checkpoint.save", completed_units=processed)
                metrics.inc("checkpoint.saves")
        self._save_cache()
        if self.cache is not None:
            result.cache_stats = self.cache.stats()
        if self._frontier_evaluator is not None:
            result.frontier_stats = self._frontier_evaluator.stats.as_dict()
        if self._batch_evaluator is not None:
            result.batch_stats = self._batch_evaluator.stats.as_dict()
        if self._supervisor is not None:
            result.supervisor_stats = self._supervisor.stats.as_dict()
        if bus is not None:
            self._emit_run_done(bus, metrics, result)
            result.metrics = metrics.snapshot()
            bus.flush()
        return result

    # ------------------------------------------------------------------
    # Observability (all emission happens parent-side, in plan order)
    # ------------------------------------------------------------------
    @staticmethod
    def _emit_unit_done(bus: Any, metrics: Any, unit_id: str,
                        source: str, record: CoverageRecord) -> None:
        """Emit one unit's terminal event and count it.

        ``source`` names where the record came from (``checkpoint``,
        ``cache`` or ``executed``); the payload carries the condition
        so reports can build per-condition tables without a join.
        """
        bus.emit("unit.done", unit=unit_id, source=source,
                 detected=record.detected, total=record.total,
                 errors=record.errors, condition=record.condition)
        metrics.inc(f"units.{source}")

    def _emit_executed(self, bus: Any, metrics: Any, unit: WorkUnit,
                       keys: dict[str, str],
                       outcome: UnitOutcome) -> None:
        """Replay one executed unit's outcome into the journal.

        This is the in-order effect point: the outcome object is the
        worker's complete account of the unit (record, quarantine
        ledger, retry snapshot), so deriving events here -- instead of
        in the worker -- keeps journals byte-identical across worker
        counts and the hot path free of any bus traffic.
        """
        unit_id = unit.unit_id
        bus.emit("unit.start", unit=unit_id, kind=unit.kind.value,
                 resistance=unit.resistance,
                 condition=unit.condition.name)
        if self.cache is not None and unit_id in keys:
            bus.emit("cache.miss", unit=unit_id)
        for message in outcome.stats.error_log():
            bus.emit("unit.retry", unit=unit_id, error=message)
        for entry in outcome.quarantine:
            bus.emit("unit.quarantine", unit=unit_id,
                     site_index=entry["site_index"],
                     attempts=entry["attempts"], error=entry["error"])
        # Merge the per-unit (per-worker) retry snapshot here, at the
        # same point result.retry_stats absorbs it.
        metrics.inc("retry.calls", outcome.stats.calls)
        metrics.inc("retry.retries", outcome.stats.retries)
        metrics.inc("retry.exhausted", outcome.stats.exhausted)
        metrics.inc("quarantine.sites", len(outcome.quarantine))
        self._emit_unit_done(bus, metrics, unit_id, "executed",
                             outcome.record)

    def _emit_run_done(self, bus: Any, metrics: Any,
                       result: CampaignResult) -> None:
        """Emit the frontier/batch ledgers and the run's terminal event."""
        if result.frontier_stats is not None:
            for group in result.frontier_stats["group_log"]:
                bus.emit("frontier.group", **group)
            for d in result.frontier_stats["demotions"]:
                bus.emit("frontier.demote", **d)
                metrics.inc(f"frontier.demote.{d['reason']}")
        if result.batch_stats is not None:
            for group in result.batch_stats["group_log"]:
                bus.emit("batch.group", **group)
            for d in result.batch_stats["demotions"]:
                bus.emit("batch.demote", **d)
                metrics.inc(f"batch.demote.{d['reason']}")
        if result.cache_stats is not None:
            metrics.set_gauge("cache.hit_rate",
                              result.cache_stats["hit_rate"])
        bus.emit("run.done",
                 executed_units=result.executed_units,
                 resumed_units=result.resumed_units,
                 cached_units=result.cached_units,
                 quarantined_sites=len(result.quarantine))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status(self, specs: Sequence[SweepSpec]) -> dict[str, Any]:
        """Checkpoint progress against this runner's plan."""
        units = self.plan(specs)
        if self.checkpoint_path is None or not self.checkpoint_path.exists():
            return {"completed_units": 0, "total_units": len(units),
                    "remaining_units": len(units), "quarantined_sites": 0,
                    "recovered_from_temp": False, "meta": {}}
        ckpt = CampaignCheckpoint.load(self.checkpoint_path)
        return ckpt.status(total_units=len(units))
