"""Work-unit decomposition of a coverage campaign.

A campaign is a triple-nested loop -- defect kind x resistance x stress
condition -- and the monolithic form of that loop is exactly what made
it fragile: one failure anywhere lost everything.  The runner instead
flattens the loop into an ordered list of :class:`WorkUnit` values.
Each unit is

* **deterministic** -- its identity (:attr:`WorkUnit.unit_id`) is a pure
  function of (kind, resistance, condition), so two plans built from
  the same sweep agree unit-by-unit;
* **independent** -- evaluating a unit touches only the (seeded) site
  population and the behaviour model, never another unit's result;
* **atomic** for checkpointing -- a unit is either fully evaluated and
  persisted, or not started; resume never sees half a unit.

The unit is one (kind, R, condition) cell rather than one defect site
because that is the granularity of the paper's database rows
(:class:`~repro.ifa.flow.CoverageRecord`): the natural commit size, big
enough that checkpoint I/O stays negligible, small enough that a crash
loses at most one sweep cell.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.defects.models import DefectKind
from repro.stress import StressCondition


@dataclass(frozen=True)
class WorkUnit:
    """One (kind, resistance, condition) cell of the campaign sweep.

    Attributes:
        index: Position in the campaign plan (defines emission order of
            the final records; resume preserves it).
        kind: Defect kind of the sweep.
        resistance: Sweep-point resistance (ohms).
        condition: Stress condition evaluated at this cell.
    """

    index: int
    kind: DefectKind
    resistance: float
    condition: StressCondition

    def __post_init__(self) -> None:
        if self.resistance <= 0.0:
            raise ValueError(
                f"work unit resistance must be positive, "
                f"got {self.resistance!r}")

    @property
    def unit_id(self) -> str:
        """Stable identity used as the checkpoint key.

        ``repr(float)`` round-trips exactly, so two plans over the same
        grid produce byte-identical ids.
        """
        return (f"{self.kind.value}:{self.resistance!r}:"
                f"{self.condition.name}")

    def __str__(self) -> str:
        return (f"unit[{self.index}] {self.kind.value} "
                f"R={self.resistance:g} @ {self.condition.name}")


def plan_units(kind: DefectKind, resistances: Sequence[float],
               conditions: Iterable[StressCondition],
               start_index: int = 0) -> list[WorkUnit]:
    """Flatten one kind's R x condition sweep into ordered work units.

    The order matches the historical nested loop (resistance-major,
    condition-minor) so records from the runner are drop-in identical
    to records from the old monolithic ``IfaCampaign.run``.

    Raises:
        ValueError: empty ``resistances`` or ``conditions`` -- an empty
            sweep silently produced an empty database that broke the
            estimator much later; fail at the source instead.
    """
    resistances = [float(r) for r in resistances]
    conditions = list(conditions)
    if not resistances:
        raise ValueError(
            f"campaign sweep for kind={kind.value!r} has no resistances; "
            "an empty sweep would produce an empty database")
    if not conditions:
        raise ValueError(
            f"campaign sweep for kind={kind.value!r} has no stress "
            "conditions; an empty sweep would produce an empty database")
    for r in resistances:
        if r <= 0.0:
            raise ValueError(
                f"campaign resistance must be positive, got {r!r}")
    units: list[WorkUnit] = []
    index = start_index
    for r in resistances:
        for cond in conditions:
            units.append(WorkUnit(index, kind, r, cond))
            index += 1
    return units
